"""Table 1: the six graph problems and their categories."""

from repro.bench.report import render_table1
from repro.kernels import PROBLEM_CATEGORIES
from repro.styles import Algorithm


def test_table1(benchmark):
    text = benchmark.pedantic(render_table1, rounds=1, iterations=1)
    print("\n" + text)
    # All six problems, categorized as in the paper.
    assert set(PROBLEM_CATEGORIES) == set(Algorithm)
    assert PROBLEM_CATEGORIES[Algorithm.CC] == "Connectivity"
    assert PROBLEM_CATEGORIES[Algorithm.MIS] == "Covering"
    assert PROBLEM_CATEGORIES[Algorithm.PR] == "Eigenvector"
    assert PROBLEM_CATEGORIES[Algorithm.TC] == "Substructure"
    assert PROBLEM_CATEGORIES[Algorithm.BFS] == "Shortest path"
    assert PROBLEM_CATEGORIES[Algorithm.SSSP] == "Shortest path"
    for alg in Algorithm:
        assert alg.name in text
