"""Table 4: the five input graphs."""

from repro.bench.report import render_table4
from repro.graph import dataset_names


def test_table4(benchmark, graph_properties):
    text = benchmark.pedantic(
        render_table4, args=(graph_properties,), rounds=1, iterations=1
    )
    print("\n" + text)
    assert set(graph_properties) == set(dataset_names())
    for p in graph_properties.values():
        assert p.n_vertices > 0
        assert p.n_edges > 0
        # Directed edge counts are even (two per undirected edge).
        assert p.n_edges % 2 == 0
    # Relative size ordering mirrors the paper: the road map is the
    # smallest input by edges; the publication graph carries the most
    # edges per vertex.
    road = graph_properties["USA-road-d.NY"]
    grid = graph_properties["2d-2e20.sym"]
    dblp = graph_properties["coPapersDBLP"]
    assert road.n_edges <= min(
        p.n_edges for name, p in graph_properties.items() if name != "2d-2e20.sym"
    ) or grid.n_edges <= road.n_edges
    assert dblp.n_edges / dblp.n_vertices == max(
        p.n_edges / p.n_vertices for p in graph_properties.values()
    )
