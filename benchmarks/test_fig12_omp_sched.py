"""Figure 12: OpenMP default vs dynamic scheduling ratios.

Paper findings: almost no difference for PR, BFS and SSSP; MIS is always
faster with the default schedule; CC and TC prefer the default schedule
with some dynamic-friendly cases.  (There is little load imbalance on most
inputs, so dynamic's dispatch overhead is pure cost.)
"""

from repro.bench import ratios_by_algorithm
from repro.bench.report import render_ratio_figure
from repro.styles import Algorithm, Model, OmpSchedule

from conftest import requires_default_scale


@requires_default_scale
def test_fig12(benchmark, study, med):
    text = benchmark.pedantic(
        render_ratio_figure, args=(study, "fig12"), rounds=1, iterations=1
    )
    print("\n" + text)
    by = ratios_by_algorithm(
        study, "omp_schedule", OmpSchedule.DEFAULT, OmpSchedule.DYNAMIC,
        models=[Model.OPENMP],
    )
    assert len(by) == 6
    # Default at least matches dynamic everywhere (median-wise)...
    for alg, vals in by.items():
        assert med(vals) >= 0.95, alg
    # ...MIS is *always* faster with the default schedule.
    assert by[Algorithm.MIS].min() > 1.0
    assert med(by[Algorithm.MIS]) > 1.5
    # PR/BFS/SSSP: modest differences (paper: "almost no difference").
    for alg in (Algorithm.PR, Algorithm.BFS, Algorithm.SSSP):
        assert med(by[alg]) < 3.0, alg
    # TC has dynamic-friendly cases (its load imbalance is real).
    assert by[Algorithm.TC].min() < 1.0