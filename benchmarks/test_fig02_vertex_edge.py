"""Figure 2: vertex-based vs edge-based throughput ratios.

Paper findings: on GPUs the overall medians sit near 1 (both styles win
cases), but MIS strongly prefers vertex-based (early-exit scans make it
load-balanced), CPUs lean vertex-based, and thread-granularity TC on the
skewed inputs strongly prefers edge-based (up to 100x on soc-LiveJournal).
"""

from repro.bench import ratios_by_algorithm
from repro.bench.report import render_ratio_figure
from repro.styles import Algorithm, Granularity, Iteration, Model


def test_fig2a_cuda(benchmark, study, med):
    text = benchmark.pedantic(
        render_ratio_figure, args=(study, "fig2-cuda"), rounds=1, iterations=1
    )
    print("\n" + text)
    by = ratios_by_algorithm(
        study, "iteration", Iteration.VERTEX, Iteration.EDGE,
        models=[Model.CUDA],
    )
    # Relaxation codes: no overall winner (median near 1, cases both ways).
    for alg in (Algorithm.CC, Algorithm.BFS, Algorithm.SSSP):
        assert 0.4 <= med(by[alg]) <= 2.5
        assert by[alg].min() < 1.0 < by[alg].max()
    # MIS clearly prefers vertex-based.
    assert med(by[Algorithm.MIS]) > 1.5
    # PR is vertex-only: no pairs.
    assert Algorithm.PR not in by


def test_fig2b_cpu(benchmark, study, med):
    text = benchmark.pedantic(
        render_ratio_figure, args=(study, "fig2-cpu"), rounds=1, iterations=1
    )
    print("\n" + text)
    by = ratios_by_algorithm(
        study, "iteration", Iteration.VERTEX, Iteration.EDGE,
        models=[Model.OPENMP, Model.CPP_THREADS],
    )
    # CPUs lean vertex-based (medians at or above 1 for every problem).
    for alg, vals in by.items():
        assert med(vals) >= 0.95, alg
    assert med(by[Algorithm.MIS]) > 1.5


def test_fig2c_thread_level_tc(benchmark, study, med):
    def thread_tc_ratios():
        out = {}
        for run in study.select(models=[Model.CUDA], algorithms=[Algorithm.TC]):
            if run.spec.granularity is not Granularity.THREAD:
                continue
            if run.spec.iteration is not Iteration.VERTEX:
                continue
            partner = study.get(
                run.spec.with_axis(iteration=Iteration.EDGE), run.device, run.graph
            )
            if partner:
                out.setdefault(run.graph, []).append(
                    run.throughput_ges / partner.throughput_ges
                )
        return out

    per_graph = benchmark.pedantic(thread_tc_ratios, rounds=1, iterations=1)
    for graph, vals in per_graph.items():
        print(f"thread-TC vertex/edge on {graph}: median {med(vals):.3f}")
    # The paper's headline case: thread-level TC is far faster edge-based
    # on the skewed inputs (soc-LiveJournal, rmat).
    assert med(per_graph["soc-LiveJournal1"]) < 0.5
    assert med(per_graph["rmat22.sym"]) < 0.5
