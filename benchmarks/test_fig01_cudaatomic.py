"""Figure 1: Atomic vs default CudaAtomic throughput ratios per GPU.

Paper findings: the ratio is above 1.0 in almost all cases; medians are
around 10x on the RTX 3090 and around 100x on the Titan V for CC/MIS/BFS/
SSSP; TC's ratios are markedly lower (it only uses an atomic add, while
the other codes stream loads/stores through cuda::atomic).
"""

import numpy as np

from repro.bench import ratios_by_algorithm
from repro.bench.report import render_ratio_figure
from repro.styles import Algorithm, AtomicFlavor, Model

from conftest import requires_default_scale

#: CudaAtomic magnitudes need launches dominated by kernel work, which
#: tiny inputs (launch-overhead-bound) cannot provide.
pytestmark = requires_default_scale


def ratios(study, device):
    return ratios_by_algorithm(
        study, "atomic_flavor", AtomicFlavor.ATOMIC, AtomicFlavor.CUDA_ATOMIC,
        models=[Model.CUDA], devices=[device],
    )


def test_fig1_rtx3090(benchmark, study, med):
    text = benchmark.pedantic(
        render_ratio_figure, args=(study, "fig1-3090"), rounds=1, iterations=1
    )
    print("\n" + text)
    by = ratios(study, "RTX 3090")
    # Atomic is essentially always at least as fast.
    all_ratios = np.concatenate(list(by.values()))
    assert (all_ratios >= 0.99).mean() > 0.95
    # One-order-of-magnitude medians for the load/store-heavy codes.
    for alg in (Algorithm.CC, Algorithm.MIS, Algorithm.SSSP):
        assert 2.0 <= med(by[alg]) <= 80.0
    # TC barely moves (one add, plain structure reads).
    assert med(by[Algorithm.TC]) < 3.0
    # PR has no CudaAtomic versions at all (no float support).
    assert Algorithm.PR not in by


def test_fig1_titan_v(benchmark, study, med):
    text = benchmark.pedantic(
        render_ratio_figure, args=(study, "fig1-titanv"), rounds=1, iterations=1
    )
    print("\n" + text)
    volta = ratios(study, "Titan V")
    ampere = ratios(study, "RTX 3090")
    # Roughly two orders of magnitude on the older device...
    for alg in (Algorithm.CC, Algorithm.MIS, Algorithm.SSSP):
        assert med(volta[alg]) > 20.0
        # ... and clearly worse than on the newer one (Fig 1a vs 1b).
        assert med(volta[alg]) > 4 * med(ampere[alg])
    assert med(volta[Algorithm.TC]) < 5.0
