"""Ablation benches for the simulator's load-bearing design choices.

DESIGN.md calls out four modeling decisions; each ablation shows that
removing the mechanism visibly changes (or would falsify) a study result:

1. cache-tier memory modeling (without it, bandwidth terms swamp the
   issue-side granularity effects on cache-resident inputs);
2. atomic-contention accounting (without it, push loses its distinctive
   cost structure on hub-heavy graphs);
3. the OpenMP critical-section realization of min/max RMW (without it,
   Figure 6b's 1000x read-write advantage disappears);
4. sequential improving semantics (naive pre-wave counting would multiply
   duplicate-worklist sizes).
"""

import dataclasses

import numpy as np
import pytest

from repro.graph import load_dataset
from repro.kernels import BFSKernel
from repro.machine import CPUModel, GPUModel, RTX_3090, THREADRIPPER_2950X
from repro.machine.trace import IterationProfile
from repro.runtime import Launcher
from repro.styles import (
    Algorithm,
    AtomicFlavor,
    Determinism,
    Driver,
    Dup,
    Flow,
    Granularity,
    Iteration,
    Model,
    OmpSchedule,
    Persistence,
    StyleSpec,
    Update,
)
from repro.styles.spec import SemanticKey


def cuda_style(**kw):
    base = dict(
        algorithm=Algorithm.SSSP, model=Model.CUDA,
        iteration=Iteration.VERTEX, driver=Driver.TOPOLOGY,
        flow=Flow.PUSH, update=Update.READ_MODIFY_WRITE,
        determinism=Determinism.NON_DETERMINISTIC,
        granularity=Granularity.THREAD,
        persistence=Persistence.NON_PERSISTENT,
        atomic_flavor=AtomicFlavor.ATOMIC,
    )
    base.update(kw)
    return StyleSpec(**base)


@pytest.fixture(scope="module")
def soc_trace():
    graph = load_dataset("soc-LiveJournal1", "default")
    launcher = Launcher()
    result = launcher.execute_semantic(cuda_style(), graph)
    return graph, result.trace


def test_ablation_cache_tier(benchmark, soc_trace):
    """Without the L2 tier, the memory bound dominates and granularity
    stops mattering on cache-resident inputs."""
    graph, trace = soc_trace
    model = GPUModel(RTX_3090)

    def measure():
        with_cache = model.time_trace(trace, cuda_style())
        # Ablate: pretend the working set exceeds the L2.
        ablated = dataclasses.replace(trace)
        ablated.n_vertices = 10_000_000
        ablated.n_edges = 100_000_000
        without_cache = sum(
            model.profile_cycles(p, cuda_style(), mem_bw=RTX_3090.mem_bytes_per_cycle)
            for p in trace.profiles
        ) / (RTX_3090.clock_ghz * 1e9)
        return with_cache, without_cache

    with_cache, without_cache = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nL2-resident: {with_cache*1e6:.1f} us, DRAM-bound: {without_cache*1e6:.1f} us")
    assert without_cache > with_cache  # the tier matters


def test_ablation_contention(benchmark):
    """Zeroing the contention statistics visibly speeds up a hub-directed
    atomic launch — contention accounting is load-bearing."""
    model = GPUModel(RTX_3090)

    def measure():
        base = IterationProfile(
            n_items=20_000, inner=np.full(20_000, 16, dtype=np.int64),
            atomics_inner=1.0, conflict_extra=200_000.0, max_conflict=4_000,
        )
        ablated = IterationProfile(
            n_items=20_000, inner=np.full(20_000, 16, dtype=np.int64),
            atomics_inner=1.0, conflict_extra=0.0, max_conflict=0,
        )
        return (
            model.profile_cycles(base, cuda_style()),
            model.profile_cycles(ablated, cuda_style()),
        )

    contended, uncontended = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\ncontended: {contended:.0f} cyc, ablated: {uncontended:.0f} cyc")
    assert contended > 1.2 * uncontended


def test_ablation_omp_critical_minmax(benchmark):
    """Treating OpenMP min/max RMW as a plain atomic (the ablation) erases
    the 10-1000x read-write advantage of Figure 6b."""
    model = CPUModel(THREADRIPPER_2950X)
    omp = StyleSpec(
        algorithm=Algorithm.SSSP, model=Model.OPENMP,
        omp_schedule=OmpSchedule.DEFAULT,
    )

    def measure():
        minmax = IterationProfile(
            n_items=10_000, inner=np.full(10_000, 16, dtype=np.int64),
            atomics_inner=1.0, atomic_minmax=True,
        )
        plain = IterationProfile(
            n_items=10_000, inner=np.full(10_000, 16, dtype=np.int64),
            atomics_inner=1.0, atomic_minmax=False,
        )
        return (
            model.profile_cycles(minmax, omp),
            model.profile_cycles(plain, omp),
        )

    critical, atomic = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\ncritical-realized: {critical:.0f} cyc, plain-atomic ablation: {atomic:.0f} cyc")
    assert critical > 10 * atomic


def test_ablation_sequential_improving(benchmark):
    """Naive pre-wave improving counting (the ablation) pushes every
    below-threshold candidate; sequential semantics push only the running
    minima — the duplicate worklists differ by a large factor."""
    from repro.kernels.base import sequential_improving

    rng = np.random.default_rng(7)
    tgt = rng.integers(0, 50, size=4000)
    cand = rng.integers(0, 1000, size=4000)
    before = np.full(4000, 1000, dtype=np.int64)

    def measure():
        seq = int(sequential_improving(tgt, cand, before).sum())
        naive = int((cand < before).sum())
        return seq, naive

    seq, naive = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nsequential improving: {seq} pushes, naive pre-wave: {naive} pushes")
    assert naive > 10 * seq
