"""Figure 7: deterministic vs internally non-deterministic ratios.

Paper findings: the non-deterministic style wins for CC, MIS, BFS and SSSP
(deterministic double-buffering costs extra memory traffic and more
iterations); PR behaves differently (its push codes are deterministic-only
and the remaining pull pairs do not favor in-place execution).
"""

from repro.bench import ratios_by_algorithm
from repro.bench.report import render_ratio_figure
from repro.styles import Algorithm, Determinism, Model


def det_nondet(study, model):
    return ratios_by_algorithm(
        study, "determinism",
        Determinism.DETERMINISTIC, Determinism.NON_DETERMINISTIC,
        models=[model],
    )


def test_fig7a_cuda(benchmark, study, med):
    text = benchmark.pedantic(
        render_ratio_figure, args=(study, "fig7-cuda"), rounds=1, iterations=1
    )
    print("\n" + text)
    by = det_nondet(study, Model.CUDA)
    for alg in (Algorithm.CC, Algorithm.MIS, Algorithm.BFS, Algorithm.SSSP):
        assert med(by[alg]) < 1.0, alg
    assert med(by[Algorithm.PR]) >= 1.0  # the PR exception


def test_fig7b_openmp(benchmark, study, med):
    text = benchmark.pedantic(
        render_ratio_figure, args=(study, "fig7-omp"), rounds=1, iterations=1
    )
    print("\n" + text)
    by = det_nondet(study, Model.OPENMP)
    for alg in (Algorithm.CC, Algorithm.MIS, Algorithm.BFS, Algorithm.SSSP):
        assert med(by[alg]) <= 1.0, alg


def test_fig7c_cpp(benchmark, study, med):
    text = benchmark.pedantic(
        render_ratio_figure, args=(study, "fig7-cpp"), rounds=1, iterations=1
    )
    print("\n" + text)
    by = det_nondet(study, Model.CPP_THREADS)
    for alg in (Algorithm.CC, Algorithm.MIS, Algorithm.BFS, Algorithm.SSSP):
        assert med(by[alg]) < 1.0, alg


def test_fig7_tc_has_no_pairs(benchmark, study):
    by = benchmark.pedantic(
        det_nondet, args=(study, Model.CUDA), rounds=1, iterations=1
    )
    assert Algorithm.TC not in by  # TC is deterministic-only (Table 2)
