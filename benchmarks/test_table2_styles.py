"""Table 2: the style applicability matrix."""

from repro.bench.report import render_table2
from repro.styles import applicability_table


def test_table2(benchmark):
    text = benchmark.pedantic(render_table2, rounds=1, iterations=1)
    print("\n" + text)
    table = applicability_table()
    assert len(table) == 13  # the paper's 13 style rows
    # Spot-check the distinctive cells of the paper's matrix.
    assert table["Vertex-based, edge-based"]["PR"] == "+, -"
    assert table["Topology-driven, data-driven"]["TC"] == "+, -"
    assert table["Duplicates in WL, no duplicates in WL"]["MIS"] == "-, +"
    assert table["Read-write, read-modify-write"]["SSSP"] == "+, +"
    assert table["Read-write, read-modify-write"]["PR"] == "-, +"
    assert table["Deterministic, non-deterministic"]["TC"] == "+, -"
    assert table["Atomic, CudaAtomic"]["PR"] == "+, -"
    assert table["Global-add, block-add, reduction-add"]["PR"] == "+, +, +"
    assert table["Global-add, block-add, reduction-add"]["SSSP"] == "-, -, -"
