"""Figure 10: global-add / block-add / reduction-add throughputs (GPU).

Paper findings: TC achieves higher throughput than PR (PR performs many
more sum reductions); block-add tends to be the slowest (its block-scope
atomics cannot offset the remaining global add + barrier); reduction-add
(warp primitives) is the fastest for PR and the recommended style.
"""

from repro.bench import throughputs_by_option
from repro.bench.report import render_throughput_figure
from repro.styles import Algorithm, GpuReduction, Model


def grouped(study, alg):
    return throughputs_by_option(
        study, "gpu_reduction", models=[Model.CUDA], algorithms=[alg],
    )


def test_fig10_pr(benchmark, study, med):
    text = benchmark.pedantic(
        render_throughput_figure,
        args=(study, "gpu_reduction"),
        kwargs=dict(
            title="Figure 10: GPU reduction styles (PR)",
            models=[Model.CUDA], algorithms=[Algorithm.PR],
        ),
        rounds=1, iterations=1,
    )
    print("\n" + text)
    by = grouped(study, Algorithm.PR)
    assert med(by[GpuReduction.REDUCTION_ADD]) > med(by[GpuReduction.GLOBAL_ADD])
    assert med(by[GpuReduction.BLOCK_ADD]) < med(by[GpuReduction.GLOBAL_ADD])


def test_fig10_tc(benchmark, study, med):
    text = benchmark.pedantic(
        render_throughput_figure,
        args=(study, "gpu_reduction"),
        kwargs=dict(
            title="Figure 10: GPU reduction styles (TC)",
            models=[Model.CUDA], algorithms=[Algorithm.TC],
        ),
        rounds=1, iterations=1,
    )
    print("\n" + text)
    by = grouped(study, Algorithm.TC)
    assert med(by[GpuReduction.REDUCTION_ADD]) >= med(by[GpuReduction.BLOCK_ADD])


def test_fig10_tc_outruns_pr(benchmark, study, med):
    pr = benchmark.pedantic(
        grouped, args=(study, Algorithm.PR), rounds=1, iterations=1
    )
    tc = grouped(study, Algorithm.TC)
    for red in GpuReduction:
        assert med(tc[red]) > med(pr[red]), red


def test_fig10_only_pr_and_tc_have_the_axis(benchmark, study):
    def check():
        for alg in (Algorithm.BFS, Algorithm.SSSP, Algorithm.CC, Algorithm.MIS):
            assert grouped(study, alg) == {}
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
