"""Figure 13: C++ blocked vs cyclic scheduling ratios.

Paper findings: the choice matters little for CC, MIS, BFS and SSSP; PR
prefers a blocked schedule (streaming locality); TC prefers cyclic (75% of
ratios below 1 — its per-vertex work falls with the loop index, which is
exactly the Section 2.12 imbalance case).
"""

import numpy as np

from repro.bench import ratios_by_algorithm
from repro.bench.report import render_ratio_figure
from repro.styles import Algorithm, CppSchedule, Model


def test_fig13(benchmark, study, med):
    text = benchmark.pedantic(
        render_ratio_figure, args=(study, "fig13"), rounds=1, iterations=1
    )
    print("\n" + text)
    by = ratios_by_algorithm(
        study, "cpp_schedule", CppSchedule.BLOCKED, CppSchedule.CYCLIC,
        models=[Model.CPP_THREADS],
    )
    assert len(by) == 6
    # Near-1 medians for the relaxation codes and MIS.
    for alg in (Algorithm.CC, Algorithm.MIS, Algorithm.BFS, Algorithm.SSSP):
        assert 0.8 <= med(by[alg]) <= 1.3, alg
    # PR leans blocked; TC leans cyclic.
    assert med(by[Algorithm.PR]) >= 1.0
    assert med(by[Algorithm.TC]) < 1.0
    # The paper's "75% of TC ratios below 1".
    frac_below = float((by[Algorithm.TC] < 1.0).mean())
    assert frac_below >= 0.5
