"""Table 3: number of code versions per language and problem."""

from repro.bench.report import render_table3
from repro.styles import PAPER_TABLE3, Algorithm, Model, count_specs


def test_table3(benchmark):
    text = benchmark.pedantic(render_table3, rounds=1, iterations=1)
    print("\n" + text)
    counts = count_specs()
    # PR and TC reproduce the paper's counts exactly (see DESIGN.md §5).
    assert counts[Model.CUDA][Algorithm.PR] == 54
    assert counts[Model.CUDA][Algorithm.TC] == 72
    assert counts[Model.OPENMP][Algorithm.PR] == 18
    assert counts[Model.OPENMP][Algorithm.TC] == 12
    # The reconstruction stays in the paper's regime: CUDA dominates, the
    # two CPU models mirror each other, totals within 2x of 1106.
    cuda_total = sum(counts[Model.CUDA].values())
    omp_total = sum(counts[Model.OPENMP].values())
    assert counts[Model.OPENMP] == counts[Model.CPP_THREADS]
    assert cuda_total > 3 * omp_total
    grand = cuda_total + 2 * omp_total
    paper_grand = sum(sum(d.values()) for d in PAPER_TABLE3.values())
    assert paper_grand == 1106
    assert 0.5 * paper_grand <= grand <= 2.0 * paper_grand
