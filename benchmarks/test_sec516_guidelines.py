"""Section 5.16: the paper's programming guidelines, re-derived from data.

Each guideline is computed from the sweep (repro.bench.guidelines), and the
benchmark asserts that every one of the paper's recommendations holds in
the reproduction.
"""

from repro.bench.guidelines import derive_guidelines


def test_guidelines_hold(benchmark, study):
    guidelines = benchmark.pedantic(
        derive_guidelines, args=(study,), rounds=1, iterations=1
    )
    print()
    for g in guidelines:
        print(g.render())
    assert len(guidelines) == 8
    failed = [g.statement for g in guidelines if not g.holds]
    assert not failed, f"guidelines not supported by the sweep: {failed}"
