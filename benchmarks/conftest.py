"""Benchmark-suite fixtures.

The full study sweep (every program variant x 5 inputs x applicable
devices) runs once per session; each benchmark module regenerates one of
the paper's tables/figures from it and asserts the paper's *shape*
findings (who wins, by roughly what factor) — not absolute numbers, per
DESIGN.md.

Set ``REPRO_BENCH_SCALE=tiny`` for a fast smoke run of the whole suite
(the sweep takes a few minutes at the default scale).
"""

import os

import numpy as np
import pytest

from repro.bench import StudyResults, SweepConfig, run_sweep
from repro.graph import analyze, load_all

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "default")

#: Some shape assertions only hold at the study's default input scale
#: (tiny inputs lose the diameter/degree contrast they depend on); they
#: are skipped in REPRO_BENCH_SCALE=tiny smoke runs.
requires_default_scale = pytest.mark.skipif(
    BENCH_SCALE != "default",
    reason="shape assertion calibrated for the default input scale",
)


@pytest.fixture(scope="session")
def study() -> StudyResults:
    """The full sweep at the benchmark scale."""
    return run_sweep(SweepConfig(scale=BENCH_SCALE))


@pytest.fixture(scope="session")
def graph_properties(study):
    return {name: analyze(g) for name, g in study.graphs.items()}


def median(values) -> float:
    arr = np.asarray(list(values), dtype=float)
    assert arr.size > 0, "no data behind this figure cell"
    return float(np.median(arr))


@pytest.fixture(scope="session")
def med():
    return median
