"""Figure 8: persistent vs non-persistent thread ratios (CUDA only).

Paper finding: "Most of the ratios and the medians are very close to 1" —
the persistent style's potential (precomputing, preloading) is not
exploitable in these codes.
"""

import numpy as np

from repro.bench import ratios_by_algorithm
from repro.bench.report import render_ratio_figure
from repro.styles import Model, Persistence


def test_fig8(benchmark, study, med):
    text = benchmark.pedantic(
        render_ratio_figure, args=(study, "fig8"), rounds=1, iterations=1
    )
    print("\n" + text)
    by = ratios_by_algorithm(
        study, "persistence",
        Persistence.PERSISTENT, Persistence.NON_PERSISTENT,
        models=[Model.CUDA],
    )
    assert len(by) == 6  # every problem has both styles
    for alg, vals in by.items():
        assert 0.8 <= med(vals) <= 1.25, alg
    # And not just the medians: the bulk of all ratios is near 1.
    all_ratios = np.concatenate(list(by.values()))
    assert float(np.quantile(all_ratios, 0.1)) > 0.5
    assert float(np.quantile(all_ratios, 0.9)) < 2.0
