"""Figure 14: share of each style among best-performing codes.

Paper findings: three columns are entirely "red" — the vertex-based, push,
and non-deterministic styles dominate the winners across all three
programming models; C++ threads strongly prefers topology-driven while the
other two models prefer data-driven.
"""

from repro.bench import best_style_percentages
from repro.bench.report import render_figure14
from repro.styles import Model


def test_fig14(benchmark, study):
    table = benchmark.pedantic(
        best_style_percentages, args=(study,), rounds=1, iterations=1
    )
    print("\n" + render_figure14(study))
    for model in Model:
        axes = table[model]
        # The three all-red columns of the figure.
        assert axes["iteration"]["vertex"] > 0.5, model
        assert axes["flow"]["push"] >= 0.5, model
        assert axes["determinism"]["nondet"] > 0.5, model
    # Section 5.14's model contrast: C++ leans topology-driven more than
    # OpenMP.  At this reproduction's input scale the *winner shares*
    # saturate near topology for both CPU models (the scaled-down
    # diameters shrink data-driven's advantage — see EXPERIMENTS.md), so
    # the contrast is asserted on the underlying ratio medians, which is
    # the mechanism the paper names (atomics-vs-critical min/max).
    import numpy as np

    from repro.styles import Driver, Dup, Flow

    def topo_over_data(model):
        vals = []
        for run in study.select(models=[model]):
            if run.spec.driver is not Driver.TOPOLOGY or run.spec.flow is Flow.PULL:
                continue
            partner = study.get(
                run.spec.with_axis(driver=Driver.DATA, dup=Dup.NODUP),
                run.device, run.graph,
            )
            if partner is not None:
                vals.append(run.throughput_ges / partner.throughput_ges)
        return float(np.median(vals))

    assert topo_over_data(Model.CPP_THREADS) > topo_over_data(Model.OPENMP)
    assert table[Model.CPP_THREADS]["driver"]["topology"] >= 0.5
