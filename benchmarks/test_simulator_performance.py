"""Performance benchmarks of the simulator itself.

These are classic pytest-benchmark measurements (multiple rounds) of the
hot paths: semantic kernel execution, device timing of a cached trace, and
the ratio statistics — the costs that bound a full-study sweep.
"""

import pytest

from repro.graph import load_dataset
from repro.machine import CPUModel, GPUModel, RTX_3090, THREADRIPPER_2950X
from repro.runtime import Launcher
from repro.styles import Algorithm, Granularity, Model, enumerate_specs


@pytest.fixture(scope="module")
def road():
    return load_dataset("USA-road-d.NY", "tiny")


@pytest.fixture(scope="module")
def social():
    return load_dataset("soc-LiveJournal1", "tiny")


def cuda_spec(alg, index=0):
    return enumerate_specs(alg, Model.CUDA)[index]


def test_bfs_semantic_execution(benchmark, road):
    spec = cuda_spec(Algorithm.BFS)
    sem = spec.semantic_key()

    def run():
        from repro.kernels import BFSKernel

        return BFSKernel(road, 0).run(sem)

    result = benchmark(run)
    assert result.trace.converged


def test_tc_semantic_execution(benchmark, social):
    spec = cuda_spec(Algorithm.TC)
    sem = spec.semantic_key()

    def run():
        from repro.kernels import TriangleCountKernel

        return TriangleCountKernel(social).run(sem)

    result = benchmark(run)
    assert int(result.values[0]) > 0


def test_gpu_trace_timing(benchmark, social):
    launcher = Launcher()
    spec = cuda_spec(Algorithm.SSSP)
    trace = launcher.execute_semantic(spec, social).trace
    model = GPUModel(RTX_3090)
    warp = spec.with_axis(granularity=Granularity.WARP)

    seconds = benchmark(model.time_trace, trace, warp)
    assert seconds > 0


def test_cpu_trace_timing(benchmark, social):
    launcher = Launcher()
    omp = enumerate_specs(Algorithm.SSSP, Model.OPENMP)[0]
    trace = launcher.execute_semantic(omp, social).trace
    model = CPUModel(THREADRIPPER_2950X)

    seconds = benchmark(model.time_trace, trace, omp)
    assert seconds > 0


def test_launcher_cached_run(benchmark, road):
    """A fully cached run (trace + decompositions) is the sweep's unit of
    work for mapping variants — it must stay well under a millisecond."""
    launcher = Launcher()
    spec = cuda_spec(Algorithm.BFS)
    launcher.run(spec, road, RTX_3090)  # warm the caches

    result = benchmark(launcher.run, spec, road, RTX_3090)
    assert result.verified
