"""Performance benchmarks of the simulator itself.

These are classic pytest-benchmark measurements (multiple rounds) of the
hot paths: semantic kernel execution, device timing of a cached trace, and
the ratio statistics — the costs that bound a full-study sweep.

The sweep-block benchmark at the bottom times one full (algorithm, graph)
block end-to-end under both execution styles — per-spec ``Launcher.run``
calls (the pre-batching sweep body) and the batched
``sweep_block_runs``/``time_trace_batch`` path — and exports the numbers
to ``BENCH_sweep.json`` at the repository root so future PRs can track
the sweep-performance trajectory.
"""

import json
import time
from pathlib import Path

import pytest

from repro.bench import SweepConfig, sweep_block_runs
from repro.graph import load_dataset
from repro.machine import CPUModel, GPUModel, RTX_3090, THREADRIPPER_2950X
from repro.runtime import Launcher
from repro.styles import Algorithm, Granularity, Model, enumerate_specs

BENCH_SWEEP_JSON = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


@pytest.fixture(scope="module")
def road():
    return load_dataset("USA-road-d.NY", "tiny")


@pytest.fixture(scope="module")
def social():
    return load_dataset("soc-LiveJournal1", "tiny")


def cuda_spec(alg, index=0):
    return enumerate_specs(alg, Model.CUDA)[index]


def test_bfs_semantic_execution(benchmark, road):
    spec = cuda_spec(Algorithm.BFS)
    sem = spec.semantic_key()

    def run():
        from repro.kernels import BFSKernel

        return BFSKernel(road, 0).run(sem)

    result = benchmark(run)
    assert result.trace.converged


def test_tc_semantic_execution(benchmark, social):
    spec = cuda_spec(Algorithm.TC)
    sem = spec.semantic_key()

    def run():
        from repro.kernels import TriangleCountKernel

        return TriangleCountKernel(social).run(sem)

    result = benchmark(run)
    assert int(result.values[0]) > 0


def test_gpu_trace_timing(benchmark, social):
    launcher = Launcher()
    spec = cuda_spec(Algorithm.SSSP)
    trace = launcher.execute_semantic(spec, social).trace
    model = GPUModel(RTX_3090)
    warp = spec.with_axis(granularity=Granularity.WARP)

    seconds = benchmark(model.time_trace, trace, warp)
    assert seconds > 0


def test_cpu_trace_timing(benchmark, social):
    launcher = Launcher()
    omp = enumerate_specs(Algorithm.SSSP, Model.OPENMP)[0]
    trace = launcher.execute_semantic(omp, social).trace
    model = CPUModel(THREADRIPPER_2950X)

    seconds = benchmark(model.time_trace, trace, omp)
    assert seconds > 0


def test_launcher_cached_run(benchmark, road):
    """A fully cached run (trace + decompositions) is the sweep's unit of
    work for mapping variants — it must stay well under a millisecond."""
    launcher = Launcher()
    spec = cuda_spec(Algorithm.BFS)
    launcher.run(spec, road, RTX_3090)  # warm the caches

    result = benchmark(launcher.run, spec, road, RTX_3090)
    assert result.verified


# ----------------------------------------------------------------------
# Sweep-block benchmark: batched vs per-spec mapping-variant timing
# ----------------------------------------------------------------------
# Semantic kernel execution is identical in both paths (the Launcher
# caches one trace per semantic group either way), so the benchmark warms
# a shared Launcher once and then times only the part the batched engine
# changes: evaluating every mapping variant of the block against the
# cached traces.  PR carries a reduction axis, so variants differing only
# in reduction style share their core-cycle computation in a batch.
BLOCK_CONFIG = SweepConfig(scale="tiny", algorithms=(Algorithm.PR,))
ROUNDS = 7


def _block_per_spec(launcher, graph):
    """The pre-batching sweep body: one Launcher.run per (spec, device)."""
    runs = []
    for model in BLOCK_CONFIG.models:
        specs = enumerate_specs(BLOCK_CONFIG.algorithms[0], model)
        devices = BLOCK_CONFIG.devices_for(model)
        for spec in specs:
            for device in devices:
                runs.append(launcher.run(spec, graph, device))
    return runs


def _block_batched(launcher, graph):
    """The batched sweep body: one time_trace_batch pass per trace/device."""
    runs = []
    for model in BLOCK_CONFIG.models:
        specs = enumerate_specs(BLOCK_CONFIG.algorithms[0], model)
        devices = BLOCK_CONFIG.devices_for(model)
        runs.extend(sweep_block_runs(launcher, specs, graph, devices))
    return runs


def test_sweep_block_batched_vs_per_spec(social):
    """Batched mapping-variant timing must beat the per-spec loop on a
    full (algorithm, graph) block, at workers=1, with identical results.
    The measured numbers are exported to BENCH_sweep.json."""
    launcher = Launcher()
    per_spec_runs = _block_per_spec(launcher, social)
    batched_runs = _block_batched(launcher, social)
    assert batched_runs == per_spec_runs  # bit-identical, not just close

    per_spec = batched = float("inf")
    for _ in range(ROUNDS):  # interleaved so drift hits both paths alike
        start = time.perf_counter()
        _block_per_spec(launcher, social)
        per_spec = min(per_spec, time.perf_counter() - start)
        start = time.perf_counter()
        _block_batched(launcher, social)
        batched = min(batched, time.perf_counter() - start)
    speedup = per_spec / batched

    payload = {
        "benchmark": "sweep-block PR x soc-LiveJournal1 (tiny), all models/devices",
        "runs_per_block": len(batched_runs),
        "rounds": ROUNDS,
        "per_spec_seconds": round(per_spec, 6),
        "batched_seconds": round(batched, 6),
        "batched_speedup": round(speedup, 3),
    }
    BENCH_SWEEP_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    assert speedup > 1.0, f"batched timing slower than per-spec: {payload}"
