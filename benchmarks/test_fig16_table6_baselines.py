"""Figure 16 / Table 6: best-style codes vs optimized third-party baselines.

Paper findings (Table 6): the style-chosen unoptimized codes hold their own
against the optimized Lonestar/Gardenia codes — BFS is faster on GPUs, SSSP
is slower everywhere (the baselines' priority/two-array scheduling is a
genuine algorithmic optimization), MIS/PR/TC are much faster than the CPU
baselines, PR/TC are slower than Gardenia's redundancy-eliminated GPU
codes, and the per-model geomeans land near 0.70 (CUDA) and above 1 for the
CPU models.
"""

from repro.bench.comparison import baseline_speedups, table6
from repro.bench.report import render_table6
from repro.styles import Algorithm, Model

from conftest import requires_default_scale


@requires_default_scale
def test_fig16_table6(benchmark, study):
    cells = benchmark.pedantic(
        baseline_speedups, args=(study,), rounds=1, iterations=1
    )
    rows = table6(cells)
    print("\n" + render_table6(study))

    cuda, omp, cpp = rows[Model.CUDA], rows[Model.OPENMP], rows[Model.CPP_THREADS]

    # SSSP: the baselines' near-work-optimal scheduling wins everywhere.
    assert cuda["sssp"] < 1.0
    assert omp["sssp"] < 1.0
    assert cpp["sssp"] < 1.0

    # BFS: our best style is competitive-to-faster (paper: 1.97/0.90/1.14).
    assert cuda["bfs"] > 1.0
    assert omp["bfs"] > 0.5
    assert cpp["bfs"] > 0.5

    # MIS: the CPU baselines (speculative runtime) lose badly; there is no
    # Gardenia MIS (Figure 16a omits it).
    assert "mis" not in cuda
    assert omp["mis"] > 2.0
    assert cpp["mis"] > 1.5

    # PR/TC: slower than the redundancy-eliminated GPU baselines, faster
    # than the CPU ones.
    assert cuda["pr"] < 1.0 and cuda["tc"] < 1.0
    assert omp["pr"] > 1.0 and omp["tc"] > 1.0
    assert cpp["pr"] > 1.0 and cpp["tc"] > 1.0

    # CC: on par-ish (paper: 1.11/0.89/0.51) — within a factor of a few.
    for row in (cuda, omp, cpp):
        assert 0.1 < row["cc"] < 3.0

    # Geomeans: below 1 for CUDA, above 1 for both CPU models.
    assert cuda["geomean"] < 1.0
    assert omp["geomean"] > 1.0
    assert cpp["geomean"] > 1.0


def test_fig16_cells_cover_all_inputs(benchmark, study):
    cells = benchmark.pedantic(
        baseline_speedups, args=(study,), rounds=1, iterations=1
    )
    graphs = {c.graph for c in cells}
    assert graphs == set(study.graphs)
    # Every cell's speedup is a positive finite number.
    assert all(c.speedup > 0 for c in cells)