"""Figure 4: topology-driven vs data-driven (no duplicates on the worklist).

Paper findings: GPU medians below 1 for all measured codes; OpenMP below 1
for CC/BFS/SSSP but MIS prefers topology-driven (its worklist stamp is an
atomicMax — a critical section in OpenMP); C++ medians above 1; the ratio
range is enormous (topology-driven can lose by orders of magnitude on
high-diameter inputs).
"""

from repro.bench.report import render_driver_figure
from repro.styles import Algorithm, Dup, Model

from test_fig03_topo_data_dup import driver_ratios

from conftest import requires_default_scale

#: The driver axis feeds on the input diameter; tiny inputs flatten it.
pytestmark = requires_default_scale


def test_fig4_cuda(benchmark, study, med):
    text = benchmark.pedantic(
        render_driver_figure, args=(study, Dup.NODUP, Model.CUDA),
        rounds=1, iterations=1,
    )
    print("\n" + text)
    by = driver_ratios(study, Dup.NODUP, Model.CUDA)
    assert med(by[Algorithm.BFS]) < 1.0
    assert med(by[Algorithm.SSSP]) < 1.0


def test_fig4_openmp_mis_prefers_topology(benchmark, study, med):
    text = benchmark.pedantic(
        render_driver_figure, args=(study, Dup.NODUP, Model.OPENMP),
        rounds=1, iterations=1,
    )
    print("\n" + text)
    by = driver_ratios(study, Dup.NODUP, Model.OPENMP)
    for alg in (Algorithm.BFS, Algorithm.SSSP):
        assert med(by[alg]) < 1.0, alg
    # "Interestingly, the MIS OpenMP code prefers the topology-driven
    # style" — strongly, in fact.
    assert med(by[Algorithm.MIS]) > 2.0


def test_fig4_cpp(benchmark, study, med):
    text = benchmark.pedantic(
        render_driver_figure, args=(study, Dup.NODUP, Model.CPP_THREADS),
        rounds=1, iterations=1,
    )
    print("\n" + text)
    by = driver_ratios(study, Dup.NODUP, Model.CPP_THREADS)
    omp = driver_ratios(study, Dup.NODUP, Model.OPENMP)
    for alg in (Algorithm.CC, Algorithm.BFS, Algorithm.SSSP):
        assert med(by[alg]) > 2 * med(omp[alg]), alg


def test_fig4_range_spans_orders_of_magnitude(benchmark, study):
    by = benchmark.pedantic(
        driver_ratios, args=(study, Dup.NODUP, Model.OPENMP),
        rounds=1, iterations=1,
    )
    lo = min(v.min() for v in by.values())
    hi = max(v.max() for v in by.values())
    # "In some cases, topology-driven is over 100 times faster. In other
    # cases, data-driven is [far] faster" — the spread must be huge.
    assert hi / lo > 1e3
    assert lo < 0.05