"""Figure 6: read-write vs read-modify-write throughput ratios.

Paper findings: read-write is slightly faster in most cases on both GPUs
and CPUs; the speedup reaches ~3x on GPUs and over 1000x on CPUs (OpenMP's
min/max RMW must use critical sections).
"""

from repro.bench import ratios_by_algorithm
from repro.bench.report import render_ratio_figure
from repro.styles import Algorithm, Model, Update

ALGS = (Algorithm.CC, Algorithm.BFS, Algorithm.SSSP)


def rw_rmw(study, model):
    return ratios_by_algorithm(
        study, "update", Update.READ_WRITE, Update.READ_MODIFY_WRITE,
        models=[model],
    )


def test_fig6a_cuda(benchmark, study, med):
    text = benchmark.pedantic(
        render_ratio_figure, args=(study, "fig6-cuda"), rounds=1, iterations=1
    )
    print("\n" + text)
    by = rw_rmw(study, Model.CUDA)
    for alg in ALGS:
        assert med(by[alg]) >= 1.0, alg
        assert med(by[alg]) < 10.0, alg  # modest on GPUs


def test_fig6b_openmp(benchmark, study, med):
    text = benchmark.pedantic(
        render_ratio_figure, args=(study, "fig6-omp"), rounds=1, iterations=1
    )
    print("\n" + text)
    by = rw_rmw(study, Model.OPENMP)
    for alg in ALGS:
        # The critical-section cost makes read-write dominate in OpenMP...
        assert med(by[alg]) > 3.0, alg
        # ... with three-orders-of-magnitude extremes (paper: >1000x).
        assert by[alg].max() > 100.0, alg


def test_fig6c_cpp(benchmark, study, med):
    text = benchmark.pedantic(
        render_ratio_figure, args=(study, "fig6-cpp"), rounds=1, iterations=1
    )
    print("\n" + text)
    by = rw_rmw(study, Model.CPP_THREADS)
    for alg in ALGS:
        # C++ has native CAS-based min: read-write wins only mildly.
        assert 0.9 <= med(by[alg]) < 3.0, alg


def test_fig6_rmw_is_never_catastrophic_on_gpu(benchmark, study):
    by = benchmark.pedantic(
        rw_rmw, args=(study, Model.CUDA), rounds=1, iterations=1
    )
    # "the read-modify-write style ... typically performs nearly as well"
    for alg in ALGS:
        assert med_val(by[alg]) < 5.0


def med_val(vals):
    import numpy as np

    return float(np.median(vals))
