"""Section 5.13: correlation of throughputs with graph properties.

Paper findings: no correlation exceeds |0.5| — the graph properties alone
do not determine performance; the strongest signal (0.44) links warp-based
parallelization to the average degree.
"""

from repro.bench import property_correlations
from repro.bench.report import render_correlations

from conftest import requires_default_scale


@requires_default_scale
def test_correlations(benchmark, study, graph_properties):
    corr = benchmark.pedantic(
        property_correlations, args=(study, graph_properties),
        rounds=1, iterations=1,
    )
    print("\n" + render_correlations(study))
    assert corr
    # All correlations are bounded; the bulk is weak (the paper's point:
    # properties alone don't pick the style).
    values = list(corr.values())
    assert all(-1.0 <= r <= 1.0 for r in values)
    weak = sum(1 for r in values if abs(r) < 0.5)
    assert weak / len(values) > 0.5
    # The warp-granularity / degree link exists and is positive (the
    # paper's strongest correlation).
    warp_degree = corr.get(("granularity=warp", "avg_degree"))
    assert warp_degree is not None
    assert warp_degree > 0.0