"""Figure 15: the style-combination matrix for the CUDA codes.

Paper findings: the push, non-deterministic and non-persistent columns are
mostly "warm" (combining them with any style tends to help); the warp
column is warm too; dup/nodup and rw/rmw show no general preference.
"""

import numpy as np

from repro.bench import COMBINATION_STYLES, style_combination_matrix
from repro.bench.report import render_figure15

from conftest import requires_default_scale


def column(labels, matrix, name):
    j = labels.index(name)
    col = matrix[:, j]
    return col[np.isfinite(col)]


@requires_default_scale
def test_fig15(benchmark, study):
    labels, matrix = benchmark.pedantic(
        style_combination_matrix, args=(study,), rounds=1, iterations=1
    )
    print("\n" + render_figure15(study))
    assert len(labels) == len(COMBINATION_STYLES)
    # Warm columns: combining with push / nondet helps most styles.
    push = column(labels, matrix, "push")
    nondet = column(labels, matrix, "nondet")
    assert float(np.median(push)) > 1.0
    assert float(np.median(nondet)) > 1.0
    assert (push > 1.0).mean() > 0.5
    assert (nondet > 1.0).mean() > 0.5
    # Non-persistent is neutral-to-warm (ratios ~1).
    nonpersist = column(labels, matrix, "nonpersistent")
    assert 0.9 <= float(np.median(nonpersist)) <= 1.3
    # The matrix is meaningfully asymmetric (different baselines per row).
    finite = np.isfinite(matrix) & np.isfinite(matrix.T)
    assert not np.allclose(matrix[finite], matrix.T[finite])