"""Figure 9: thread/warp/block throughputs on the road map vs the social
network (RTX 3090).

Paper findings: thread-based codes provide the highest performance on
low-degree uniform inputs (the NY road map); warp-based implementations
yield the highest throughputs on scale-free graphs (soc-LiveJournal);
block-based parallelization tends to be the slowest (no input has enough
512+-degree vertices to feed a block).
"""

import numpy as np

from repro.bench import throughputs_by_option
from repro.bench.report import render_throughput_figure
from repro.styles import Granularity, Model

from conftest import requires_default_scale


def grouped(study, graph):
    """Throughputs per granularity, vertex-based codes only.

    Warp/block granularity exists only for codes with an inner loop, so the
    thread group would otherwise also carry every edge-based variant —
    an apples-to-oranges mix the assertions must avoid.
    """
    from repro.styles import Iteration

    out = {g: [] for g in Granularity}
    for run in study.select(
        models=[Model.CUDA], graphs=[graph], devices=["RTX 3090"]
    ):
        if run.spec.iteration is not Iteration.VERTEX:
            continue
        out[run.spec.granularity].append(run.throughput_ges)
    return {g: np.asarray(v) for g, v in out.items()}


@requires_default_scale
def test_fig9a_road_map(benchmark, study, med):
    text = benchmark.pedantic(
        render_throughput_figure,
        args=(study, "granularity"),
        kwargs=dict(
            title="Figure 9a: granularity on USA-road-d.NY (RTX 3090)",
            models=[Model.CUDA], graphs=["USA-road-d.NY"],
            devices=["RTX 3090"],
        ),
        rounds=1, iterations=1,
    )
    print("\n" + text)
    by = grouped(study, "USA-road-d.NY")
    # Thread-based wins on the low-degree road network...
    assert med(by[Granularity.THREAD]) >= med(by[Granularity.WARP])
    # ...and block-based is clearly the slowest.
    assert med(by[Granularity.BLOCK]) < med(by[Granularity.THREAD])
    assert med(by[Granularity.BLOCK]) < med(by[Granularity.WARP])


def test_fig9b_social_network(benchmark, study, med):
    text = benchmark.pedantic(
        render_throughput_figure,
        args=(study, "granularity"),
        kwargs=dict(
            title="Figure 9b: granularity on soc-LiveJournal1 (RTX 3090)",
            models=[Model.CUDA], graphs=["soc-LiveJournal1"],
            devices=["RTX 3090"],
        ),
        rounds=1, iterations=1,
    )
    print("\n" + text)
    by = grouped(study, "soc-LiveJournal1")
    # Warp-based codes yield the highest throughputs on the scale-free
    # input (the figure's claim): a higher median than thread-based...
    assert med(by[Granularity.WARP]) > med(by[Granularity.THREAD])
    # ...and the warp cloud's top at least matches the thread cloud's.
    warp_top = float(np.quantile(by[Granularity.WARP], 0.9))
    thread_top = float(np.quantile(by[Granularity.THREAD], 0.9))
    assert warp_top >= 0.9 * thread_top
    # Block stays the slowest at the median.
    assert med(by[Granularity.BLOCK]) < med(by[Granularity.WARP])


def test_fig9_relative_warp_value_grows_with_degree(benchmark, study, med):
    """The warp/thread ratio must improve when moving from the road map to
    the social network (the degree-distribution correlation of §5.13)."""
    road = benchmark.pedantic(
        grouped, args=(study, "USA-road-d.NY"), rounds=1, iterations=1
    )
    soc = grouped(study, "soc-LiveJournal1")
    ratio_road = med(road[Granularity.WARP]) / med(road[Granularity.THREAD])
    ratio_soc = med(soc[Granularity.WARP]) / med(soc[Granularity.THREAD])
    assert ratio_soc > ratio_road