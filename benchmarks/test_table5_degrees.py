"""Table 5: degree and diameter shape of the five inputs."""

from repro.bench.report import render_table5

from conftest import requires_default_scale


@requires_default_scale
def test_table5(benchmark, graph_properties):
    text = benchmark.pedantic(
        render_table5, args=(graph_properties,), rounds=1, iterations=1
    )
    print("\n" + text)
    grid = graph_properties["2d-2e20.sym"]
    dblp = graph_properties["coPapersDBLP"]
    rmat = graph_properties["rmat22.sym"]
    soc = graph_properties["soc-LiveJournal1"]
    road = graph_properties["USA-road-d.NY"]

    # Grid: uniform degree 4, no vertex at warp width.
    assert grid.max_degree == 4
    assert grid.pct_deg_ge_32 == 0.0
    # Road: tiny degrees (paper: d_avg 2.8, d_max 8).
    assert road.avg_degree < 6
    assert road.max_degree <= 10
    assert road.pct_deg_ge_32 == 0.0
    # Publication graph: the dense one (paper: 52.5% of vertices >= 32).
    assert dblp.avg_degree > 3 * max(rmat.avg_degree, soc.avg_degree) / 2
    assert dblp.pct_deg_ge_32 > 0.3
    # Power-law inputs: heavy tails (paper: d_max 20-230x d_avg).
    assert rmat.max_degree > 10 * rmat.avg_degree
    assert soc.max_degree > 10 * soc.avg_degree
    # Diameter classes: grid and road are the high-diameter inputs
    # (paper: 2047/721 vs 19-24).
    low_diam = max(dblp.diameter, rmat.diameter, soc.diameter)
    assert grid.diameter > 3 * low_diam
    assert road.diameter > 3 * low_diam