"""Figure 11: atomic- / critical- / clause-reduction throughputs (CPU).

Paper findings: TC again beats PR; the critical section yields the lowest
performance on both codes; the reduction clause achieves the highest
throughput of the three.
"""

from repro.bench import throughputs_by_option
from repro.bench.report import render_throughput_figure
from repro.styles import Algorithm, CpuReduction, Model


def grouped(study, alg):
    return throughputs_by_option(
        study, "cpu_reduction",
        models=[Model.OPENMP, Model.CPP_THREADS], algorithms=[alg],
    )


def test_fig11_pr(benchmark, study, med):
    text = benchmark.pedantic(
        render_throughput_figure,
        args=(study, "cpu_reduction"),
        kwargs=dict(
            title="Figure 11: CPU reduction styles (PR)",
            models=[Model.OPENMP, Model.CPP_THREADS],
            algorithms=[Algorithm.PR],
        ),
        rounds=1, iterations=1,
    )
    print("\n" + text)
    by = grouped(study, Algorithm.PR)
    assert med(by[CpuReduction.CLAUSE]) > med(by[CpuReduction.ATOMIC])
    assert med(by[CpuReduction.ATOMIC]) > med(by[CpuReduction.CRITICAL])


def test_fig11_tc(benchmark, study, med):
    text = benchmark.pedantic(
        render_throughput_figure,
        args=(study, "cpu_reduction"),
        kwargs=dict(
            title="Figure 11: CPU reduction styles (TC)",
            models=[Model.OPENMP, Model.CPP_THREADS],
            algorithms=[Algorithm.TC],
        ),
        rounds=1, iterations=1,
    )
    print("\n" + text)
    by = grouped(study, Algorithm.TC)
    assert med(by[CpuReduction.CLAUSE]) >= med(by[CpuReduction.ATOMIC])
    assert med(by[CpuReduction.CRITICAL]) <= med(by[CpuReduction.ATOMIC])


def test_fig11_tc_outruns_pr(benchmark, study, med):
    pr = benchmark.pedantic(
        grouped, args=(study, Algorithm.PR), rounds=1, iterations=1
    )
    tc = grouped(study, Algorithm.TC)
    for red in CpuReduction:
        assert med(tc[red]) > med(pr[red]), red
