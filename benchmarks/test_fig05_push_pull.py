"""Figure 5: push vs pull throughput ratios.

Paper findings: medians consistently above 1 for CC, MIS, BFS and SSSP on
all devices (push wins — fewer data-array reads per relaxation and better
worklist synergy); PR's medians sit a little below 1 (its push codes are
deterministic-only and carry the scatter/reset overhead).
"""

from repro.bench import ratios_by_algorithm
from repro.bench.report import render_ratio_figure
from repro.styles import Algorithm, Flow, Model


def push_pull(study, model):
    return ratios_by_algorithm(
        study, "flow", Flow.PUSH, Flow.PULL, models=[model],
    )


def test_fig5a_cuda(benchmark, study, med):
    text = benchmark.pedantic(
        render_ratio_figure, args=(study, "fig5-cuda"), rounds=1, iterations=1
    )
    print("\n" + text)
    by = push_pull(study, Model.CUDA)
    for alg in (Algorithm.CC, Algorithm.MIS, Algorithm.BFS, Algorithm.SSSP):
        assert med(by[alg]) >= 0.95, alg
    assert med(by[Algorithm.MIS]) > 1.3
    assert med(by[Algorithm.PR]) < 1.0


def test_fig5b_openmp(benchmark, study, med):
    text = benchmark.pedantic(
        render_ratio_figure, args=(study, "fig5-omp"), rounds=1, iterations=1
    )
    print("\n" + text)
    by = push_pull(study, Model.OPENMP)
    for alg in (Algorithm.CC, Algorithm.MIS, Algorithm.BFS, Algorithm.SSSP):
        assert med(by[alg]) >= 0.9, alg
    assert med(by[Algorithm.PR]) < 1.0


def test_fig5c_cpp(benchmark, study, med):
    text = benchmark.pedantic(
        render_ratio_figure, args=(study, "fig5-cpp"), rounds=1, iterations=1
    )
    print("\n" + text)
    by = push_pull(study, Model.CPP_THREADS)
    for alg in (Algorithm.CC, Algorithm.MIS, Algorithm.BFS, Algorithm.SSSP):
        assert med(by[alg]) >= 0.9, alg
    assert med(by[Algorithm.PR]) < 1.0


def test_fig5_extreme_push_wins_exist(benchmark, study):
    """Push can win by large factors in the data-driven pairings (the
    pull worklists carry many useless recompute entries)."""
    by = benchmark.pedantic(
        push_pull, args=(study, Model.CUDA), rounds=1, iterations=1
    )
    hi = max(v.max() for a, v in by.items() if a is not Algorithm.PR)
    assert hi > 5.0
