"""Figure 3: topology-driven vs data-driven (duplicates on the worklist).

Paper findings: GPUs and OpenMP prefer the data-driven style (medians
below 1); C++ threads do not (its atomics are cheap, so the worklist
overhead is not worth the work savings).  The effect is largest on the
high-diameter inputs, where topology-driven repeats full sweeps.
"""

import numpy as np

from repro.bench.report import render_driver_figure
from repro.styles import Algorithm, Driver, Dup, Flow, Model

from conftest import requires_default_scale

#: The driver axis feeds on the input diameter; tiny inputs flatten it.
pytestmark = requires_default_scale


def driver_ratios(study, dup, model, algorithms=None, graphs=None):
    out = {}
    for run in study.select(models=[model], algorithms=algorithms, graphs=graphs):
        if run.spec.driver is not Driver.TOPOLOGY or run.spec.flow is Flow.PULL:
            continue
        partner = study.get(
            run.spec.with_axis(driver=Driver.DATA, dup=dup),
            run.device, run.graph,
        )
        if partner is None:
            continue
        out.setdefault(run.spec.algorithm, []).append(
            run.throughput_ges / partner.throughput_ges
        )
    return {k: np.asarray(v) for k, v in out.items()}


def test_fig3_cuda(benchmark, study, med):
    text = benchmark.pedantic(
        render_driver_figure, args=(study, Dup.DUP, Model.CUDA),
        rounds=1, iterations=1,
    )
    print("\n" + text)
    by = driver_ratios(study, Dup.DUP, Model.CUDA)
    # BFS prefers data-driven on the GPU; SSSP sits at the break-even
    # point in this reproduction (the scaled-down inputs have diameters of
    # 3-6 where the paper's are 19-24, which shrinks topology-driven's
    # useless-sweep penalty — see EXPERIMENTS.md).
    assert med(by[Algorithm.BFS]) < 1.0
    assert med(by[Algorithm.SSSP]) < 1.3
    # MIS has no duplicates style; TC/PR have no data-driven style.
    assert Algorithm.MIS not in by
    assert Algorithm.TC not in by and Algorithm.PR not in by


def test_fig3_openmp(benchmark, study, med):
    text = benchmark.pedantic(
        render_driver_figure, args=(study, Dup.DUP, Model.OPENMP),
        rounds=1, iterations=1,
    )
    print("\n" + text)
    by = driver_ratios(study, Dup.DUP, Model.OPENMP)
    for alg in (Algorithm.CC, Algorithm.BFS, Algorithm.SSSP):
        assert med(by[alg]) < 1.0, alg  # critical-section min/max kills topo


def test_fig3_cpp(benchmark, study, med):
    text = benchmark.pedantic(
        render_driver_figure, args=(study, Dup.DUP, Model.CPP_THREADS),
        rounds=1, iterations=1,
    )
    print("\n" + text)
    by = driver_ratios(study, Dup.DUP, Model.CPP_THREADS)
    # C++ leans topology-driven far more than OpenMP does (Section 5.3.1's
    # atomics-vs-critical discrepancy).
    omp = driver_ratios(study, Dup.DUP, Model.OPENMP)
    for alg in (Algorithm.CC, Algorithm.BFS, Algorithm.SSSP):
        assert med(by[alg]) > 2 * med(omp[alg]), alg


def test_fig3_high_diameter_inputs_favor_data_driven(benchmark, study, med):
    by = benchmark.pedantic(
        driver_ratios,
        args=(study, Dup.DUP, Model.CUDA),
        kwargs=dict(
            algorithms=[Algorithm.BFS, Algorithm.SSSP],
            graphs=["2d-2e20.sym", "USA-road-d.NY"],
        ),
        rounds=1, iterations=1,
    )
    # BFS: data-driven clearly wins even with duplicate worklists.
    assert med(by[Algorithm.BFS]) < 0.7
    # SSSP's distances improve many times per vertex on weighted inputs,
    # so worklists re-push aggressively and the median only breaks even;
    # the strong data-driven wins still exist in the distribution.
    assert med(by[Algorithm.SSSP]) < 1.2
    assert by[Algorithm.SSSP].min() < 0.3