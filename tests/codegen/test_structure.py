"""Structural tests: every generated file carries its style's constructs."""


from repro.codegen import file_name, generate_source
from repro.styles import (
    Algorithm,
    AtomicFlavor,
    CppSchedule,
    CpuReduction,
    Determinism,
    Driver,
    Dup,
    GpuReduction,
    Granularity,
    Model,
    OmpSchedule,
    Persistence,
    Update,
    enumerate_specs,
)

ALL_SPECS = [
    spec
    for model in Model
    for alg in Algorithm
    for spec in enumerate_specs(alg, model)
]


class TestEverything:
    def test_all_variants_generate(self):
        for spec in ALL_SPECS:
            src = generate_source(spec)
            assert "int main" in src, spec.label()
            assert src.count("{") == src.count("}"), spec.label()
            assert "serial_reference" in src, spec.label()  # §4.1 check
            assert "verified OK" in src, spec.label()

    def test_file_names_unique(self):
        names = [file_name(s) for s in ALL_SPECS]
        assert len(names) == len(set(names))


def pick(model, alg=Algorithm.SSSP, **conds):
    for spec in enumerate_specs(alg, model):
        if all(getattr(spec, k) is v for k, v in conds.items()):
            return spec
    raise AssertionError(f"no spec with {conds}")


class TestCudaConstructs:
    def test_warp_granularity(self):
        src = generate_source(pick(Model.CUDA, granularity=Granularity.WARP))
        assert "threadIdx.x % WS" in src
        assert "i += WS" in src

    def test_block_granularity(self):
        src = generate_source(pick(Model.CUDA, granularity=Granularity.BLOCK))
        assert "i += blockDim.x" in src

    def test_persistent_grid_stride(self):
        src = generate_source(pick(Model.CUDA, persistence=Persistence.PERSISTENT))
        assert "item +=" in src  # the grid-stride loop

    def test_cuda_atomic_flavor(self):
        src = generate_source(pick(Model.CUDA, atomic_flavor=AtomicFlavor.CUDA_ATOMIC))
        assert "#include <cuda/atomic>" in src
        assert ".load()" in src

    def test_classic_atomic_flavor(self):
        src = generate_source(
            pick(Model.CUDA, atomic_flavor=AtomicFlavor.ATOMIC,
                 update=Update.READ_MODIFY_WRITE)
        )
        assert "atomicMin(&" in src

    def test_worklist_stamp(self):
        src = generate_source(
            pick(Model.CUDA, driver=Driver.DATA, dup=Dup.NODUP)
        )
        assert "atomicMax(&stat[" in src  # Listing 3b

    def test_dup_worklist_has_no_stamp(self):
        src = generate_source(pick(Model.CUDA, driver=Driver.DATA, dup=Dup.DUP))
        assert "atomicMax(&stat[" not in src

    def test_deterministic_double_buffer(self):
        src = generate_source(
            pick(Model.CUDA, determinism=Determinism.DETERMINISTIC,
                 update=Update.READ_MODIFY_WRITE)
        )
        assert "val_in" in src and "val_out" in src

    def test_gpu_reduction_styles(self):
        g = generate_source(
            pick(Model.CUDA, Algorithm.TC, gpu_reduction=GpuReduction.GLOBAL_ADD)
        )
        assert "atomicAdd(ctr" in g.replace(" ", "") or "atomicAdd(ctr," in g
        b = generate_source(
            pick(Model.CUDA, Algorithm.TC, gpu_reduction=GpuReduction.BLOCK_ADD)
        )
        assert "atomicAdd_block" in b and "__syncthreads" in b
        r = generate_source(
            pick(Model.CUDA, Algorithm.TC, gpu_reduction=GpuReduction.REDUCTION_ADD)
        )
        assert "__shfl_down_sync" in r

    def test_edge_based_uses_coo(self):
        src = generate_source(
            next(s for s in enumerate_specs(Algorithm.SSSP, Model.CUDA)
                 if s.iteration.value == "edge")
        )
        assert "src_list[e]" in src and "dst_list[e]" in src


class TestOpenMPConstructs:
    def test_parallel_for(self):
        src = generate_source(pick(Model.OPENMP))
        assert "#pragma omp parallel for" in src

    def test_dynamic_schedule(self):
        src = generate_source(pick(Model.OPENMP, omp_schedule=OmpSchedule.DYNAMIC))
        assert "schedule(dynamic)" in src

    def test_rmw_is_critical(self):
        src = generate_source(
            pick(Model.OPENMP, update=Update.READ_MODIFY_WRITE)
        )
        assert "#pragma omp critical" in src  # Section 5.3.1

    def test_rw_has_no_critical_update(self):
        src = generate_source(
            pick(Model.OPENMP, update=Update.READ_WRITE, driver=Driver.TOPOLOGY)
        )
        assert "#pragma omp critical" not in src

    def test_reduction_styles(self):
        cl = generate_source(
            pick(Model.OPENMP, Algorithm.TC, cpu_reduction=CpuReduction.CLAUSE)
        )
        assert "reduction(+:" in cl
        at = generate_source(
            pick(Model.OPENMP, Algorithm.TC, cpu_reduction=CpuReduction.ATOMIC)
        )
        assert "#pragma omp atomic" in at
        cr = generate_source(
            pick(Model.OPENMP, Algorithm.TC, cpu_reduction=CpuReduction.CRITICAL)
        )
        assert "#pragma omp critical" in cr


class TestCppConstructs:
    def test_thread_team(self):
        src = generate_source(pick(Model.CPP_THREADS))
        assert "std::thread" in src
        assert "parallel_step" in src

    def test_blocked_schedule(self):
        src = generate_source(pick(Model.CPP_THREADS, cpp_schedule=CppSchedule.BLOCKED))
        assert "tid * " in src.replace("(long long)", "") or "beg_it" in src

    def test_cyclic_schedule(self):
        src = generate_source(pick(Model.CPP_THREADS, cpp_schedule=CppSchedule.CYCLIC))
        assert "item += NTHREADS" in src

    def test_rmw_is_cas_not_mutex(self):
        src = generate_source(
            pick(Model.CPP_THREADS, update=Update.READ_MODIFY_WRITE,
                 driver=Driver.TOPOLOGY)
        )
        assert "compare_exchange_weak" in src
        assert "lock_guard" not in src  # C++ min is atomic, not critical

    def test_critical_reduction_uses_mutex(self):
        src = generate_source(
            pick(Model.CPP_THREADS, Algorithm.TC,
                 cpu_reduction=CpuReduction.CRITICAL)
        )
        assert "std::mutex" in src and "lock_guard" in src

    def test_worklist_fetch_add(self):
        src = generate_source(
            pick(Model.CPP_THREADS, driver=Driver.DATA, dup=Dup.DUP)
        )
        assert "fetch_add(1)" in src
