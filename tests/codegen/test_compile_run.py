"""Compile-and-run tests: generated CPU variants build with stock g++ and
self-verify on a real input graph.

This closes the loop on the code-generation half of the reproduction: the
same StyleSpec that drives the simulator produces source that a real
toolchain accepts and whose computed result matches the serial reference.
CUDA variants are syntax-checked structurally only (no nvcc here).
"""

import shutil
import subprocess

import pytest

from repro.codegen import generate_source
from repro.graph import load_dataset, write_edge_list
from repro.styles import (
    Algorithm,
    CpuReduction,
    Determinism,
    Driver,
    Dup,
    Flow,
    Iteration,
    Model,
    OmpSchedule,
    Update,
    enumerate_specs,
)

pytestmark = pytest.mark.skipif(
    shutil.which("g++") is None, reason="g++ not available"
)


@pytest.fixture(scope="module")
def graph_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("graphs") / "road.el"
    write_edge_list(load_dataset("USA-road-d.NY", "tiny"), path)
    return path


def compile_and_run(spec, src_dir, graph_file):
    src = generate_source(spec)
    src_path = src_dir / f"{spec.label()}.cpp"
    bin_path = src_dir / f"{spec.label()}.bin"
    src_path.write_text(src)
    flags = ["-O3", "-fopenmp"] if spec.model is Model.OPENMP else ["-O3", "-pthread"]
    build = subprocess.run(
        ["g++", *flags, str(src_path), "-o", str(bin_path)],
        capture_output=True, text=True, timeout=120,
    )
    assert build.returncode == 0, f"compile failed:\n{build.stderr[-2000:]}"
    run = subprocess.run(
        [str(bin_path), str(graph_file), "5"],
        capture_output=True, text=True, timeout=120,
    )
    assert run.returncode == 0, f"run failed:\n{run.stdout}\n{run.stderr}"
    assert "verified OK" in run.stdout
    return run.stdout


def sample_specs():
    """A compile matrix covering every CPU-relevant axis option."""
    chosen = []

    def pick(model, alg, **conds):
        for spec in enumerate_specs(alg, model):
            if all(getattr(spec, k) is v for k, v in conds.items()):
                chosen.append(spec)
                return
        raise AssertionError(f"no spec for {alg}/{model}/{conds}")

    for model in (Model.OPENMP, Model.CPP_THREADS):
        # Relaxation family: exercise driver/dup/flow/update/det/iteration.
        pick(model, Algorithm.SSSP, driver=Driver.TOPOLOGY,
             flow=Flow.PUSH, update=Update.READ_MODIFY_WRITE)
        pick(model, Algorithm.SSSP, driver=Driver.DATA, dup=Dup.NODUP,
             flow=Flow.PUSH, update=Update.READ_WRITE)
        pick(model, Algorithm.BFS, driver=Driver.DATA, dup=Dup.DUP,
             flow=Flow.PULL, iteration=Iteration.VERTEX)
        pick(model, Algorithm.BFS, flow=Flow.PULL,
             determinism=Determinism.DETERMINISTIC,
             update=Update.READ_MODIFY_WRITE, driver=Driver.TOPOLOGY)
        pick(model, Algorithm.CC, iteration=Iteration.EDGE,
             driver=Driver.TOPOLOGY, flow=Flow.PUSH)
        # MIS, PR, TC: exercise flows and every reduction style.
        pick(model, Algorithm.MIS, flow=Flow.PUSH, driver=Driver.TOPOLOGY)
        pick(model, Algorithm.MIS, flow=Flow.PULL, driver=Driver.DATA)
        pick(model, Algorithm.PR, flow=Flow.PULL,
             cpu_reduction=CpuReduction.CLAUSE)
        pick(model, Algorithm.PR, flow=Flow.PUSH,
             cpu_reduction=CpuReduction.CRITICAL)
        pick(model, Algorithm.TC, iteration=Iteration.VERTEX,
             cpu_reduction=CpuReduction.ATOMIC)
        pick(model, Algorithm.TC, iteration=Iteration.EDGE,
             cpu_reduction=CpuReduction.CLAUSE)
    # A dynamic-schedule OpenMP variant for good measure.
    pick(Model.OPENMP, Algorithm.SSSP, omp_schedule=OmpSchedule.DYNAMIC,
         driver=Driver.TOPOLOGY, flow=Flow.PULL)
    return chosen


@pytest.mark.parametrize("spec", sample_specs(), ids=lambda s: s.label())
def test_generated_cpu_code_compiles_and_verifies(spec, tmp_path, graph_file):
    compile_and_run(spec, tmp_path, graph_file)


class TestDataWidths:
    """The 64-bit (long long / double) and 32-bit PR (float) variants —
    the other half of the Indigo2-style artifact — also compile and
    verify."""

    def test_64bit_sssp(self, tmp_path, graph_file):
        spec = enumerate_specs(Algorithm.SSSP, Model.OPENMP)[0]
        src = generate_source(spec, data_bits=64)
        assert "typedef long long val_t;" in src
        self._build_and_run(src, tmp_path / "sssp64.cpp", graph_file,
                            ["-O3", "-fopenmp"])

    def test_64bit_cpp_bfs(self, tmp_path, graph_file):
        spec = enumerate_specs(Algorithm.BFS, Model.CPP_THREADS)[0]
        src = generate_source(spec, data_bits=64)
        self._build_and_run(src, tmp_path / "bfs64.cpp", graph_file,
                            ["-O3", "-pthread"])

    def test_float32_pr(self, tmp_path, graph_file):
        spec = enumerate_specs(Algorithm.PR, Model.OPENMP)[0]
        src = generate_source(spec, data_bits=32)
        assert "typedef float rank_t;" in src
        self._build_and_run(src, tmp_path / "pr32.cpp", graph_file,
                            ["-O3", "-fopenmp"])

    def test_double_pr(self, tmp_path, graph_file):
        spec = enumerate_specs(Algorithm.PR, Model.CPP_THREADS)[0]
        src = generate_source(spec, data_bits=64)
        assert "typedef double rank_t;" in src
        self._build_and_run(src, tmp_path / "pr64.cpp", graph_file,
                            ["-O3", "-pthread"])

    @staticmethod
    def _build_and_run(src, src_path, graph_file, flags):
        src_path.write_text(src)
        bin_path = src_path.with_suffix(".bin")
        build = subprocess.run(
            ["g++", *flags, str(src_path), "-o", str(bin_path)],
            capture_output=True, text=True, timeout=120,
        )
        assert build.returncode == 0, build.stderr[-2000:]
        run = subprocess.run(
            [str(bin_path), str(graph_file), "5"],
            capture_output=True, text=True, timeout=120,
        )
        assert run.returncode == 0, run.stdout + run.stderr
        assert "verified OK" in run.stdout
