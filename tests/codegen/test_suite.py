"""Tests for the suite writer (the on-disk Indigo2 artifact shape)."""


from repro.codegen import generate_suite
from repro.styles import Algorithm, Model, enumerate_specs


class TestGenerateSuite:
    def test_sampled_suite_layout(self, tmp_path):
        manifest = generate_suite(
            tmp_path, algorithms=(Algorithm.TC,), limit_per_pair=3
        )
        assert manifest.count == 9  # 3 models x 3 sampled variants
        assert (tmp_path / "MANIFEST.tsv").exists()
        assert (tmp_path / "Makefile").exists()
        assert (tmp_path / "cuda" / "tc").is_dir()
        assert (tmp_path / "openmp" / "tc").is_dir()
        assert (tmp_path / "cpp" / "tc").is_dir()

    def test_extensions_by_model(self, tmp_path):
        manifest = generate_suite(
            tmp_path, algorithms=(Algorithm.PR,), limit_per_pair=1
        )
        for (spec, _bits), path in manifest.files.items():
            if spec.model is Model.CUDA:
                assert path.suffix == ".cu"
            else:
                assert path.suffix == ".cpp"

    def test_manifest_lists_every_file(self, tmp_path):
        manifest = generate_suite(
            tmp_path, models=(Model.OPENMP,), algorithms=(Algorithm.MIS,)
        )
        rows = (tmp_path / "MANIFEST.tsv").read_text().strip().splitlines()
        assert len(rows) == manifest.count + 1  # + header
        assert manifest.count == len(enumerate_specs(Algorithm.MIS, Model.OPENMP))

    def test_by_model_filter(self, tmp_path):
        manifest = generate_suite(
            tmp_path, algorithms=(Algorithm.TC,), limit_per_pair=2
        )
        assert len(manifest.by_model(Model.CUDA)) == 2

    def test_full_counts_match_table3(self, tmp_path):
        # Writing only the OpenMP suite is fast; counts must equal Table 3.
        manifest = generate_suite(tmp_path, models=(Model.OPENMP,))
        from repro.styles import count_specs

        assert manifest.count == sum(count_specs()[Model.OPENMP].values())

    def test_both_data_widths_double_the_suite(self, tmp_path):
        manifest = generate_suite(
            tmp_path, algorithms=(Algorithm.TC,), data_bits=(32, 64),
            limit_per_pair=2,
        )
        assert manifest.count == 12  # 3 models x 2 variants x 2 widths
        names = [p.name for p in manifest.files.values()]
        assert sum(1 for n in names if "-i64" in n) == 6
