"""Unit tests for the variant enumeration (Table 3)."""


from repro.styles import (
    PAPER_TABLE3,
    Algorithm,
    Determinism,
    Driver,
    Dup,
    Flow,
    Iteration,
    Model,
    check_spec,
    count_specs,
    enumerate_all,
    enumerate_specs,
    mapping_combinations,
    semantic_combinations,
    table3_counts,
)


class TestEnumeration:
    def test_all_specs_valid(self):
        for spec in enumerate_all():
            check_spec(spec)  # must not raise

    def test_all_specs_unique(self):
        specs = enumerate_all()
        assert len(specs) == len(set(specs))

    def test_exact_paper_matches(self):
        """PR and TC CUDA counts reproduce the paper exactly."""
        counts = count_specs()
        assert counts[Model.CUDA][Algorithm.PR] == 54 == PAPER_TABLE3[Model.CUDA][Algorithm.PR]
        assert counts[Model.CUDA][Algorithm.TC] == 72 == PAPER_TABLE3[Model.CUDA][Algorithm.TC]
        assert counts[Model.OPENMP][Algorithm.PR] == 18
        assert counts[Model.OPENMP][Algorithm.TC] == 12

    def test_total_same_regime_as_paper(self):
        counts = count_specs()
        total = sum(sum(d.values()) for d in counts.values())
        paper_total = sum(sum(d.values()) for d in PAPER_TABLE3.values())
        assert paper_total == 1106
        # Documented reconstruction: within 2x of the paper's total.
        assert 0.5 * paper_total <= total <= 2.0 * paper_total

    def test_cuda_has_most_variants(self):
        counts = count_specs()
        assert sum(counts[Model.CUDA].values()) > sum(counts[Model.OPENMP].values())

    def test_cpu_models_mirror_each_other(self):
        counts = count_specs()
        assert counts[Model.OPENMP] == counts[Model.CPP_THREADS]

    def test_table3_rows(self):
        rows = table3_counts()
        assert len(rows) == 18  # 3 models x 6 algorithms
        assert all(len(r) == 4 for r in rows)


class TestSemanticMappingSplit:
    def test_semantics_expand_to_all_mappings(self):
        for alg in Algorithm:
            sems = list(semantic_combinations(alg, Model.CUDA))
            total = sum(len(list(mapping_combinations(s))) for s in sems)
            assert total == len(enumerate_specs(alg, Model.CUDA))

    def test_semantic_combinations_have_no_mapping_axes(self):
        for sem in semantic_combinations(Algorithm.SSSP, Model.CUDA):
            assert sem.granularity is None
            assert sem.persistence is None
            assert sem.atomic_flavor is None

    def test_mapping_variants_share_semantic_key(self):
        sem = next(iter(semantic_combinations(Algorithm.BFS, Model.CUDA)))
        keys = {m.semantic_key() for m in mapping_combinations(sem)}
        assert len(keys) == 1


class TestStructure:
    def test_data_driven_edge_relaxation_is_push(self):
        for spec in enumerate_specs(Algorithm.SSSP, Model.CUDA):
            if spec.driver is Driver.DATA and spec.iteration is Iteration.EDGE:
                assert spec.flow is Flow.PUSH

    def test_data_driven_vertex_has_both_flows(self):
        flows = {
            spec.flow
            for spec in enumerate_specs(Algorithm.SSSP, Model.CUDA)
            if spec.driver is Driver.DATA and spec.iteration is Iteration.VERTEX
        }
        assert flows == {Flow.PUSH, Flow.PULL}

    def test_mis_nodup_only(self):
        for spec in enumerate_specs(Algorithm.MIS, Model.CUDA):
            if spec.driver is Driver.DATA:
                assert spec.dup is Dup.NODUP

    def test_pr_push_det_only(self):
        for spec in enumerate_specs(Algorithm.PR, Model.CUDA):
            if spec.flow is Flow.PUSH:
                assert spec.determinism is Determinism.DETERMINISTIC

    def test_no_det_rw_push(self):
        for spec in enumerate_all():
            if spec.flow is Flow.PUSH and spec.determinism is Determinism.DETERMINISTIC:
                assert spec.update.value != "rw"
