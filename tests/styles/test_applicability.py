"""Unit tests for the Table 2 applicability matrix and combination rules."""

import pytest

from repro.styles import (
    Algorithm,
    AtomicFlavor,
    CppSchedule,
    CpuReduction,
    Determinism,
    Driver,
    Dup,
    Flow,
    GpuReduction,
    Granularity,
    Iteration,
    Model,
    OmpSchedule,
    Persistence,
    StyleSpec,
    Update,
    allowed_options,
    applicability_table,
    has_reduction,
)


def make(alg, model, **kw):
    defaults = dict(
        iteration=Iteration.VERTEX,
        driver=Driver.TOPOLOGY,
        flow=Flow.PUSH,
        update=Update.READ_MODIFY_WRITE,
        determinism=Determinism.NON_DETERMINISTIC,
    )
    if model is Model.CUDA:
        defaults.update(
            persistence=Persistence.NON_PERSISTENT,
            granularity=Granularity.THREAD,
            atomic_flavor=AtomicFlavor.ATOMIC,
        )
        if has_reduction(alg):
            defaults.update(gpu_reduction=GpuReduction.GLOBAL_ADD)
    elif model is Model.OPENMP:
        defaults.update(omp_schedule=OmpSchedule.DEFAULT)
        if has_reduction(alg):
            defaults.update(cpu_reduction=CpuReduction.CLAUSE)
    else:
        defaults.update(cpp_schedule=CppSchedule.BLOCKED)
        if has_reduction(alg):
            defaults.update(cpu_reduction=CpuReduction.CLAUSE)
    defaults.update(kw)
    return StyleSpec(algorithm=alg, model=model, **defaults)


class TestTable2:
    def test_pr_is_vertex_only(self):
        with pytest.raises(ValueError, match="not applicable"):
            make(
                Algorithm.PR, Model.CUDA, iteration=Iteration.EDGE,
                determinism=Determinism.DETERMINISTIC,
            ).validate()

    def test_mis_rejects_read_write(self):
        with pytest.raises(ValueError, match="not applicable"):
            make(Algorithm.MIS, Model.CUDA, update=Update.READ_WRITE).validate()

    def test_mis_rejects_dup(self):
        with pytest.raises(ValueError, match="not applicable"):
            make(
                Algorithm.MIS, Model.CUDA, driver=Driver.DATA, dup=Dup.DUP
            ).validate()

    def test_tc_has_no_flow_axis(self):
        with pytest.raises(ValueError, match="push/pull"):
            make(
                Algorithm.TC, Model.CUDA, flow=Flow.PUSH,
                determinism=Determinism.DETERMINISTIC,
            ).validate()

    def test_tc_deterministic_only(self):
        with pytest.raises(ValueError, match="not applicable"):
            make(
                Algorithm.TC, Model.CUDA, flow=None,
                determinism=Determinism.NON_DETERMINISTIC,
            ).validate()

    def test_pr_no_cudaatomic(self):
        with pytest.raises(ValueError, match="not applicable"):
            make(
                Algorithm.PR, Model.CUDA,
                determinism=Determinism.DETERMINISTIC,
                atomic_flavor=AtomicFlavor.CUDA_ATOMIC,
            ).validate()

    def test_allowed_options_lookup(self):
        assert Update.READ_WRITE in allowed_options(Algorithm.SSSP, "update")
        assert Update.READ_WRITE not in allowed_options(Algorithm.MIS, "update")
        with pytest.raises(KeyError):
            allowed_options(Algorithm.SSSP, "bogus")


class TestCombinationRules:
    def test_deterministic_push_requires_rmw(self):
        with pytest.raises(ValueError, match="read-modify-write"):
            make(
                Algorithm.SSSP, Model.CUDA,
                update=Update.READ_WRITE,
                determinism=Determinism.DETERMINISTIC,
            ).validate()

    def test_deterministic_pull_rw_allowed(self):
        make(
            Algorithm.SSSP, Model.CUDA,
            flow=Flow.PULL,
            update=Update.READ_WRITE,
            determinism=Determinism.DETERMINISTIC,
        ).validate()

    def test_pr_push_must_be_deterministic(self):
        with pytest.raises(ValueError, match="deterministic"):
            make(
                Algorithm.PR, Model.CUDA, flow=Flow.PUSH,
                determinism=Determinism.NON_DETERMINISTIC,
            ).validate()

    def test_edge_data_pull_rejected_for_relaxation(self):
        with pytest.raises(ValueError, match="push-flow"):
            make(
                Algorithm.BFS, Model.CUDA,
                iteration=Iteration.EDGE, driver=Driver.DATA,
                dup=Dup.NODUP, flow=Flow.PULL,
            ).validate()

    def test_edge_data_pull_allowed_for_mis(self):
        make(
            Algorithm.MIS, Model.CUDA,
            iteration=Iteration.EDGE, driver=Driver.DATA,
            dup=Dup.NODUP, flow=Flow.PULL,
        ).validate()

    def test_vertex_data_pull_allowed(self):
        make(
            Algorithm.SSSP, Model.CUDA,
            driver=Driver.DATA, dup=Dup.NODUP, flow=Flow.PULL,
        ).validate()


class TestModelAxes:
    def test_cuda_requires_granularity(self):
        with pytest.raises(ValueError, match="granularity"):
            make(Algorithm.BFS, Model.CUDA, granularity=None).validate()

    def test_edge_based_thread_only(self):
        with pytest.raises(ValueError, match="thread-granularity"):
            make(
                Algorithm.BFS, Model.CUDA,
                iteration=Iteration.EDGE, granularity=Granularity.WARP,
            ).validate()

    def test_edge_based_tc_may_use_warp(self):
        make(
            Algorithm.TC, Model.CUDA, iteration=Iteration.EDGE, flow=None,
            determinism=Determinism.DETERMINISTIC,
            granularity=Granularity.WARP,
        ).validate()

    def test_cpu_rejects_gpu_axes(self):
        with pytest.raises(ValueError, match="CUDA"):
            make(
                Algorithm.BFS, Model.OPENMP, granularity=Granularity.THREAD
            ).validate()

    def test_omp_requires_schedule(self):
        with pytest.raises(ValueError, match="omp_schedule"):
            make(Algorithm.BFS, Model.OPENMP, omp_schedule=None).validate()

    def test_cpp_requires_schedule(self):
        with pytest.raises(ValueError, match="cpp_schedule"):
            make(Algorithm.BFS, Model.CPP_THREADS, cpp_schedule=None).validate()

    def test_omp_rejects_cpp_schedule(self):
        with pytest.raises(ValueError, match="C\\+\\+"):
            make(
                Algorithm.BFS, Model.OPENMP, cpp_schedule=CppSchedule.BLOCKED
            ).validate()

    def test_reduction_axis_only_for_pr_tc(self):
        with pytest.raises(ValueError, match="no reduction axis"):
            make(
                Algorithm.BFS, Model.CUDA,
                gpu_reduction=GpuReduction.GLOBAL_ADD,
            ).validate()
        with pytest.raises(ValueError, match="set gpu_reduction"):
            make(
                Algorithm.PR, Model.CUDA,
                determinism=Determinism.DETERMINISTIC,
                gpu_reduction=None,
            ).validate()

    def test_cpu_reduction_required_for_tc(self):
        with pytest.raises(ValueError, match="set cpu_reduction"):
            make(
                Algorithm.TC, Model.OPENMP, flow=None,
                determinism=Determinism.DETERMINISTIC,
                cpu_reduction=None,
            ).validate()


class TestRenderedTable:
    def test_all_13_style_rows(self):
        table = applicability_table()
        assert len(table) == 13  # the paper's 13 style rows
        assert "Push, pull" in table
        # Section 5.4: "TC does not support this style" — the axis is
        # dropped entirely for TC in this reconstruction.
        assert table["Push, pull"]["TC"] == "-, -"
        assert table["Duplicates in WL, no duplicates in WL"]["MIS"] == "-, +"
        assert table["Atomic, CudaAtomic"]["PR"] == "+, -"
