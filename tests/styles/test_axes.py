"""Sanity tests for the style-axis enums and their partition."""

from repro.styles import (
    AXIS_FIELDS,
    MAPPING_AXES,
    SEMANTIC_AXES,
    Algorithm,
    Model,
)


class TestPartition:
    def test_semantic_and_mapping_disjoint(self):
        assert not set(SEMANTIC_AXES) & set(MAPPING_AXES)

    def test_union_covers_all_axis_fields(self):
        assert set(AXIS_FIELDS) == set(SEMANTIC_AXES) | set(MAPPING_AXES)

    def test_thirteen_paper_axes(self):
        # 6 semantic + 7 mapping = the paper's 13 style sets.
        assert len(SEMANTIC_AXES) == 6
        assert len(MAPPING_AXES) == 7

    def test_fields_exist_on_spec(self):
        import dataclasses

        from repro.styles import StyleSpec

        spec_fields = {f.name for f in dataclasses.fields(StyleSpec)}
        assert set(AXIS_FIELDS) <= spec_fields


class TestEnums:
    def test_six_algorithms(self):
        assert len(Algorithm) == 6
        assert {a.value for a in Algorithm} == {
            "cc", "mis", "pr", "tc", "bfs", "sssp",
        }

    def test_three_models(self):
        assert [m.value for m in Model] == ["cuda", "openmp", "cpp"]

    def test_gpu_flag(self):
        assert Model.CUDA.is_gpu
        assert not Model.OPENMP.is_gpu
        assert not Model.CPP_THREADS.is_gpu

    def test_axis_option_values_unique_per_axis(self):
        for axis in AXIS_FIELDS.values():
            values = [opt.value for opt in axis]
            assert len(values) == len(set(values))
