"""Unit tests for StyleSpec and SemanticKey."""

import pytest

from repro.styles import (
    Algorithm,
    AtomicFlavor,
    Determinism,
    Driver,
    Dup,
    Flow,
    Granularity,
    Iteration,
    Model,
    OmpSchedule,
    Persistence,
    StyleSpec,
    Update,
)


def cuda_bfs_spec(**overrides) -> StyleSpec:
    base = dict(
        algorithm=Algorithm.BFS,
        model=Model.CUDA,
        iteration=Iteration.VERTEX,
        driver=Driver.TOPOLOGY,
        flow=Flow.PUSH,
        update=Update.READ_MODIFY_WRITE,
        determinism=Determinism.NON_DETERMINISTIC,
        persistence=Persistence.NON_PERSISTENT,
        granularity=Granularity.THREAD,
        atomic_flavor=AtomicFlavor.ATOMIC,
    )
    base.update(overrides)
    return StyleSpec(**base)


class TestSemanticKey:
    def test_mapping_axes_excluded(self):
        a = cuda_bfs_spec(granularity=Granularity.THREAD)
        b = cuda_bfs_spec(granularity=Granularity.WARP)
        assert a.semantic_key() == b.semantic_key()

    def test_semantic_axes_included(self):
        a = cuda_bfs_spec(flow=Flow.PUSH)
        b = cuda_bfs_spec(flow=Flow.PULL)
        assert a.semantic_key() != b.semantic_key()

    def test_hashable(self):
        assert len({cuda_bfs_spec().semantic_key()}) == 1

    def test_cross_model_semantics_shared(self):
        cuda = cuda_bfs_spec()
        omp = StyleSpec(
            algorithm=Algorithm.BFS,
            model=Model.OPENMP,
            iteration=Iteration.VERTEX,
            driver=Driver.TOPOLOGY,
            flow=Flow.PUSH,
            update=Update.READ_MODIFY_WRITE,
            determinism=Determinism.NON_DETERMINISTIC,
            omp_schedule=OmpSchedule.DEFAULT,
        )
        assert cuda.semantic_key() == omp.semantic_key()


class TestHelpers:
    def test_with_axis(self):
        spec = cuda_bfs_spec()
        warp = spec.with_axis(granularity=Granularity.WARP)
        assert warp.granularity is Granularity.WARP
        assert warp.flow is spec.flow

    def test_axis_value(self):
        spec = cuda_bfs_spec()
        assert spec.axis_value("flow") is Flow.PUSH
        assert spec.axis_value("cpp_schedule") is None

    def test_describe_omits_unset(self):
        d = cuda_bfs_spec().describe()
        assert d["flow"] == "push"
        assert "cpp_schedule" not in d
        assert d["algorithm"] == "bfs"

    def test_label_compact(self):
        label = cuda_bfs_spec().label()
        assert label.startswith("bfs-cuda-")
        assert "push" in label and "thread" in label

    def test_frozen(self):
        spec = cuda_bfs_spec()
        with pytest.raises(Exception):
            spec.flow = Flow.PULL

    def test_validate_returns_self(self):
        spec = cuda_bfs_spec()
        assert spec.validate() is spec

    def test_dup_requires_data_driver(self):
        with pytest.raises(ValueError, match="data-driven"):
            cuda_bfs_spec(dup=Dup.DUP).validate()
