"""Unit tests for the indigo2py CLI."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "huge", "datasets"])


class TestDatasets:
    def test_prints_tables(self, capsys):
        code, out = run_cli(capsys, "--scale", "tiny", "datasets")
        assert code == 0
        assert "Table 4" in out and "Table 5" in out
        assert "coPapersDBLP" in out


class TestSpecs:
    def test_counts(self, capsys):
        code, out = run_cli(capsys, "specs", "--model", "openmp")
        assert code == 0
        assert "total: 266" in out

    def test_listing(self, capsys):
        code, out = run_cli(
            capsys, "specs", "--model", "cpp", "--algorithm", "tc", "--list"
        )
        assert code == 0
        assert "tc-cpp-" in out


class TestRun:
    def test_runs_and_reports(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "tiny", "run",
            "--algorithm", "bfs", "--model", "cuda",
            "--graph", "USA-road-d.NY", "--device", "RTX 3090",
        )
        assert code == 0
        assert "throughput:" in out
        assert "verified:   True" in out

    def test_bad_index(self, capsys):
        code = main([
            "--scale", "tiny", "run",
            "--algorithm", "bfs", "--model", "cuda",
            "--graph", "USA-road-d.NY", "--device", "RTX 3090",
            "--index", "99999",
        ])
        assert code == 2

    def test_model_device_mismatch(self, capsys):
        code = main([
            "--scale", "tiny", "run",
            "--algorithm", "bfs", "--model", "openmp",
            "--graph", "USA-road-d.NY", "--device", "RTX 3090",
        ])
        assert code == 2


class TestSweep:
    def test_csv_output(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "tiny", "sweep",
            "--algorithm", "tc", "--model", "openmp",
        )
        assert code == 0
        header, *rows = out.strip().splitlines()
        assert header.startswith("model,algorithm,variant,graph,device")
        assert len(rows) == 12 * 5 * 2  # variants x graphs x devices


class TestTables:
    @pytest.mark.parametrize("table_id", ["1", "2", "3"])
    def test_static_tables(self, capsys, table_id):
        code, out = run_cli(capsys, "table", table_id)
        assert code == 0
        assert f"Table {table_id}" in out

    def test_table5(self, capsys):
        code, out = run_cli(capsys, "--scale", "tiny", "table", "5")
        assert code == 0
        assert "degree" in out


class TestGenerate:
    def test_writes_suite(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "generate", str(tmp_path / "suite"),
            "--algorithm", "tc", "--model", "openmp",
        )
        assert code == 0
        assert "wrote 12 source files" in out
        assert (tmp_path / "suite" / "MANIFEST.tsv").exists()

    def test_limit(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "generate", str(tmp_path / "s2"),
            "--algorithm", "pr", "--limit", "1",
        )
        assert code == 0
        assert "wrote 3 source files" in out  # one per model


class TestTrace:
    def test_renders_breakdown(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "tiny", "trace",
            "--algorithm", "bfs", "--model", "cuda",
            "--graph", "USA-road-d.NY",
        )
        assert code == 0
        assert "phase" in out and "relax" in out

    def test_csv(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "tiny", "trace",
            "--algorithm", "tc", "--model", "openmp",
            "--graph", "soc-LiveJournal1", "--csv",
        )
        assert code == 0
        assert out.splitlines()[1].startswith("launch,label,")


class TestAdvise:
    def test_dataset_graph(self, capsys):
        # The default-scale grid is unambiguously high-diameter.
        code, out = run_cli(capsys, "advise", "--graph", "2d-2e20.sym")
        assert code == 0
        assert "granularity = thread" in out
        assert "driver = data" in out  # high-diameter input

    def test_requires_input(self, capsys):
        code = main(["advise"])
        assert code == 2

    def test_file_input(self, capsys, tmp_path):
        from repro.graph import load_dataset, write_edge_list

        path = tmp_path / "g.el"
        write_edge_list(load_dataset("soc-LiveJournal1", "tiny"), path)
        code, out = run_cli(capsys, "advise", "--file", str(path))
        assert code == 0
        assert "input:" in out


class TestConvergenceCommand:
    def test_renders(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "tiny", "convergence", "--algorithm", "tc"
        )
        assert code == 0
        assert "tc" in out and "iterations" in out
