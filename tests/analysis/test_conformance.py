"""Style-conformance linter: the full suite lints clean, and injected
codegen mutations produce exactly one finding with the right rule id."""

import re
import shutil

import pytest

from repro.analysis import lint_source, lint_suite, spec_from_label
from repro.styles.axes import Algorithm, Model
from repro.styles.combos import enumerate_specs

pytestmark = pytest.mark.analysis


def read_manifest(root):
    lines = (root / "MANIFEST.tsv").read_text().splitlines()
    assert lines[0] == "model\talgorithm\tbits\tfile\tstyle"
    return [line.split("\t") for line in lines[1:] if line.strip()]


class TestLabelRoundTrip:
    def test_every_enumerated_label_round_trips(self):
        for model in Model:
            for alg in Algorithm:
                for spec in enumerate_specs(alg, model):
                    assert spec_from_label(spec.label()) == spec

    @pytest.mark.parametrize(
        "label",
        [
            "bfs",                      # too short
            "bfs-noduch-vertex",        # unknown model
            "bfs-cuda-nonsense",        # unknown axis value
            "bfs-cuda-vertex-vertex",   # duplicate axis
            "pr-cuda-vertex-data",      # invalid combination (PR is topology)
        ],
    )
    def test_bad_labels_raise(self, label):
        with pytest.raises(ValueError):
            spec_from_label(label)


class TestFullSuiteCleans:
    def test_full_suite_zero_findings(self, full_suite):
        report = lint_suite(full_suite)
        assert report.checked == 1698
        assert report.findings == []
        assert report.ok

    def test_sampled_suite_zero_findings(self, sampled_suite):
        report = lint_suite(sampled_suite)
        assert report.checked > 0
        assert report.findings == []

    def test_sampled_suite_strict_flags_missing(self, sampled_suite):
        report = lint_suite(sampled_suite, strict=True)
        assert not report.ok
        assert set(report.by_rule()) == {"MAN-MISSING"}


class TestManifestRoundTrip:
    """Satellite: MANIFEST.tsv rows parse back to the exact enumerated
    StyleSpec set, with the Table 3 counts (1166 / 266 / 266)."""

    TABLE3 = {Model.CUDA: 1166, Model.OPENMP: 266, Model.CPP_THREADS: 266}

    def test_counts_match_experiments_table3(self):
        for model, expected in self.TABLE3.items():
            count = sum(len(enumerate_specs(a, model)) for a in Algorithm)
            assert count == expected
        assert sum(self.TABLE3.values()) == 1698

    def test_manifest_rows_reproduce_enumeration(self, full_suite):
        rows = read_manifest(full_suite)
        assert len(rows) == 1698
        per_model = {}
        for model_s, alg_s, bits, rel, label in rows:
            spec = spec_from_label(label)
            assert spec.model.value == model_s
            assert spec.algorithm.value == alg_s
            assert bits == "32"
            assert (full_suite / rel).is_file()
            per_model.setdefault(spec.model, set()).add(spec)
        for model, expected in self.TABLE3.items():
            enumerated = {
                s for a in Algorithm for s in enumerate_specs(a, model)
            }
            assert per_model[model] == enumerated
            assert len(per_model[model]) == expected


def _mutate_suite(src_root, tmp_path, mutate):
    root = tmp_path / "mutated"
    shutil.copytree(src_root, root)
    mutate(root)
    return root


class TestManifestMutations:
    def test_deleting_one_row_is_one_missing_finding(self, full_suite, tmp_path):
        def mutate(root):
            man = root / "MANIFEST.tsv"
            lines = man.read_text().splitlines()
            man.write_text("\n".join(lines[:1] + lines[2:]) + "\n")

        # A one-row gap turns the group into a (valid) sample, so the gap
        # is only a finding when the full enumeration is demanded.
        root = _mutate_suite(full_suite, tmp_path, mutate)
        assert lint_suite(root).ok
        report = lint_suite(root, strict=True)
        assert [f.rule for f in report.findings] == ["MAN-MISSING"]

    def test_unknown_variant_row(self, full_suite, tmp_path):
        def mutate(root):
            man = root / "MANIFEST.tsv"
            # PR is topology-driven: a data-driven PR label is enumerable
            # nowhere, but parse-able nowhere either — use a valid spec of
            # the wrong (64) bits width instead, which parses but is not
            # part of this 32-bit-only suite... bits are per-row, so fake
            # an extra row duplicating a real label under a bogus file.
            row = man.read_text().splitlines()[1].split("\t")
            row[3] = "cuda/bfs/does-not-exist.cu"
            man.write_text(man.read_text() + "\t".join(row) + "\n")

        report = lint_suite(_mutate_suite(full_suite, tmp_path, mutate))
        assert [f.rule for f in report.findings] == ["MAN-INVALID"]

    def test_duplicate_row(self, full_suite, tmp_path):
        def mutate(root):
            man = root / "MANIFEST.tsv"
            text = man.read_text()
            man.write_text(text + text.splitlines()[1] + "\n")

        report = lint_suite(_mutate_suite(full_suite, tmp_path, mutate))
        assert [f.rule for f in report.findings] == ["MAN-DUP"]

    def test_missing_file(self, full_suite, tmp_path):
        def mutate(root):
            rel = read_manifest(root)[0][3]
            (root / rel).unlink()

        report = lint_suite(_mutate_suite(full_suite, tmp_path, mutate))
        assert [f.rule for f in report.findings] == ["MAN-FILE"]

    def test_garbage_label(self, full_suite, tmp_path):
        def mutate(root):
            man = root / "MANIFEST.tsv"
            man.write_text(
                man.read_text() + "cuda\tbfs\t32\tcuda/bfs/x.cu\tnot-a-label\n"
            )

        report = lint_suite(_mutate_suite(full_suite, tmp_path, mutate))
        assert [f.rule for f in report.findings] == ["MAN-PARSE"]

    def test_missing_manifest(self, tmp_path):
        report = lint_suite(tmp_path)
        assert [f.rule for f in report.findings] == ["MAN-PARSE"]


def _first_file(root, pattern):
    matches = sorted(root.glob(pattern))
    assert matches, pattern
    return matches[0]


class TestSourceMutations:
    """Each injected codegen mutation produces exactly one finding with
    the right rule id (the ISSUE acceptance demonstration)."""

    def lint_path(self, path, text=None):
        spec = spec_from_label(path.stem.replace("-i64", ""))
        return lint_source(
            spec, text if text is not None else path.read_text(), locus=path.name
        )

    def test_unmutated_samples_are_clean(self, full_suite):
        for pattern in (
            "cuda/bfs/*data-nodup*.cu",
            "openmp/sssp/*.cpp",
            "cpp/cc/*.cpp",
            "cuda/pr/*det*.cu",
        ):
            path = _first_file(full_suite, pattern)
            assert self.lint_path(path) == []

    def test_dropping_stamp_is_one_conf_stamp(self, full_suite):
        path = _first_file(full_suite, "cuda/bfs/*data-nodup*.cu")
        text = path.read_text()
        mutated = re.sub(r" *if \(atomicMax\(&stat\[[^\n]*\n", "", text)
        assert mutated != text
        findings = self.lint_path(path, mutated)
        assert [f.rule for f in findings] == ["CONF-STAMP"]

    def test_swapping_update_is_one_conf_update(self, full_suite):
        path = _first_file(full_suite, "cuda/sssp/*topology*rmw*.cu")
        mutated = path.read_text().replace("atomicMin(&", "plainMin(&")
        findings = self.lint_path(path, mutated)
        assert [f.rule for f in findings] == ["CONF-UPDATE"]

    def test_static_schedule_is_one_conf_omp_schedule(self, full_suite):
        path = _first_file(full_suite, "openmp/pr/*-dynamic*.cpp")
        mutated = path.read_text().replace("schedule(dynamic)", "schedule(static)")
        findings = self.lint_path(path, mutated)
        assert [f.rule for f in findings] == ["CONF-OMP-SCHEDULE"]

    def test_degrading_granularity_is_one_conf_granularity(self, full_suite):
        path = _first_file(full_suite, "cuda/bfs/*-warp-*.cu")
        mutated = path.read_text().replace("item = gidx / WS;", "item = gidx;")
        findings = self.lint_path(path, mutated)
        assert [f.rule for f in findings] == ["CONF-GRANULARITY"]

    def test_unrolling_persistence_is_one_conf_persistence(self, full_suite):
        path = _first_file(full_suite, "cuda/cc/*-persistent-*.cu")
        mutated = path.read_text().replace("for (; item <", "if (item <")
        findings = self.lint_path(path, mutated)
        assert [f.rule for f in findings] == ["CONF-PERSISTENCE"]

    def test_dropping_cuda_atomic_header_is_one_finding(self, full_suite):
        path = _first_file(full_suite, "cuda/tc/*cudaatomic*.cu")
        mutated = path.read_text().replace("#include <cuda/atomic>", "")
        findings = self.lint_path(path, mutated)
        assert [f.rule for f in findings] == ["CONF-CUDA-ATOMIC"]

    def test_dropping_exchange_stamp_cpp(self, full_suite):
        path = _first_file(full_suite, "cpp/bfs/*data-nodup*.cpp")
        mutated = path.read_text().replace(".exchange(itr)", ".load()")
        findings = self.lint_path(path, mutated)
        assert [f.rule for f in findings] == ["CONF-STAMP"]

    def test_dropping_shuffle_reduction(self, full_suite):
        path = _first_file(full_suite, "cuda/pr/*reduction_add*.cu")
        mutated = path.read_text().replace("__shfl_down_sync", "__shfl_down")
        findings = self.lint_path(path, mutated)
        assert [f.rule for f in findings] == ["CONF-GPU-REDUCTION"]
