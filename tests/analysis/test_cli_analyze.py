"""The `indigo2py analyze` command: exit codes, JSON output, rule catalog."""

import json

import pytest

from repro.cli import main

pytestmark = pytest.mark.analysis


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestUsage:
    def test_no_inputs_is_usage_error(self, capsys):
        code, _ = run_cli(capsys, "analyze")
        assert code == 2

    def test_trace_needs_variant_selection(self, capsys):
        code, _ = run_cli(capsys, "analyze", "--trace")
        assert code == 2

    def test_trace_index_out_of_range(self, capsys):
        code, _ = run_cli(
            capsys, "--scale", "tiny", "analyze", "--trace",
            "--algorithm", "bfs", "--model", "cuda",
            "--graph", "2d-2e20.sym", "--index", "99999",
        )
        assert code == 2

    def test_rules_prints_catalog(self, capsys):
        code, out = run_cli(capsys, "analyze", "--rules")
        assert code == 0
        for rule in ("CONF-UPDATE", "MAN-MISSING", "SAN-RW-HIST"):
            assert rule in out


class TestSuiteAnalysis:
    def test_clean_suite_exits_zero(self, sampled_suite, capsys):
        code, out = run_cli(capsys, "analyze", "--suite", str(sampled_suite))
        assert code == 0
        assert "no findings" in out

    def test_sampled_suite_strict_exits_one(self, sampled_suite, capsys):
        code, out = run_cli(
            capsys, "analyze", "--suite", str(sampled_suite), "--strict"
        )
        assert code == 1
        assert "MAN-MISSING" in out

    def test_mutated_file_exits_one_with_json(
        self, sampled_suite, tmp_path, capsys
    ):
        import shutil

        root = tmp_path / "suite"
        shutil.copytree(sampled_suite, root)
        victim = next(root.glob("openmp/*/*-dynamic*.cpp"))
        victim.write_text(
            victim.read_text().replace("schedule(dynamic)", "schedule(static)")
        )
        out_json = tmp_path / "report.json"
        code, _ = run_cli(
            capsys, "analyze", "--suite", str(root), "--json", str(out_json)
        )
        assert code == 1
        payload = json.loads(out_json.read_text())
        assert payload["ok"] is False
        rules = {f["rule"] for f in payload["findings"]}
        assert rules == {"CONF-OMP-SCHEDULE"}


class TestIrAnalysis:
    def test_ir_requires_suite(self, capsys):
        code, _ = run_cli(capsys, "analyze", "--ir")
        assert code == 2

    def test_clean_suite_with_ir_exits_zero(self, sampled_suite, capsys):
        code, out = run_cli(
            capsys, "analyze", "--suite", str(sampled_suite), "--ir"
        )
        assert code == 0
        assert "error" not in out.splitlines()[-1] or "0 error(s)" in out

    def test_ir_race_finding_exits_one(self, sampled_suite, tmp_path, capsys):
        import shutil

        root = tmp_path / "suite"
        shutil.copytree(sampled_suite, root)
        # Drop one of the two atomics guarding the PageRank scatter: the
        # construct-level probes still match (the err accumulation keeps
        # its pragma), only the IR race pass sees the unguarded store.
        victim = next(root.glob("openmp/pr/*-atomic_red-default.cpp"))
        text = victim.read_text()
        anchor = "#pragma omp atomic\n        rank_out[g.nbr_list[i]] += c;"
        assert text.count(anchor) == 1
        victim.write_text(text.replace(anchor, "rank_out[g.nbr_list[i]] += c;"))

        code, out = run_cli(capsys, "analyze", "--suite", str(root))
        assert code == 0, "construct linter alone must miss the race"

        out_json = tmp_path / "report.json"
        code, _ = run_cli(
            capsys, "analyze", "--suite", str(root), "--ir",
            "--json", str(out_json),
        )
        assert code == 1
        payload = json.loads(out_json.read_text())
        error_rules = {
            f["rule"] for f in payload["findings"] if f["severity"] == "error"
        }
        assert error_rules == {"RACE-REDUCTION"}


class TestTraceAnalysis:
    def test_trace_run_exits_zero(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "tiny", "analyze", "--trace",
            "--algorithm", "bfs", "--model", "cuda",
            "--graph", "2d-2e20.sym", "--index", "3",
        )
        assert code == 0
        assert "no findings" in out

    def test_trace_json_to_stdout(self, capsys):
        code, out = run_cli(
            capsys, "--scale", "tiny", "analyze", "--trace",
            "--algorithm", "sssp", "--model", "openmp",
            "--graph", "2d-2e20.sym", "--json", "-",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["ok"] is True
        assert payload["findings"] == []
        assert payload["checked"] > 0
