"""IR layer: comment stripping, brace matching, region discovery and
access classification — the structural substrate under the race detector
and the style-inference engine."""

import pytest

from repro.analysis.ir import (
    AccessKind,
    Guard,
    IndexClass,
    RegionKind,
    match_brace_block,
    parse_source,
    strip_comments,
)
from repro.analysis.source_model import SourceModel
from repro.codegen import generate_source
from repro.styles.axes import Algorithm, Driver, Dup, Model, Update
from repro.styles.combos import enumerate_specs

pytestmark = pytest.mark.analysis


def spec_for(alg, model, **conds):
    for spec in enumerate_specs(alg, model):
        if all(getattr(spec, k) is v for k, v in conds.items()):
            return spec
    raise AssertionError(f"no spec for {alg}/{model}/{conds}")


class TestStripComments:
    def test_line_and_block_comments_blank_but_preserve_layout(self):
        src = "int a; // trailing\n/* b */ int c;\n"
        out = strip_comments(src)
        assert "trailing" not in out and "b" not in out
        assert out.count("\n") == src.count("\n")
        assert out.index("int c;") == src.index("int c;")

    def test_stripping_preserves_offsets(self):
        src = "int a; /* multi\nline */ int b; // tail\nint c;\n"
        out = strip_comments(src)
        assert len(out) == len(src)
        assert out.index("int c;") == src.index("int c;")


class TestBraceMatching:
    def test_nested_blocks(self):
        text = "{ a { b } c { d { e } } }"
        assert match_brace_block(text, 0) == len(text)

    def test_critical_blocks_are_brace_matched(self):
        # Satellite 1: a critical section containing nested braces must be
        # returned whole, not truncated at the first closing brace.
        src = (
            "#pragma omp critical\n"
            "{\n"
            "  if (x) { inner(); }\n"
            "  tail();\n"
            "}\n"
        )
        blocks = SourceModel(src).critical_blocks()
        assert len(blocks) == 1
        assert "inner();" in blocks[0] and "tail();" in blocks[0]

    def test_braceless_critical_statement(self):
        src = "#pragma omp critical\nval[u] = new_val;\nafter();\n"
        blocks = SourceModel(src).critical_blocks()
        assert blocks == ["val[u] = new_val;"]


class TestRegionDiscovery:
    def test_cuda_kernel_region(self):
        spec = spec_for(Algorithm.BFS, Model.CUDA)
        ir = parse_source(generate_source(spec))
        kinds = {r.kind for r in ir.regions}
        assert RegionKind.CUDA_KERNEL in kinds
        assert all(r.kind is RegionKind.CUDA_KERNEL for r in ir.regions)

    def test_openmp_region(self):
        spec = spec_for(Algorithm.CC, Model.OPENMP)
        ir = parse_source(generate_source(spec))
        assert ir.regions
        assert all(r.kind is RegionKind.OMP_FOR for r in ir.regions)
        assert all(r.pragma.startswith("#pragma omp parallel for")
                   for r in ir.regions)

    def test_cpp_threads_region_is_call_site_not_template(self):
        spec = spec_for(Algorithm.SSSP, Model.CPP_THREADS)
        ir = parse_source(generate_source(spec))
        assert ir.regions
        for region in ir.regions:
            assert region.kind is RegionKind.CPP_THREADS
            # The parallel_step *template definition* must not be captured.
            assert "template" not in region.body

    def test_every_suite_file_has_at_least_one_region(self):
        for model in Model:
            for alg in Algorithm:
                spec = enumerate_specs(alg, model)[0]
                ir = parse_source(generate_source(spec))
                assert ir.regions, spec.label()


class TestAccessClassification:
    def test_nested_subscript_write_is_recorded(self):
        # The OpenMP nodup stamp: a critical-guarded store through a
        # nested subscript.  A first-]-terminated regex loses this write.
        spec = spec_for(Algorithm.CC, Model.OPENMP, driver=Driver.DATA,
                        dup=Dup.NODUP)
        ir = parse_source(generate_source(spec))
        stat = [
            a
            for r in ir.regions
            for a in r.accesses_to("stat")
            if a.kind is not AccessKind.READ
        ]
        assert stat, "nested-subscript stat stamp write was not extracted"
        assert all(a.guard is Guard.CRITICAL for a in stat)

    def test_worklist_push_is_slot_indexed(self):
        spec = spec_for(Algorithm.SSSP, Model.OPENMP, driver=Driver.DATA)
        ir = parse_source(generate_source(spec))
        pushes = [
            a
            for r in ir.regions
            for a in r.accesses_to("wl_next")
            if a.kind is AccessKind.WRITE
        ]
        assert pushes
        assert all(a.index_class is IndexClass.SLOT for a in pushes)

    def test_atomic_call_classified_rmw(self):
        spec = spec_for(Algorithm.SSSP, Model.CUDA,
                        update=Update.READ_MODIFY_WRITE)
        ir = parse_source(generate_source(spec))
        rmw = [
            a
            for r in ir.regions
            for a in r.accesses
            if a.kind is AccessKind.ATOMIC_RMW
        ]
        assert rmw

    def test_parse_source_is_memoized(self):
        # Satellite 2: per-file parses are cached, so re-parsing the same
        # text must return the identical IR object.
        text = generate_source(enumerate_specs(Algorithm.BFS, Model.CUDA)[0])
        assert parse_source(text) is parse_source(text)
