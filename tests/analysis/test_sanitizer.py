"""Trace sanitizer: real executions are clean, doctored traces produce
exactly one finding with the right rule id, and the Launcher hook fires."""

import numpy as np
import pytest

import repro.runtime.launcher as launcher_mod
from repro.analysis import (
    SanitizerError,
    assert_sane,
    sanitize_result,
    sanitize_trace,
)
from repro.graph.generators import grid2d, rmat
from repro.kernels.base import KernelResult
from repro.machine.trace import ExecutionTrace, IterationProfile
from repro.runtime import Launcher
from repro.styles.axes import (
    Algorithm,
    Determinism,
    Driver,
    Flow,
    Model,
    Update,
)
from repro.styles.combos import enumerate_specs

pytestmark = pytest.mark.analysis


def pick_spec(alg, model=Model.CUDA, **axes):
    """First enumerated spec of ``alg`` matching the given axis values."""
    for spec in enumerate_specs(alg, model):
        if all(getattr(spec, name) is value for name, value in axes.items()):
            return spec
    raise AssertionError(f"no {alg} spec with {axes}")


@pytest.fixture(scope="module")
def small_graph():
    return rmat(7, edge_factor=4, name="rmat7")


class TestRealExecutionsAreClean:
    def test_every_cuda_semantic_key_sanitizes_clean(self, small_graph):
        launcher = Launcher(sanitize=True)
        seen = set()
        for alg in Algorithm:
            for spec in enumerate_specs(alg, Model.CUDA):
                key = spec.semantic_key()
                if key in seen:
                    continue
                seen.add(key)
                result = launcher.execute_semantic(spec, small_graph)
                report = sanitize_trace(key, result.trace)
                assert report.ok, report.render_text()
        assert len(seen) > 50

    def test_cpu_models_on_grid(self):
        graph = grid2d(12, 12)
        launcher = Launcher(sanitize=True)
        for model in (Model.OPENMP, Model.CPP_THREADS):
            for alg in (Algorithm.BFS, Algorithm.PR):
                spec = enumerate_specs(alg, model)[0]
                result = launcher.execute_semantic(spec, graph)
                assert sanitize_result(spec, result).ok

    def test_assert_sane_passes_on_clean_trace(self, small_graph):
        spec = pick_spec(Algorithm.BFS, update=Update.READ_MODIFY_WRITE)
        result = Launcher().execute_semantic(spec, small_graph)
        assert_sane(spec.semantic_key(), result.trace)

    def test_rw_push_runs_record_store_races(self, small_graph):
        spec = pick_spec(
            Algorithm.BFS, update=Update.READ_WRITE, flow=Flow.PUSH
        )
        result = Launcher().execute_semantic(spec, small_graph)
        assert sum(
            p.store_conflict_extra for p in result.trace.profiles
        ) > 0


def one_profile_trace(profile, *, iterations=0, converged=True):
    return ExecutionTrace(
        profiles=[profile],
        n_edges=10,
        n_vertices=5,
        iterations=iterations,
        converged=converged,
    )


def assert_single(style, trace, rule):
    report = sanitize_trace(style, trace)
    assert [f.rule for f in report.findings] == [rule], report.render_text()
    with pytest.raises(SanitizerError) as exc:
        assert_sane(style, trace)
    assert rule in exc.value.report.by_rule()


class TestDoctoredTraces:
    """Each injected trace mutation produces exactly one finding."""

    def test_rw_style_with_atomic_histogram(self):
        # The ISSUE's acceptance mutation: a read-write style whose trace
        # carries an atomic-conflict histogram.
        spec = pick_spec(
            Algorithm.BFS, update=Update.READ_WRITE, flow=Flow.PUSH
        )
        p = IterationProfile(n_items=8, label="relax-vertex", conflict_extra=3.0,
                             max_conflict=2)
        assert_single(spec.semantic_key(), one_profile_trace(p), "SAN-RW-HIST")

    def test_rmw_push_without_histogram(self):
        spec = pick_spec(
            Algorithm.SSSP, update=Update.READ_MODIFY_WRITE, flow=Flow.PUSH
        )
        p = IterationProfile(n_items=8, label="relax-vertex", atomics_base=2.0)
        assert_single(spec, one_profile_trace(p), "SAN-RMW-HIST")

    def test_store_race_stats_under_rmw(self):
        spec = pick_spec(Algorithm.CC, update=Update.READ_MODIFY_WRITE)
        p = IterationProfile(
            n_items=8, label="relax-edge", store_conflict_extra=4.0,
            store_max_conflict=3,
        )
        assert_single(spec, one_profile_trace(p), "SAN-STORE-RACE")

    def test_negative_count(self):
        spec = pick_spec(Algorithm.PR)
        p = IterationProfile(n_items=4, base_cycles=-1.0)
        assert_single(spec, one_profile_trace(p), "SAN-NEG")

    def test_negative_inner_trip(self):
        spec = pick_spec(Algorithm.TC)
        p = IterationProfile(n_items=3, inner=np.array([1, -2, 0]))
        assert_single(spec, one_profile_trace(p), "SAN-NEG")

    def test_inner_shape_mismatch(self):
        spec = pick_spec(Algorithm.MIS)
        p = IterationProfile(n_items=4)
        p.inner = np.zeros(3, dtype=np.int32)  # bypass __post_init__
        assert_single(spec, one_profile_trace(p), "SAN-INNER-SHAPE")

    def test_worklist_imbalance(self):
        spec = pick_spec(
            Algorithm.BFS, driver=Driver.DATA, update=Update.READ_WRITE
        )
        trace = ExecutionTrace(
            profiles=[
                IterationProfile(n_items=5, label="relax-vertex-wl", wl_pushes=3),
                IterationProfile(n_items=4, label="relax-vertex-wl", wl_pushes=0),
            ],
            iterations=0,
        )
        assert_single(spec, trace, "SAN-WL-BALANCE")

    def test_final_worklist_pass_still_pushing(self):
        spec = pick_spec(
            Algorithm.BFS, driver=Driver.DATA, update=Update.READ_WRITE
        )
        p = IterationProfile(n_items=5, label="relax-vertex-wl", wl_pushes=2)
        assert_single(spec, one_profile_trace(p, converged=True), "SAN-WL-FINAL")

    def test_non_benign_race(self):
        spec = pick_spec(
            Algorithm.SSSP, update=Update.READ_WRITE, flow=Flow.PUSH
        )
        p = IterationProfile(
            n_items=8, label="relax-vertex", store_conflict_extra=4.0,
            store_max_conflict=2,
        )
        assert_single(
            spec, one_profile_trace(p, converged=False), "SAN-RACE-BENIGN"
        )

    def test_deterministic_without_refresh(self):
        spec = pick_spec(Algorithm.BFS, determinism=Determinism.DETERMINISTIC)
        p = IterationProfile(n_items=5, label="relax-vertex")
        assert_single(
            spec, one_profile_trace(p, iterations=2), "SAN-DETERMINISM"
        )

    def test_nondeterministic_with_refresh(self):
        spec = pick_spec(
            Algorithm.BFS, determinism=Determinism.NON_DETERMINISTIC
        )
        trace = ExecutionTrace(
            profiles=[
                IterationProfile(n_items=5, label="relax-vertex"),
                IterationProfile(n_items=5, label="double-buffer refresh"),
            ],
            iterations=2,
        )
        assert_single(spec, trace, "SAN-DETERMINISM")

    def test_multiple_violations_all_reported(self):
        spec = pick_spec(
            Algorithm.BFS, update=Update.READ_WRITE, flow=Flow.PUSH
        )
        p = IterationProfile(
            n_items=8, label="relax-vertex", conflict_extra=3.0,
            base_cycles=-1.0,
        )
        report = sanitize_trace(spec, one_profile_trace(p))
        assert set(report.by_rule()) == {"SAN-NEG", "SAN-RW-HIST"}
        assert not report.ok


class _StubKernel:
    def __init__(self, result):
        self._result = result

    def run(self, key):
        return self._result


class TestLauncherHook:
    def test_env_var_controls_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert Launcher().sanitize is False
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert Launcher().sanitize is False
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert Launcher().sanitize is True
        assert Launcher(sanitize=False).sanitize is False

    def test_sanitizing_launcher_runs_clean(self, small_graph):
        spec = pick_spec(Algorithm.BFS, update=Update.READ_MODIFY_WRITE)
        result = Launcher(sanitize=True).execute_semantic(spec, small_graph)
        assert result.trace.converged

    def test_corrupted_trace_raises_from_launcher(
        self, small_graph, monkeypatch
    ):
        spec = pick_spec(
            Algorithm.BFS, update=Update.READ_WRITE, flow=Flow.PUSH
        )
        bad = KernelResult(
            values=np.zeros(small_graph.n_vertices, dtype=np.int64),
            trace=one_profile_trace(
                IterationProfile(
                    n_items=4, label="relax-vertex", conflict_extra=2.0,
                    max_conflict=2,
                )
            ),
        )
        monkeypatch.setattr(
            launcher_mod, "build_kernel", lambda alg, graph, source: _StubKernel(bad)
        )
        launcher = Launcher(verify=False, sanitize=True)
        with pytest.raises(SanitizerError) as exc:
            launcher.execute_semantic(spec, small_graph)
        assert "SAN-RW-HIST" in exc.value.report.by_rule()
        # The offending trace must not have been cached.
        assert launcher.cached_traces == 0
