"""Shared fixtures: generated suites for the conformance tests."""

import pytest

from repro.codegen.suite import generate_suite


@pytest.fixture(scope="session")
def full_suite(tmp_path_factory):
    """The complete 32-bit three-model suite (all 1,698 variants)."""
    root = tmp_path_factory.mktemp("full-suite")
    generate_suite(root)
    return root


@pytest.fixture(scope="session")
def sampled_suite(tmp_path_factory):
    """A --limit style sample, with both data widths (exercises -i64)."""
    root = tmp_path_factory.mktemp("sampled-suite")
    generate_suite(root, data_bits=(32, 64), limit_per_pair=6)
    return root
