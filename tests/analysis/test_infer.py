"""Style inference and the static race detector.

Two halves:

* the acceptance gate — the IR engine re-derives every carried axis for
  every variant in the full suite and agrees with the manifest (zero
  error findings; the Section 2.5 benign races surface as notes only);
* a planted-mutation harness — each hand-injected style break yields
  exactly one error finding with the expected rule id, which is the
  self-test that the detector actually detects.
"""

import pytest

from repro.analysis import analyze_source_ir, lint_suite, parse_source
from repro.analysis.findings import Severity
from repro.analysis.infer import infer_axes
from repro.codegen import generate_source
from repro.styles.axes import (
    AXIS_FIELDS,
    Algorithm,
    CpuReduction,
    Determinism,
    Driver,
    Dup,
    Flow,
    Model,
    OmpSchedule,
    Update,
)
from repro.styles.combos import enumerate_specs

pytestmark = pytest.mark.analysis


def spec_for(alg, model, **conds):
    for spec in enumerate_specs(alg, model):
        if all(getattr(spec, k) is v for k, v in conds.items()):
            return spec
    raise AssertionError(f"no spec for {alg}/{model}/{conds}")


class TestFullSuiteAgreement:
    """The tentpole acceptance criterion: for every file in the full
    generated suite, IR-inferred style == declared style on all 13 axes,
    cross-checked against the construct linter (three-way differential)."""

    def test_full_suite_ir_clean(self, full_suite):
        report = lint_suite(full_suite, ir=True)
        assert report.checked == 1698
        assert report.errors == [], report.render_text()[:4000]
        # The only expected findings are the documented Section 2.5
        # benign races, and they are notes.
        assert {f.rule for f in report.findings} <= {"RACE-BENIGN"}
        assert report.ok

    def test_benign_races_are_reported_not_hidden(self, full_suite):
        report = lint_suite(full_suite, ir=True)
        benign = [f for f in report.findings if f.rule == "RACE-BENIGN"]
        assert benign, "the suite contains Section 2.5 races by design"
        assert all(f.severity is Severity.NOTE for f in benign)

    @pytest.mark.parametrize("model", list(Model), ids=lambda m: m.value)
    def test_inferred_axes_match_declared_spot_checks(self, model):
        # One variant per algorithm per model, checked field by field.
        for alg in Algorithm:
            spec = enumerate_specs(alg, model)[-1]
            ir = parse_source(generate_source(spec))
            inferred = infer_axes(alg, model, ir)
            for field in AXIS_FIELDS:
                declared = getattr(spec, field)
                if declared is None:
                    continue
                assert inferred[field] is declared, (
                    f"{spec.label()}: {field} inferred {inferred[field]} "
                    f"!= declared {declared}"
                )


def errors_of(spec, text):
    return [
        f
        for f in analyze_source_ir(spec, text, locus=spec.label())
        if f.severity is Severity.ERROR
    ]


def mutate(text, old, new, count=1):
    assert text.count(old) == count, (
        f"mutation anchor {old!r} found {text.count(old)}x, wanted {count}"
    )
    return text.replace(old, new)


class TestPlantedMutations:
    """Each planted style break yields exactly one error with the
    expected rule id — no more, no less."""

    def test_clean_sources_have_no_errors(self):
        for model in Model:
            spec = enumerate_specs(Algorithm.SSSP, model)[0]
            assert errors_of(spec, generate_source(spec)) == []

    def test_dropped_atomic_is_infer_update(self):
        # Demote the CUDA atomicMin relaxation to a plain conditional
        # store: the update axis evidence flips rmw -> rw.
        spec = spec_for(
            Algorithm.SSSP, Model.CUDA,
            update=Update.READ_MODIFY_WRITE,
            driver=Driver.TOPOLOGY, flow=Flow.PUSH,
        )
        text = mutate(
            generate_source(spec),
            "atomicMin(&val_out[u], new_val);",
            "if (new_val < val_out[u]) val_out[u] = new_val;",
        )
        errors = errors_of(spec, text)
        assert [f.rule for f in errors] == ["INFER-UPDATE"]

    def test_swapped_schedule_clause_is_infer_omp_schedule(self):
        spec = spec_for(
            Algorithm.SSSP, Model.OPENMP,
            omp_schedule=OmpSchedule.DYNAMIC, driver=Driver.TOPOLOGY,
        )
        text = generate_source(spec)
        assert " schedule(dynamic)" in text
        text = text.replace(" schedule(dynamic)", "")
        errors = errors_of(spec, text)
        assert [f.rule for f in errors] == ["INFER-OMP-SCHEDULE"]

    def test_broken_double_buffering_is_infer_determinism(self):
        # Collapse the two-array val_in/val_out scheme onto one array.
        spec = spec_for(
            Algorithm.CC, Model.OPENMP,
            determinism=Determinism.DETERMINISTIC,
            update=Update.READ_WRITE, driver=Driver.TOPOLOGY,
        )
        text = generate_source(spec).replace("val_out", "val_in")
        errors = errors_of(spec, text)
        assert [f.rule for f in errors] == ["INFER-DETERMINISM"]

    def test_aliased_worklist_index_is_race_wl_alias(self):
        # Push through the neighbor id instead of the atomically-claimed
        # slot: concurrent pushes overwrite each other.
        spec = spec_for(
            Algorithm.SSSP, Model.OPENMP,
            driver=Driver.DATA, dup=Dup.NODUP, flow=Flow.PUSH,
            update=Update.READ_WRITE,
        )
        text = mutate(generate_source(spec), "wl_next[slot] = u;",
                      "wl_next[u] = u;")
        errors = errors_of(spec, text)
        assert [f.rule for f in errors] == ["RACE-WL-ALIAS"]

    def test_unguarded_accumulation_is_race_reduction(self):
        # Delete the atomic pragma in front of the PageRank scatter.
        spec = spec_for(
            Algorithm.PR, Model.OPENMP,
            cpu_reduction=CpuReduction.ATOMIC, flow=Flow.PUSH,
        )
        text = mutate(
            generate_source(spec),
            "#pragma omp atomic\n        rank_out[g.nbr_list[i]] += c;",
            "rank_out[g.nbr_list[i]] += c;",
        )
        errors = errors_of(spec, text)
        assert [f.rule for f in errors] == ["RACE-REDUCTION"]
