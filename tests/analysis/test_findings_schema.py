"""Schema stability for the findings model.

Downstream consumers (the CI gate, the ``--json`` report, external
dashboards) key off rule ids, severity names and the JSON report shape.
This test freezes all three so a rename or a dropped rule shows up as an
explicit, reviewed diff instead of a silent contract break.
"""

import json

import pytest

from repro.analysis.findings import RULES, Finding, Report, Severity, rule_catalog

pytestmark = pytest.mark.analysis

EXPECTED_RULES = frozenset(
    {
        # conformance linter
        "CONF-UPDATE",
        "CONF-CUDA-ATOMIC",
        "CONF-WORKLIST",
        "CONF-STAMP",
        "CONF-OMP-SCHEDULE",
        "CONF-CPP-SCHEDULE",
        "CONF-GPU-REDUCTION",
        "CONF-CPU-REDUCTION",
        "CONF-PERSISTENCE",
        "CONF-GRANULARITY",
        "CONF-DETERMINISM",
        # manifest cross-check
        "MAN-PARSE",
        "MAN-INVALID",
        "MAN-FILE",
        "MAN-DUP",
        "MAN-UNKNOWN",
        "MAN-MISSING",
        # graph input validation
        "VAL-PARSE",
        "VAL-ROWPTR",
        "VAL-COLIDX",
        "VAL-WEIGHT",
        "VAL-WEIGHT-RANGE",
        "VAL-SELF-LOOP",
        "VAL-DUP-EDGE",
        "VAL-ASYM",
        "VAL-EMPTY",
        "VAL-ISOLATED",
        "VAL-SKEW",
        "VAL-UNSORTED",
        # IR race detector
        "RACE-PLAIN",
        "RACE-WL-ALIAS",
        "RACE-REDUCTION",
        "RACE-BENIGN",
        # IR style inference (one per axis + the differential)
        "INFER-ITERATION",
        "INFER-DRIVER",
        "INFER-DUP",
        "INFER-FLOW",
        "INFER-UPDATE",
        "INFER-DETERMINISM",
        "INFER-PERSISTENCE",
        "INFER-GRANULARITY",
        "INFER-ATOMIC-FLAVOR",
        "INFER-GPU-REDUCTION",
        "INFER-CPU-REDUCTION",
        "INFER-OMP-SCHEDULE",
        "INFER-CPP-SCHEDULE",
        "INFER-DIVERGENCE",
        # trace sanitizer
        "SAN-NEG",
        "SAN-INNER-SHAPE",
        "SAN-RW-HIST",
        "SAN-RMW-HIST",
        "SAN-STORE-RACE",
        "SAN-RACE-BENIGN",
        "SAN-WL-BALANCE",
        "SAN-WL-FINAL",
        "SAN-DETERMINISM",
    }
)


class TestRuleCatalog:
    def test_rule_id_set_is_frozen(self):
        assert set(RULES) == EXPECTED_RULES
        assert set(rule_catalog()) == EXPECTED_RULES

    def test_severity_wire_names_are_frozen(self):
        assert {s.value for s in Severity} == {"error", "warning", "note"}

    def test_registered_default_severities(self):
        notes = {rule for rule, (sev, _d) in RULES.items() if sev is Severity.NOTE}
        assert notes == {"RACE-BENIGN", "INFER-DIVERGENCE"}
        for rule in EXPECTED_RULES:
            if rule.startswith(("RACE", "INFER")) and rule not in notes:
                assert RULES[rule][0] is Severity.ERROR, rule

    def test_unknown_rule_is_rejected(self):
        with pytest.raises(ValueError):
            Finding(rule="NOPE-1", spec="", locus="", message="")
        with pytest.raises((KeyError, ValueError)):
            Finding.of("NOPE-1", spec="", locus="", message="")


class TestReportJson:
    def test_report_shape_is_frozen(self):
        report = Report(title="t", checked=3)
        report.add(
            Finding.of(
                "RACE-PLAIN", spec="bfs-cuda", locus="a.cu", message="boom"
            )
        )
        payload = json.loads(report.to_json())
        assert set(payload) == {
            "title",
            "checked",
            "ok",
            "errors",
            "warnings",
            "notes",
            "findings",
        }
        assert payload["checked"] == 3
        assert payload["ok"] is False
        assert payload["errors"] == 1
        (finding,) = payload["findings"]
        assert set(finding) == {"rule", "severity", "spec", "locus", "message"}
        assert finding["severity"] == "error"

    def test_ok_tracks_errors_only(self):
        report = Report(title="t", checked=1)
        report.add(
            Finding.of("RACE-BENIGN", spec="s", locus="f", message="expected")
        )
        assert report.ok
        assert json.loads(report.to_json())["notes"] == 1
