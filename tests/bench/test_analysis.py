"""Unit tests for the cross-cutting analyses (Figs 14/15, Section 5.13)."""

import numpy as np
import pytest

from repro.bench import (
    BEST_STYLE_AXES,
    COMBINATION_STYLES,
    best_style_percentages,
    property_correlations,
    style_combination_matrix,
)
from repro.graph import analyze, load_all
from repro.styles import Model


class TestBestStyles:
    def test_structure(self, tiny_sweep):
        table = best_style_percentages(tiny_sweep)
        assert set(table) == set(Model)
        for axes in table.values():
            assert set(axes) == set(BEST_STYLE_AXES)

    def test_percentages_sum_to_one(self, tiny_sweep):
        table = best_style_percentages(tiny_sweep)
        for axes in table.values():
            for options in axes.values():
                if options:  # empty when no winner carries the axis
                    assert sum(options.values()) == pytest.approx(1.0)

    def test_winners_are_best_in_their_cell(self, tiny_sweep):
        # Reconstruct one cell and check the winner logic.
        cell = [
            r
            for r in tiny_sweep.select(models=[Model.CUDA])
            if r.graph == "USA-road-d.NY" and r.device == "RTX 3090"
            and r.spec.algorithm.value == "bfs"
        ]
        best = max(cell, key=lambda r: r.throughput_ges)
        assert best.throughput_ges >= max(r.throughput_ges for r in cell)


class TestCombinationMatrix:
    def test_shape_and_labels(self, tiny_sweep):
        labels, matrix = style_combination_matrix(tiny_sweep)
        k = len(COMBINATION_STYLES)
        assert len(labels) == k
        assert matrix.shape == (k, k)

    def test_diagonal_and_same_axis_nan(self, tiny_sweep):
        _, matrix = style_combination_matrix(tiny_sweep)
        # (vertex, edge) share the iteration axis -> NaN.
        assert np.isnan(matrix[0, 0])
        assert np.isnan(matrix[0, 1])

    def test_entries_positive_where_defined(self, tiny_sweep):
        _, matrix = style_combination_matrix(tiny_sweep)
        finite = matrix[np.isfinite(matrix)]
        assert finite.size > 0
        assert (finite > 0).all()

    def test_asymmetric(self, tiny_sweep):
        # The baselines differ per row, so the matrix is not symmetric.
        _, matrix = style_combination_matrix(tiny_sweep)
        finite_pairs = [
            (i, j)
            for i in range(matrix.shape[0])
            for j in range(matrix.shape[1])
            if np.isfinite(matrix[i, j]) and np.isfinite(matrix[j, i])
        ]
        assert any(
            not np.isclose(matrix[i, j], matrix[j, i]) for i, j in finite_pairs
        )


class TestCorrelations:
    def test_correlations_bounded(self, tiny_sweep):
        props = {
            name: analyze(g)
            for name, g in load_all("tiny").items()
            if name in {r.graph for r in tiny_sweep.runs}
        }
        corr = property_correlations(tiny_sweep, props)
        assert corr
        for r in corr.values():
            assert -1.0 <= r <= 1.0

    def test_style_and_property_keys(self, tiny_sweep):
        props = {
            name: analyze(g)
            for name, g in load_all("tiny").items()
            if name in {r.graph for r in tiny_sweep.runs}
        }
        corr = property_correlations(tiny_sweep, props)
        styles = {k[0] for k in corr}
        properties = {k[1] for k in corr}
        assert "granularity=warp" in styles
        assert "avg_degree" in properties
        assert "diameter" in properties
