"""Tests for the CSV exporters."""

import pytest

from repro.bench import (
    combination_matrix_to_csv,
    figure_ratios_to_csv,
    sweep_to_csv,
)


class TestSweepCsv:
    def test_row_per_run(self, tiny_sweep):
        csv = sweep_to_csv(tiny_sweep)
        rows = csv.strip().splitlines()
        assert len(rows) == len(tiny_sweep) + 1
        assert rows[0].startswith("model,algorithm,graph,device")

    def test_values_parse(self, tiny_sweep):
        csv = sweep_to_csv(tiny_sweep)
        cells = csv.strip().splitlines()[1].split(",")
        float(cells[4])  # seconds
        float(cells[5])  # throughput
        int(cells[6])  # iterations


class TestFigureCsv:
    def test_known_figure(self, tiny_sweep):
        csv = figure_ratios_to_csv(tiny_sweep, "fig8")
        rows = csv.strip().splitlines()
        assert rows[0] == "figure,algorithm,ratio_persistent_over_nonpersistent"
        assert len(rows) > 10
        assert all(float(r.split(",")[2]) > 0 for r in rows[1:])

    def test_unknown_figure(self, tiny_sweep):
        with pytest.raises(KeyError, match="unknown figure"):
            figure_ratios_to_csv(tiny_sweep, "fig99")


class TestMatrixCsv:
    def test_shape(self, tiny_sweep):
        csv = combination_matrix_to_csv(tiny_sweep)
        rows = csv.strip().splitlines()
        header = rows[0].split(",")
        assert header[0] == "style_x"
        assert len(rows) == len(header)  # square + header offset by 1 col
        # Undefined cells are empty strings.
        assert ",," in csv or csv.rstrip().endswith(",")
