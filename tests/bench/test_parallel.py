"""Tests for the parallel sweep engine, batched timing, and the
content-addressed result cache."""

import pickle

import pytest

from repro.bench import (
    StudyResults,
    SweepConfig,
    cached_sweep,
    load_results,
    partition_blocks,
    run_sweep,
    run_sweep_parallel,
    sweep_cache_key,
    sweep_cache_path,
)
from repro.bench.parallel import resolve_workers, run_block
from repro.graph import load_dataset
from repro.machine import CPUModel, GPUModel, RTX_3090, THREADRIPPER_2950X
from repro.runtime import Launcher
from repro.styles import Algorithm, Model, enumerate_specs

REDUCED = SweepConfig(
    scale="tiny",
    algorithms=(Algorithm.BFS, Algorithm.PR),
    graphs=("USA-road-d.NY", "soc-LiveJournal1"),
)


def run_signature(results):
    return [
        (r.spec, r.device, r.graph, r.seconds, r.throughput_ges)
        for r in results.runs
    ]


class TestBatchedTiming:
    """time_trace_batch must be bit-identical to per-spec time_trace."""

    @pytest.mark.parametrize("algorithm", [Algorithm.SSSP, Algorithm.PR])
    def test_gpu_batch_matches_serial(self, algorithm):
        graph = load_dataset("soc-LiveJournal1", "tiny")
        launcher = Launcher()
        model = GPUModel(RTX_3090)
        specs = enumerate_specs(algorithm, Model.CUDA)
        groups = {}
        for spec in specs:
            groups.setdefault(spec.semantic_key(), []).append(spec)
        for group in groups.values():
            trace = launcher.execute_semantic(group[0], graph).trace
            serial = [model.time_trace(trace, spec) for spec in group]
            assert model.time_trace_batch(trace, group) == serial

    @pytest.mark.parametrize("model_axis", [Model.OPENMP, Model.CPP_THREADS])
    def test_cpu_batch_matches_serial(self, model_axis):
        graph = load_dataset("USA-road-d.NY", "tiny")
        launcher = Launcher()
        model = CPUModel(THREADRIPPER_2950X)
        specs = enumerate_specs(Algorithm.PR, model_axis)
        groups = {}
        for spec in specs:
            groups.setdefault(spec.semantic_key(), []).append(spec)
        for group in groups.values():
            trace = launcher.execute_semantic(group[0], graph).trace
            serial = [model.time_trace(trace, spec) for spec in group]
            assert model.time_trace_batch(trace, group) == serial

    def test_gpu_batch_rejects_cpu_specs(self):
        graph = load_dataset("USA-road-d.NY", "tiny")
        launcher = Launcher()
        spec = enumerate_specs(Algorithm.BFS, Model.OPENMP)[0]
        trace = launcher.execute_semantic(spec, graph).trace
        with pytest.raises(ValueError, match="CUDA specs only"):
            GPUModel(RTX_3090).time_trace_batch(trace, [spec])

    def test_run_batch_matches_run(self):
        graph = load_dataset("USA-road-d.NY", "tiny")
        launcher = Launcher()
        specs = enumerate_specs(Algorithm.BFS, Model.CUDA)[:20]
        batch = launcher.run_batch(specs, graph, RTX_3090)
        singles = [launcher.run(spec, graph, RTX_3090) for spec in specs]
        assert batch == singles

    def test_launcher_memoizes_models(self):
        launcher = Launcher()
        assert launcher.model_for(RTX_3090) is launcher.model_for(RTX_3090)
        assert isinstance(launcher.model_for(THREADRIPPER_2950X), CPUModel)


class TestParallelSweep:
    def test_partition_covers_grid_in_serial_order(self):
        blocks = partition_blocks(REDUCED)
        assert len(blocks) == 2 * 2  # algorithms x graphs
        assert [(b.algorithm, b.graph_name) for b in blocks] == [
            (Algorithm.BFS, "USA-road-d.NY"),
            (Algorithm.BFS, "soc-LiveJournal1"),
            (Algorithm.PR, "USA-road-d.NY"),
            (Algorithm.PR, "soc-LiveJournal1"),
        ]

    def test_parallel_matches_serial(self):
        serial = run_sweep(REDUCED)
        parallel = run_sweep_parallel(REDUCED, workers=2)
        assert run_signature(parallel) == run_signature(serial)

    def test_workers_one_falls_back_to_serial(self):
        serial = run_sweep(REDUCED)
        fallback = run_sweep_parallel(REDUCED, workers=1)
        assert run_signature(fallback) == run_signature(serial)

    def test_run_block_is_the_serial_block_body(self):
        block = partition_blocks(REDUCED)[0]
        runs = run_block(block)
        serial = run_sweep(block.config)
        assert runs == serial.runs

    def test_progress_reports_every_block(self):
        seen = []
        run_sweep_parallel(
            REDUCED, workers=2,
            progress=lambda done, total, block: seen.append((done, total)),
        )
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_custom_graphs_ship_to_workers(self):
        graphs = {"custom": load_dataset("USA-road-d.NY", "tiny")}
        config = SweepConfig(scale="tiny", algorithms=(Algorithm.BFS,))
        serial = run_sweep(config, graphs=graphs)
        parallel = run_sweep_parallel(config, workers=2, graphs=graphs)
        assert run_signature(parallel) == run_signature(serial)

    def test_resolve_workers(self, monkeypatch):
        assert resolve_workers(3) == 3
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "5")
        assert resolve_workers(None) == 5
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestSemanticShards:
    """Sharded (shm-backed) blocks must be invisible in the results."""

    def test_shard_blocks_splits_only_shm_backed_blocks(self):
        from repro.bench import shard_blocks

        blocks = partition_blocks(REDUCED)
        # No shm handle: blocks must pass through untouched even with
        # surplus workers (rebuilding the graph per shard is a net loss).
        assert shard_blocks(blocks, workers=32) == blocks

    def test_sharded_parallel_matches_serial(self, tmp_path):
        serial = run_sweep(REDUCED)
        sharded = run_sweep_parallel(
            REDUCED, workers=8, checkpoint_dir=tmp_path
        )
        assert run_signature(sharded) == run_signature(serial)
        assert sharded.kernel_executions == serial.kernel_executions

    def test_shards_partition_the_semantic_groups(self):
        from dataclasses import replace

        from repro.bench import semantic_shard_order
        from repro.graph.shm import SharedArraySpec, SharedGraphHandle

        block = partition_blocks(REDUCED)[0]
        dummy = SharedArraySpec(segment="x", shape=(1,), dtype="<i8")
        handle = SharedGraphHandle(
            graph_name=block.graph_name, fingerprint="f",
            row_ptr=dummy, col_idx=dummy, weights=None,
        )
        block = replace(block, shm_handle=handle)
        n = 3
        shards = [replace(block, shard=s, n_shards=n) for s in range(n)]
        order = semantic_shard_order(block.algorithm, block.models)
        for model in block.models:
            full = enumerate_specs(block.algorithm, model)
            pieces = [shard.specs_for(model) for shard in shards]
            # Disjoint, exhaustive, and grouped by semantic key.
            flat = [spec for piece in pieces for spec in piece]
            assert sorted(s.label() for s in flat) == sorted(
                s.label() for s in full
            )
            for s, piece in enumerate(pieces):
                assert all(
                    order[spec.semantic_key()] % n == s for spec in piece
                )

    def test_shard_keys_are_distinct_and_worker_count_sensitive(self):
        from dataclasses import replace

        block = partition_blocks(REDUCED)[0]
        assert block.key == ("bfs", "USA-road-d.NY")
        a = replace(block, shard=0, n_shards=2).key
        b = replace(block, shard=1, n_shards=2).key
        c = replace(block, shard=0, n_shards=3).key
        assert len({a, b, c, block.key}) == 4

    def test_plane_disabled_still_matches_serial(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        serial = run_sweep(REDUCED)
        parallel = run_sweep_parallel(
            REDUCED, workers=4, checkpoint_dir=tmp_path
        )
        assert run_signature(parallel) == run_signature(serial)


class TestWorkStealing:
    """The stealing pool must be invisible in the results: byte-identical
    runs and the same kernel executions at every worker count."""

    def test_resolve_work_stealing(self, monkeypatch):
        from repro.bench.parallel import resolve_work_stealing

        assert resolve_work_stealing(True) is True
        assert resolve_work_stealing(False) is False
        monkeypatch.delenv("REPRO_WORK_STEALING", raising=False)
        assert resolve_work_stealing(None) is True
        for off in ("0", "false", "No", "OFF"):
            monkeypatch.setenv("REPRO_WORK_STEALING", off)
            assert resolve_work_stealing(None) is False
        monkeypatch.setenv("REPRO_WORK_STEALING", "1")
        assert resolve_work_stealing(None) is True
        # Explicit argument wins over the environment.
        monkeypatch.setenv("REPRO_WORK_STEALING", "0")
        assert resolve_work_stealing(True) is True

    def test_fine_sharding_is_worker_count_independent(self):
        from dataclasses import replace

        from repro.bench import semantic_shard_order, shard_blocks
        from repro.graph.shm import SharedArraySpec, SharedGraphHandle

        dummy = SharedArraySpec(segment="x", shape=(1,), dtype="<i8")
        blocks = [
            replace(
                block,
                shm_handle=SharedGraphHandle(
                    graph_name=block.graph_name, fingerprint="f",
                    row_ptr=dummy, col_idx=dummy, weights=None,
                ),
            )
            for block in partition_blocks(REDUCED)
        ]
        fine_8 = shard_blocks(blocks, workers=8, fine=True)
        fine_32 = shard_blocks(blocks, workers=32, fine=True)
        # Checkpoint keys must not depend on the worker count.
        assert [b.key for b in fine_8] == [b.key for b in fine_32]
        # One shard per semantic group of each block.
        for block in blocks:
            n_groups = len(
                semantic_shard_order(block.algorithm, block.models)
            )
            shards = [b for b in fine_8 if b.graph_name == block.graph_name
                      and b.algorithm is block.algorithm]
            assert len(shards) == n_groups
            assert [s.shard for s in shards] == list(range(n_groups))

    def test_stealing_matches_serial_at_every_worker_count(self, tmp_path):
        serial = run_sweep(REDUCED)
        for workers in (2, 16):
            stolen = run_sweep_parallel(
                REDUCED, workers=workers,
                checkpoint_dir=tmp_path / str(workers), work_stealing=True,
            )
            assert run_signature(stolen) == run_signature(serial)
            assert stolen.kernel_executions == serial.kernel_executions

    def test_static_engine_still_matches_serial(self, tmp_path):
        serial = run_sweep(REDUCED)
        static = run_sweep_parallel(
            REDUCED, workers=16, checkpoint_dir=tmp_path,
            work_stealing=False,
        )
        assert run_signature(static) == run_signature(serial)
        assert static.kernel_executions == serial.kernel_executions


class TestSelectIndices:
    @pytest.fixture(scope="class")
    def results(self):
        return run_sweep(REDUCED)

    def test_matches_linear_scan(self, results):
        filters = dict(
            algorithms=[Algorithm.PR],
            models=[Model.CUDA, Model.OPENMP],
            devices=["RTX 3090", "Threadripper 2950X"],
            graphs=["soc-LiveJournal1"],
        )
        for subset in (
            {},
            {"algorithms": filters["algorithms"]},
            {"devices": filters["devices"]},
            {"graphs": filters["graphs"], "models": filters["models"]},
            filters,
        ):
            expected = [
                r
                for r in results.runs
                if ("algorithms" not in subset or r.spec.algorithm in subset["algorithms"])
                and ("models" not in subset or r.spec.model in subset["models"])
                and ("devices" not in subset or r.device in subset["devices"])
                and ("graphs" not in subset or r.graph in subset["graphs"])
            ]
            assert list(results.select(**subset)) == expected

    def test_unknown_key_selects_nothing(self, results):
        assert list(results.select(devices=["No Such Device"])) == []

    def test_indices_survive_pickle_round_trip(self, results, tmp_path):
        from repro.bench import save_results

        path = save_results(results, tmp_path / "r.pkl", scale="tiny")
        back = load_results(path, rebuild_graphs=False)
        assert len(list(back.select(algorithms=[Algorithm.PR]))) == len(
            list(results.select(algorithms=[Algorithm.PR]))
        )


class TestSweepCache:
    CONFIG = SweepConfig(
        scale="tiny",
        algorithms=(Algorithm.BFS,),
        graphs=("USA-road-d.NY",),
    )

    def test_round_trip_uses_cache(self, tmp_path):
        calls = []

        def runner(config):
            calls.append(config)
            return run_sweep(config)

        first = cached_sweep(self.CONFIG, cache_dir=tmp_path, runner=runner)
        second = cached_sweep(self.CONFIG, cache_dir=tmp_path, runner=runner)
        assert len(calls) == 1  # second invocation loaded from disk
        assert run_signature(second) == run_signature(first)
        assert sweep_cache_path(self.CONFIG, tmp_path).exists()

    def test_distinct_configs_get_distinct_keys(self):
        other = SweepConfig(
            scale="tiny", algorithms=(Algorithm.PR,), graphs=("USA-road-d.NY",)
        )
        assert sweep_cache_key(self.CONFIG) != sweep_cache_key(other)

    def test_code_fingerprint_change_invalidates(self, tmp_path, monkeypatch):
        calls = []

        def runner(config):
            calls.append(config)
            return run_sweep(config)

        cached_sweep(self.CONFIG, cache_dir=tmp_path, runner=runner)
        # Simulate a simulator source edit: the fingerprint changes, the
        # old entry no longer addresses this configuration.
        from repro.bench import storage

        monkeypatch.setattr(
            storage, "code_fingerprint", lambda: "deadbeef" * 8
        )
        cached_sweep(self.CONFIG, cache_dir=tmp_path, runner=runner)
        assert len(calls) == 2

    def test_refresh_bypasses_but_rewrites(self, tmp_path):
        calls = []

        def runner(config):
            calls.append(config)
            return run_sweep(config)

        cached_sweep(self.CONFIG, cache_dir=tmp_path, runner=runner)
        cached_sweep(self.CONFIG, cache_dir=tmp_path, runner=runner, refresh=True)
        assert len(calls) == 2
        cached_sweep(self.CONFIG, cache_dir=tmp_path, runner=runner)
        assert len(calls) == 2  # refreshed entry is warm again

    def test_corrupt_entry_is_rebuilt(self, tmp_path):
        path = sweep_cache_path(self.CONFIG, tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps({"nope": 1}))
        results = cached_sweep(
            self.CONFIG, cache_dir=tmp_path, runner=run_sweep
        )
        assert isinstance(results, StudyResults)
        assert len(results) > 0
        assert load_results(path).n_programs == results.n_programs
