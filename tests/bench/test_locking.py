"""Advisory store locking: two processes contending on one directory.

The sweep cache, trace store and checkpoint store all write through
``tmp + os.replace`` (atomic per file), but their multi-file sections —
GC scans, quarantine moves — interleave badly without a lock.  These
tests pin the :mod:`repro.runtime.locking` contract: mutual exclusion
across *processes*, shared readers, crash-safety (the kernel releases a
dead holder's lock), and the hidden lock file staying invisible to the
stores' ``glob`` patterns.
"""

import multiprocessing
import os
import time

import pytest

from repro.runtime.locking import LOCK_FILE_NAME, advisory_lock, store_lock

fcntl = pytest.importorskip("fcntl")


def _hold_lock(directory, acquired, release, order, label):
    with store_lock(directory):
        order.append(f"{label}-in")
        acquired.set()
        release.wait(30)
    order.append(f"{label}-out")


def test_two_processes_exclude_each_other(tmp_path):
    ctx = multiprocessing.get_context()
    manager = ctx.Manager()
    order = manager.list()
    a_acquired, a_release = ctx.Event(), ctx.Event()
    b_acquired, b_release = ctx.Event(), ctx.Event()

    a = ctx.Process(
        target=_hold_lock, args=(str(tmp_path), a_acquired, a_release, order, "a")
    )
    a.start()
    assert a_acquired.wait(10)

    b = ctx.Process(
        target=_hold_lock, args=(str(tmp_path), b_acquired, b_release, order, "b")
    )
    b.start()
    # B must block while A holds the exclusive lock.
    assert not b_acquired.wait(0.5)
    b_release.set()  # pre-arm B's release so it exits promptly once in
    a_release.set()
    assert b_acquired.wait(10), "B never acquired after A released"
    a.join(10)
    b.join(10)
    assert list(order) == ["a-in", "a-out", "b-in", "b-out"]


def _increment_counter(directory, path, rounds):
    for _ in range(rounds):
        with store_lock(directory):
            value = int(path.read_text()) if path.exists() else 0
            # Force a racy window: without the lock, concurrent
            # read-modify-write cycles lose increments.
            time.sleep(0.001)
            path.write_text(str(value + 1))


def test_locked_read_modify_write_loses_no_updates(tmp_path):
    """The classic lost-update check, across real processes."""
    counter = tmp_path / "counter.txt"
    ctx = multiprocessing.get_context()
    rounds, procs = 20, 4
    workers = [
        ctx.Process(target=_increment_counter, args=(str(tmp_path), counter, rounds))
        for _ in range(procs)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join(60)
    assert int(counter.read_text()) == rounds * procs


def _crash_while_holding(directory):
    fd = os.open(
        os.path.join(directory, LOCK_FILE_NAME), os.O_RDWR | os.O_CREAT, 0o644
    )
    fcntl.flock(fd, fcntl.LOCK_EX)
    os._exit(1)  # die without unlocking


def test_dead_holders_lock_is_released_by_the_kernel(tmp_path):
    ctx = multiprocessing.get_context()
    crasher = ctx.Process(target=_crash_while_holding, args=(str(tmp_path),))
    crasher.start()
    crasher.join(10)
    assert crasher.exitcode == 1
    # A crashed holder must not wedge the store forever.
    start = time.monotonic()
    with store_lock(tmp_path) as held:
        assert held
    assert time.monotonic() - start < 5


def test_shared_locks_coexist(tmp_path):
    lock_path = tmp_path / LOCK_FILE_NAME
    with advisory_lock(lock_path, shared=True) as a:
        with advisory_lock(lock_path, shared=True) as b:
            assert a and b


def test_lock_file_is_invisible_to_store_globs(tmp_path):
    with store_lock(tmp_path):
        pass
    assert (tmp_path / LOCK_FILE_NAME).exists()
    # The stores enumerate entries with these patterns; the lock file
    # must never be mistaken for an entry (or GC'd/quarantined).
    assert list(tmp_path.glob("trace-*.npz")) == []
    assert list(tmp_path.glob("block-*.ckpt")) == []
    assert list(tmp_path.glob("sweep-*.pkl")) == []


def test_contended_trace_store_saves_stay_consistent(tmp_path):
    """Two processes saving into one trace-store directory concurrently:
    every entry loads back clean afterwards."""
    from repro.bench.tracestore import TraceStore
    from repro.graph.datasets import load_dataset
    from repro.runtime.launcher import Launcher
    from repro.styles.axes import Algorithm, Model
    from repro.styles.combos import enumerate_specs

    def save_some(directory, seed):
        graph = load_dataset("2d-2e20.sym", "tiny")
        store = TraceStore(directory)
        launcher = Launcher(verify=False, trace_store=store)
        spec = enumerate_specs(Algorithm.BFS, Model.OPENMP)[seed]
        launcher.execute_semantic(spec, graph)

    ctx = multiprocessing.get_context()
    workers = [
        ctx.Process(target=save_some, args=(str(tmp_path), seed))
        for seed in range(3)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join(120)
        assert w.exitcode == 0
    store = TraceStore(tmp_path)
    ok, bad = store.verify_entries()
    assert bad == []
    assert ok >= 1
