"""Deterministic tests of the fault-tolerant sweep runtime.

Every supervision path — per-variant failure capture, retry, serial
fallback, hang detection, checkpoint resume, cache quarantine — is
exercised through the $REPRO_FAULTS injection harness, so the behaviours
only failures can reveal are pinned down without any real flakiness.
"""

import json
import pickle

import pytest

from repro.bench import (
    BlockOutcome,
    CheckpointStore,
    SweepConfig,
    cached_sweep,
    load_results,
    run_sweep,
    run_sweep_parallel,
    save_results,
    sweep_cache_path,
    sweep_to_csv,
)
from repro.bench.export import failure_manifest_to_csv
from repro.bench.faults import FAULTS_ENV, active_rules
from repro.bench.parallel import resolve_block_timeout, resolve_workers
from repro.runtime.errors import (
    BlockTimeoutError,
    ErrorClass,
    FailedRun,
    classify_error,
    error_digest,
)
from repro.runtime.verify import VerificationError
from repro.styles import Algorithm

pytestmark = pytest.mark.faults

REDUCED = SweepConfig(
    scale="tiny",
    algorithms=(Algorithm.BFS, Algorithm.PR),
    graphs=("USA-road-d.NY", "soc-LiveJournal1"),
)


@pytest.fixture(scope="module")
def clean():
    """The fault-free serial sweep every fault run is compared against."""
    return run_sweep(REDUCED)


def arm(monkeypatch, *rules):
    monkeypatch.setenv(FAULTS_ENV, json.dumps(list(rules)))


def run_signature(results):
    return [
        (r.spec, r.device, r.graph, r.seconds, r.throughput_ges)
        for r in results.runs
    ]


class TestErrorTaxonomy:
    def test_classify(self):
        assert classify_error(VerificationError("x")) is ErrorClass.VERIFICATION
        assert classify_error(BlockTimeoutError("x")) is ErrorClass.TIMEOUT
        assert classify_error(RuntimeError("x")) is ErrorClass.KERNEL
        assert classify_error(KeyboardInterrupt()) is ErrorClass.INTERRUPTED

    def test_digest_stable_and_class_sensitive(self):
        a = error_digest(ErrorClass.KERNEL, "boom")
        assert a == error_digest(ErrorClass.KERNEL, "boom")
        assert a != error_digest(ErrorClass.VERIFICATION, "boom")
        assert len(a) == 12

    def test_failed_run_from_exception(self):
        failure = FailedRun.from_exception(
            VerificationError("bfs: 3 distances differ"),
            algorithm="bfs", graph="g", spec_label="lbl",
            model="cuda", device="RTX 3090",
        )
        assert failure.error_class is ErrorClass.VERIFICATION
        assert "distances differ" in failure.message
        assert failure.digest in failure.render()

    def test_plan_parsing_rejects_unknown_action(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, json.dumps([{"action": "explode"}]))
        with pytest.raises(ValueError, match="unknown action"):
            active_rules()


class TestVariantFailures:
    def test_verification_failure_is_captured_not_fatal(
        self, monkeypatch, tmp_path, clean
    ):
        arm(monkeypatch, {
            "action": "verify", "algorithm": "bfs",
            "graph": "USA-road-d.NY", "model": "cuda", "spec_index": 0,
        })
        results = run_sweep_parallel(
            REDUCED, workers=2, checkpoint_dir=tmp_path
        )
        assert results.failures
        assert all(
            f.stage == "variant"
            and f.error_class is ErrorClass.VERIFICATION
            and f.spec_label and f.device
            for f in results.failures
        )
        # Every healthy cell is bit-identical to the clean sweep; exactly
        # the injected variant's cells are missing.
        missing = {(f.spec_label, f.device, f.graph) for f in results.failures}
        expected = [
            r for r in clean.runs
            if (r.spec.label(), r.device, r.graph) not in missing
        ]
        assert results.runs == expected

    def test_manifest_survives_save_load_and_exports(
        self, monkeypatch, tmp_path, clean
    ):
        arm(monkeypatch, {
            "action": "verify", "algorithm": "pr",
            "graph": "soc-LiveJournal1", "spec_index": 1,
        })
        results = run_sweep_parallel(
            REDUCED, workers=1, checkpoint_dir=tmp_path
        )
        assert results.failures
        path = save_results(results, tmp_path / "r.pkl", scale="tiny")
        back = load_results(path, rebuild_graphs=False)
        assert back.failures == results.failures
        csv = failure_manifest_to_csv(back)
        assert csv.count("\n") == len(results.failures) + 1
        assert "verification" in csv
        assert "sweep failures:" in results.failure_summary()


class TestBlockSupervision:
    def test_raising_block_is_retried_then_quarantined(
        self, monkeypatch, tmp_path, clean
    ):
        arm(monkeypatch, {
            "action": "raise", "algorithm": "pr", "graph": "soc-LiveJournal1",
        })
        results = run_sweep_parallel(
            REDUCED, workers=2, checkpoint_dir=tmp_path,
            max_retries=1, retry_backoff=0.0,
        )
        assert len(results.failures) == 1
        failure = results.failures[0]
        assert failure.stage == "block"
        assert failure.error_class is ErrorClass.KERNEL
        # two worker attempts + the serial fallback
        assert failure.attempts == 3
        expected = [
            r for r in clean.runs
            if not (r.spec.algorithm is Algorithm.PR
                    and r.graph == "soc-LiveJournal1")
        ]
        assert results.runs == expected

    def test_transient_failure_recovers_on_retry(
        self, monkeypatch, tmp_path, clean
    ):
        arm(monkeypatch, {
            "action": "raise", "algorithm": "bfs",
            "graph": "USA-road-d.NY", "attempts": [0],
        })
        results = run_sweep_parallel(
            REDUCED, workers=2, checkpoint_dir=tmp_path, retry_backoff=0.0
        )
        assert not results.failures
        assert run_signature(results) == run_signature(clean)

    def test_killed_worker_block_reruns_serially(
        self, monkeypatch, tmp_path, clean
    ):
        # "kill" fires in worker processes only, so the serial in-process
        # fallback succeeds: a worker-environment fault costs nothing.
        arm(monkeypatch, {
            "action": "kill", "algorithm": "pr", "graph": "USA-road-d.NY",
        })
        results = run_sweep_parallel(
            REDUCED, workers=2, checkpoint_dir=tmp_path,
            max_retries=1, retry_backoff=0.0,
        )
        assert not results.failures
        assert run_signature(results) == run_signature(clean)

    def test_worker_killed_while_attached_to_shm_plane(
        self, monkeypatch, tmp_path, clean
    ):
        # The worker dies *after* attaching to the shared-memory graph
        # plane.  The contract under test: a dying attacher never unlinks
        # the published segments (the supervisor owns them), so retries,
        # sibling workers, and the serial fallback still attach — and the
        # sweep finishes with no leaked /dev/shm segments.
        import os

        shm_dir = "/dev/shm"
        before = set(os.listdir(shm_dir)) if os.path.isdir(shm_dir) else None
        arm(monkeypatch, {
            "action": "kill-attached",
            "algorithm": "pr", "graph": "USA-road-d.NY",
        })
        results = run_sweep_parallel(
            REDUCED, workers=2, checkpoint_dir=tmp_path,
            max_retries=1, retry_backoff=0.0,
        )
        assert not results.failures
        assert run_signature(results) == run_signature(clean)
        if before is not None:
            leaked = set(os.listdir(shm_dir)) - before
            assert not leaked

    def test_worker_killed_while_attached_recovers_on_retry(
        self, monkeypatch, tmp_path, clean
    ):
        # Only the first attempt dies: the retried worker re-attaches to
        # the same still-published segments and completes normally.
        arm(monkeypatch, {
            "action": "kill-attached", "algorithm": "bfs",
            "graph": "soc-LiveJournal1", "attempts": [0],
        })
        results = run_sweep_parallel(
            REDUCED, workers=2, checkpoint_dir=tmp_path, retry_backoff=0.0
        )
        assert not results.failures
        assert run_signature(results) == run_signature(clean)

    def test_hung_block_hits_the_timeout(self, monkeypatch, tmp_path, clean):
        arm(monkeypatch, {
            "action": "hang", "algorithm": "bfs", "graph": "soc-LiveJournal1",
        })
        results = run_sweep_parallel(
            REDUCED, workers=2, checkpoint_dir=tmp_path,
            block_timeout=2.0, max_retries=0,
        )
        assert len(results.failures) == 1
        failure = results.failures[0]
        assert failure.stage == "block"
        assert failure.error_class is ErrorClass.TIMEOUT
        expected = [
            r for r in clean.runs
            if not (r.spec.algorithm is Algorithm.BFS
                    and r.graph == "soc-LiveJournal1")
        ]
        assert results.runs == expected

    def test_serial_engine_quarantines_raising_block(
        self, monkeypatch, tmp_path, clean
    ):
        arm(monkeypatch, {
            "action": "raise", "algorithm": "bfs", "graph": "soc-LiveJournal1",
        })
        results = run_sweep_parallel(
            REDUCED, workers=1, checkpoint_dir=tmp_path
        )
        assert len(results.failures) == 1
        assert results.failures[0].stage == "block"
        expected = [
            r for r in clean.runs
            if not (r.spec.algorithm is Algorithm.BFS
                    and r.graph == "soc-LiveJournal1")
        ]
        assert results.runs == expected


class TestCheckpointResume:
    def test_resume_after_failed_run_is_byte_identical(
        self, monkeypatch, tmp_path, clean
    ):
        clean_csv = sweep_to_csv(clean)
        # Run 1 "crashes": the last block hard-fails (so it is never
        # checkpointed) and the first block's checkpoint entry is
        # corrupted on disk right after being written.
        arm(
            monkeypatch,
            {"action": "raise", "algorithm": "pr", "graph": "soc-LiveJournal1"},
            {"action": "corrupt-checkpoint", "algorithm": "bfs",
             "graph": "USA-road-d.NY"},
        )
        first = run_sweep_parallel(
            REDUCED, workers=2, checkpoint_dir=tmp_path,
            max_retries=0, retry_backoff=0.0,
        )
        assert len(first.failures) == 1
        store = CheckpointStore.for_config(REDUCED, tmp_path)
        assert len(store) == 3  # the quarantined block was not checkpointed

        # Run 2 resumes.  A raise rule on a *checkpointed* block proves the
        # checkpoint is honoured: if that block re-ran, it would fail.
        arm(monkeypatch, {
            "action": "raise", "algorithm": "bfs", "graph": "soc-LiveJournal1",
        })
        second = run_sweep_parallel(
            REDUCED, workers=2, checkpoint_dir=tmp_path,
            resume=True, retry_backoff=0.0,
        )
        assert not second.failures
        assert sweep_to_csv(second) == clean_csv
        # A fully clean completion clears the store (quarantine included).
        assert not store.directory.exists()

    def test_corrupt_entry_is_quarantined_with_warning(
        self, tmp_path, capsys, clean
    ):
        store = CheckpointStore(tmp_path / "ckpt")
        outcome = BlockOutcome(runs=clean.runs[:3])
        store.save_block(0, ("bfs", "USA-road-d.NY"), outcome)
        store.save_block(1, ("bfs", "soc-LiveJournal1"), outcome)
        path = store.entry_path(0)
        path.write_bytes(path.read_bytes()[:40])  # truncate
        loaded = store.load()
        assert list(loaded) == [1]
        assert loaded[1].runs == outcome.runs
        assert (store.directory / "quarantine" / path.name).exists()
        assert "quarantined" in capsys.readouterr().err

    def test_entries_for_a_different_sweep_are_ignored(self, tmp_path, clean):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save_block(0, ("bfs", "USA-road-d.NY"), BlockOutcome(runs=clean.runs[:1]))
        expected = {0: ("pr", "USA-road-d.NY")}
        assert store.load(expected) == {}

    def test_fresh_run_discards_stale_checkpoints(
        self, monkeypatch, tmp_path, clean
    ):
        # Without --resume, an earlier run's entries must not leak in.
        arm(monkeypatch, {
            "action": "raise", "algorithm": "pr", "graph": "soc-LiveJournal1",
        })
        run_sweep_parallel(
            REDUCED, workers=1, checkpoint_dir=tmp_path, retry_backoff=0.0
        )
        monkeypatch.delenv(FAULTS_ENV)
        results = run_sweep_parallel(
            REDUCED, workers=1, checkpoint_dir=tmp_path
        )
        assert not results.failures
        assert run_signature(results) == run_signature(clean)


class TestStorageIntegrity:
    CONFIG = SweepConfig(
        scale="tiny", algorithms=(Algorithm.BFS,), graphs=("USA-road-d.NY",)
    )

    def test_truncated_results_file_raises_clear_error(self, tmp_path, clean):
        path = save_results(clean, tmp_path / "r.pkl", scale="tiny")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="truncated or corrupt"):
            load_results(path)

    def test_garbage_file_raises_value_error_not_pickle_error(self, tmp_path):
        path = tmp_path / "junk.pkl"
        path.write_bytes(b"\x80\x04this is not a pickle")
        with pytest.raises(ValueError, match="not a saved repro study result"):
            load_results(path)

    def test_legacy_v1_pickle_still_loads(self, tmp_path, clean):
        path = tmp_path / "legacy.pkl"
        payload = {
            "magic": "repro-study-results-v1",
            "scale": "tiny",
            "graph_names": list(clean.graphs),
            "runs": clean.runs,
        }
        path.write_bytes(pickle.dumps(payload))
        back = load_results(path, rebuild_graphs=False)
        assert back.runs == clean.runs

    def test_quarantined_blocks_are_not_cached(self, tmp_path):
        calls = []

        def runner(config):
            calls.append(config)
            results = run_sweep(config)
            results.add_failure(FailedRun(
                algorithm="bfs", graph="USA-road-d.NY",
                error_class=ErrorClass.CRASH, message="worker died",
                digest=error_digest(ErrorClass.CRASH, "worker died"),
                stage="block",
            ))
            return results

        cached_sweep(self.CONFIG, cache_dir=tmp_path, runner=runner)
        cached_sweep(self.CONFIG, cache_dir=tmp_path, runner=runner)
        # an incomplete sweep (possibly transient fault) must never be
        # pinned by the content-addressed cache
        assert len(calls) == 2
        assert not sweep_cache_path(self.CONFIG, tmp_path).exists()

    def test_corrupt_cache_entry_is_quarantined_and_rebuilt(
        self, tmp_path, capsys
    ):
        path = sweep_cache_path(self.CONFIG, tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"repro-study-results-v2 deadbeef\ntruncated")
        results = cached_sweep(self.CONFIG, cache_dir=tmp_path, runner=run_sweep)
        assert len(results) > 0
        assert (path.parent / "quarantine" / path.name).exists()
        assert "quarantine" in capsys.readouterr().err
        # the rebuilt entry is valid again
        assert load_results(path).n_programs == results.n_programs


class TestSupervisionConfig:
    def test_default_workers_capped_by_block_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        assert resolve_workers(None, 2) <= 2
        assert resolve_workers(None, 10_000) == (__import__("os").cpu_count() or 1)

    def test_explicit_env_wins_over_block_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "7")
        assert resolve_workers(None, 2) == 7

    def test_block_timeout_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BLOCK_TIMEOUT", raising=False)
        assert resolve_block_timeout(None) is None
        monkeypatch.setenv("REPRO_BLOCK_TIMEOUT", "2.5")
        assert resolve_block_timeout(None) == 2.5
        monkeypatch.setenv("REPRO_BLOCK_TIMEOUT", "nope")
        with pytest.raises(ValueError):
            resolve_block_timeout(None)
        with pytest.raises(ValueError):
            resolve_block_timeout(-1.0)

    def test_broken_process_pool_reports_clean_cli_error(
        self, monkeypatch, capsys
    ):
        from concurrent.futures.process import BrokenProcessPool

        from repro.bench import parallel
        from repro.cli.main import main

        def boom(*args, **kwargs):
            raise BrokenProcessPool("worker died")

        monkeypatch.setattr(parallel, "run_sweep_parallel", boom)
        rc = main(["--scale", "tiny", "sweep", "--algorithm", "bfs"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "worker process died" in err
        assert "Traceback" not in err


class TestCliFaultTolerance:
    def test_sweep_exits_zero_with_injected_failures(
        self, monkeypatch, tmp_path, capsys, clean
    ):
        """The acceptance scenario: a crash, a hang, and a verification
        failure in one sweep — exit 0, healthy runs bit-identical, and the
        manifest lists exactly the injected failures."""
        from repro.cli.main import main

        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path))
        arm(
            monkeypatch,
            {"action": "kill", "algorithm": "bfs", "graph": "2d-2e20.sym",
             "attempts": [0]},
            {"action": "hang", "algorithm": "bfs", "graph": "coPapersDBLP"},
            {"action": "verify", "algorithm": "bfs", "graph": "USA-road-d.NY",
             "model": "cuda", "spec_index": 0},
        )
        rc = main([
            "--scale", "tiny", "sweep", "--algorithm", "bfs",
            "--workers", "2", "--block-timeout", "2", "--max-retries", "0",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert "sweep failures:" in captured.err
        assert "timeout" in captured.err
        assert "verification" in captured.err
        # the killed worker's block recovered via the serial fallback, so
        # it must NOT appear in the manifest
        assert "crash" not in captured.err
        # healthy rows are bit-identical to a fault-free serial sweep
        clean_bfs = run_sweep(SweepConfig(scale="tiny", algorithms=(Algorithm.BFS,)))
        clean_rows = {
            f"{r.spec.model.value},{r.spec.algorithm.value},{r.spec.label()},"
            f"{r.graph},{r.device},{r.seconds:.6e},{r.throughput_ges:.6f},"
            f"{r.iterations},{int(r.predicted)}"
            for r in clean_bfs.runs
        }
        got_rows = set(captured.out.strip().splitlines()[1:])
        assert got_rows < clean_rows
