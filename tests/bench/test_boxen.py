"""Unit tests for letter-value (boxen) statistics."""

import numpy as np
import pytest

from repro.bench import letter_values


class TestLetterValues:
    def test_median(self):
        lv = letter_values([1, 2, 3, 4, 5])
        assert lv.median == 3.0
        assert lv.n == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            letter_values([])

    def test_single_value(self):
        lv = letter_values([7.0])
        assert lv.median == 7.0
        assert lv.minimum == lv.maximum == 7.0

    def test_fourths_match_quartiles(self):
        data = np.arange(101, dtype=float)
        lv = letter_values(data)
        lo, hi = lv.fourths
        assert lo == pytest.approx(np.quantile(data, 0.25))
        assert hi == pytest.approx(np.quantile(data, 0.75))

    def test_boxes_nested(self):
        rng = np.random.default_rng(0)
        lv = letter_values(rng.normal(size=500))
        for (lo_out, hi_out), (lo_in, hi_in) in zip(lv.boxes, lv.boxes[1:]):
            assert lo_in <= lo_out
            assert hi_in >= hi_out

    def test_depth_grows_with_n(self):
        shallow = letter_values(np.arange(12))
        deep = letter_values(np.arange(4000))
        assert len(deep.boxes) > len(shallow.boxes)

    def test_outliers_beyond_deepest_box(self):
        data = np.concatenate([np.zeros(100), [1000.0]])
        lv = letter_values(data)
        assert 1000.0 in lv.outliers

    def test_extremes(self):
        lv = letter_values([5, 1, 9, 3])
        assert lv.minimum == 1 and lv.maximum == 9

    def test_describe_is_readable(self):
        text = letter_values([1.0, 2.0, 3.0]).describe()
        assert "median" in text and "n=3" in text
