"""Integration tests for the sweep harness and ratio machinery."""

import pytest

from repro.bench import (
    SweepConfig,
    axis_ratios,
    ratios_by_algorithm,
    run_sweep,
    throughputs_by_option,
)
from repro.styles import (
    Algorithm,
    AtomicFlavor,
    Granularity,
    Iteration,
    Model,
    Persistence,
    count_specs,
)


class TestSweep:
    def test_covers_full_grid(self, tiny_sweep):
        counts = count_specs()
        expected_programs = sum(sum(d.values()) for d in counts.values())
        assert tiny_sweep.n_programs == expected_programs
        # Each CUDA program ran on 2 GPUs x 2 graphs; CPU ones on 2 CPUs.
        expected_runs = expected_programs * 2 * 2
        assert len(tiny_sweep) == expected_runs

    def test_lookup(self, tiny_sweep):
        run = tiny_sweep.runs[0]
        assert tiny_sweep.get(run.spec, run.device, run.graph) is run
        assert tiny_sweep.get(run.spec, "nonexistent", run.graph) is None

    def test_select_filters(self, tiny_sweep):
        subset = list(
            tiny_sweep.select(
                algorithms=[Algorithm.TC], models=[Model.CUDA],
                devices=["Titan V"], graphs=["USA-road-d.NY"],
            )
        )
        assert subset
        assert all(r.spec.algorithm is Algorithm.TC for r in subset)
        assert all(r.device == "Titan V" for r in subset)

    def test_all_verified(self, tiny_sweep):
        assert all(r.verified for r in tiny_sweep.runs)

    def test_config_subsets(self):
        results = run_sweep(
            SweepConfig(
                scale="tiny",
                models=(Model.OPENMP,),
                algorithms=(Algorithm.TC,),
                graphs=("USA-road-d.NY",),
            )
        )
        assert results.n_programs == 12  # Table 3: OpenMP TC
        assert all(r.spec.model is Model.OPENMP for r in results.runs)


class TestRatios:
    def test_pairing_is_exact(self, tiny_sweep):
        ratios = ratios_by_algorithm(
            tiny_sweep, "persistence",
            Persistence.PERSISTENT, Persistence.NON_PERSISTENT,
            models=[Model.CUDA],
        )
        # Every CUDA run with PERSISTENT has a NON_PERSISTENT partner.
        n_persistent = sum(
            1
            for r in tiny_sweep.select(models=[Model.CUDA])
            if r.spec.persistence is Persistence.PERSISTENT
        )
        assert sum(v.size for v in ratios.values()) == n_persistent

    def test_missing_partners_skipped(self, tiny_sweep):
        # PR has no CudaAtomic variants: no PR ratios must appear.
        ratios = ratios_by_algorithm(
            tiny_sweep, "atomic_flavor",
            AtomicFlavor.ATOMIC, AtomicFlavor.CUDA_ATOMIC,
        )
        assert Algorithm.PR not in ratios

    def test_axis_ratios_concatenates(self, tiny_sweep):
        grouped = ratios_by_algorithm(
            tiny_sweep, "iteration", Iteration.VERTEX, Iteration.EDGE,
        )
        flat = axis_ratios(
            tiny_sweep, "iteration", Iteration.VERTEX, Iteration.EDGE,
        )
        assert flat.size == sum(v.size for v in grouped.values())

    def test_unknown_axis_rejected(self, tiny_sweep):
        with pytest.raises(KeyError, match="unknown style axis"):
            ratios_by_algorithm(tiny_sweep, "warp_speed", None, None)

    def test_ratios_positive(self, tiny_sweep):
        flat = axis_ratios(
            tiny_sweep, "iteration", Iteration.VERTEX, Iteration.EDGE,
        )
        assert (flat > 0).all()


class TestThroughputGroups:
    def test_granularity_options(self, tiny_sweep):
        groups = throughputs_by_option(
            tiny_sweep, "granularity", models=[Model.CUDA],
        )
        assert set(groups) == set(Granularity)
        assert all(v.size > 0 for v in groups.values())

    def test_skips_inapplicable(self, tiny_sweep):
        groups = throughputs_by_option(
            tiny_sweep, "gpu_reduction", algorithms=[Algorithm.BFS],
        )
        assert groups == {}
