"""Tests of the learned style predictor (repro.bench.predictor).

Three contracts matter more than model accuracy:

* **Determinism** — the same training set and seed must produce a
  byte-identical artifact, and the same predict-then-verify sweep run
  twice must measure the identical variants (including the seeded audit
  sample) and report identical results;
* **Artifact discipline** — a corrupted or version-mismatched artifact
  must be quarantined and read as unavailable, degrading the sweep to
  exhaustive execution with a visible manifest entry, never a wrong or
  partial answer;
* **Answer preservation** — a pruned sweep reports exactly as many runs
  as the exhaustive sweep, executes far fewer kernels, and never trains
  on its own back-filled predictions.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.bench import (
    PredictSettings,
    PredictorArtifactError,
    StylePredictor,
    SweepConfig,
    mine_results,
    mine_trace_store,
    resolve_predictor,
    run_sweep,
    sweep_cache_key,
)
from repro.bench.harness import StudyResults
from repro.bench.predictor import PREDICTOR_ENV, feature_names
from repro.bench.tracestore import TraceStore
from repro.cli.main import main
from repro.styles import Algorithm, Model

pytestmark = pytest.mark.predictor


@pytest.fixture(scope="module")
def training_set(tiny_sweep):
    return mine_results(tiny_sweep)


@pytest.fixture(scope="module")
def predictor(training_set):
    return StylePredictor.train(training_set, seed=0, rounds=60)


@pytest.fixture(scope="module")
def artifact(predictor, tmp_path_factory):
    return predictor.save(tmp_path_factory.mktemp("predictor") / "model.json")


def _gate_config(predict=None):
    return SweepConfig(
        scale="tiny",
        algorithms=(Algorithm.SSSP,),
        models=(Model.CUDA,),
        graphs=("USA-road-d.NY",),
        gpu_names=("RTX 3090",),
        predict=predict,
    )


# ----------------------------------------------------------------------
# Mining
# ----------------------------------------------------------------------
def test_mine_results_rows_cover_every_run(tiny_sweep, training_set):
    assert len(training_set) == len(tiny_sweep.runs)
    assert training_set.X.shape == (len(training_set), len(feature_names()))
    assert np.all(np.isfinite(training_set.X))
    assert np.all(np.isfinite(training_set.y_log_seconds))
    assert training_set.skipped == {}


def test_mine_results_skips_predicted_runs(tiny_sweep):
    results = StudyResults(graphs=dict(tiny_sweep.graphs))
    for run in tiny_sweep.runs[:10]:
        results.add(run)
    results.add(dataclasses.replace(tiny_sweep.runs[10], predicted=True))
    ts = mine_results(results)
    assert len(ts) == 10
    assert ts.skipped == {"predicted-run": 1}


def test_mine_trace_store_retimes_without_execution(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    config = _gate_config()
    cold = run_sweep(config)
    assert cold.kernel_executions > 0
    store = TraceStore(tmp_path / "traces")
    ts = mine_trace_store(store)
    # Every mapping variant on every compatible device, re-timed free.
    assert len(ts) >= len(cold.runs)
    assert all(m["source"] == "trace-store" for m in ts.meta)


def test_mine_trace_store_skips_stale_and_propertyless(
    tmp_path, monkeypatch
):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    run_sweep(_gate_config())
    store = TraceStore(tmp_path / "traces")

    monkeypatch.setattr(
        "repro.bench.predictor.kernel_code_fingerprint", lambda: "edited"
    )
    ts = mine_trace_store(store)
    assert len(ts) == 0
    assert ts.skipped.get("stale", 0) > 0
    monkeypatch.undo()
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))

    # Entries from before graph properties joined the metadata are
    # skipped with a count, not crashed on.
    original = store.iter_entries

    def stripped():
        for meta, result in original():
            meta = dict(meta)
            meta.pop("graph_properties", None)
            yield meta, result

    monkeypatch.setattr(store, "iter_entries", stripped)
    ts = mine_trace_store(store)
    assert len(ts) == 0
    assert ts.skipped.get("no-graph-properties", 0) > 0


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_same_seed_same_artifact_bytes(training_set, tmp_path):
    a = StylePredictor.train(training_set, seed=7, rounds=40)
    b = StylePredictor.train(training_set, seed=7, rounds=40)
    path_a = a.save(tmp_path / "a.json")
    path_b = b.save(tmp_path / "b.json")
    assert path_a.read_bytes() == path_b.read_bytes()
    c = StylePredictor.train(training_set, seed=8, rounds=40)
    assert c.save(tmp_path / "c.json").read_bytes() != path_a.read_bytes()


def test_predicted_sweep_is_deterministic(artifact, monkeypatch):
    monkeypatch.delenv(PREDICTOR_ENV, raising=False)
    config = _gate_config(
        PredictSettings(top_k=4, audit_frac=0.1, model_path=str(artifact))
    )
    first = run_sweep(config)
    second = run_sweep(config)
    assert first.runs == second.runs
    assert first.kernel_executions == second.kernel_executions
    audited = [cell.n_audited for cell in first.prediction.cells]
    assert audited == [cell.n_audited for cell in second.prediction.cells]
    assert sum(audited) > 0, "audit_frac=0.1 must sample something"


# ----------------------------------------------------------------------
# Predict-then-verify semantics
# ----------------------------------------------------------------------
def test_pruned_sweep_backfills_every_variant(artifact, monkeypatch):
    monkeypatch.delenv(PREDICTOR_ENV, raising=False)
    exhaustive = run_sweep(_gate_config())
    pruned = run_sweep(
        _gate_config(
            PredictSettings(
                top_k=4, audit_frac=0.02, max_groups=6,
                model_path=str(artifact),
            )
        )
    )
    assert len(pruned.runs) == len(exhaustive.runs)
    assert pruned.kernel_executions < exhaustive.kernel_executions
    n_predicted = sum(run.predicted for run in pruned.runs)
    assert n_predicted > 0
    summary = pruned.prediction
    assert summary.n_predicted == n_predicted
    assert summary.groups_executed <= 6
    # Measured runs are real measurements: bit-identical to exhaustive.
    exhaustive_by_key = {
        (run.spec.label(), run.device): run for run in exhaustive.runs
    }
    for run in pruned.runs:
        if not run.predicted:
            assert run == exhaustive_by_key[(run.spec.label(), run.device)]


def test_uncovered_cell_measures_exhaustively(training_set, monkeypatch):
    monkeypatch.delenv(PREDICTOR_ENV, raising=False)
    # A model trained only on BFS rows does not cover SSSP cells: the
    # sweep must measure them fully rather than extrapolate.
    bfs_rows = [
        i for i, m in enumerate(training_set.meta) if m["algorithm"] == "bfs"
    ]
    bfs_ts = dataclasses.replace(
        training_set,
        X=training_set.X[bfs_rows],
        y_log_seconds=training_set.y_log_seconds[bfs_rows],
        meta=[training_set.meta[i] for i in bfs_rows],
    )
    predictor = StylePredictor.train(bfs_ts, seed=0, rounds=10)
    assert not predictor.covers(Algorithm.SSSP, "RTX 3090")
    config = _gate_config(PredictSettings(top_k=4))
    from repro.bench.predictor import run_sweep_predicted

    results = run_sweep_predicted(config, predictor=predictor)
    assert not any(run.predicted for run in results.runs)
    assert results.runs == run_sweep(_gate_config()).runs


def test_predict_settings_join_the_sweep_cache_key(artifact):
    base = _gate_config()
    keys = {
        sweep_cache_key(base),
        sweep_cache_key(_gate_config(PredictSettings(top_k=4))),
        sweep_cache_key(_gate_config(PredictSettings(top_k=8))),
    }
    assert len(keys) == 3


# ----------------------------------------------------------------------
# Artifact discipline
# ----------------------------------------------------------------------
def test_corrupt_artifact_quarantined_and_sweep_falls_back(
    predictor, tmp_path, monkeypatch
):
    monkeypatch.delenv(PREDICTOR_ENV, raising=False)
    path = predictor.save(tmp_path / "model.json")
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))

    loaded, reason = resolve_predictor(path)
    assert loaded is None and "checksum" in reason
    assert not path.exists()
    assert (tmp_path / "quarantine" / "model.json").exists()

    results = run_sweep(
        _gate_config(PredictSettings(model_path=str(path)))
    )
    assert not any(run.predicted for run in results.runs)
    first = results.failures[0]
    assert first.stage == "predictor"
    assert "ran exhaustively" in first.message
    assert results.prediction.model_info["available"] is False


def test_version_mismatch_artifact_rejected(predictor, tmp_path, monkeypatch):
    import hashlib

    monkeypatch.delenv(PREDICTOR_ENV, raising=False)
    path = predictor.save(tmp_path / "model.json")
    _, body = path.read_bytes().split(b"\n", 1)
    payload = json.loads(body)
    payload["version"] = 99
    body = json.dumps(payload, sort_keys=True).encode()
    checksum = hashlib.sha256(body).hexdigest().encode("ascii")
    path.write_bytes(b"repro-predictor-v1 " + checksum + b"\n" + body)
    with pytest.raises(PredictorArtifactError, match="version"):
        StylePredictor.load(path)
    loaded, reason = resolve_predictor(path)
    assert loaded is None
    assert (tmp_path / "quarantine" / "model.json").exists()


def test_env_kill_switch_wins(artifact, monkeypatch):
    monkeypatch.setenv(PREDICTOR_ENV, "0")
    loaded, reason = resolve_predictor(artifact)
    assert loaded is None
    assert "REPRO_PREDICTOR" in reason


# ----------------------------------------------------------------------
# CLI: cache export, predictor train/info, sweep --predict
# ----------------------------------------------------------------------
def test_cli_export_train_info_predict(
    tiny_sweep, tmp_path, monkeypatch, capsys
):
    from repro.bench.storage import save_results

    monkeypatch.delenv(PREDICTOR_ENV, raising=False)
    results_file = tmp_path / "sweep.pkl"
    save_results(tiny_sweep, results_file, scale="tiny")

    out = tmp_path / "training.csv"
    assert main([
        "cache", "export", "--dir", str(tmp_path / "empty-store"),
        "--results", str(results_file), "--out", str(out),
    ]) == 0
    header, *rows = out.read_text().splitlines()
    assert header.startswith("algorithm,model,graph,device,style,source,seconds")
    assert len(rows) == len(tiny_sweep.runs)

    model_path = tmp_path / "model.json"
    assert main([
        "predictor", "train", "--results", str(results_file),
        "--rounds", "20", "--out", str(model_path),
    ]) == 0
    assert model_path.exists()
    capsys.readouterr()

    assert main(["predictor", "info", "--path", str(model_path)]) == 0
    info = capsys.readouterr().out
    assert "cells:" in info and "rows:" in info

    assert main([
        "--scale", "tiny", "sweep", "--predict", "--algorithm", "sssp",
        "--model", "cuda", "--top-k", "4", "--max-groups", "6",
        "--predictor", str(model_path),
    ]) == 0
    captured = capsys.readouterr()
    header = captured.out.splitlines()[0]
    assert header.endswith(",predicted")
    assert any(line.endswith(",1") for line in captured.out.splitlines()[1:])
    assert "predict-then-verify" in captured.err
