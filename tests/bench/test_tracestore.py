"""Tests of the persistent trace store (repro.bench.tracestore).

The store's contract has two halves the tests pin down separately:

* a **hit** must reassemble the stored execution *bit-identically* —
  same values array, same trace digest, same downstream timings — with
  zero kernel executions;
* everything that could make a stored trace wrong — kernel code edits,
  different graph content, a different source vertex, corruption, an
  unverified entry read by a verifying launcher — must read as a clean
  *miss*, never a wrong answer and never a crash.
"""

import numpy as np
import pytest

import repro.bench.tracestore as tracestore
from repro.bench import SweepConfig, run_sweep, run_sweep_parallel
from repro.bench.tracestore import (
    TRACE_CACHE_ENV,
    TraceStore,
    default_trace_dir,
    kernel_code_fingerprint,
    resolve_trace_store,
    trace_digest,
)
from repro.cli.main import main
from repro.graph import load_dataset
from repro.machine.devices import RTX_3090
from repro.runtime import Launcher
from repro.styles import Algorithm, Model, enumerate_specs

SPEC = enumerate_specs(Algorithm.SSSP, Model.CUDA)[0]


@pytest.fixture()
def graph():
    return load_dataset("soc-LiveJournal1", "tiny")


def warm_store(tmp_path, graph, **launcher_kwargs):
    """Execute SPEC once into a fresh store; returns (store, run, result)."""
    store = TraceStore(tmp_path)
    launcher = Launcher(trace_store=store, **launcher_kwargs)
    run = launcher.run(SPEC, graph, RTX_3090)
    result = launcher.execute_semantic(SPEC, graph)
    return store, run, result


class TestResolve:
    def test_kill_switch_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_CACHE_ENV, "0")
        assert resolve_trace_store(enabled=True) is None
        assert resolve_trace_store(directory=tmp_path) is None

    def test_env_path_enables_bare_launchers(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_CACHE_ENV, str(tmp_path))
        store = resolve_trace_store()
        assert store is not None and store.directory == tmp_path
        assert Launcher().trace_store is not None

    def test_bare_launcher_is_off_without_env(self, monkeypatch):
        monkeypatch.delenv(TRACE_CACHE_ENV, raising=False)
        assert resolve_trace_store() is None
        assert Launcher().trace_store is None

    def test_opt_in_uses_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv(TRACE_CACHE_ENV, raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        store = resolve_trace_store(enabled=True)
        assert store.directory == default_trace_dir()
        assert resolve_trace_store(enabled=False) is None

    def test_launcher_false_forces_off(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_CACHE_ENV, str(tmp_path))
        assert Launcher(trace_store=False).trace_store is None

    def test_empty_store_instance_is_kept(self, tmp_path):
        # An empty TraceStore is falsy (len 0); the launcher must not
        # drop it on that account.
        store = TraceStore(tmp_path)
        assert Launcher(trace_store=store).trace_store is store


class TestRoundTrip:
    def test_warm_launcher_executes_nothing(self, tmp_path, graph):
        store, cold_run, cold = warm_store(tmp_path, graph)
        assert store.stores == 1

        warm = TraceStore(tmp_path)
        launcher = Launcher(trace_store=warm)
        warm_run = launcher.run(SPEC, graph, RTX_3090)
        assert launcher.kernel_executions == 0
        assert warm.hits == 1
        assert warm_run == cold_run

    def test_hit_is_bit_identical(self, tmp_path, graph):
        _, _, cold = warm_store(tmp_path, graph)
        warm = Launcher(trace_store=TraceStore(tmp_path))
        result = warm.execute_semantic(SPEC, graph)
        assert np.array_equal(result.values, cold.values)
        assert result.values.dtype == cold.values.dtype
        assert trace_digest(result.trace) == trace_digest(cold.trace)

    def test_content_identical_graph_hits(self, tmp_path, graph):
        warm_store(tmp_path, graph)
        rebuilt = load_dataset("soc-LiveJournal1", "tiny")
        assert rebuilt is not graph
        launcher = Launcher(trace_store=TraceStore(tmp_path))
        launcher.run(SPEC, rebuilt, RTX_3090)
        assert launcher.kernel_executions == 0

    def test_entries_survive_verify_scan(self, tmp_path, graph):
        store, _, _ = warm_store(tmp_path, graph)
        ok, bad = store.verify_entries()
        assert (ok, bad) == (1, [])
        assert len(store) == 1


class TestInvalidation:
    def test_kernel_code_change_misses(self, tmp_path, graph, monkeypatch):
        warm_store(tmp_path, graph)
        monkeypatch.setattr(tracestore, "_kernel_fp_memo", "f" * 64)
        launcher = Launcher(trace_store=TraceStore(tmp_path))
        launcher.run(SPEC, graph, RTX_3090)
        assert launcher.kernel_executions == 1  # stale entry not used

    def test_different_graph_content_misses(self, tmp_path, graph):
        warm_store(tmp_path, graph)
        other = load_dataset("USA-road-d.NY", "tiny")
        launcher = Launcher(trace_store=TraceStore(tmp_path))
        launcher.run(SPEC, other, RTX_3090)
        assert launcher.kernel_executions == 1

    def test_different_source_misses(self, tmp_path, graph):
        store, _, _ = warm_store(tmp_path, graph, source=0)
        launcher = Launcher(trace_store=TraceStore(tmp_path), source=1)
        launcher.run(SPEC, graph, RTX_3090)
        assert launcher.kernel_executions == 1
        assert len(store) == 2  # both seeds stored side by side

    def test_unverified_entry_misses_for_verifying_launcher(
        self, tmp_path, graph
    ):
        warm_store(tmp_path, graph, verify=False)
        verifying = Launcher(trace_store=TraceStore(tmp_path))
        verifying.run(SPEC, graph, RTX_3090)
        assert verifying.kernel_executions == 1  # would not trust it
        # ... and its re-execution overwrote the entry as verified.
        relaxed = Launcher(trace_store=TraceStore(tmp_path), verify=False)
        relaxed.run(SPEC, graph, RTX_3090)
        assert relaxed.kernel_executions == 0

    def test_stale_entries_are_gc_candidates(self, tmp_path, graph, monkeypatch):
        store, _, _ = warm_store(tmp_path, graph)
        monkeypatch.setattr(tracestore, "_kernel_fp_memo", "f" * 64)
        stats = store.stats()
        assert stats.stale == stats.entries == 1
        removed, reclaimed = store.gc()
        assert removed == 1 and reclaimed > 0
        assert len(store) == 0


class TestCorruption:
    def corrupt_and_load(self, tmp_path, graph, mutate):
        store, _, _ = warm_store(tmp_path, graph)
        (entry,) = store._entries()
        mutate(entry)
        launcher = Launcher(trace_store=TraceStore(tmp_path))
        launcher.run(SPEC, graph, RTX_3090)  # must not crash
        assert launcher.kernel_executions == 1  # clean miss, re-executed
        quarantine = tmp_path / "quarantine"
        assert quarantine.is_dir() and any(quarantine.iterdir())

    def test_truncated_entry_quarantines(self, tmp_path, graph):
        self.corrupt_and_load(
            tmp_path, graph,
            lambda p: p.write_bytes(p.read_bytes()[: p.stat().st_size // 2]),
        )

    def test_bit_flip_quarantines(self, tmp_path, graph):
        def flip(path):
            blob = bytearray(path.read_bytes())
            blob[-1] ^= 0xFF
            path.write_bytes(bytes(blob))

        self.corrupt_and_load(tmp_path, graph, flip)

    def test_garbage_entry_quarantines(self, tmp_path, graph):
        self.corrupt_and_load(
            tmp_path, graph, lambda p: p.write_bytes(b"not a trace at all")
        )

    def test_reexecution_heals_the_store(self, tmp_path, graph):
        store, _, cold = warm_store(tmp_path, graph)
        (entry,) = store._entries()
        entry.write_bytes(b"garbage")
        healer = Launcher(trace_store=TraceStore(tmp_path))
        healer.run(SPEC, graph, RTX_3090)  # quarantines, re-executes, saves
        fresh = Launcher(trace_store=TraceStore(tmp_path))
        result = fresh.execute_semantic(SPEC, graph)
        assert fresh.kernel_executions == 0
        assert trace_digest(result.trace) == trace_digest(cold.trace)


SWEEP = SweepConfig(
    scale="tiny",
    algorithms=(Algorithm.BFS,),
    models=(Model.CUDA,),
    graphs=("USA-road-d.NY",),
    gpu_names=("RTX 3090",),
)


class TestWarmSweeps:
    def test_second_sweep_executes_zero_kernels(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_CACHE_ENV, str(tmp_path / "traces"))
        ckpt = tmp_path / "ckpt"
        cold = run_sweep_parallel(SWEEP, workers=1, checkpoint_dir=ckpt)
        assert cold.kernel_executions > 0
        warm = run_sweep_parallel(SWEEP, workers=1, checkpoint_dir=ckpt)
        assert warm.kernel_executions == 0
        assert warm.runs == cold.runs

    def test_new_device_retimes_from_stored_traces(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_CACHE_ENV, str(tmp_path / "traces"))
        ckpt = tmp_path / "ckpt"
        run_sweep_parallel(SWEEP, workers=1, checkpoint_dir=ckpt)
        # Add a second GPU: mapping variants must re-time from the stored
        # traces — the paper's semantic/mapping split, across sessions.
        both = SweepConfig(
            scale=SWEEP.scale,
            algorithms=SWEEP.algorithms,
            models=SWEEP.models,
            graphs=SWEEP.graphs,
            gpu_names=("RTX 3090", "Titan V"),
        )
        extended = run_sweep_parallel(both, workers=1, checkpoint_dir=ckpt)
        assert extended.kernel_executions == 0
        assert {r.device for r in extended.runs} == {"RTX 3090", "Titan V"}

    def test_serial_sweep_uses_the_store_too(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_CACHE_ENV, str(tmp_path))
        cold = run_sweep(SWEEP)
        warm = run_sweep(SWEEP)
        assert cold.kernel_executions > 0
        assert warm.kernel_executions == 0
        assert warm.runs == cold.runs

    def test_no_trace_cache_opts_out(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_CACHE_ENV, str(tmp_path))
        config = SweepConfig(
            scale=SWEEP.scale,
            algorithms=SWEEP.algorithms,
            models=SWEEP.models,
            graphs=SWEEP.graphs,
            gpu_names=SWEEP.gpu_names,
            trace_cache=False,
        )
        run_sweep(config)
        again = run_sweep(config)
        assert again.kernel_executions > 0  # nothing stored, nothing hit
        assert len(TraceStore(tmp_path)) == 0


class TestCacheCLI:
    def test_stats_gc_verify(self, tmp_path, graph, capsys):
        store, _, _ = warm_store(tmp_path, graph)
        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries:     1" in out

        assert main(["cache", "verify", "--dir", str(tmp_path)]) == 0
        assert "verified 1 entries" in capsys.readouterr().out

        (entry,) = store._entries()
        entry.write_bytes(b"garbage")
        assert main(["cache", "verify", "--dir", str(tmp_path)]) == 1

        assert main(["cache", "gc", "--dir", str(tmp_path), "--all"]) == 0
        assert len(TraceStore(tmp_path)) == 0

    def test_cache_honours_env_dir(self, tmp_path, graph, monkeypatch, capsys):
        warm_store(tmp_path, graph)
        monkeypatch.setenv(TRACE_CACHE_ENV, str(tmp_path))
        assert main(["cache", "stats"]) == 0
        assert str(tmp_path) in capsys.readouterr().out

    def test_sweep_no_trace_cache_flag_parses(self, tmp_path, monkeypatch):
        from repro.cli.main import build_parser

        args = build_parser().parse_args(["sweep", "--no-trace-cache"])
        assert args.no_trace_cache


class TestFingerprints:
    def test_kernel_code_fingerprint_is_memoized_and_stable(self):
        assert kernel_code_fingerprint() == kernel_code_fingerprint()
        assert len(kernel_code_fingerprint()) == 64

    def test_graph_fingerprint_tracks_content_not_name(self, graph):
        same = load_dataset("soc-LiveJournal1", "tiny")
        assert same.fingerprint() == graph.fingerprint()
        other = load_dataset("USA-road-d.NY", "tiny")
        assert other.fingerprint() != graph.fingerprint()

    def test_trace_digest_separates_traces(self, graph):
        launcher = Launcher()
        bfs = launcher.execute_semantic(
            enumerate_specs(Algorithm.BFS, Model.CUDA)[0], graph
        )
        sssp = launcher.execute_semantic(SPEC, graph)
        assert trace_digest(bfs.trace) != trace_digest(sssp.trace)
