"""Unit tests for the optimized third-party baselines (Section 5.17)."""

import pytest

from repro.bench import BASELINES, baseline_style, baseline_trace, best_style_spec
from repro.bench.comparison import baseline_speedups, table6
from repro.graph import load_dataset
from repro.machine import CPUModel, GPUModel, RTX_3090, THREADRIPPER_2950X
from repro.styles import Algorithm, Model


@pytest.fixture(scope="module")
def graph():
    return load_dataset("soc-LiveJournal1", "tiny")


class TestBaselineTraces:
    @pytest.mark.parametrize("model", list(Model))
    def test_all_registered_baselines_build(self, graph, model):
        for alg in BASELINES[model]:
            run = baseline_trace(alg, graph, model)
            assert run.trace.n_launches >= 1
            assert run.trace.n_edges == graph.n_edges

    def test_gardenia_has_no_mis(self, graph):
        assert Algorithm.MIS not in BASELINES[Model.CUDA]
        with pytest.raises(ValueError, match="no cuda baseline"):
            baseline_trace(Algorithm.MIS, graph, Model.CUDA)

    def test_baselines_timeable(self, graph):
        for alg in BASELINES[Model.CUDA]:
            run = baseline_trace(alg, graph, Model.CUDA)
            seconds = GPUModel(RTX_3090).time_trace(run.trace, run.style)
            assert seconds > 0
        for alg in BASELINES[Model.OPENMP]:
            run = baseline_trace(alg, graph, Model.OPENMP)
            seconds = CPUModel(THREADRIPPER_2950X).time_trace(run.trace, run.style)
            assert seconds > 0

    def test_sssp_baseline_work_is_near_optimal(self, graph):
        run = baseline_trace(Algorithm.SSSP, graph, Model.CUDA)
        # Near-one relaxation per edge (plus the documented 15% repeats).
        total_relax = sum(p.total_inner for p in run.trace.profiles)
        assert total_relax < 1.5 * graph.n_edges

    def test_bfs_baseline_levels(self, graph):
        run = baseline_trace(Algorithm.BFS, graph, Model.CUDA)
        frontier_items = sum(
            p.n_items for p in run.trace.profiles if p.label == "bfs-frontier"
        )
        assert frontier_items <= graph.n_vertices

    def test_tc_cpu_baseline_does_redundant_work(self, graph):
        gpu = baseline_trace(Algorithm.TC, graph, Model.CUDA)
        cpu = baseline_trace(Algorithm.TC, graph, Model.OPENMP)
        gpu_work = sum(p.total_inner for p in gpu.trace.profiles)
        cpu_work = sum(p.total_inner for p in cpu.trace.profiles)
        assert cpu_work > 2 * gpu_work  # unoriented edge iterator


class TestBaselineStyles:
    def test_cuda_mapping(self):
        style = baseline_style(Algorithm.BFS, Model.CUDA)
        assert style.model is Model.CUDA
        assert style.granularity is not None

    def test_cpu_mapping(self):
        style = baseline_style(Algorithm.PR, Model.OPENMP)
        assert style.omp_schedule is not None


class TestComparison:
    def test_best_style_spec_is_argmax(self, tiny_sweep):
        spec = best_style_spec(tiny_sweep, Algorithm.BFS, Model.CUDA)
        assert spec.algorithm is Algorithm.BFS
        assert spec.model is Model.CUDA

    def test_speedups_and_table6(self, tiny_sweep):
        cells = baseline_speedups(tiny_sweep)
        assert cells
        rows = table6(cells)
        # MIS appears for CPUs but not CUDA (Figure 16a).
        assert "mis" not in rows[Model.CUDA]
        assert "mis" in rows[Model.OPENMP]
        for row in rows.values():
            assert all(v > 0 for v in row.values())
            assert "geomean" in row
