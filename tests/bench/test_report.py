"""Unit tests for table/figure text rendering."""

import pytest

from repro.bench import report
from repro.graph import analyze, load_all
from repro.styles import Dup, Model


@pytest.fixture(scope="module")
def props():
    return {name: analyze(g) for name, g in load_all("tiny").items()}


class TestStaticTables:
    def test_table1(self):
        text = report.render_table1()
        assert "Eigenvector" in text and "PR" in text

    def test_table2(self):
        text = report.render_table2()
        assert "Push, pull" in text
        assert "CC" in text

    def test_table3(self):
        text = report.render_table3()
        assert "1106" in text.replace(",", "")  # the paper's total appears
        assert "cuda" in text

    def test_table4(self, props):
        text = report.render_table4(props)
        assert "coPapersDBLP" in text
        assert "SNAP" in text

    def test_table5(self, props):
        text = report.render_table5(props)
        assert "d_avg" in text
        assert "USA-road-d.NY" in text


class TestSweepReports:
    def test_ratio_figures_render(self, tiny_sweep):
        for fig in report.FIGURE_AXES:
            text = report.render_ratio_figure(tiny_sweep, fig)
            assert "median" in text
            assert "ratio > 1.0" in text

    def test_unknown_figure(self, tiny_sweep):
        with pytest.raises(KeyError, match="unknown figure"):
            report.render_ratio_figure(tiny_sweep, "fig99")

    def test_driver_figures(self, tiny_sweep):
        for dup in Dup:
            for model in Model:
                text = report.render_driver_figure(tiny_sweep, dup, model)
                assert "topology-driven / data-driven" in text

    def test_throughput_figure(self, tiny_sweep):
        text = report.render_throughput_figure(
            tiny_sweep, "granularity",
            title="granularity test", models=[Model.CUDA],
        )
        assert "thread" in text and "warp" in text and "block" in text

    def test_figure14(self, tiny_sweep):
        text = report.render_figure14(tiny_sweep)
        assert "[cuda]" in text
        assert "vertex=" in text

    def test_figure15(self, tiny_sweep):
        text = report.render_figure15(tiny_sweep)
        assert "style_x" in text
        assert "push" in text

    def test_correlations(self, tiny_sweep):
        text = report.render_correlations(tiny_sweep)
        assert "5.13" in text

    def test_figure16_and_table6(self, tiny_sweep):
        fig = report.render_figure16(tiny_sweep)
        assert "speedup" in fig
        table = report.render_table6(tiny_sweep)
        assert "Geomean speedup" in table
        assert "N/A" in table  # CUDA has no MIS baseline
