"""Tests for results persistence and the style advisor."""

import pytest

from repro.bench import (
    advise,
    load_results,
    save_results,
)
from repro.graph import grid2d, load_dataset, power_law
from repro.styles import Model


class TestStorage:
    def test_round_trip(self, tiny_sweep, tmp_path):
        path = save_results(tiny_sweep, tmp_path / "study.pkl", scale="tiny")
        back = load_results(path)
        assert len(back) == len(tiny_sweep)
        assert back.n_programs == tiny_sweep.n_programs
        # Graphs rebuilt deterministically from the registry.
        assert set(back.graphs) == set(tiny_sweep.graphs)
        for name in back.graphs:
            assert back.graphs[name].n_edges == tiny_sweep.graphs[name].n_edges

    def test_lookup_index_restored(self, tiny_sweep, tmp_path):
        path = save_results(tiny_sweep, tmp_path / "s.pkl", scale="tiny")
        back = load_results(path)
        run = tiny_sweep.runs[0]
        assert back.get(run.spec, run.device, run.graph) is not None

    def test_skip_graph_rebuild(self, tiny_sweep, tmp_path):
        path = save_results(tiny_sweep, tmp_path / "s.pkl", scale="tiny")
        back = load_results(path, rebuild_graphs=False)
        assert back.graphs == {}

    def test_rejects_foreign_pickles(self, tmp_path):
        import pickle

        path = tmp_path / "x.pkl"
        path.write_bytes(pickle.dumps({"nope": 1}))
        with pytest.raises(ValueError, match="not a saved repro"):
            load_results(path)


class TestAdvisor:
    def test_road_like_input(self):
        report = advise(grid2d(24, 24))
        by_axis = {
            (r.axis, r.model): r.choice for r in report.recommendations
        }
        assert by_axis[("granularity", Model.CUDA)] == "thread"
        assert by_axis[("driver", None)] == "data"  # huge diameter
        assert by_axis[("determinism", None)] == "nondet"
        assert by_axis[("flow", None)] == "push"

    def test_social_like_input(self):
        g = power_law(1500, 16, seed=3)
        report = advise(g)
        by_axis = {
            (r.axis, r.model): r.choice for r in report.recommendations
        }
        assert by_axis[("granularity", Model.CUDA)] == "warp"
        assert by_axis[("driver", None)] == "topology"  # tiny diameter

    def test_hub_heavy_input_gets_cyclic_schedule(self):
        from repro.graph import hub_and_spokes

        g = hub_and_spokes(800, n_hubs=2, spoke_degree=3.0, seed=5)
        report = advise(g)
        by_axis = {
            (r.axis, r.model): r.choice for r in report.recommendations
        }
        assert by_axis[("cpp_schedule", Model.CPP_THREADS)] == "cyclic"

    def test_model_filter(self):
        report = advise(grid2d(10, 10))
        cuda = report.for_model(Model.CUDA)
        assert any(r.axis == "granularity" for r in cuda)
        assert all(r.model in (None, Model.CUDA) for r in cuda)

    def test_render_mentions_sections(self):
        text = advise(load_dataset("USA-road-d.NY", "tiny")).render()
        assert "§5.8" in text or "5.8" in text
        assert "input:" in text

    def test_explicit_diameter_respected(self):
        g = power_law(300, 8, seed=1)
        fast = advise(g, diameter=2)
        slow = advise(g, diameter=500)
        get = lambda rep: next(
            r.choice for r in rep.recommendations
            if r.axis == "driver" and r.model is None
        )
        assert get(fast) == "topology"
        assert get(slow) == "data"
