"""Tests for the convergence-analysis module."""

import pytest

from repro.bench import collect_convergence, render_convergence
from repro.graph import grid2d, load_dataset
from repro.styles import Algorithm, Determinism


@pytest.fixture(scope="module")
def records():
    graphs = {
        "grid": grid2d(16, 16),
        "soc": load_dataset("soc-LiveJournal1", "tiny"),
    }
    return collect_convergence(
        graphs, algorithms=(Algorithm.BFS, Algorithm.TC, Algorithm.PR)
    )


class TestCollection:
    def test_every_semantic_covered(self, records):
        from repro.styles import Model, semantic_combinations

        bfs = [r for r in records if r.algorithm is Algorithm.BFS]
        n_sem = len(list(semantic_combinations(Algorithm.BFS, Model.CUDA)))
        assert len(bfs) == 2 * n_sem  # two graphs

    def test_tc_single_iteration(self, records):
        assert all(
            r.iterations == 1 for r in records if r.algorithm is Algorithm.TC
        )

    def test_deterministic_counts_are_stable(self, records):
        """Section 2.6: deterministic codes always take the same number of
        iterations for a given input (whatever the other axes)."""
        from repro.styles import Driver

        for graph in ("grid", "soc"):
            det_topo = {
                r.iterations
                for r in records
                if r.algorithm is Algorithm.BFS and r.graph == graph
                and r.semantic.determinism is Determinism.DETERMINISTIC
                and r.semantic.driver is Driver.TOPOLOGY
            }
            assert len(det_topo) == 1

    def test_nondet_never_needs_more_iterations_on_grid(self, records):
        det = [
            r.iterations for r in records
            if r.algorithm is Algorithm.BFS and r.graph == "grid"
            and r.semantic.determinism is Determinism.DETERMINISTIC
        ]
        nondet = [
            r.iterations for r in records
            if r.algorithm is Algorithm.BFS and r.graph == "grid"
            and r.semantic.determinism is Determinism.NON_DETERMINISTIC
        ]
        assert min(nondet) <= min(det)
        assert max(nondet) <= max(det)


class TestRendering:
    def test_table(self, records):
        text = render_convergence(records)
        assert "bfs" in text and "tc" in text
        assert "det" in text and "nondet" in text
