"""SIGTERM handling in the parallel sweep supervisor.

A containerized shutdown delivers SIGTERM, not SIGINT; the supervisor
must treat both identically — clean worker teardown, finished-block
checkpoints kept for ``--resume`` — instead of dying mid-write with
leaked children.  Exercised end to end in a subprocess, since signal
dispositions are process-global.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.bench.parallel import _sigterm_as_interrupt

pytestmark = pytest.mark.faults

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

#: Sweeps one healthy graph, checkpoints it, then hangs on the second —
#: the only way out is the signal under test.  Prints INTERRUPTED plus
#: the number of checkpoint entries if (and only if) the clean
#: KeyboardInterrupt teardown ran.
_SCRIPT = """
import sys
from repro.bench.harness import SweepConfig
from repro.bench.checkpoint import CheckpointStore
from repro.bench.parallel import run_sweep_parallel
from repro.styles.axes import Algorithm, Model

config = SweepConfig(
    scale="tiny",
    algorithms=(Algorithm.BFS,),
    models=(Model.OPENMP,),
    cpu_names=("Threadripper 2950X",),
    graphs=("2d-2e20.sym", "USA-road-d.NY"),
    trace_cache=False,
)


def progress(done, total, block):
    print(f"PROGRESS {done}/{total}", flush=True)


try:
    run_sweep_parallel(config, workers=1, progress=progress)
except KeyboardInterrupt:
    store = CheckpointStore.for_config(config)
    print(f"INTERRUPTED {len(store)}", flush=True)
    sys.exit(3)
print("FINISHED", flush=True)
"""


def test_sigterm_takes_the_clean_interrupt_path(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_SWEEP_CACHE"] = str(tmp_path / "cache")
    env["REPRO_TRACE_CACHE"] = "0"
    # Hang the second block forever; the first completes and checkpoints.
    env["REPRO_FAULTS"] = json.dumps(
        [{"action": "hang", "graph": "USA-road-d.NY"}]
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", _SCRIPT],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    try:
        # Wait for the first block to finish (and be checkpointed).
        line = proc.stdout.readline()
        assert line.startswith("PROGRESS 1/"), f"unexpected: {line!r}"
        proc.send_signal(signal.SIGTERM)
        out = proc.stdout.read()
        code = proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
    # Default SIGTERM disposition would kill with -SIGTERM and print
    # nothing; the handler must convert it into the KeyboardInterrupt
    # teardown instead, with the finished block's checkpoint intact.
    assert code == 3, f"exit code {code}, output {out!r}"
    assert "INTERRUPTED 1" in out


def test_sigterm_context_manager_restores_previous_handler():
    previous = signal.getsignal(signal.SIGTERM)
    with _sigterm_as_interrupt():
        assert signal.getsignal(signal.SIGTERM) is not previous
        with pytest.raises(KeyboardInterrupt):
            os.kill(os.getpid(), signal.SIGTERM)
            # The raise happens at the next bytecode boundary; give the
            # interpreter one.
            time.sleep(1)
    assert signal.getsignal(signal.SIGTERM) is previous


def test_sigterm_helper_is_a_noop_off_the_main_thread():
    import threading

    seen = {}

    def run():
        with _sigterm_as_interrupt():
            seen["handler"] = signal.getsignal(signal.SIGTERM)

    before = signal.getsignal(signal.SIGTERM)
    t = threading.Thread(target=run)
    t.start()
    t.join(10)
    assert seen["handler"] is before  # unchanged: install refused safely
