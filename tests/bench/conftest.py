"""Shared fixtures: a small but complete sweep over tiny inputs."""

import pytest

from repro.bench import SweepConfig, run_sweep


@pytest.fixture(scope="session")
def tiny_sweep():
    """Full style grid on two tiny inputs (fast, complete structure)."""
    config = SweepConfig(
        scale="tiny",
        graphs=("USA-road-d.NY", "soc-LiveJournal1"),
    )
    return run_sweep(config)
