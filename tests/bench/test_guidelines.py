"""Unit tests for the Section 5.16 guideline derivation."""

from repro.bench.guidelines import Guideline, derive_guidelines


class TestDerivation:
    def test_eight_guidelines(self, tiny_sweep):
        guidelines = derive_guidelines(tiny_sweep)
        assert len(guidelines) == 8

    def test_each_has_evidence(self, tiny_sweep):
        for g in derive_guidelines(tiny_sweep):
            assert g.statement
            assert any(ch.isdigit() for ch in g.evidence)  # real numbers

    def test_render(self):
        g = Guideline("Do X.", "ratio 2.00", True)
        text = g.render()
        assert text.startswith("[+]")
        assert "Do X." in text and "ratio 2.00" in text

    def test_render_marks_failures(self):
        g = Guideline("Do Y.", "ratio 0.50", False)
        assert g.render().startswith("[!]")

    def test_guidelines_hold_on_tiny_inputs(self, tiny_sweep):
        # Even at unit-test scale the recommendations should mostly hold;
        # allow at most one marginal miss.
        guidelines = derive_guidelines(tiny_sweep)
        misses = [g for g in guidelines if not g.holds]
        assert len(misses) <= 1, [g.statement for g in misses]
