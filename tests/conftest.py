"""Suite-wide fixtures.

The fault-injection tests exercise hang detection and worker supervision;
if one of those paths regresses, the test itself could hang.  Every test
marked ``faults`` therefore runs under a hard SIGALRM deadline so a
regression fails loudly instead of wedging the suite.

The persistent trace store is disabled suite-wide (the ``0`` kill switch)
so tests never read or write ``~/.cache/repro/traces`` — a warm store
would otherwise leak state between runs and machines.  Tests of the store
itself point ``$REPRO_TRACE_CACHE`` at a tmpdir or pass a
:class:`~repro.bench.tracestore.TraceStore` explicitly.

The style predictor is disabled the same way: a trained artifact lying
around in ``~/.cache`` must never turn a test's cold sweep into a
predicted answer.  Predictor tests delete ``$REPRO_PREDICTOR`` (or point
it at their own artifact) via ``monkeypatch``.
"""

import os
import signal

import pytest

os.environ.setdefault("REPRO_TRACE_CACHE", "0")
os.environ.setdefault("REPRO_PREDICTOR", "0")

#: Hard per-test deadline for ``@pytest.mark.faults`` tests, in seconds —
#: generous next to their sub-second fault schedules, tiny next to a hang.
FAULT_TEST_TIMEOUT = 120


@pytest.fixture(autouse=True)
def _fault_test_deadline(request):
    if request.node.get_closest_marker("faults") is None or not hasattr(
        signal, "SIGALRM"
    ):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"fault test exceeded the {FAULT_TEST_TIMEOUT}s deadline — "
            "hang detection is likely broken"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(FAULT_TEST_TIMEOUT)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
