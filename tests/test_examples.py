"""The examples must run end-to-end (they are the de-facto tutorials)."""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=300):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stdout}\n{proc.stderr}"
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "GES" in out
        assert "verified against the serial reference" in out

    def test_style_advisor(self):
        out = run_example("style_advisor.py", "bfs")
        assert "wrong-style penalty" in out
        assert "best :" in out

    def test_reproduce_figure(self):
        out = run_example("reproduce_figure.py", "fig8", "tiny")
        assert "persistent / non-persistent" in out
        assert "median" in out

    def test_reproduce_figure_rejects_unknown(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "reproduce_figure.py"), "fig99"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 2

    def test_custom_graph_study(self):
        out = run_example("custom_graph_study.py")
        assert "winning style" in out
        assert "verified runs" in out

    @pytest.mark.skipif(shutil.which("g++") is None, reason="needs g++")
    def test_generated_code_demo(self):
        out = run_example("generated_code_demo.py")
        assert "AGREE on the ordering" in out
