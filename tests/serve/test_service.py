"""End-to-end behavior of the advisor service over real sockets."""

import http.client
import json
import threading

import pytest

from repro.serve.quotas import TenantQuota

pytestmark = pytest.mark.serve


def test_healthz_and_readyz(service):
    assert service.request("GET", "/healthz") == (200, {"status": "ok"})
    status, payload = service.request("GET", "/readyz")
    assert status == 200
    assert payload["status"] == "ready"


def test_unknown_endpoint_and_method(service):
    status, payload = service.request("GET", "/nope")
    assert status == 404
    assert payload["error"]["code"] == "not-found"
    status, payload = service.request("GET", "/v1/advise")
    assert status == 405
    assert payload["error"]["code"] == "method-not-allowed"


def test_malformed_json_is_bad_request(service):
    conn = http.client.HTTPConnection("127.0.0.1", service.port, timeout=30)
    conn.request("POST", "/v1/advise", body=b"{not json")
    resp = conn.getresponse()
    payload = json.loads(resp.read())
    conn.close()
    assert resp.status == 400
    assert payload["error"]["code"] == "bad-request"
    assert payload["request_id"].startswith("req-")


def test_named_graph_cold_then_warm(service):
    status, cold = service.advise(
        {"graph": "USA-road-d.NY", "algorithms": ["bfs"]}
    )
    assert status == 200
    assert cold["degraded"] is False
    assert cold["source"] == "sweep"
    assert cold["n_runs"] > 0
    assert cold["measured"], "expected best-style timings"
    assert cold["graph"]["name"] == "USA-road-d.NY"
    assert any(r["axis"] == "driver" for r in cold["advisor"])

    status, warm = service.advise(
        {"graph": "USA-road-d.NY", "algorithms": ["bfs"]}
    )
    assert status == 200
    assert warm["source"] == "cache"
    # The acceptance bar: a warm request re-executes nothing.
    assert warm["kernel_executions"] == 0
    assert warm["measured"] == cold["measured"]


def test_uploaded_graph_roundtrip(service):
    edges = [[0, 1], [1, 2], [2, 3], [3, 0], [0, 2]]
    status, payload = service.advise({"edges": edges, "algorithms": ["cc"]})
    assert status == 200
    assert payload["graph"]["name"].startswith("upload-")
    assert payload["graph"]["n_vertices"] == 4
    assert payload["degraded"] is False
    # Same content -> same fingerprint -> warm cache.
    status, again = service.advise({"edges": edges, "algorithms": ["cc"]})
    assert again["source"] == "cache"
    assert again["kernel_executions"] == 0
    assert again["graph"]["fingerprint"] == payload["graph"]["fingerprint"]


def test_invalid_upload_rejected(service):
    status, payload = service.advise({"edges": [[0, -1]]})
    assert status == 422
    assert payload["error"]["code"] == "invalid-graph"
    status, payload = service.advise({"edges": "nope"})
    assert status == 400
    status, payload = service.advise({})
    assert status == 400
    status, payload = service.advise(
        {"graph": "USA-road-d.NY", "edges": [[0, 1]]}
    )
    assert status == 400


def test_unknown_graph_and_axes(service):
    status, payload = service.advise({"graph": "no-such-input"})
    assert status == 404
    assert payload["error"]["code"] == "unknown-graph"
    status, payload = service.advise(
        {"graph": "USA-road-d.NY", "algorithms": ["warp-drive"]}
    )
    assert status == 400
    status, payload = service.advise(
        {"graph": "USA-road-d.NY", "gpus": ["Voodoo 2"]}
    )
    assert status == 400


def test_concurrent_identical_requests_coalesce(make_service):
    handle = make_service()
    results = [None] * 4
    barrier = threading.Barrier(4)

    def run(i):
        barrier.wait()
        results[i] = handle.advise(
            {"graph": "2d-2e20.sym", "algorithms": ["bfs"]}
        )

    threads = [threading.Thread(target=run, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(status == 200 for status, _ in results)
    sources = {payload["source"] for _, payload in results}
    # One leader sweeps; everyone else coalesces onto it (or reads the
    # cache if they arrived after it finished).
    assert "sweep" in sources
    assert sources <= {"sweep", "coalesced", "cache"}
    fingerprints = {
        payload["graph"]["fingerprint"] for _, payload in results
    }
    assert len(fingerprints) == 1
    _, stats = handle.request("GET", "/statz")
    assert stats["executor"]["jobs_run"] == 1


def test_tenant_quota_enforced_end_to_end(make_service):
    handle = make_service(
        tenant_quota=TenantQuota(max_inflight=1), max_workers=1
    )
    n = 6
    results = [None] * n
    barrier = threading.Barrier(n)

    def run(i):
        barrier.wait()
        # Distinct uploads so requests cannot coalesce.
        edges = [[0, 1], [1, 2], [2, 3 + i]]
        results[i] = handle.advise(
            {"edges": edges, "algorithms": ["bfs"]},
            headers={"X-Repro-Tenant": "greedy"},
        )

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    codes = []
    for status, payload in results:
        assert status in (200, 429)
        if status == 429:
            assert payload["error"]["code"] == "quota-exceeded"
            codes.append(payload["error"]["code"])
    assert codes, "six simultaneous requests against max_inflight=1 " \
                  "should have produced at least one rejection"


def test_statz_reports_counters(service):
    service.advise({"graph": "USA-road-d.NY", "algorithms": ["bfs"]})
    service.advise({"graph": "USA-road-d.NY", "algorithms": ["bfs"]})
    status, stats = service.request("GET", "/statz")
    assert status == 200
    assert stats["stats"]["answers"] >= 2
    assert stats["stats"]["cache_hits"] >= 1
    assert stats["breaker"]["state"] == "closed"
    assert stats["draining"] is False


def test_streaming_request_emits_progress_then_result(service):
    conn = http.client.HTTPConnection("127.0.0.1", service.port, timeout=120)
    conn.request(
        "POST", "/v1/advise",
        body=json.dumps(
            {"graph": "rmat22.sym", "algorithms": ["bfs"], "stream": True}
        ),
    )
    resp = conn.getresponse()
    assert resp.status == 200
    assert resp.getheader("Content-Type") == "application/x-ndjson"
    events = [json.loads(line) for line in resp.read().splitlines() if line]
    conn.close()
    kinds = [event["event"] for event in events]
    assert kinds[0] == "queued"
    assert kinds[-1] == "result"
    result = events[-1]
    assert result["degraded"] is False
    assert result["measured"]
