"""Circuit-breaker state machine, driven by an injected clock."""

import pytest

from repro.serve.breaker import BreakerState, CircuitBreaker

pytestmark = pytest.mark.serve


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def make(clock, threshold=3, reset=30.0):
    return CircuitBreaker(
        failure_threshold=threshold, reset_seconds=reset, clock=clock
    )


def test_stays_closed_below_threshold(clock):
    breaker = make(clock)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow()


def test_trips_at_threshold(clock):
    breaker = make(clock)
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert not breaker.allow()
    assert breaker.trips == 1


def test_success_resets_the_consecutive_count(clock):
    breaker = make(clock)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED


def test_half_open_admits_exactly_one_probe(clock):
    breaker = make(clock)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(30.0)
    assert breaker.state is BreakerState.HALF_OPEN
    assert breaker.allow()  # the probe
    assert not breaker.allow()  # everyone else still degraded
    assert not breaker.allow()


def test_probe_success_closes(clock):
    breaker = make(clock)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(30.0)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow()


def test_probe_failure_reopens_with_fresh_cooldown(clock):
    breaker = make(clock)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(30.0)
    assert breaker.allow()
    breaker.record_failure()  # probe failed
    assert breaker.state is BreakerState.OPEN
    assert breaker.trips == 2
    clock.advance(29.0)
    assert not breaker.allow()
    clock.advance(1.0)
    assert breaker.allow()


def test_open_before_cooldown_rejects(clock):
    breaker = make(clock, reset=10.0)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(9.9)
    assert not breaker.allow()
    assert breaker.state is BreakerState.OPEN


def test_snapshot_shape(clock):
    breaker = make(clock)
    breaker.record_failure()
    snap = breaker.snapshot()
    assert snap == {
        "state": "closed", "consecutive_failures": 1, "trips": 0,
    }


def test_threshold_must_be_positive():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
