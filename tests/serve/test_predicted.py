"""The serving plane's predicted tier (``source: "predicted"``).

The answer-source ladder is ``cache → predicted → sweep →
static-guideline``: a cold miss the trained style predictor covers must
answer from the model with zero kernel executions, while uncovered cells
and explicit ``"predict": false`` requests still get a real sweep.
"""

import pytest

from repro.bench import (
    StylePredictor,
    SweepConfig,
    mine_results,
    run_sweep,
)
from repro.bench.predictor import PREDICTOR_ENV
from repro.styles import Algorithm

pytestmark = [pytest.mark.serve, pytest.mark.predictor]


@pytest.fixture(scope="module")
def bfs_artifact(tmp_path_factory):
    """A model trained on tiny BFS rows only (covers BFS on every device)."""
    results = run_sweep(
        SweepConfig(
            scale="tiny",
            algorithms=(Algorithm.BFS,),
            graphs=("USA-road-d.NY", "soc-LiveJournal1"),
        )
    )
    predictor = StylePredictor.train(mine_results(results), seed=0, rounds=50)
    return predictor.save(tmp_path_factory.mktemp("serve-predictor") / "model.json")


def test_cold_miss_answers_from_the_predictor(
    make_service, bfs_artifact, monkeypatch
):
    monkeypatch.setenv(PREDICTOR_ENV, str(bfs_artifact))
    service = make_service()
    status, payload = service.advise(
        {"graph": "USA-road-d.NY", "algorithms": ["bfs"]}
    )
    assert status == 200
    assert payload["source"] == "predicted"
    assert payload["kernel_executions"] == 0
    assert payload["degraded"] is False
    assert payload["measured"], "predicted answer carries per-cell timings"
    assert all(m["predicted"] for m in payload["measured"])
    assert all(m["verified"] is False for m in payload["measured"])
    assert service.service.stats["predicted"] == 1

    # The predicted answer is not cached: an opt-out still sweeps.
    status, optout = service.advise(
        {"graph": "USA-road-d.NY", "algorithms": ["bfs"], "predict": False}
    )
    assert status == 200
    assert optout["source"] == "sweep"
    assert all(not m["predicted"] for m in optout["measured"])


def test_uncovered_algorithm_falls_through_to_a_sweep(
    make_service, bfs_artifact, monkeypatch
):
    monkeypatch.setenv(PREDICTOR_ENV, str(bfs_artifact))
    service = make_service()
    status, payload = service.advise(
        {"graph": "USA-road-d.NY", "algorithms": ["pr"]}
    )
    assert status == 200
    assert payload["source"] == "sweep"


def test_predict_false_config_disables_the_tier(
    make_service, bfs_artifact, monkeypatch
):
    monkeypatch.setenv(PREDICTOR_ENV, str(bfs_artifact))
    service = make_service(predict=False)
    status, payload = service.advise(
        {"graph": "USA-road-d.NY", "algorithms": ["bfs"]}
    )
    assert status == 200
    assert payload["source"] == "sweep"
