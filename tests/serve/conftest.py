"""Fixtures for the style-advisor service tests.

``service`` boots a real :class:`StyleAdvisorService` on an ephemeral
port inside a background event-loop thread and tears it down through the
drain path, so every test exercises the same code a production boot
would.  Requests go over real sockets via :mod:`http.client`.
"""

import asyncio
import http.client
import json
import threading

import pytest

from repro.serve.app import ServeConfig, StyleAdvisorService


class ServiceHandle:
    """One running service plus a tiny HTTP client against it."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.service = None
        self.port = None
        self._loop = None
        self._booted = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self._main())

    async def _main(self):
        self.service = StyleAdvisorService(self.config)
        _, self.port = await self.service.start()
        self._booted.set()
        await self.service.run_until_drained()

    def start(self):
        self._thread.start()
        assert self._booted.wait(15), "service failed to boot"
        return self

    def stop(self):
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.service.request_drain)
            self._thread.join(20)
        assert not self._thread.is_alive(), "service failed to drain"

    # ------------------------------------------------------------------
    def request(self, method, path, body=None, headers=None, timeout=120):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=timeout)
        try:
            conn.request(
                method,
                path,
                body=None if body is None else json.dumps(body),
                headers=headers or {},
            )
            resp = conn.getresponse()
            raw = resp.read()
        finally:
            conn.close()
        try:
            payload = json.loads(raw) if raw else None
        except ValueError:
            payload = raw
        return resp.status, payload

    def advise(self, body, **kwargs):
        return self.request("POST", "/v1/advise", body, **kwargs)


@pytest.fixture
def make_service():
    """Factory fixture: boot services with custom configs; all drained on
    teardown."""
    handles = []

    def boot(**overrides):
        defaults = dict(
            port=0, scale="tiny", max_workers=1, deadline_seconds=30.0
        )
        defaults.update(overrides)
        handle = ServiceHandle(ServeConfig(**defaults)).start()
        handles.append(handle)
        return handle

    yield boot
    for handle in handles:
        handle.stop()


@pytest.fixture
def service(make_service):
    """One service with test defaults (tiny scale, single worker)."""
    return make_service()
