"""Per-tenant quotas under concurrent admission.

The property under test: N simultaneous admissions against one tenant's
budget can never jointly over-admit, whatever the interleaving.  Checked
through the service quota layer (threads hammering ``admit``) and through
the underlying :class:`ResourceBudget` estimate it reserves against.
"""

import threading

import pytest

from repro.graph.builder import from_edge_list
from repro.runtime.budget import BudgetExceeded, ResourceBudget, estimate_bytes
from repro.serve.errors import ServiceError
from repro.serve.quotas import TenantQuota, TenantQuotas

pytestmark = pytest.mark.serve


def hammer(n_threads, fn):
    """Run ``fn(i)`` on n threads through a start barrier; return results."""
    barrier = threading.Barrier(n_threads)
    results = [None] * n_threads

    def run(i):
        barrier.wait()
        try:
            results[i] = ("ok", fn(i))
        except ServiceError as exc:
            results[i] = ("rejected", exc.code)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results


def test_concurrent_admission_never_exceeds_inflight_quota():
    quotas = TenantQuotas(default=TenantQuota(max_inflight=4))
    results = hammer(32, lambda i: quotas.admit("tenant-a", 0))
    admitted = [r for kind, r in results if kind == "ok"]
    rejected = [code for kind, code in results if kind == "rejected"]
    assert len(admitted) == 4
    assert rejected == ["quota-exceeded"] * 28
    snap = quotas.snapshot()
    assert snap["tenant-a"]["inflight"] == 4
    for reservation in admitted:
        reservation.release()
    assert quotas.snapshot() == {}


def test_concurrent_admission_never_exceeds_byte_quota():
    quotas = TenantQuotas(
        default=TenantQuota(max_inflight=None, max_bytes=1000)
    )
    results = hammer(20, lambda i: quotas.admit("tenant-b", 300))
    admitted = [r for kind, r in results if kind == "ok"]
    # 3 * 300 = 900 fits; a fourth would be 1200 > 1000.
    assert len(admitted) == 3
    assert quotas.snapshot()["tenant-b"]["reserved_bytes"] == 900
    for reservation in admitted:
        reservation.release()


def test_release_is_idempotent_and_frees_capacity():
    quotas = TenantQuotas(default=TenantQuota(max_inflight=1))
    first = quotas.admit("t", 10)
    with pytest.raises(ServiceError):
        quotas.admit("t", 10)
    first.release()
    first.release()  # double release must not free capacity twice
    second = quotas.admit("t", 10)
    with pytest.raises(ServiceError):
        quotas.admit("t", 10)
    second.release()


def test_tenants_are_isolated():
    quotas = TenantQuotas(default=TenantQuota(max_inflight=1))
    a = quotas.admit("a", 0)
    b = quotas.admit("b", 0)  # a's quota must not affect b
    a.release()
    b.release()


def test_per_tenant_override():
    quotas = TenantQuotas(default=TenantQuota(max_inflight=1))
    quotas.set_quota("big", TenantQuota(max_inflight=3))
    holds = [quotas.admit("big", 0) for _ in range(3)]
    with pytest.raises(ServiceError):
        quotas.admit("big", 0)
    for hold in holds:
        hold.release()


def test_reservation_context_manager_releases_on_error():
    quotas = TenantQuotas(default=TenantQuota(max_inflight=1))
    with pytest.raises(RuntimeError):
        with quotas.admit("t", 5):
            raise RuntimeError("handler blew up")
    quotas.admit("t", 5).release()  # capacity was returned


# ----------------------------------------------------------------------
# ResourceBudget directly: the byte estimate the quota reserves against
# ----------------------------------------------------------------------
def test_budget_estimate_gates_concurrent_reservations_directly():
    """Simulate N workers reserving against one shared ResourceBudget
    using the same check-then-reserve pattern the quota layer uses; the
    lock must make it atomic."""
    graph = from_edge_list([(0, 1), (1, 2), (2, 3)], name="quota-graph")
    per_run = estimate_bytes(graph)
    budget = ResourceBudget(max_bytes=per_run * 3)

    lock = threading.Lock()
    reserved = [0]
    admitted = []
    barrier = threading.Barrier(16)

    def worker(i):
        barrier.wait()
        with lock:
            try:
                # check_footprint validates a single run; the shared
                # accounting on top is what admission adds.
                estimate = budget.check_footprint(graph)
                if reserved[0] + estimate > budget.max_bytes:
                    return
                reserved[0] += estimate
                admitted.append(i)
            except BudgetExceeded:
                return

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(16)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(admitted) == 3
    assert reserved[0] <= budget.max_bytes


def test_budget_refuses_single_oversized_run():
    graph = from_edge_list([(0, 1), (1, 2)], name="big")
    budget = ResourceBudget(max_bytes=8)
    with pytest.raises(BudgetExceeded):
        budget.check_footprint(graph)


def test_service_quota_layer_uses_graph_estimates(make_service):
    """End to end: a tenant byte quota smaller than one tiny graph's
    estimated footprint refuses the request with quota-exceeded."""
    handle = make_service(
        tenant_quota=TenantQuota(max_inflight=8, max_bytes=16)
    )
    status, payload = handle.advise({"graph": "USA-road-d.NY"})
    assert status == 429
    assert payload["error"]["code"] == "quota-exceeded"
    assert payload["error"]["retryable"] is True
