"""Graceful shutdown: a real ``repro serve`` process under SIGTERM.

Boots the CLI in a subprocess on an ephemeral port, opens a streaming
request, and SIGTERMs the server while that request is in flight.  The
contract: the in-flight request completes with a full response, the
process drains and exits 0, and new work is refused during the drain.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro

pytestmark = [pytest.mark.serve, pytest.mark.faults]

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


@pytest.fixture
def server_process(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_TRACE_CACHE"] = str(tmp_path / "traces")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "--scale", "tiny",
            "serve", "--port", "0", "--workers", "1",
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        line = proc.stderr.readline()
        assert "serving on http://" in line, f"unexpected boot line: {line!r}"
        port = int(line.rsplit(":", 1)[1])
        yield proc, port
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)


def test_sigterm_drains_inflight_request_then_exits_zero(server_process):
    proc, port = server_process

    # Open a *streaming* request and wait for the "queued" event, so the
    # request is provably past admission before the signal lands.
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    conn.request(
        "POST", "/v1/advise",
        body=json.dumps(
            {"graph": "USA-road-d.NY", "algorithms": ["bfs"], "stream": True}
        ),
    )
    resp = conn.getresponse()
    assert resp.status == 200
    first = json.loads(resp.readline())
    assert first["event"] == "queued"

    proc.send_signal(signal.SIGTERM)

    # The in-flight request must still complete with a full result.
    events = [json.loads(line) for line in resp.read().splitlines() if line]
    conn.close()
    assert events, "in-flight request was dropped during drain"
    result = events[-1]
    assert result["event"] == "result"
    assert result["degraded"] is False or result["degraded_reason"]
    assert result["advisor"]

    assert proc.wait(timeout=30) == 0
    stderr = proc.stderr.read()
    assert "drained, exiting" in stderr


def test_new_requests_refused_while_draining(server_process):
    proc, port = server_process

    # Warm the service with one request so drain has nothing in flight.
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    conn.request(
        "POST", "/v1/advise",
        body=json.dumps({"graph": "2d-2e20.sym", "algorithms": ["bfs"]}),
    )
    assert conn.getresponse().status == 200
    conn.close()

    proc.send_signal(signal.SIGTERM)
    # After drain completes the listener is closed: connections fail.
    assert proc.wait(timeout=30) == 0
    with pytest.raises(OSError):
        probe = http.client.HTTPConnection("127.0.0.1", port, timeout=5)
        probe.request("GET", "/readyz")
        probe.getresponse()


def test_sigint_also_drains(server_process):
    proc, port = server_process
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    conn.request("GET", "/healthz")
    assert conn.getresponse().status == 200
    conn.close()
    proc.send_signal(signal.SIGINT)
    assert proc.wait(timeout=30) == 0


def hammer_during_drain_worker(port, results, i):
    try:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        conn.request(
            "POST", "/v1/advise",
            body=json.dumps({"graph": "rmat22.sym", "algorithms": ["bfs"]}),
        )
        resp = conn.getresponse()
        results[i] = (resp.status, json.loads(resp.read()))
        conn.close()
    except OSError:
        # Connection refused after the listener closed: an explicit,
        # pre-HTTP refusal, not a dropped in-flight request.
        results[i] = ("refused", None)


def test_requests_racing_the_drain_get_clean_outcomes(server_process):
    """Requests racing SIGTERM either complete, get a 503 shutting-down
    body, or are refused at connect time — never cut off mid-response."""
    proc, port = server_process
    n = 6
    results = [None] * n
    threads = [
        threading.Thread(target=hammer_during_drain_worker, args=(port, results, i))
        for i in range(n)
    ]
    for t in threads[: n // 2]:
        t.start()
    time.sleep(0.05)
    proc.send_signal(signal.SIGTERM)
    for t in threads[n // 2:]:
        t.start()
    for t in threads:
        t.join(60)
    assert proc.wait(timeout=30) == 0
    for outcome in results:
        assert outcome is not None, "a request hung through the drain"
        status, payload = outcome
        if status == "refused":
            continue
        assert status in (200, 503)
        if status == 503:
            assert payload["error"]["code"] == "shutting-down"
        else:
            assert "advisor" in payload
