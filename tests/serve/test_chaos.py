"""Chaos suite: the service under injected executor faults.

The contract under test: **no request is ever dropped without a
well-formed body**.  Whatever ``$REPRO_FAULTS`` does to the executor —
killing workers mid-sweep, hanging a request past its deadline,
rejecting enqueues — every in-flight request completes with either a
valid recommendation, a ``"degraded": true`` fallback answer, or a JSON
error body with a registered code; and no worker processes survive the
requests that spawned them.
"""

import json
import multiprocessing
import threading
import time

import pytest

from repro.bench.faults import FAULTS_ENV
from repro.serve.errors import ERROR_CODES

pytestmark = [pytest.mark.serve, pytest.mark.faults]


def set_faults(monkeypatch, *rules):
    monkeypatch.setenv(FAULTS_ENV, json.dumps(list(rules)))


def assert_well_formed(status, payload):
    """Every advise outcome is a full answer, a degraded answer, or a
    registered error body — never anything else."""
    assert isinstance(payload, dict), f"non-JSON body: {payload!r}"
    if status == 200:
        assert "degraded" in payload
        assert payload["advisor"], "answers must carry recommendations"
        if payload["degraded"]:
            assert payload["degraded_reason"]
            assert payload["source"] == "static-guideline"
        else:
            assert payload["measured"]
    else:
        error = payload["error"]
        assert error["code"] in ERROR_CODES
        assert error["status"] == status
        assert isinstance(error["retryable"], bool)
        assert payload["request_id"].startswith("req-")


def test_kill_executor_degrades_to_static_guidelines(make_service, monkeypatch):
    set_faults(monkeypatch, {"action": "kill-executor", "graph": "USA-road-d.NY"})
    handle = make_service(max_attempts=2)
    status, payload = handle.advise({"graph": "USA-road-d.NY"})
    assert_well_formed(status, payload)
    assert status == 200
    assert payload["degraded"] is True
    assert payload["degraded_code"] == "executor-crashed"
    assert payload["kernel_executions"] == 0
    # The fallback still gives the client real advice.
    axes = {r["axis"] for r in payload["advisor"]}
    assert {"driver", "flow", "determinism"} <= axes
    # An unaffected graph still gets the full sweep.
    status, healthy = handle.advise({"graph": "2d-2e20.sym"})
    assert status == 200 and healthy["degraded"] is False


def test_kill_executor_retries_before_degrading(make_service, monkeypatch):
    # Attempt 1 dies, attempt 2 survives: the retry path recovers.
    set_faults(
        monkeypatch,
        {"action": "kill-executor", "graph": "rmat22.sym", "attempts": [1]},
    )
    handle = make_service(max_attempts=3)
    status, payload = handle.advise({"graph": "rmat22.sym"})
    assert status == 200
    assert payload["degraded"] is False
    assert payload["measured"]


def test_hang_request_hits_the_deadline_and_degrades(make_service, monkeypatch):
    set_faults(monkeypatch, {"action": "hang-request", "graph": "USA-road-d.NY"})
    handle = make_service(max_attempts=1, deadline_seconds=2.0)
    started = time.monotonic()
    status, payload = handle.advise({"graph": "USA-road-d.NY"})
    elapsed = time.monotonic() - started
    assert_well_formed(status, payload)
    assert status == 200
    assert payload["degraded"] is True
    assert payload["degraded_code"] == "executor-timeout"
    # Bounded by the deadline, not by the 3600s hang.
    assert elapsed < 30


def test_reject_enqueue_is_explicit_backpressure(make_service, monkeypatch):
    set_faults(monkeypatch, {"action": "reject-enqueue"})
    handle = make_service()
    status, payload = handle.advise({"graph": "USA-road-d.NY"})
    assert_well_formed(status, payload)
    assert status == 429
    assert payload["error"]["code"] == "queue-full"
    assert payload["error"]["retryable"] is True


def test_breaker_trips_and_serves_degraded_instantly(make_service, monkeypatch):
    set_faults(monkeypatch, {"action": "kill-executor"})
    handle = make_service(
        max_attempts=1, breaker_threshold=2, breaker_reset_seconds=3600
    )
    # Two failing sweeps trip the breaker (distinct graphs: no coalescing).
    handle.advise({"graph": "USA-road-d.NY"})
    handle.advise({"graph": "2d-2e20.sym"})
    _, stats = handle.request("GET", "/statz")
    assert stats["breaker"]["state"] == "open"
    # Clear the faults: the breaker, not the fault plan, now degrades.
    monkeypatch.delenv(FAULTS_ENV)
    jobs_before = stats["executor"]["jobs_run"]
    started = time.monotonic()
    status, payload = handle.advise({"graph": "rmat22.sym"})
    assert status == 200
    assert payload["degraded"] is True
    assert payload["degraded_code"] == "breaker-open"
    assert time.monotonic() - started < 5
    _, stats = handle.request("GET", "/statz")
    # The open breaker skipped the executor entirely.
    assert stats["executor"]["jobs_run"] == jobs_before


def test_no_request_dropped_under_concurrent_chaos(make_service, monkeypatch):
    """A mixed burst under kill-executor chaos: every single request
    comes back well-formed; none hang, none drop."""
    set_faults(monkeypatch, {"action": "kill-executor", "graph": "USA-road-d.NY"})
    handle = make_service(max_attempts=1, max_workers=2)
    bodies = [
        {"graph": "USA-road-d.NY"},                       # dies -> degraded
        {"graph": "2d-2e20.sym"},                         # healthy sweep
        {"edges": [[0, 1], [1, 2]]},                      # healthy upload
        {"graph": "no-such-graph"},                       # 404
        {"edges": [[0, -5]]},                             # 422
        {"graph": "USA-road-d.NY", "algorithms": ["xx"]}, # 400
    ] * 2
    results = [None] * len(bodies)
    barrier = threading.Barrier(len(bodies))

    def run(i):
        barrier.wait()
        results[i] = handle.advise(bodies[i])

    threads = [
        threading.Thread(target=run, args=(i,)) for i in range(len(bodies))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(r is not None for r in results), "a request was dropped"
    for (status, payload), body in zip(results, bodies):
        assert_well_formed(status, payload)
    statuses = sorted({status for status, _ in results})
    assert statuses == [200, 400, 404, 422]


def test_no_leaked_workers_after_chaos(make_service, monkeypatch):
    set_faults(monkeypatch, {"action": "kill-executor"})
    handle = make_service(max_attempts=2)
    for graph in ("USA-road-d.NY", "2d-2e20.sym"):
        status, payload = handle.advise({"graph": graph})
        assert status == 200 and payload["degraded"] is True
    handle.stop()
    deadline = time.monotonic() + 10
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []
