"""Unit tests of the service-level ``$REPRO_FAULTS`` actions.

The chaos suite exercises these through the full service; here the three
new actions — ``kill-executor``, ``hang-request``, ``reject-enqueue`` —
are pinned down at the injection-point level: plan parsing, matching,
and the worker-only guard on the kill.
"""

import json

import pytest

from repro.bench import faults
from repro.bench.faults import (
    FAULTS_ENV,
    WORKER_ENV,
    FaultInjected,
    active_rules,
    inject_enqueue_fault,
    inject_executor_fault,
)

pytestmark = [pytest.mark.serve, pytest.mark.faults]


def arm(monkeypatch, *rules):
    monkeypatch.setenv(FAULTS_ENV, json.dumps(list(rules)))


def test_service_actions_parse(monkeypatch):
    arm(
        monkeypatch,
        {"action": "kill-executor"},
        {"action": "hang-request", "graph": "g"},
        {"action": "reject-enqueue", "algorithm": "bfs"},
    )
    actions = [rule.action for rule in active_rules()]
    assert actions == ["kill-executor", "hang-request", "reject-enqueue"]


def test_reject_enqueue_raises_only_on_match(monkeypatch):
    arm(monkeypatch, {"action": "reject-enqueue", "graph": "target"})
    inject_enqueue_fault("bfs", "other")  # no match: no-op
    with pytest.raises(FaultInjected):
        inject_enqueue_fault("bfs", "target")


def test_reject_enqueue_respects_attempt_window(monkeypatch):
    arm(monkeypatch, {"action": "reject-enqueue", "attempts": [1]})
    with pytest.raises(FaultInjected):
        inject_enqueue_fault("bfs", "g", attempt=1)
    inject_enqueue_fault("bfs", "g", attempt=2)  # outside the window


def test_kill_executor_is_inert_outside_workers(monkeypatch):
    """The kill action must only fire where the worker guard is set —
    in the service process it is a no-op, never a self-kill."""
    arm(monkeypatch, {"action": "kill-executor"})
    monkeypatch.delenv(WORKER_ENV, raising=False)
    inject_executor_fault("bfs", "g", 1)  # still alive == pass


def test_hang_request_sleeps_in_any_process(monkeypatch):
    """hang-request simulates a wedged request, which does not need the
    worker guard; verify it routes into the (patched) sleep."""
    arm(monkeypatch, {"action": "hang-request", "graph": "g"})
    slept = []
    monkeypatch.setattr(faults.time, "sleep", lambda s: slept.append(s))
    inject_executor_fault("bfs", "g", 1)
    assert slept == [faults.HANG_SECONDS]
    slept.clear()
    inject_executor_fault("bfs", "other", 1)  # no match: no sleep
    assert slept == []


def test_executor_fault_ignores_unrelated_actions(monkeypatch):
    arm(monkeypatch, {"action": "raise"}, {"action": "kill"})
    inject_executor_fault("bfs", "g", 1)
    inject_enqueue_fault("bfs", "g")
