"""Schema stability for the service's machine-readable failure taxonomy.

Clients, load balancers and dashboards key off the stable error codes and
the frozen error-body shape.  This test freezes the full vocabulary —
every code, its HTTP status, its retryability, and the total
ErrorClass -> code mapping — so a rename or a dropped code is an
explicit, reviewed diff instead of a silent contract break (mirroring
``tests/analysis/test_findings_schema.py``).
"""

import json

import pytest

from repro.runtime.errors import ErrorClass
from repro.serve.errors import (
    ERROR_CLASS_CODES,
    ERROR_CODES,
    ServiceError,
    code_for_error_class,
    error_payload,
)

pytestmark = pytest.mark.serve

#: code -> (HTTP status, retryable).  Frozen: extending is fine, renaming
#: or changing a mapping is a contract change.
EXPECTED_CODES = {
    "bad-request": (400, False),
    "not-found": (404, False),
    "method-not-allowed": (405, False),
    "unknown-graph": (404, False),
    "payload-too-large": (413, False),
    "invalid-graph": (422, False),
    "queue-full": (429, True),
    "quota-exceeded": (429, True),
    "deadline-exceeded": (504, True),
    "shutting-down": (503, True),
    "breaker-open": (503, True),
    "internal": (500, True),
    "verification-failed": (500, False),
    "kernel-error": (500, False),
    "executor-timeout": (504, True),
    "executor-crashed": (502, True),
    "checkpoint-corrupt": (500, True),
    "interrupted": (503, True),
    "numerical-divergence": (422, False),
    "budget-exceeded": (413, False),
    "degenerate-graph": (422, False),
}

EXPECTED_CLASS_CODES = {
    "verification": "verification-failed",
    "kernel": "kernel-error",
    "timeout": "executor-timeout",
    "crash": "executor-crashed",
    "checkpoint": "checkpoint-corrupt",
    "interrupted": "interrupted",
    "divergence": "numerical-divergence",
    "budget": "budget-exceeded",
    "degenerate": "degenerate-graph",
}


def test_code_registry_is_frozen():
    actual = {
        code: (entry.status, entry.retryable)
        for code, entry in ERROR_CODES.items()
    }
    assert actual == EXPECTED_CODES


def test_every_error_class_maps_to_a_registered_code():
    assert {
        cls.value: code for cls, code in ERROR_CLASS_CODES.items()
    } == EXPECTED_CLASS_CODES
    # Total mapping: no taxonomy member may be left out.
    assert set(ERROR_CLASS_CODES) == set(ErrorClass)
    for code in ERROR_CLASS_CODES.values():
        assert code in ERROR_CODES


def test_error_body_shape_is_frozen():
    error = ServiceError.from_error_class(ErrorClass.CRASH, "worker died")
    payload = error_payload(error, "req-000001")
    # The frozen top-level and error-object key sets.
    assert set(payload) == {"error", "request_id", "degraded"}
    assert set(payload["error"]) == {
        "code", "status", "retryable", "message", "error_class",
    }
    assert payload == {
        "error": {
            "code": "executor-crashed",
            "status": 502,
            "retryable": True,
            "message": "worker died",
            "error_class": "crash",
        },
        "request_id": "req-000001",
        "degraded": False,
    }
    json.dumps(payload)  # always JSON-serializable


def test_service_level_errors_carry_null_error_class():
    payload = error_payload(ServiceError("queue-full", "busy"), "req-000002")
    assert payload["error"]["error_class"] is None
    assert payload["error"]["retryable"] is True


def test_unknown_code_is_rejected():
    with pytest.raises(ValueError):
        ServiceError("no-such-code", "nope")


def test_code_for_error_class_is_total():
    for cls in ErrorClass:
        assert code_for_error_class(cls) in ERROR_CODES
