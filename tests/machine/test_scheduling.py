"""Unit tests for the work-to-unit decompositions (hand-computed cases)."""

import numpy as np
import pytest

from repro.machine import (
    cpu_blocked_units,
    cpu_cyclic_units,
    gpu_units,
    makespan,
)
from repro.styles import Granularity


class TestMakespan:
    def test_parallel_bound(self):
        assert makespan(100.0, 5.0, 10.0) == 10.0

    def test_critical_path_bound(self):
        assert makespan(100.0, 50.0, 10.0) == 50.0

    def test_invalid_slots(self):
        with pytest.raises(ValueError):
            makespan(1.0, 1.0, 0.0)


class TestThreadGranularity:
    def test_lockstep_warp_max(self):
        # 64 items, trips = item index; warp time = max lane.
        trips = np.arange(64, dtype=np.int64)
        units = gpu_units(
            trips, 64, Granularity.THREAD, False,
            block_size=256, resident_threads=1024,
        )
        assert units.n_units == 2
        total, longest = units.times(alpha=1.0, beta_par=1.0, beta_ser=0.0)
        # warp 0: 1 + 31; warp 1: 1 + 63.
        assert total == pytest.approx((1 + 31) + (1 + 63))
        assert longest == pytest.approx(1 + 63)

    def test_padding_partial_warp(self):
        trips = np.array([5, 7, 9], dtype=np.int64)
        units = gpu_units(
            trips, 3, Granularity.THREAD, False,
            block_size=256, resident_threads=1024,
        )
        assert units.n_units == 1
        _, longest = units.times(0.0, 1.0, 0.0)
        assert longest == 9.0

    def test_persistent_strided_assignment(self):
        # 8 items, 4 resident threads: thread j gets items j and j+4.
        trips = np.array([1, 2, 3, 4, 10, 20, 30, 40], dtype=np.int64)
        units = gpu_units(
            trips, 8, Granularity.THREAD, True,
            block_size=256, resident_threads=4,
        )
        assert units.n_units == 1  # 4 threads = a fraction of one warp
        total, longest = units.times(0.0, 1.0, 0.0)
        # Thread sums: 11, 22, 33, 44 -> warp max 44.
        assert longest == 44.0
        assert total == 44.0


class TestWarpBlockGranularity:
    def test_warp_strip_mining(self):
        trips = np.array([64, 100], dtype=np.int64)
        units = gpu_units(
            trips, 2, Granularity.WARP, False,
            block_size=256, resident_threads=10**6,
        )
        assert units.n_units == 2
        total, _ = units.times(0.0, 1.0, 0.0)
        assert total == np.ceil(64 / 32) + np.ceil(100 / 32)

    def test_block_width(self):
        trips = np.array([10], dtype=np.int64)
        units = gpu_units(
            trips, 1, Granularity.BLOCK, False,
            block_size=256, resident_threads=10**6,
        )
        assert units.width == 256 / 32

    def test_serial_trips_not_strip_mined(self):
        trips = np.array([100], dtype=np.int64)
        units = gpu_units(
            trips, 1, Granularity.WARP, False,
            block_size=256, resident_threads=10**6,
        )
        total_ser, _ = units.times(0.0, 0.0, 1.0)
        assert total_ser == 100.0  # raw trips for same-address atomics

    def test_warp_persistent(self):
        trips = np.array([32, 32, 64, 64], dtype=np.int64)
        units = gpu_units(
            trips, 4, Granularity.WARP, True,
            block_size=256, resident_threads=64,  # two resident warps
        )
        assert units.n_units == 2
        total, longest = units.times(0.0, 1.0, 0.0)
        # Warp 0 gets items 0, 2 (1 + 2 strips); warp 1 gets 1, 3.
        assert total == 6.0
        assert longest == 3.0


class TestUniformFastPath:
    def test_no_inner_loop(self):
        units = gpu_units(
            None, 1000, Granularity.THREAD, False,
            block_size=256, resident_threads=10**6,
        )
        assert units.base is None and units.trips_par is None
        total, longest = units.times(2.0, 0.0, 0.0)
        assert total == 2.0 * units.n_units
        assert longest == 2.0
        assert units.n_units == int(np.ceil(1000 / 32))

    def test_uniform_persistent(self):
        units = gpu_units(
            None, 1000, Granularity.THREAD, True,
            block_size=256, resident_threads=100,
        )
        # 100 resident threads handle 10 items each.
        assert units.uniform_base == 10.0

    def test_empty_launch(self):
        units = gpu_units(
            None, 0, Granularity.THREAD, False,
            block_size=256, resident_threads=64,
        )
        assert units.n_units == 0
        assert units.times(1.0, 1.0, 1.0) == (0.0, 0.0)


class TestCpuUnits:
    def test_blocked_contiguous(self):
        inner = np.array([1, 1, 1, 100], dtype=np.int64)
        units = cpu_blocked_units(inner, 4, threads=2)
        # Thread 0: items 0, 1; thread 1: items 2, 3.
        total, longest = units.times(0.0, 1.0, 0.0)
        assert total == 103.0
        assert longest == 101.0

    def test_cyclic_strided(self):
        inner = np.array([1, 1, 1, 100], dtype=np.int64)
        units = cpu_cyclic_units(inner, 4, threads=2)
        # Thread 0: items 0, 2; thread 1: items 1, 3.
        _, longest = units.times(0.0, 1.0, 0.0)
        assert longest == 101.0

    def test_cyclic_balances_gradient(self):
        # Work correlated with index: cyclic balances, blocked does not.
        inner = np.arange(100, dtype=np.int64)
        blocked = cpu_blocked_units(inner, 100, threads=4)
        cyclic = cpu_cyclic_units(inner, 100, threads=4)
        _, longest_blocked = blocked.times(0.0, 1.0, 0.0)
        _, longest_cyclic = cyclic.times(0.0, 1.0, 0.0)
        assert longest_cyclic < longest_blocked

    def test_fewer_items_than_threads(self):
        units = cpu_blocked_units(np.array([5, 5], dtype=np.int64), 2, threads=16)
        assert units.n_units == 2

    def test_uniform(self):
        units = cpu_blocked_units(None, 64, threads=8)
        total, longest = units.times(1.0, 0.0, 0.0)
        assert longest == 8.0
        assert total == 64.0

    def test_empty(self):
        units = cpu_cyclic_units(None, 0, threads=4)
        assert units.n_units == 0
