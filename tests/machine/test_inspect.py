"""Tests for the trace-inspection utilities."""

import numpy as np

from repro.graph import grid2d
from repro.kernels import BFSKernel
from repro.machine import (
    ExecutionTrace,
    IterationProfile,
    render_trace,
    summarize_trace,
    trace_to_csv,
)
from repro.styles import Algorithm, Model, semantic_combinations


def make_trace():
    t = ExecutionTrace(n_edges=10, n_vertices=5, iterations=2, label="x")
    t.add(IterationProfile(n_items=5, inner=np.array([1, 2, 3, 4, 5]),
                           atomics_inner=1.0, label="relax"))
    t.add(IterationProfile(n_items=5, inner=np.array([1, 0, 0, 0, 0]),
                           atomics_inner=1.0, hot_atomics=3.0, label="relax"))
    t.add(IterationProfile(n_items=5, shared_stores_base=1.0, label="init"))
    return t


class TestSummaries:
    def test_aggregation_by_label(self):
        summary = summarize_trace(make_trace())
        assert set(summary) == {"relax", "init"}
        assert summary["relax"].n_items == 10
        assert summary["relax"].inner_total == 16
        assert summary["relax"].atomics == 16.0
        assert summary["relax"].hot_atomics == 3.0

    def test_csv_rows(self):
        csv = trace_to_csv(make_trace())
        rows = csv.strip().splitlines()
        assert len(rows) == 4  # header + 3 launches
        assert rows[0].startswith("launch,label,")
        assert rows[1].split(",")[1] == "relax"

    def test_render(self):
        text = render_trace(make_trace())
        assert "relax" in text and "init" in text
        assert "2 iterations" in text

    def test_real_kernel_trace(self):
        g = grid2d(8, 8, weighted=False)
        sem = next(iter(semantic_combinations(Algorithm.BFS, Model.CUDA)))
        trace = BFSKernel(g, 0).run(sem.semantic_key()).trace
        text = render_trace(trace)
        assert "relax" in text
        csv = trace_to_csv(trace)
        assert csv.count("\n") == trace.n_launches + 1
