"""Unit tests for the device registry (paper Section 4.3 testbed)."""

import dataclasses

import pytest

from repro.machine import (
    CPUS,
    DEVICES,
    GPUS,
    RTX_3090,
    THREADRIPPER_2950X,
    TITAN_V,
    XEON_GOLD_6226R,
    get_device,
)


class TestRegistry:
    def test_two_gpus_two_cpus(self):
        assert set(GPUS) == {"Titan V", "RTX 3090"}
        assert set(CPUS) == {"Threadripper 2950X", "Xeon Gold 6226R x2"}
        assert len(DEVICES) == 4

    def test_get_device(self):
        assert get_device("Titan V") is TITAN_V
        with pytest.raises(KeyError, match="unknown device"):
            get_device("H100")


class TestSpecSanity:
    def test_threads_match_paper(self):
        # "We use 16 threads ... on the first system and 32 on the second."
        assert THREADRIPPER_2950X.threads == 16
        assert XEON_GOLD_6226R.threads == 32

    def test_sm_counts_match_paper(self):
        assert TITAN_V.sm_count == 80
        assert RTX_3090.sm_count == 82

    def test_clocks_match_paper(self):
        assert TITAN_V.clock_ghz == pytest.approx(1.2)
        assert RTX_3090.clock_ghz == pytest.approx(1.74)
        assert THREADRIPPER_2950X.clock_ghz == pytest.approx(3.5)
        assert XEON_GOLD_6226R.clock_ghz == pytest.approx(2.9)

    def test_volta_cudaatomic_penalty_larger(self):
        # Figure 1: ~100x medians on the Titan V vs ~10x on the 3090.
        assert TITAN_V.cudaatomic_ls_mult > 5 * RTX_3090.cudaatomic_ls_mult

    def test_seconds_conversion(self):
        assert TITAN_V.seconds(1.2e9) == pytest.approx(1.0)
        assert THREADRIPPER_2950X.seconds(3.5e9) == pytest.approx(1.0)

    def test_all_costs_positive(self):
        for spec in DEVICES.values():
            for field in dataclasses.fields(spec):
                value = getattr(spec, field.name)
                if isinstance(value, (int, float)):
                    assert value > 0, f"{spec.name}.{field.name} must be positive"

    def test_issue_slots(self):
        assert TITAN_V.issue_slots == 320
        assert RTX_3090.issue_slots == 328
