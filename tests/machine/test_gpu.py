"""Unit tests for the GPU timing model: monotonicity and style effects."""

import numpy as np
import pytest

from repro.machine import RTX_3090, TITAN_V, ExecutionTrace, GPUModel, IterationProfile
from repro.styles import (
    Algorithm,
    AtomicFlavor,
    Granularity,
    GpuReduction,
    Iteration,
    Model,
    Persistence,
    StyleSpec,
)


def style(**kw) -> StyleSpec:
    base = dict(
        algorithm=Algorithm.SSSP,
        model=Model.CUDA,
        granularity=Granularity.THREAD,
        persistence=Persistence.NON_PERSISTENT,
        atomic_flavor=AtomicFlavor.ATOMIC,
    )
    base.update(kw)
    return StyleSpec(**base)


def profile(**kw) -> IterationProfile:
    base = dict(
        n_items=2000,
        inner=np.full(2000, 8, dtype=np.int64),
        base_cycles=2.0,
        inner_cycles=2.0,
        struct_loads_base=2.0,
        struct_loads_inner=1.0,
        shared_loads_base=1.0,
        atomics_inner=1.0,
        atomic_minmax=True,
    )
    base.update(kw)
    return IterationProfile(**base)


@pytest.fixture
def model():
    return GPUModel(RTX_3090)


class TestBasics:
    def test_empty_launch_costs_a_launch(self, model):
        assert model.profile_cycles(IterationProfile(n_items=0), style()) == (
            RTX_3090.cycles_launch
        )

    def test_rejects_cpu_specs(self, model):
        trace = ExecutionTrace(n_edges=1, n_vertices=1)
        from repro.styles import OmpSchedule

        cpu = StyleSpec(
            algorithm=Algorithm.SSSP, model=Model.OPENMP,
            omp_schedule=OmpSchedule.DEFAULT,
        )
        with pytest.raises(ValueError, match="CUDA"):
            model.time_trace(trace, cpu)

    def test_throughput_definition(self, model):
        trace = ExecutionTrace(n_edges=10_000, n_vertices=100)
        trace.add(profile())
        seconds = model.time_trace(trace, style())
        assert model.throughput(trace, style()) == pytest.approx(
            10_000 / seconds / 1e9
        )

    def test_deterministic(self, model):
        p = profile()
        assert model.profile_cycles(p, style()) == model.profile_cycles(p, style())


class TestMonotonicity:
    def test_more_work_more_time(self, model):
        a = model.profile_cycles(profile(), style())
        b = model.profile_cycles(
            profile(inner=np.full(2000, 16, dtype=np.int64)), style()
        )
        assert b > a

    def test_conflicts_cost(self, model):
        a = model.profile_cycles(profile(), style())
        b = model.profile_cycles(
            profile(conflict_extra=5000.0, max_conflict=100), style()
        )
        assert b > a

    def test_hot_atomics_cost(self, model):
        a = model.profile_cycles(profile(), style())
        b = model.profile_cycles(profile(hot_atomics=10_000.0), style())
        assert b > a

    def test_cudaatomic_slower(self, model):
        # A load/store-heavy launch large enough to be issue-bound.
        p = profile(
            n_items=300_000,
            inner=np.full(300_000, 8, dtype=np.int64),
            shared_loads_inner=1.0,
        )
        a = model.profile_cycles(p, style())
        b = model.profile_cycles(
            p, style(atomic_flavor=AtomicFlavor.CUDA_ATOMIC)
        )
        assert b > 3 * a

    def test_cudaatomic_worse_on_titan_v(self):
        p = profile(shared_loads_inner=1.0)
        ampere, volta = GPUModel(RTX_3090), GPUModel(TITAN_V)
        ratio_ampere = ampere.profile_cycles(
            p, style(atomic_flavor=AtomicFlavor.CUDA_ATOMIC)
        ) / ampere.profile_cycles(p, style())
        ratio_volta = volta.profile_cycles(
            p, style(atomic_flavor=AtomicFlavor.CUDA_ATOMIC)
        ) / volta.profile_cycles(p, style())
        assert ratio_volta > 2 * ratio_ampere  # Figure 1's device gap


class TestGranularity:
    def test_block_pays_barriers(self, model):
        p = profile()
        warp = model.profile_cycles(p, style(granularity=Granularity.WARP))
        block = model.profile_cycles(p, style(granularity=Granularity.BLOCK))
        assert block > warp

    def test_warp_helps_skewed_degrees(self, model):
        rng = np.random.default_rng(0)
        skewed = rng.zipf(1.6, 5000).clip(max=3000).astype(np.int64) * 8
        p = profile(n_items=5000, inner=skewed)
        thread = model.profile_cycles(p, style(granularity=Granularity.THREAD))
        warp = model.profile_cycles(p, style(granularity=Granularity.WARP))
        assert warp < thread

    def test_thread_wins_uniform_low_degree(self, model):
        # Compute-heavy, uniform, low-degree items: a warp per item wastes
        # 29 of its 32 lanes, a thread per item wastes nothing.
        p = profile(
            n_items=50_000,
            inner=np.full(50_000, 3, dtype=np.int64),
            inner_cycles=30.0,
            atomics_inner=0.0,
        )
        thread = model.profile_cycles(p, style(granularity=Granularity.THREAD))
        warp = model.profile_cycles(p, style(granularity=Granularity.WARP))
        assert thread < warp

    def test_same_address_atomics_defeat_warp_strip_mining(self, model):
        # An L2-resident, issue-bound launch: the serialized atomic chain
        # of the pull style (one address per item) costs the warp
        # granularity its strip-mining benefit.
        kw = dict(n_items=1000, inner=np.full(1000, 64, dtype=np.int64))
        p = profile(atomics_same_address_per_item=True, **kw)
        q = profile(atomics_same_address_per_item=False, **kw)
        trace_p = ExecutionTrace(n_edges=1000, n_vertices=100)
        trace_p.add(p)
        trace_q = ExecutionTrace(n_edges=1000, n_vertices=100)
        trace_q.add(q)
        warp = style(granularity=Granularity.WARP)
        assert model.time_trace(trace_p, warp) > model.time_trace(trace_q, warp)

    def test_persistence_near_noop_for_uniform(self, model):
        p = profile()
        a = model.profile_cycles(p, style(persistence=Persistence.PERSISTENT))
        b = model.profile_cycles(p, style(persistence=Persistence.NON_PERSISTENT))
        assert a == pytest.approx(b, rel=0.25)


class TestReductions:
    def p_red(self, items=50_000.0):
        return profile(reduction_items=items)

    def style_red(self, red):
        return style(algorithm=Algorithm.TC, gpu_reduction=red)

    def test_ordering_matches_figure_10(self, model):
        # reduction-add < global-add < block-add in cost.
        t = {
            red: model.profile_cycles(self.p_red(), self.style_red(red))
            for red in GpuReduction
        }
        assert t[GpuReduction.REDUCTION_ADD] < t[GpuReduction.GLOBAL_ADD]
        assert t[GpuReduction.GLOBAL_ADD] < t[GpuReduction.BLOCK_ADD]

    def test_no_reduction_axis_is_free(self, model):
        a = model.profile_cycles(profile(reduction_items=1000.0), style())
        b = model.profile_cycles(profile(reduction_items=0.0), style())
        assert a == b  # no gpu_reduction on the spec -> not timed


class TestMemoryModel:
    def test_l2_resident_faster_than_dram(self, model):
        p = profile(shared_loads_inner=4.0)
        small = ExecutionTrace(n_edges=1000, n_vertices=100)
        small.add(p)
        big = ExecutionTrace(n_edges=10_000_000, n_vertices=1_000_000)
        big.add(p)
        assert model.time_trace(small, style()) <= model.time_trace(big, style())

    def test_warp_granularity_coalesces_struct_streams(self, model):
        # With heavy structural traffic, warp granularity moves fewer bytes.
        p = profile(
            n_items=200_000,
            inner=np.full(200_000, 12, dtype=np.int64),
            struct_loads_inner=4.0,
            atomics_inner=0.0,
        )
        mem_thread = model._memory_cycles(
            p, style(granularity=Granularity.THREAD), Granularity.THREAD,
            RTX_3090.mem_bytes_per_cycle,
        )
        mem_warp = model._memory_cycles(
            p, style(granularity=Granularity.WARP), Granularity.WARP,
            RTX_3090.mem_bytes_per_cycle,
        )
        assert mem_warp < mem_thread

    def test_edge_based_streams_coalesced(self, model):
        p = IterationProfile(n_items=100_000, struct_loads_base=3.0)
        cuda_edge = style(iteration=Iteration.EDGE)
        cuda_vertex = style(iteration=Iteration.VERTEX)
        a = model._memory_cycles(p, cuda_edge, Granularity.THREAD, 538.0)
        b = model._memory_cycles(p, cuda_vertex, Granularity.THREAD, 538.0)
        assert a == b  # base streams are contiguous either way
