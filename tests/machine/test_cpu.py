"""Unit tests for the CPU timing model."""

import numpy as np
import pytest

from repro.machine import (
    CPUModel,
    ExecutionTrace,
    IterationProfile,
    THREADRIPPER_2950X,
    XEON_GOLD_6226R,
)
from repro.styles import (
    Algorithm,
    CppSchedule,
    CpuReduction,
    Model,
    OmpSchedule,
    StyleSpec,
)


def omp_style(**kw) -> StyleSpec:
    base = dict(
        algorithm=Algorithm.SSSP, model=Model.OPENMP,
        omp_schedule=OmpSchedule.DEFAULT,
    )
    base.update(kw)
    return StyleSpec(**base)


def cpp_style(**kw) -> StyleSpec:
    base = dict(
        algorithm=Algorithm.SSSP, model=Model.CPP_THREADS,
        cpp_schedule=CppSchedule.BLOCKED,
    )
    base.update(kw)
    return StyleSpec(**base)


def profile(**kw) -> IterationProfile:
    base = dict(
        n_items=5000,
        inner=np.full(5000, 10, dtype=np.int64),
        base_cycles=2.0,
        inner_cycles=2.0,
        struct_loads_base=2.0,
        struct_loads_inner=1.0,
        shared_loads_base=1.0,
    )
    base.update(kw)
    return IterationProfile(**base)


@pytest.fixture
def model():
    return CPUModel(THREADRIPPER_2950X)


class TestBasics:
    def test_rejects_cuda(self, model):
        from repro.styles import AtomicFlavor, Granularity, Persistence

        cuda = StyleSpec(
            algorithm=Algorithm.SSSP, model=Model.CUDA,
            granularity=Granularity.THREAD,
            persistence=Persistence.NON_PERSISTENT,
            atomic_flavor=AtomicFlavor.ATOMIC,
        )
        with pytest.raises(ValueError, match="OpenMP"):
            model.time_trace(ExecutionTrace(n_edges=1, n_vertices=1), cuda)

    def test_empty_step_costs_a_region(self, model):
        p = IterationProfile(n_items=0)
        assert model.profile_cycles(p, omp_style()) == THREADRIPPER_2950X.cycles_region_omp
        assert model.profile_cycles(p, cpp_style()) == THREADRIPPER_2950X.cycles_region_cpp

    def test_cpp_region_pricier_than_omp(self, model):
        p = profile(n_items=10, inner=np.full(10, 1, dtype=np.int64))
        assert model.profile_cycles(p, cpp_style()) > model.profile_cycles(
            p, omp_style()
        )

    def test_throughput(self, model):
        trace = ExecutionTrace(n_edges=1234, n_vertices=10)
        trace.add(profile())
        assert model.throughput(trace, omp_style()) == pytest.approx(
            1234 / model.time_trace(trace, omp_style()) / 1e9
        )


class TestMinMaxCritical:
    """Section 5.3.1: OpenMP min/max RMW = critical sections."""

    def test_omp_minmax_is_catastrophic(self, model):
        p = profile(atomics_inner=1.0, atomic_minmax=True)
        q = profile(atomics_inner=1.0, atomic_minmax=False)
        slow = model.profile_cycles(p, omp_style())
        fast = model.profile_cycles(q, omp_style())
        assert slow > 10 * fast

    def test_cpp_minmax_is_cheap_cas(self, model):
        p = profile(atomics_inner=1.0, atomic_minmax=True)
        q = profile(atomics_inner=1.0, atomic_minmax=False)
        a = model.profile_cycles(p, cpp_style())
        b = model.profile_cycles(q, cpp_style())
        assert a == pytest.approx(b)  # C++ has native atomic min via CAS


class TestScheduling:
    def test_dynamic_overhead_on_cheap_items(self, model):
        p = profile()
        default = model.profile_cycles(p, omp_style())
        dynamic = model.profile_cycles(
            p, omp_style(omp_schedule=OmpSchedule.DYNAMIC)
        )
        assert dynamic > default

    def test_dynamic_balances_extreme_skew(self, model):
        # One enormous item at the front: static blocked chains it with
        # its chunk neighbors; dynamic isolates it.
        inner = np.ones(5000, dtype=np.int64)
        inner[:300] = 50_000
        p = profile(inner=inner, inner_cycles=20.0)
        default = model.profile_cycles(p, omp_style())
        dynamic = model.profile_cycles(
            p, omp_style(omp_schedule=OmpSchedule.DYNAMIC)
        )
        assert dynamic < default

    def test_cyclic_locality_penalty(self, model):
        p = profile(struct_loads_inner=4.0)
        blocked = model.profile_cycles(p, cpp_style())
        cyclic = model.profile_cycles(
            p, cpp_style(cpp_schedule=CppSchedule.CYCLIC)
        )
        assert cyclic > blocked

    def test_cyclic_balances_index_correlated_work(self, model):
        # Work decreasing with index (TC's forward degrees): cyclic wins.
        inner = np.linspace(4000, 0, 5000).astype(np.int64)
        p = profile(inner=inner, inner_cycles=10.0, struct_loads_inner=0.0)
        blocked = model.profile_cycles(p, cpp_style())
        cyclic = model.profile_cycles(
            p, cpp_style(cpp_schedule=CppSchedule.CYCLIC)
        )
        assert cyclic < blocked


class TestReductions:
    def style_red(self, red):
        return omp_style(algorithm=Algorithm.TC, cpu_reduction=red)

    def test_figure_11_ordering(self, model):
        p = profile(reduction_items=50_000.0)
        t = {
            red: model.profile_cycles(p, self.style_red(red))
            for red in CpuReduction
        }
        assert t[CpuReduction.CLAUSE] < t[CpuReduction.ATOMIC]
        assert t[CpuReduction.ATOMIC] < t[CpuReduction.CRITICAL]

    def test_no_reduction_axis_is_free(self, model):
        a = model.profile_cycles(profile(reduction_items=99.0), omp_style())
        b = model.profile_cycles(profile(reduction_items=0.0), omp_style())
        assert a == b


class TestDevices:
    def test_xeon_has_more_threads(self):
        p = profile(
            n_items=100_000, inner=np.full(100_000, 40, dtype=np.int64),
            inner_cycles=10.0,
        )
        tr = CPUModel(THREADRIPPER_2950X).profile_cycles(p, omp_style())
        xeon = CPUModel(XEON_GOLD_6226R).profile_cycles(p, omp_style())
        # 32 threads at 2.9 GHz vs 16 at 3.5 GHz: more cycles of capacity.
        assert xeon < tr

    def test_l3_resident_not_slower(self, model):
        p = profile(shared_loads_inner=4.0)
        small = ExecutionTrace(n_edges=100, n_vertices=10)
        small.add(p)
        big = ExecutionTrace(n_edges=50_000_000, n_vertices=5_000_000)
        big.add(p)
        assert model.time_trace(small, omp_style()) <= model.time_trace(
            big, omp_style()
        )
