"""Bit-identity of the vectorized variant-matrix timing path.

The vectorized pipeline — :class:`ProfileMatrix` counters, stacked
cross-step decompositions (:func:`stack_decompositions`), the batched
``*_batch`` model methods, and :func:`time_matrix` — must reproduce the
scalar ``time_trace`` walk *bit for bit*: the analysis layer compares and
ranks these floats, so even one ULP of drift could flip a paper figure.
Every assertion here is ``==``, never ``approx``.
"""

import numpy as np
import pytest

from repro.graph import load_dataset
from repro.machine import (
    DEVICES,
    RTX_3090,
    THREADRIPPER_2950X,
    CPUModel,
    ExecutionTrace,
    GPUModel,
    IterationProfile,
    time_matrix,
)
from repro.machine.scheduling import UnitDecomposition, stack_decompositions
from repro.runtime import Launcher
from repro.styles import Algorithm, Model, enumerate_specs

ALL_DEVICES = list(DEVICES.values())


def semantic_groups(algorithm, model):
    groups = {}
    for spec in enumerate_specs(algorithm, model):
        groups.setdefault(spec.semantic_key(), []).append(spec)
    return list(groups.values())


def scalar_cell(trace, spec, device):
    from repro.machine import model_for_device

    return model_for_device(device).time_trace(trace, spec)


class TestFullMatrixIdentity:
    """time_matrix == scalar time_trace over whole device matrices."""

    @pytest.mark.parametrize(
        "algorithm,graph_name",
        [
            (Algorithm.BFS, "USA-road-d.NY"),
            (Algorithm.PR, "soc-LiveJournal1"),
            (Algorithm.TC, "soc-LiveJournal1"),
        ],
    )
    def test_matrix_matches_scalar(self, algorithm, graph_name):
        graph = load_dataset(graph_name, "tiny")
        launcher = Launcher()
        for model in Model:
            for group in semantic_groups(algorithm, model):
                trace = launcher.execute_semantic(group[0], graph).trace
                matrix = time_matrix(trace, group, ALL_DEVICES)
                assert matrix.shape == (len(group), len(ALL_DEVICES))
                for i, spec in enumerate(group):
                    for j, device in enumerate(ALL_DEVICES):
                        cell = matrix[i, j]
                        if spec.model.is_gpu != hasattr(device, "sm_count"):
                            assert np.isnan(cell)
                        else:
                            assert cell == scalar_cell(trace, spec, device)

    def test_mixed_model_styles_interleave(self):
        """GPU and CPU styles of one semantic trace can share a matrix;
        each lands only in its own device columns."""
        graph = load_dataset("USA-road-d.NY", "tiny")
        launcher = Launcher()
        cuda = semantic_groups(Algorithm.BFS, Model.CUDA)[0]
        omp = semantic_groups(Algorithm.BFS, Model.OPENMP)[0]
        trace = launcher.execute_semantic(cuda[0], graph).trace
        styles = [cuda[0], omp[0], cuda[1], omp[1]]
        matrix = time_matrix(trace, styles, ALL_DEVICES)
        for i, spec in enumerate(styles):
            for j, device in enumerate(ALL_DEVICES):
                gpu_device = hasattr(device, "sm_count")
                assert np.isnan(matrix[i, j]) == (
                    spec.model.is_gpu != gpu_device
                )


class TestBatchedEdgeTraces:
    """Synthetic traces that stress the stacked-evaluation corner cases."""

    def _check(self, trace):
        for model_axis, device, mk in (
            (Model.CUDA, RTX_3090, GPUModel),
            (Model.OPENMP, THREADRIPPER_2950X, CPUModel),
        ):
            model = mk(device)
            specs = enumerate_specs(Algorithm.BFS, model_axis)
            batch = model.time_trace_batch(trace, specs)
            assert batch == [model.time_trace(trace, s) for s in specs]

    def test_empty_step(self):
        trace = ExecutionTrace(n_vertices=16, n_edges=16)
        trace.add(IterationProfile(n_items=0))
        trace.add(IterationProfile(n_items=0, inner=np.empty(0, np.int64)))
        self._check(trace)

    def test_steps_without_inner_loops(self):
        trace = ExecutionTrace(n_vertices=64, n_edges=64)
        for n in (1, 7, 64):
            trace.add(IterationProfile(n_items=n, shared_stores_base=1.0))
        self._check(trace)

    def test_mixed_lengths_stack_separately(self):
        """Steps with different item counts must not be padded into one
        matrix (padding would change the pairwise reduction tree)."""
        rng = np.random.RandomState(7)
        trace = ExecutionTrace(n_vertices=128, n_edges=512)
        for n in (5, 128, 5, 33, 128):
            trace.add(IterationProfile(
                n_items=n,
                inner=rng.randint(0, 9, size=n).astype(np.int64),
                struct_loads_inner=1.0,
                shared_loads_inner=1.0,
                atomics_inner=0.5,
            ))
        self._check(trace)

    def test_append_invalidates_profile_matrix(self):
        trace = ExecutionTrace(n_vertices=8, n_edges=8)
        trace.add(IterationProfile(n_items=4, shared_stores_base=1.0))
        model = GPUModel(RTX_3090)
        specs = enumerate_specs(Algorithm.BFS, Model.CUDA)[:4]
        before = model.time_trace_batch(trace, specs)
        trace.add(IterationProfile(n_items=8, shared_stores_base=1.0))
        after = model.time_trace_batch(trace, specs)
        assert after == [model.time_trace(trace, s) for s in specs]
        assert after != before


class TestStackedUnits:
    """stack_decompositions groups equal-shape rows and reproduces each
    row's scalar evaluation exactly."""

    def _decomp(self, rng, n_units, with_base=True, with_trips=True):
        return UnitDecomposition(
            base=rng.rand(n_units) if with_base else None,
            trips_par=rng.rand(n_units) if with_trips else None,
            trips_ser=rng.rand(n_units) if with_trips else None,
            width=1.0,
            n_units=n_units,
            uniform_base=0.0 if with_base else 1.5,
        )

    def test_groups_only_equal_shapes(self):
        rng = np.random.RandomState(3)
        units = [
            self._decomp(rng, 10),
            self._decomp(rng, 20),
            self._decomp(rng, 10),
            self._decomp(rng, 10, with_base=False),
        ]
        stacked = stack_decompositions(units, np.arange(len(units)))
        sizes = sorted(len(s.positions) for s in stacked)
        assert sizes == [1, 1, 2]
        covered = sorted(p for s in stacked for p in s.positions)
        assert covered == [0, 1, 2, 3]

    def test_times_batch_matches_scalar_rows(self):
        rng = np.random.RandomState(11)
        units = [self._decomp(rng, 33) for _ in range(5)]
        stacked = stack_decompositions(units, np.arange(5))
        (su,) = stacked
        alphas = rng.rand(4, 5)
        betas_par = rng.rand(4, 5)
        betas_ser = rng.rand(4, 5)
        totals, longests = su.times_batch(alphas, betas_par, betas_ser)
        for k in range(4):
            for col, pos in enumerate(su.positions):
                total, longest = units[pos].times(
                    alphas[k, col], betas_par[k, col], betas_ser[k, col]
                )
                assert totals[k, col] == total
                assert longests[k, col] == longest

    def test_none_betas_ser_matches_zero_coefficient(self):
        rng = np.random.RandomState(13)
        units = [self._decomp(rng, 17) for _ in range(3)]
        (su,) = stack_decompositions(units, np.arange(3))
        alphas = rng.rand(2, 3)
        betas_par = rng.rand(2, 3)
        with_none = su.times_batch(alphas, betas_par, None)
        for k in range(2):
            for col, pos in enumerate(su.positions):
                total, longest = units[pos].times(
                    alphas[k, col], betas_par[k, col], 0.0
                )
                assert with_none[0][k, col] == total
                assert with_none[1][k, col] == longest
