"""Property-based tests on the machine models' structural invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import (
    CPUModel,
    GPUModel,
    IterationProfile,
    RTX_3090,
    THREADRIPPER_2950X,
    cpu_blocked_units,
    cpu_cyclic_units,
    gpu_units,
)
from repro.styles import (
    Algorithm,
    AtomicFlavor,
    Granularity,
    Model,
    OmpSchedule,
    Persistence,
    StyleSpec,
)


def cuda_style(gran=Granularity.THREAD, persist=Persistence.NON_PERSISTENT):
    return StyleSpec(
        algorithm=Algorithm.SSSP, model=Model.CUDA,
        granularity=gran, persistence=persist,
        atomic_flavor=AtomicFlavor.ATOMIC,
    )


trips_arrays = st.lists(
    st.integers(min_value=0, max_value=500), min_size=1, max_size=300
).map(lambda xs: np.asarray(xs, dtype=np.int64))


@given(trips_arrays, st.sampled_from(list(Granularity)), st.booleans())
@settings(max_examples=60, deadline=None)
def test_gpu_unit_decomposition_bounds(trips, gran, persistent):
    """Unit-time bounds: no unit can finish before its longest strip-mined
    item, and total unit time can never drop below the lane-parallel lower
    bound sum/32 (thread lanes run concurrently, hence the division)."""
    units = gpu_units(
        trips, trips.size, gran, persistent,
        block_size=256, resident_threads=2048,
    )
    total, longest = units.times(0.0, 0.0, 1.0)  # raw (serialized) trips
    assert total >= trips.sum() / 32.0 - 1e-6
    if gran is Granularity.THREAD:
        assert longest >= trips.max()  # lockstep: slowest lane bounds
    assert longest <= total + 1e-9


@given(trips_arrays, st.booleans())
@settings(max_examples=60, deadline=None)
def test_cpu_units_preserve_work(trips, cyclic):
    builder = cpu_cyclic_units if cyclic else cpu_blocked_units
    units = builder(trips, trips.size, threads=8)
    total, longest = units.times(0.0, 1.0, 0.0)
    assert total == float(trips.sum())
    assert longest >= trips.max()  # some thread owns the biggest item
    # Makespan lower bounds.
    assert longest >= total / max(units.n_units, 1) - 1e-9 or True


@given(trips_arrays)
@settings(max_examples=40, deadline=None)
def test_gpu_time_monotone_in_trips(trips):
    model = GPUModel(RTX_3090)
    base = IterationProfile(
        n_items=trips.size, inner=trips, inner_cycles=3.0,
        struct_loads_inner=1.0,
    )
    doubled = IterationProfile(
        n_items=trips.size, inner=trips * 2, inner_cycles=3.0,
        struct_loads_inner=1.0,
    )
    assert model.profile_cycles(doubled, cuda_style()) >= model.profile_cycles(
        base, cuda_style()
    )


@given(
    st.integers(min_value=1, max_value=5000),
    st.floats(min_value=0.0, max_value=4.0),
)
@settings(max_examples=40, deadline=None)
def test_gpu_flavor_never_faster(n_items, atomics):
    model = GPUModel(RTX_3090)
    p = IterationProfile(
        n_items=n_items, base_cycles=2.0, shared_loads_base=1.0,
        atomics_base=atomics,
    )
    classic = model.profile_cycles(p, cuda_style())
    cuda_atomic = model.profile_cycles(
        p, cuda_style().with_axis(atomic_flavor=AtomicFlavor.CUDA_ATOMIC)
    )
    assert cuda_atomic >= classic


@given(trips_arrays)
@settings(max_examples=40, deadline=None)
def test_cpu_dynamic_never_beats_perfect_balance(trips):
    """Dynamic scheduling cannot beat total/threads (plus nothing)."""
    model = CPUModel(THREADRIPPER_2950X)
    p = IterationProfile(n_items=trips.size, inner=trips, inner_cycles=5.0)
    omp_dyn = StyleSpec(
        algorithm=Algorithm.SSSP, model=Model.OPENMP,
        omp_schedule=OmpSchedule.DYNAMIC,
    )
    cycles = model.profile_cycles(p, omp_dyn)
    perfect = (5.0 * trips.sum()) / THREADRIPPER_2950X.threads
    assert cycles >= perfect


@given(trips_arrays)
@settings(max_examples=30, deadline=None)
def test_gpu_times_deterministic(trips):
    model = GPUModel(RTX_3090)
    p = IterationProfile(n_items=trips.size, inner=trips, inner_cycles=2.0)
    for gran in Granularity:
        a = model.profile_cycles(p, cuda_style(gran))
        b = model.profile_cycles(p, cuda_style(gran))
        assert a == b
