"""Unit tests for execution traces and conflict statistics."""

import numpy as np
import pytest

from repro.machine import ExecutionTrace, IterationProfile, conflict_stats


class TestConflictStats:
    def test_no_conflicts(self):
        extra, mx = conflict_stats(np.array([0, 1, 2, 3]), 4)
        assert extra == 0.0
        assert mx == 1

    def test_all_same_address(self):
        extra, mx = conflict_stats(np.array([5, 5, 5, 5]), 10)
        assert extra == 3.0
        assert mx == 4

    def test_mixed(self):
        extra, mx = conflict_stats(np.array([0, 0, 1, 2, 2, 2]), 3)
        assert extra == 3.0  # (2-1) + (3-1)
        assert mx == 3

    def test_empty(self):
        assert conflict_stats(np.empty(0, dtype=np.int64), 5) == (0.0, 0)


class TestIterationProfile:
    def test_inner_shape_checked(self):
        with pytest.raises(ValueError, match="shape"):
            IterationProfile(n_items=3, inner=np.array([1, 2]))

    def test_negative_items_rejected(self):
        with pytest.raises(ValueError):
            IterationProfile(n_items=-1)

    def test_inner_stored_as_int32(self):
        p = IterationProfile(n_items=2, inner=np.array([3, 4], dtype=np.int64))
        assert p.inner.dtype == np.int32

    def test_totals(self):
        p = IterationProfile(
            n_items=4,
            inner=np.array([1, 2, 3, 4]),
            struct_loads_base=2.0,
            struct_loads_inner=1.0,
            shared_loads_base=1.0,
            shared_loads_inner=0.5,
            shared_stores_base=0.25,
            atomics_base=1.0,
            atomics_inner=1.0,
        )
        assert p.total_inner == 10
        assert p.total_loads == (2 + 1) * 4 + (1 + 0.5) * 10
        assert p.total_stores == 0.25 * 4
        assert p.total_atomics == 4 + 10

    def test_no_inner(self):
        p = IterationProfile(n_items=5)
        assert p.total_inner == 0
        assert p.total_atomics == 0.0


class TestExecutionTrace:
    def test_accumulation(self):
        t = ExecutionTrace(n_edges=10, n_vertices=5)
        t.add(IterationProfile(n_items=5, inner=np.array([1] * 5)))
        t.add(IterationProfile(n_items=3, atomics_base=2.0))
        assert t.n_launches == 2
        assert t.total_work_items == 8
        assert t.total_inner == 5
        assert t.total_atomics == 6.0

    def test_summary_mentions_counts(self):
        t = ExecutionTrace(label="x", n_edges=1, n_vertices=1, iterations=7)
        t.add(IterationProfile(n_items=1))
        s = t.summary()
        assert "7 iterations" in s
        assert "1 launches" in s
