"""Unit tests for the style-parameterized MIS kernel."""

import numpy as np
import pytest

from repro.graph import from_edge_list, grid2d
from repro.kernels import (
    MISKernel,
    is_maximal_independent_set,
    serial_mis,
    vertex_hash_priority,
)
from repro.styles import (
    Algorithm,
    Determinism,
    Driver,
    Flow,
    Iteration,
    Model,
    semantic_combinations,
)


def all_semantics():
    return list(semantic_combinations(Algorithm.MIS, Model.CUDA))


class TestCorrectness:
    @pytest.mark.parametrize("sem", all_semantics(), ids=lambda s: s.label())
    def test_all_styles_match_greedy_reference(self, small_social, sem):
        result = MISKernel(small_social).run(sem.semantic_key())
        assert is_maximal_independent_set(small_social, result.values)
        assert np.array_equal(result.values, serial_mis(small_social))
        assert result.trace.converged

    @pytest.mark.parametrize("sem", all_semantics(), ids=lambda s: s.label())
    def test_all_styles_on_grid(self, sem):
        g = grid2d(7, 9, weighted=False)
        result = MISKernel(g).run(sem.semantic_key())
        assert np.array_equal(result.values, serial_mis(g))

    def test_isolated_vertices_join(self):
        g = from_edge_list([(0, 1)], n_vertices=4)
        sem = all_semantics()[0].semantic_key()
        result = MISKernel(g).run(sem)
        assert result.values[2] == 1 and result.values[3] == 1


class TestPriorities:
    def test_priorities_are_a_permutation(self):
        pri = vertex_hash_priority(500)
        assert sorted(pri.tolist()) == list(range(500))

    def test_priorities_deterministic(self):
        assert np.array_equal(vertex_hash_priority(64), vertex_hash_priority(64))

    def test_priorities_not_identity(self):
        # They must look random, not ordered by id.
        pri = vertex_hash_priority(100)
        assert not np.array_equal(pri, np.arange(100))


class TestTraceShape:
    def sem(self, **kw):
        from repro.styles.spec import SemanticKey

        base = dict(
            algorithm=Algorithm.MIS,
            iteration=Iteration.VERTEX,
            driver=Driver.TOPOLOGY,
            dup=None,
            flow=Flow.PULL,
            update=None,
            determinism=Determinism.NON_DETERMINISTIC,
        )
        from repro.styles import Update

        base["update"] = Update.READ_MODIFY_WRITE
        base.update(kw)
        return SemanticKey(**base)

    def test_early_exit_trips_below_full_scan(self, small_social):
        result = MISKernel(small_social).run(self.sem())
        rounds = [
            p for p in result.trace.profiles if p.label.startswith("mis-vertex")
        ]
        total_trips = sum(p.total_inner for p in rounds)
        # The early exit must save a lot of neighbor visits vs scanning
        # every list fully each round (the Section 5.2 observation).
        full_scan = small_social.n_edges * len(rounds)
        assert total_trips < 0.8 * full_scan

    def test_data_driven_worklist_shrinks(self, small_social):
        from repro.styles import Dup

        result = MISKernel(small_social).run(
            self.sem(driver=Driver.DATA, dup=Dup.NODUP, flow=Flow.PUSH)
        )
        sizes = [
            p.n_items for p in result.trace.profiles if p.label == "mis-vertex-wl"
        ]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[-1] < sizes[0]

    def test_push_marks_record_conflicts_or_atomics(self, small_social):
        result = MISKernel(small_social).run(self.sem(flow=Flow.PUSH))
        rounds = [
            p for p in result.trace.profiles if p.label.startswith("mis-vertex")
        ]
        assert any(p.total_atomics > 0 for p in rounds)

    def test_deterministic_adds_copy_kernels(self, small_social):
        result = MISKernel(small_social).run(
            self.sem(determinism=Determinism.DETERMINISTIC)
        )
        labels = [p.label for p in result.trace.profiles]
        assert "double-buffer refresh" in labels

    def test_edge_based_two_phases_per_round(self, small_social):
        result = MISKernel(small_social).run(self.sem(iteration=Iteration.EDGE))
        labels = [p.label for p in result.trace.profiles]
        assert labels.count("mis-edge") == labels.count("mis-join")
        assert result.trace.iterations == labels.count("mis-join")
