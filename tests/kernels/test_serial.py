"""Serial references validated against networkx (an independent oracle)."""

import networkx as nx
import numpy as np
import pytest

from repro.kernels import (
    INF,
    canonical_components,
    is_maximal_independent_set,
    serial_bfs,
    serial_cc,
    serial_mis,
    serial_pagerank,
    serial_sssp,
    serial_triangle_count,
)
from repro.graph import from_edge_list


def to_nx(graph, weighted=False):
    g = nx.Graph()
    g.add_nodes_from(range(graph.n_vertices))
    src = graph.edge_sources()
    if weighted:
        for s, d, w in zip(src.tolist(), graph.col_idx.tolist(), graph.weights.tolist()):
            g.add_edge(s, d, weight=w)
    else:
        g.add_edges_from(zip(src.tolist(), graph.col_idx.tolist()))
    return g


class TestBFS:
    def test_matches_networkx(self, small_random):
        ref = nx.single_source_shortest_path_length(to_nx(small_random), 0)
        out = serial_bfs(small_random, 0)
        for v in range(small_random.n_vertices):
            expected = ref.get(v, INF)
            assert out[v] == expected

    def test_unreached_are_inf(self):
        g = from_edge_list([(0, 1), (2, 3)])
        out = serial_bfs(g, 0)
        assert out[2] == INF and out[3] == INF


class TestSSSP:
    def test_matches_networkx(self, small_random):
        ref = nx.single_source_dijkstra_path_length(
            to_nx(small_random, weighted=True), 0
        )
        out = serial_sssp(small_random, 0)
        for v in range(small_random.n_vertices):
            assert out[v] == ref.get(v, INF)

    def test_requires_weights(self):
        g = from_edge_list([(0, 1)])
        with pytest.raises(ValueError, match="weights"):
            serial_sssp(g, 0)


class TestCC:
    def test_matches_networkx(self, small_random):
        out = serial_cc(small_random)
        for comp in nx.connected_components(to_nx(small_random)):
            labels = {int(out[v]) for v in comp}
            assert labels == {min(comp)}

    def test_labels_are_component_minima(self):
        g = from_edge_list([(4, 5), (1, 2)], n_vertices=6)
        out = serial_cc(g)
        assert out[5] == 4 and out[4] == 4
        assert out[2] == 1 and out[1] == 1
        assert out[0] == 0 and out[3] == 3

    def test_canonicalization(self):
        raw = np.array([7, 7, 3, 3])
        assert np.array_equal(canonical_components(raw), [0, 0, 2, 2])


class TestMIS:
    def test_validity(self, small_random):
        mis = serial_mis(small_random)
        assert is_maximal_independent_set(small_random, mis)

    def test_checker_rejects_dependent_set(self):
        g = from_edge_list([(0, 1)])
        assert not is_maximal_independent_set(g, np.array([1, 1]))

    def test_checker_rejects_non_maximal_set(self):
        g = from_edge_list([(0, 1), (2, 3)])
        assert not is_maximal_independent_set(g, np.array([1, 0, 0, 0]))

    def test_deterministic(self, small_social):
        assert np.array_equal(serial_mis(small_social), serial_mis(small_social))


class TestPageRank:
    def test_matches_networkx(self, small_random):
        ref = nx.pagerank(to_nx(small_random), alpha=0.85, tol=1e-12, max_iter=500)
        out = serial_pagerank(small_random)
        for v in range(small_random.n_vertices):
            assert out[v] == pytest.approx(ref[v], abs=2e-5)

    def test_sums_to_one(self, small_social):
        assert serial_pagerank(small_social).sum() == pytest.approx(1.0)

    def test_dangling_vertices_handled(self):
        g = from_edge_list([(0, 1)], n_vertices=3)  # vertex 2 isolated
        out = serial_pagerank(g)
        assert out.sum() == pytest.approx(1.0)
        assert out[2] > 0


class TestTriangleCount:
    def test_matches_networkx(self, small_random):
        expected = sum(nx.triangles(to_nx(small_random)).values()) // 3
        assert serial_triangle_count(small_random) == expected

    def test_known_counts(self):
        triangle = from_edge_list([(0, 1), (1, 2), (0, 2)])
        assert serial_triangle_count(triangle) == 1
        k4 = from_edge_list([(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert serial_triangle_count(k4) == 4
        path = from_edge_list([(0, 1), (1, 2)])
        assert serial_triangle_count(path) == 0
