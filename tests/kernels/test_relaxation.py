"""Unit tests for the style-parameterized relaxation engine (BFS/SSSP/CC)."""

import numpy as np
import pytest

from repro.graph import from_edge_list, grid2d
from repro.kernels import BFSKernel, CCKernel, SSSPKernel, serial_bfs, serial_cc, serial_sssp
from repro.kernels.base import sequential_improving
from repro.kernels.serial import canonical_components
from repro.styles import (
    Algorithm,
    Determinism,
    Driver,
    Dup,
    Flow,
    Iteration,
    Model,
    Update,
    semantic_combinations,
)


def all_semantics(alg):
    return list(semantic_combinations(alg, Model.CUDA))


class TestCorrectnessAcrossStyles:
    """Every semantic style must reproduce the serial result (the paper's
    own verification discipline)."""

    @pytest.mark.parametrize("sem", all_semantics(Algorithm.BFS), ids=lambda s: s.label())
    def test_bfs_all_styles(self, small_social, sem):
        result = BFSKernel(small_social, source=3).run(sem.semantic_key())
        assert np.array_equal(result.values, serial_bfs(small_social, 3))
        assert result.trace.converged

    @pytest.mark.parametrize("sem", all_semantics(Algorithm.SSSP), ids=lambda s: s.label())
    def test_sssp_all_styles(self, small_social, sem):
        result = SSSPKernel(small_social, source=3).run(sem.semantic_key())
        assert np.array_equal(result.values, serial_sssp(small_social, 3))

    @pytest.mark.parametrize("sem", all_semantics(Algorithm.CC), ids=lambda s: s.label())
    def test_cc_all_styles(self, sem):
        g = from_edge_list([(0, 1), (1, 2), (4, 5), (6, 7), (5, 7)], n_vertices=9)
        result = CCKernel(g).run(sem.semantic_key())
        assert np.array_equal(
            canonical_components(result.values), serial_cc(g)
        )


class TestIterationSemantics:
    def sem(self, **kw):
        from repro.styles.spec import SemanticKey

        base = dict(
            algorithm=Algorithm.BFS,
            iteration=Iteration.VERTEX,
            driver=Driver.TOPOLOGY,
            dup=None,
            flow=Flow.PUSH,
            update=Update.READ_MODIFY_WRITE,
            determinism=Determinism.DETERMINISTIC,
        )
        base.update(kw)
        return SemanticKey(**base)

    def test_deterministic_topology_iterations_track_eccentricity(self):
        # Jacobi BFS advances one level per pass: ecc + 1 passes
        # (the last detects convergence).
        g = grid2d(6, 6, weighted=False)
        result = BFSKernel(g, source=0).run(self.sem())
        ecc = int(serial_bfs(g, 0).max())
        assert result.trace.iterations == ecc + 1

    def test_nondeterministic_converges_in_fewer_passes(self):
        # In-place visibility is wave-granular: the effect needs more
        # vertices than one wave (see repro.kernels.base.WAVE).
        g = grid2d(64, 80, weighted=False)
        det = BFSKernel(g, source=0).run(self.sem())
        nondet = BFSKernel(g, source=0).run(
            self.sem(determinism=Determinism.NON_DETERMINISTIC)
        )
        assert nondet.trace.iterations < det.trace.iterations

    def test_data_driven_does_less_work_than_topology(self):
        g = grid2d(10, 10, weighted=False)
        topo = BFSKernel(g, source=0).run(
            self.sem(determinism=Determinism.NON_DETERMINISTIC)
        )
        data = BFSKernel(g, source=0).run(
            self.sem(
                driver=Driver.DATA, dup=Dup.NODUP,
                determinism=Determinism.NON_DETERMINISTIC,
            )
        )
        assert data.trace.total_inner < topo.trace.total_inner

    def test_dup_worklists_not_smaller_than_nodup(self):
        g = grid2d(10, 10, weighted=False)
        kernel = BFSKernel(g, source=0)
        dup = kernel.run(
            self.sem(
                driver=Driver.DATA, dup=Dup.DUP,
                determinism=Determinism.NON_DETERMINISTIC,
            )
        )
        nodup = kernel.run(
            self.sem(
                driver=Driver.DATA, dup=Dup.NODUP,
                determinism=Determinism.NON_DETERMINISTIC,
            )
        )
        assert dup.trace.total_work_items >= nodup.trace.total_work_items

    def test_pull_data_driven_pushes_more_useless_items(self, small_social):
        # Section 2.4: pull worklists carry the neighbors of updated
        # vertices, push worklists only the updated vertices.
        kernel = BFSKernel(small_social, source=0)
        push = kernel.run(
            self.sem(
                driver=Driver.DATA, dup=Dup.DUP, flow=Flow.PUSH,
                determinism=Determinism.NON_DETERMINISTIC,
            )
        )
        pull = kernel.run(
            self.sem(
                driver=Driver.DATA, dup=Dup.DUP, flow=Flow.PULL,
                determinism=Determinism.NON_DETERMINISTIC,
            )
        )
        assert pull.trace.total_work_items > push.trace.total_work_items

    def test_edge_based_processes_edge_items(self):
        g = grid2d(6, 6, weighted=False)
        result = BFSKernel(g, source=0).run(
            self.sem(iteration=Iteration.EDGE,
                     determinism=Determinism.NON_DETERMINISTIC)
        )
        # Each topology pass enqueues all directed edges as items.
        passes = result.trace.iterations
        relax_items = sum(
            p.n_items for p in result.trace.profiles if p.label.startswith("relax-edge")
        )
        assert relax_items == passes * g.n_edges

    def test_pull_profiles_have_no_push_conflicts(self, small_social):
        result = BFSKernel(small_social, source=0).run(
            self.sem(flow=Flow.PULL, determinism=Determinism.NON_DETERMINISTIC)
        )
        relax = [p for p in result.trace.profiles if p.label.startswith("relax")]
        assert all(p.conflict_extra == 0 for p in relax)
        assert all(p.atomics_same_address_per_item for p in relax)

    def test_push_rmw_records_conflicts(self, small_social):
        result = BFSKernel(small_social, source=0).run(
            self.sem(determinism=Determinism.NON_DETERMINISTIC)
        )
        relax = [p for p in result.trace.profiles if p.label.startswith("relax")]
        assert any(p.conflict_extra > 0 for p in relax)

    def test_deterministic_adds_copy_kernels(self):
        g = grid2d(6, 6, weighted=False)
        det = BFSKernel(g, source=0).run(self.sem())
        labels = [p.label for p in det.trace.profiles]
        assert "double-buffer refresh" in labels

    def test_rw_has_no_atomics_in_push(self, small_social):
        result = BFSKernel(small_social, source=0).run(
            self.sem(update=Update.READ_WRITE,
                     determinism=Determinism.NON_DETERMINISTIC)
        )
        relax = [p for p in result.trace.profiles if p.label.startswith("relax")]
        assert all(p.total_atomics == 0 for p in relax)


class TestSequentialImproving:
    def test_single_improver(self):
        tgt = np.array([3, 3, 3])
        cand = np.array([10, 5, 7])
        before = np.array([8, 8, 8])
        # 10 >= 8 no; 5 < 8 yes; 7 < min(8, 5) no.
        assert sequential_improving(tgt, cand, before).tolist() == [False, True, False]

    def test_strictly_decreasing_chain(self):
        tgt = np.zeros(4, dtype=np.int64)
        cand = np.array([9, 7, 5, 3])
        before = np.full(4, 10)
        assert sequential_improving(tgt, cand, before).all()

    def test_independent_addresses(self):
        tgt = np.array([0, 1, 2])
        cand = np.array([1, 1, 1])
        before = np.array([5, 0, 5])
        assert sequential_improving(tgt, cand, before).tolist() == [True, False, True]

    def test_order_sensitivity(self):
        tgt = np.array([4, 4])
        before = np.array([10, 10])
        inc = sequential_improving(tgt, np.array([3, 7]), before)
        dec = sequential_improving(tgt, np.array([7, 3]), before)
        assert inc.tolist() == [True, False]
        assert dec.tolist() == [True, True]

    def test_empty(self):
        out = sequential_improving(
            np.empty(0, dtype=np.int64), np.empty(0), np.empty(0)
        )
        assert out.size == 0


class TestValidation:
    def test_bad_edge_cost(self):
        g = grid2d(3, 3)
        from repro.kernels.relaxation import RelaxationKernel

        with pytest.raises(ValueError, match="edge_cost"):
            RelaxationKernel(g, edge_cost="bogus")

    def test_weight_required(self):
        g = grid2d(3, 3, weighted=False)
        with pytest.raises(ValueError, match="weight"):
            SSSPKernel(g)

    def test_source_range(self):
        g = grid2d(3, 3)
        with pytest.raises(ValueError, match="source"):
            BFSKernel(g, source=99)
