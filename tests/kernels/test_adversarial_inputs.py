"""Adversarial input structures through every kernel.

Degenerate and extreme graph shapes exercise code paths the random and
dataset graphs rarely hit: empty adjacency, single components of size one,
stars (maximal hub contention), complete graphs (maximal density), long
paths (maximal diameter), and disconnected unions.
"""

import numpy as np
import pytest

from repro.graph import from_edge_list
from repro.kernels import (
    build_kernel,
    canonical_components,
    is_maximal_independent_set,
    serial_bfs,
    serial_cc,
    serial_mis,
    serial_pagerank,
    serial_sssp,
    serial_triangle_count,
)
from repro.styles import Algorithm, Model, semantic_combinations

SEMANTICS = {
    alg: [s.semantic_key() for s in semantic_combinations(alg, Model.CUDA)]
    for alg in Algorithm
}


def star(n=33):
    """One hub, n-1 leaves: every push targets the same cell."""
    return from_edge_list([(0, i) for i in range(1, n)], add_weights=True)


def path(n=40):
    return from_edge_list([(i, i + 1) for i in range(n - 1)], add_weights=True)


def complete(n=12):
    return from_edge_list(
        [(i, j) for i in range(n) for j in range(i + 1, n)], add_weights=True
    )


def disconnected():
    return from_edge_list(
        [(0, 1), (2, 3), (3, 4), (6, 7)], n_vertices=9, add_weights=True
    )


def isolated_only():
    return from_edge_list([], n_vertices=5)


GRAPHS = {
    "star": star(),
    "path": path(),
    "complete": complete(),
    "disconnected": disconnected(),
}


@pytest.mark.parametrize("gname", list(GRAPHS))
@pytest.mark.parametrize("alg", list(Algorithm), ids=lambda a: a.value)
def test_every_style_on_adversarial_graphs(gname, alg):
    g = GRAPHS[gname]
    kernel = build_kernel(alg, g, source=0)
    for sem in SEMANTICS[alg]:
        result = kernel.run(sem)
        if alg is Algorithm.BFS:
            assert np.array_equal(result.values, serial_bfs(g, 0)), sem
        elif alg is Algorithm.SSSP:
            assert np.array_equal(result.values, serial_sssp(g, 0)), sem
        elif alg is Algorithm.CC:
            assert np.array_equal(
                canonical_components(result.values), serial_cc(g)
            ), sem
        elif alg is Algorithm.MIS:
            assert is_maximal_independent_set(g, result.values), sem
            assert np.array_equal(result.values, serial_mis(g)), sem
        elif alg is Algorithm.PR:
            assert np.allclose(result.values, serial_pagerank(g), atol=1e-5), sem
        else:
            assert int(result.values[0]) == serial_triangle_count(g), sem


class TestSpecificShapes:
    def test_star_hub_contention_recorded(self):
        """Push relaxation into a star hub must report the contention."""
        g = star(64)
        sem = next(
            s.semantic_key()
            for s in semantic_combinations(Algorithm.BFS, Model.CUDA)
            if s.flow and s.flow.value == "push"
            and s.update and s.update.value == "rmw"
            and s.driver.value == "topology"
            and s.iteration.value == "vertex"
            and s.determinism.value == "nondet"
        )
        trace = build_kernel(Algorithm.BFS, g, 0).run(sem).trace
        assert max(p.max_conflict for p in trace.profiles) >= 32

    def test_path_needs_diameter_iterations(self):
        g = path(50)
        sem = next(
            s.semantic_key()
            for s in semantic_combinations(Algorithm.BFS, Model.CUDA)
            if s.determinism.value == "det" and s.driver.value == "topology"
            and s.iteration.value == "vertex" and s.flow.value == "push"
        )
        trace = build_kernel(Algorithm.BFS, g, 0).run(sem).trace
        assert trace.iterations == 50  # 49 levels + detection pass

    def test_complete_graph_mis_is_one_vertex(self):
        g = complete(10)
        sem = SEMANTICS[Algorithm.MIS][0]
        result = build_kernel(Algorithm.MIS, g, 0).run(sem)
        assert int(result.values.sum()) == 1

    def test_complete_graph_triangles(self):
        g = complete(8)
        sem = SEMANTICS[Algorithm.TC][0]
        result = build_kernel(Algorithm.TC, g, 0).run(sem)
        assert int(result.values[0]) == 8 * 7 * 6 // 6

    def test_isolated_vertices_mis_all_in(self):
        g = isolated_only()
        sem = SEMANTICS[Algorithm.MIS][0]
        result = build_kernel(Algorithm.MIS, g, 0).run(sem)
        assert result.values.sum() == 5

    def test_pagerank_on_disconnected_graph_sums_to_one(self):
        g = disconnected()
        for sem in SEMANTICS[Algorithm.PR]:
            result = build_kernel(Algorithm.PR, g, 0).run(sem)
            assert result.values.sum() == pytest.approx(1.0, abs=1e-6)
