"""Numerical guardrails: divergence detection and typed degenerate errors."""

import numpy as np
import pytest

from repro.graph import from_edge_arrays
from repro.graph.csr import CSRGraph
from repro.graph.generators import grid2d
from repro.kernels import (
    ConvergenceError,
    DegenerateGraphError,
    DivergenceError,
    MISKernel,
    PageRankKernel,
    RelaxationKernel,
    TriangleCountKernel,
)
from repro.kernels import pr as pr_mod
from repro.kernels.base import DIVERGENCE_WINDOW
from repro.styles.axes import Algorithm, Model
from repro.styles.combos import enumerate_specs


def _empty_graph():
    return CSRGraph(np.array([0], dtype=np.int64), np.empty(0, dtype=np.int32))


def _sem(algorithm, **filters):
    specs = enumerate_specs(algorithm, Model.CUDA)
    for spec in specs:
        if all(getattr(spec, k).value == v for k, v in filters.items()):
            return spec.semantic_key()
    raise AssertionError(f"no spec matches {filters}")


class TestDegenerateTyped:
    def test_all_kernels_raise_typed_empty(self):
        g = _empty_graph()
        for ctor in (
            lambda: RelaxationKernel(g, edge_cost="unit"),
            lambda: PageRankKernel(g),
            lambda: MISKernel(g),
            lambda: TriangleCountKernel(g),
        ):
            with pytest.raises(DegenerateGraphError, match="empty graph"):
                ctor()

    def test_still_a_value_error(self):
        # Pre-hardening callers matched ValueError; keep that contract.
        with pytest.raises(ValueError, match="empty graph"):
            PageRankKernel(_empty_graph())


class TestRelaxationDivergence:
    def test_negative_values_detected(self):
        g = grid2d(4, 4)
        kernel = RelaxationKernel(g, edge_cost="unit")
        state = kernel._new_guard_state()
        with pytest.raises(DivergenceError, match="domain violated"):
            kernel._divergence_guard(
                np.array([-1, 2, 3], dtype=np.int64), state, improving=1
            )

    def test_stale_residual_detected(self):
        g = grid2d(4, 4)
        kernel = RelaxationKernel(g, edge_cost="unit")
        state = kernel._new_guard_state()
        values = np.array([5, 5, 5], dtype=np.int64)
        kernel._divergence_guard(values, state, improving=1)  # sets best
        with pytest.raises(DivergenceError, match="residual"):
            for _ in range(DIVERGENCE_WINDOW + 1):
                kernel._divergence_guard(values, state, improving=1)

    def test_shrinking_residual_passes(self):
        g = grid2d(4, 4)
        kernel = RelaxationKernel(g, edge_cost="unit")
        state = kernel._new_guard_state()
        values = np.full(8, 1000, dtype=np.int64)
        for _ in range(DIVERGENCE_WINDOW * 2):
            values -= 1
            kernel._divergence_guard(values, state, improving=1)

    def test_clean_runs_unaffected(self):
        g = grid2d(6, 6)
        kernel = RelaxationKernel(g, edge_cost="unit")
        sem = _sem(Algorithm.BFS, driver="topology")
        result = kernel.run(sem)
        assert result.trace.converged


class TestPageRankDivergence:
    def test_nan_residual_detected(self):
        g = grid2d(4, 4)
        kernel = PageRankKernel(g)
        # Corrupt the dangling-mass term so ranks (and the residual) go NaN.
        kernel._safe_deg = kernel._safe_deg * np.nan
        sem = _sem(Algorithm.PR, flow="pull", determinism="det")
        with pytest.raises(DivergenceError, match="diverging"):
            kernel.run(sem)

    def test_stale_residual_detected(self):
        state = {"best": float("inf"), "stale": 0}
        pr_mod._check_residual("pr", 1.0, state)
        with pytest.raises(DivergenceError, match="stopped shrinking"):
            for _ in range(DIVERGENCE_WINDOW + 1):
                pr_mod._check_residual("pr", 1.0, state)

    def test_divergence_is_convergence_error(self):
        # Existing handlers that catch ConvergenceError keep working.
        assert issubclass(DivergenceError, ConvergenceError)

    def test_clean_pr_unaffected(self):
        g = grid2d(6, 6)
        kernel = PageRankKernel(g)
        for flow, det in (("pull", "det"), ("push", "det")):
            sem = _sem(Algorithm.PR, flow=flow, determinism=det)
            result = kernel.run(sem)
            assert result.trace.converged


class TestDegenerateEndToEnd:
    """Degenerate shapes flow load_graph -> Launcher -> verify cleanly."""

    @pytest.mark.parametrize(
        "src,dst,n",
        [
            ([0], [1], 2),  # single edge
            ([0, 2], [1, 3], 4),  # disconnected pairs
            ([0, 0, 0], [1, 1, 1], 2),  # all-duplicate edges
        ],
    )
    def test_small_shapes_run_and_verify(self, src, dst, n):
        from repro.machine.devices import TITAN_V
        from repro.runtime import Launcher

        g = from_edge_arrays(np.array(src), np.array(dst), n)
        launcher = Launcher()
        for algorithm in (Algorithm.BFS, Algorithm.CC, Algorithm.PR):
            spec = enumerate_specs(algorithm, Model.CUDA)[0]
            result = launcher.run(spec, g, TITAN_V)
            assert result.seconds > 0

    def test_empty_graph_is_typed_skip(self):
        from repro.machine.devices import TITAN_V
        from repro.runtime import ErrorClass, FailedRun, Launcher

        g = _empty_graph()
        launcher = Launcher()
        spec = enumerate_specs(Algorithm.BFS, Model.CUDA)[0]
        with pytest.raises(DegenerateGraphError) as exc:
            launcher.run(spec, g, TITAN_V)
        failed = FailedRun.from_exception(
            exc.value, algorithm="bfs", graph="empty"
        )
        assert failed.error_class is ErrorClass.DEGENERATE
