"""Unit tests for the style-parameterized PageRank kernel."""

import numpy as np
import pytest

from repro.graph import from_edge_list
from repro.kernels import PageRankKernel, serial_pagerank
from repro.styles import (
    Algorithm,
    Determinism,
    Driver,
    Flow,
    Iteration,
    Model,
    Update,
    semantic_combinations,
)
from repro.styles.spec import SemanticKey


def sem(**kw) -> SemanticKey:
    base = dict(
        algorithm=Algorithm.PR,
        iteration=Iteration.VERTEX,
        driver=Driver.TOPOLOGY,
        dup=None,
        flow=Flow.PULL,
        update=Update.READ_MODIFY_WRITE,
        determinism=Determinism.DETERMINISTIC,
    )
    base.update(kw)
    return SemanticKey(**base)


class TestCorrectness:
    @pytest.mark.parametrize(
        "semantic",
        list(semantic_combinations(Algorithm.PR, Model.CUDA)),
        ids=lambda s: s.label(),
    )
    def test_all_styles_converge_to_reference(self, small_social, semantic):
        result = PageRankKernel(small_social).run(semantic.semantic_key())
        ref = serial_pagerank(small_social)
        assert np.allclose(result.values, ref, atol=1e-5)
        assert result.trace.converged

    def test_push_det_equals_pull_det_exactly(self, small_social):
        kernel = PageRankKernel(small_social)
        pull = kernel.run(sem(flow=Flow.PULL))
        push = kernel.run(sem(flow=Flow.PUSH))
        # Both are Jacobi iterations of the same operator.
        assert np.allclose(pull.values, push.values, atol=1e-12)
        assert pull.trace.iterations == push.trace.iterations

    def test_ranks_sum_to_one(self, small_social):
        result = PageRankKernel(small_social).run(sem())
        assert result.values.sum() == pytest.approx(1.0, abs=1e-6)

    def test_dangling_graph(self):
        g = from_edge_list([(0, 1)], n_vertices=4)
        result = PageRankKernel(g).run(sem())
        assert result.values.sum() == pytest.approx(1.0, abs=1e-6)


class TestTraceShape:
    def test_push_has_three_kernels_per_iteration(self, small_social):
        result = PageRankKernel(small_social).run(sem(flow=Flow.PUSH))
        labels = {p.label for p in result.trace.profiles}
        assert {"pr-push-reset", "pr-push-scatter", "pr-push-finalize"} <= labels
        scatters = sum(
            1 for p in result.trace.profiles if p.label == "pr-push-scatter"
        )
        assert scatters == result.trace.iterations

    def test_pull_has_one_kernel_per_iteration(self, small_social):
        result = PageRankKernel(small_social).run(sem(flow=Flow.PULL))
        pulls = sum(1 for p in result.trace.profiles if p.label == "pr-pull")
        assert pulls == result.trace.iterations

    def test_push_scatter_records_conflicts(self, small_social):
        result = PageRankKernel(small_social).run(sem(flow=Flow.PUSH))
        scatter = next(
            p for p in result.trace.profiles if p.label == "pr-push-scatter"
        )
        assert scatter.conflict_extra > 0
        assert not scatter.atomic_minmax  # adds, not min/max

    def test_reduction_items_recorded(self, small_social):
        result = PageRankKernel(small_social).run(sem())
        pull = next(p for p in result.trace.profiles if p.label == "pr-pull")
        assert pull.reduction_items == small_social.n_vertices

    def test_gauss_seidel_differs_from_jacobi_in_iterations(self):
        # On a wave-spanning graph the in-place (non-deterministic) pull
        # takes a different number of iterations than Jacobi.
        from repro.graph import power_law

        g = power_law(9000, 8, seed=3)
        kernel = PageRankKernel(g)
        det = kernel.run(sem())
        nondet = kernel.run(sem(determinism=Determinism.NON_DETERMINISTIC))
        assert det.trace.iterations != nondet.trace.iterations
        assert np.allclose(det.values, nondet.values, atol=1e-5)
