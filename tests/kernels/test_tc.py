"""Unit tests for the style-parameterized Triangle Counting kernel."""

import numpy as np
import pytest

from repro.graph import from_edge_list, grid2d
from repro.kernels import TriangleCountKernel, serial_triangle_count
from repro.styles import (
    Algorithm,
    Determinism,
    Driver,
    Iteration,
    Model,
    Update,
    semantic_combinations,
)
from repro.styles.spec import SemanticKey


def sem(iteration=Iteration.VERTEX) -> SemanticKey:
    return SemanticKey(
        algorithm=Algorithm.TC,
        iteration=iteration,
        driver=Driver.TOPOLOGY,
        dup=None,
        flow=None,
        update=Update.READ_MODIFY_WRITE,
        determinism=Determinism.DETERMINISTIC,
    )


class TestCorrectness:
    @pytest.mark.parametrize(
        "semantic",
        list(semantic_combinations(Algorithm.TC, Model.CUDA)),
        ids=lambda s: s.label(),
    )
    def test_all_styles_count_exactly(self, small_random, semantic):
        result = TriangleCountKernel(small_random).run(semantic.semantic_key())
        assert int(result.values[0]) == serial_triangle_count(small_random)

    def test_known_graphs(self):
        k4 = from_edge_list([(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert TriangleCountKernel(k4).count() == 4
        assert TriangleCountKernel(grid2d(5, 5, weighted=False)).count() == 0

    def test_requires_sorted_adjacency(self):
        from repro.graph import CSRGraph

        g = CSRGraph(
            np.array([0, 2, 3, 4]),
            np.array([2, 1, 0, 0], dtype=np.int32),
        )
        with pytest.raises(ValueError, match="sorted"):
            TriangleCountKernel(g)


class TestWorkProfile:
    def test_vertex_and_edge_trips_agree(self, small_random):
        kernel = TriangleCountKernel(small_random)
        v = kernel.run(sem(Iteration.VERTEX)).trace
        e = kernel.run(sem(Iteration.EDGE)).trace
        # The same merges happen, distributed differently.
        assert v.total_inner == e.total_inner

    def test_edge_items_are_directed_edges(self, small_random):
        trace = TriangleCountKernel(small_random).run(sem(Iteration.EDGE)).trace
        assert trace.profiles[0].n_items == small_random.n_edges

    def test_vertex_items_are_vertices(self, small_random):
        trace = TriangleCountKernel(small_random).run(sem(Iteration.VERTEX)).trace
        assert trace.profiles[0].n_items == small_random.n_vertices

    def test_vertex_work_skew_exceeds_edge_work_skew(self, small_social):
        """Per-item work is much more imbalanced vertex-based (the
        Section 5.2 load-balance argument for edge-based TC)."""
        kernel = TriangleCountKernel(small_social)
        v = kernel.run(sem(Iteration.VERTEX)).trace.profiles[0]
        e = kernel.run(sem(Iteration.EDGE)).trace.profiles[0]

        def skew(p):
            inner = p.inner[p.inner > 0]
            return inner.max() / max(inner.mean(), 1)

        assert skew(v) > skew(e)

    def test_reduction_counts_only_contributors(self):
        g = grid2d(6, 6, weighted=False)  # no triangles at all
        trace = TriangleCountKernel(g).run(sem()).trace
        assert trace.profiles[0].reduction_items == 0

    def test_single_iteration(self, small_random):
        trace = TriangleCountKernel(small_random).run(sem()).trace
        assert trace.iterations == 1
        assert trace.n_launches == 1
