"""Property-based tests: every styled kernel matches the serial reference
on random graphs (the strongest invariant of the suite)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import from_edge_arrays
from repro.kernels import (
    BFSKernel,
    CCKernel,
    MISKernel,
    PageRankKernel,
    SSSPKernel,
    TriangleCountKernel,
    canonical_components,
    is_maximal_independent_set,
    serial_bfs,
    serial_cc,
    serial_mis,
    serial_pagerank,
    serial_sssp,
    serial_triangle_count,
)
from repro.styles import Algorithm, Model, semantic_combinations


@st.composite
def graphs(draw):
    n = draw(st.integers(min_value=3, max_value=30))
    m = draw(st.integers(min_value=1, max_value=80))
    src = np.asarray(
        draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m)),
        dtype=np.int64,
    )
    dst = np.asarray(
        draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m)),
        dtype=np.int64,
    )
    return from_edge_arrays(src, dst, n, add_weights=True)


_SEMANTICS = {
    alg: [s.semantic_key() for s in semantic_combinations(alg, Model.CUDA)]
    for alg in Algorithm
}


@given(graphs(), st.data())
@settings(max_examples=40, deadline=None)
def test_bfs_any_style_matches_serial(g, data):
    sem = data.draw(st.sampled_from(_SEMANTICS[Algorithm.BFS]))
    source = data.draw(st.integers(0, g.n_vertices - 1))
    result = BFSKernel(g, source).run(sem)
    assert np.array_equal(result.values, serial_bfs(g, source))


@given(graphs(), st.data())
@settings(max_examples=40, deadline=None)
def test_sssp_any_style_matches_serial(g, data):
    sem = data.draw(st.sampled_from(_SEMANTICS[Algorithm.SSSP]))
    source = data.draw(st.integers(0, g.n_vertices - 1))
    result = SSSPKernel(g, source).run(sem)
    assert np.array_equal(result.values, serial_sssp(g, source))


@given(graphs(), st.data())
@settings(max_examples=40, deadline=None)
def test_cc_any_style_matches_serial(g, data):
    sem = data.draw(st.sampled_from(_SEMANTICS[Algorithm.CC]))
    result = CCKernel(g).run(sem)
    assert np.array_equal(canonical_components(result.values), serial_cc(g))


@given(graphs(), st.data())
@settings(max_examples=40, deadline=None)
def test_mis_any_style_is_the_greedy_mis(g, data):
    sem = data.draw(st.sampled_from(_SEMANTICS[Algorithm.MIS]))
    result = MISKernel(g).run(sem)
    assert is_maximal_independent_set(g, result.values)
    assert np.array_equal(result.values, serial_mis(g))


@given(graphs(), st.data())
@settings(max_examples=25, deadline=None)
def test_pr_any_style_matches_serial(g, data):
    sem = data.draw(st.sampled_from(_SEMANTICS[Algorithm.PR]))
    result = PageRankKernel(g).run(sem)
    assert np.allclose(result.values, serial_pagerank(g), atol=1e-5)


@given(graphs(), st.data())
@settings(max_examples=25, deadline=None)
def test_tc_any_style_matches_serial(g, data):
    sem = data.draw(st.sampled_from(_SEMANTICS[Algorithm.TC]))
    result = TriangleCountKernel(g).run(sem)
    assert int(result.values[0]) == serial_triangle_count(g)


@given(graphs(), st.data())
@settings(max_examples=25, deadline=None)
def test_traces_structurally_sane(g, data):
    alg = data.draw(st.sampled_from(list(Algorithm)))
    sem = data.draw(st.sampled_from(_SEMANTICS[alg]))
    from repro.kernels import build_kernel

    result = build_kernel(alg, g, 0).run(sem)
    trace = result.trace
    assert trace.converged
    assert trace.n_edges == g.n_edges
    # Data-driven runs on degenerate graphs may start with an empty
    # worklist and legitimately perform zero passes.
    assert trace.iterations >= 0
    if g.n_edges > 0 and trace.iterations == 0:
        assert trace.total_work_items <= g.n_vertices  # init only
    for p in trace.profiles:
        assert p.n_items >= 0
        assert p.total_inner >= 0
        assert p.conflict_extra >= 0
        assert p.max_conflict >= 0
