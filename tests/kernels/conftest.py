"""Shared fixtures for kernel tests."""

import pytest

from repro.graph import grid2d, load_all, power_law, random_uniform


@pytest.fixture(scope="session")
def tiny_graphs():
    """The five dataset stand-ins at unit-test scale."""
    return load_all("tiny")


@pytest.fixture(scope="session")
def small_grid():
    return grid2d(8, 8)


@pytest.fixture(scope="session")
def small_social():
    return power_law(200, 6, seed=11)


@pytest.fixture(scope="session")
def small_random():
    return random_uniform(120, 400, seed=13)
