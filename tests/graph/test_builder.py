"""Unit tests for graph construction/normalization."""

import numpy as np
import pytest

from repro.graph import (
    MAX_WEIGHT,
    deterministic_weights,
    from_edge_arrays,
    from_edge_list,
)


class TestNormalization:
    def test_symmetrization_doubles_edges(self):
        g = from_edge_list([(0, 1), (1, 2)])
        assert g.n_edges == 4
        assert g.is_symmetric()

    def test_no_symmetrize(self):
        g = from_edge_list([(0, 1), (1, 2)], symmetrize=False)
        assert g.n_edges == 2

    def test_self_loops_dropped(self):
        g = from_edge_list([(0, 0), (0, 1)])
        assert g.n_edges == 2

    def test_self_loops_kept_when_asked(self):
        g = from_edge_list([(0, 0), (0, 1)], drop_self_loops=False,
                           symmetrize=False, dedup=False)
        assert g.n_edges == 2  # (0,0) and (0,1)

    def test_parallel_edges_deduplicated(self):
        g = from_edge_list([(0, 1), (0, 1), (1, 0)])
        assert g.n_edges == 2

    def test_dedup_disabled(self):
        g = from_edge_list([(0, 1), (0, 1)], symmetrize=False, dedup=False)
        assert g.n_edges == 2

    def test_adjacency_sorted(self):
        g = from_edge_list([(0, 3), (0, 1), (0, 2)])
        assert np.array_equal(g.neighbors(0), [1, 2, 3])

    def test_empty_graph(self):
        g = from_edge_list([], n_vertices=4)
        assert g.n_vertices == 4
        assert g.n_edges == 0

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(ValueError, match=r"\(u, v\) pairs"):
            from_edge_list(np.zeros((3, 3), dtype=int))

    def test_n_vertices_inferred(self):
        g = from_edge_list([(0, 9)])
        assert g.n_vertices == 10


class TestWeights:
    def test_weights_generated(self):
        g = from_edge_list([(0, 1), (1, 2)], add_weights=True)
        assert g.weights is not None
        assert g.weights.min() >= 1
        assert g.weights.max() <= MAX_WEIGHT

    def test_weights_symmetric(self):
        g = from_edge_list([(0, 1), (1, 2), (0, 2)], add_weights=True)
        src = g.edge_sources()
        w = {(int(s), int(d)): int(wt) for s, d, wt in zip(src, g.col_idx, g.weights)}
        for (s, d), wt in w.items():
            assert w[(d, s)] == wt

    def test_explicit_weights_preserved(self):
        g = from_edge_arrays(
            np.array([0]), np.array([1]), 2,
            weights=np.array([42]), symmetrize=True,
        )
        assert np.array_equal(g.weights, [42, 42])

    def test_explicit_and_generated_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            from_edge_arrays(
                np.array([0]), np.array([1]), 2,
                weights=np.array([1]), add_weights=True,
            )

    def test_deterministic_weights_are_deterministic(self):
        src = np.array([0, 5, 7])
        dst = np.array([1, 2, 7])
        assert np.array_equal(
            deterministic_weights(src, dst), deterministic_weights(src, dst)
        )

    def test_deterministic_weights_direction_invariant(self):
        a = deterministic_weights(np.array([3]), np.array([9]))
        b = deterministic_weights(np.array([9]), np.array([3]))
        assert a == b

    def test_weight_range(self):
        src = np.arange(1000)
        dst = np.arange(1000) + 1
        w = deterministic_weights(src, dst)
        assert w.min() >= 1 and w.max() <= MAX_WEIGHT
        # Weights should actually spread over the range.
        assert len(np.unique(w)) > 100
