"""Unit tests for graph file I/O (DIMACS / edge list / Matrix Market)."""

import gzip

import numpy as np
import pytest

from repro.graph import (
    from_edge_list,
    load_graph,
    read_dimacs,
    read_edge_list,
    read_matrix_market,
    write_dimacs,
    write_edge_list,
    write_matrix_market,
)


@pytest.fixture
def weighted_graph():
    return from_edge_list([(0, 1), (1, 2), (0, 3)], add_weights=True)


class TestDimacs:
    def test_round_trip(self, tmp_path, weighted_graph):
        path = tmp_path / "g.gr"
        write_dimacs(weighted_graph, path)
        back = read_dimacs(path, symmetrize=False)
        assert back.n_vertices == weighted_graph.n_vertices
        assert back.n_edges == weighted_graph.n_edges
        assert np.array_equal(back.col_idx, weighted_graph.col_idx)
        assert np.array_equal(back.weights, weighted_graph.weights)

    def test_parse_hand_written(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("c comment\np sp 3 2\na 1 2 5\na 2 3 7\n")
        g = read_dimacs(path, symmetrize=False)
        assert g.n_vertices == 3
        assert np.array_equal(g.neighbors(0), [1])
        assert g.weights[0] == 5

    def test_missing_problem_line(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("a 1 2 5\n")
        with pytest.raises(ValueError, match="problem"):
            read_dimacs(path)

    def test_unknown_line(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("p sp 2 1\nx nonsense\n")
        with pytest.raises(ValueError, match="unrecognized"):
            read_dimacs(path)

    def test_gzip_transparent(self, tmp_path):
        path = tmp_path / "g.gr.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("p sp 2 1\na 1 2 3\n")
        g = read_dimacs(path, symmetrize=False)
        assert g.n_edges == 1


class TestEdgeList:
    def test_round_trip(self, tmp_path, weighted_graph):
        path = tmp_path / "g.wel"
        write_edge_list(weighted_graph, path)
        back = read_edge_list(path, symmetrize=False)
        assert np.array_equal(back.col_idx, weighted_graph.col_idx)
        assert np.array_equal(back.weights, weighted_graph.weights)

    def test_unweighted(self, tmp_path):
        g = from_edge_list([(0, 1), (1, 2)])
        path = tmp_path / "g.el"
        write_edge_list(g, path)
        back = read_edge_list(path, symmetrize=False)
        assert back.weights is None
        assert back.n_edges == g.n_edges

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# SNAP header\n% other comment\n0 1\n1 2\n")
        g = read_edge_list(path, symmetrize=False)
        assert g.n_edges == 2

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError, match="no edges"):
            read_edge_list(path)


class TestMatrixMarket:
    def test_round_trip(self, tmp_path, weighted_graph):
        path = tmp_path / "g.mtx"
        write_matrix_market(weighted_graph, path)
        back = read_matrix_market(path)
        # The writer stores directed edges; the reader re-symmetrizes,
        # which is a no-op on an already symmetric graph.
        assert back.n_edges == weighted_graph.n_edges
        assert np.array_equal(back.col_idx, weighted_graph.col_idx)

    def test_pattern_matrix(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 2\n1 2\n2 3\n"
        )
        g = read_matrix_market(path)
        assert g.n_edges == 4
        assert g.weights is None

    def test_bad_header(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text("garbage\n1 1 0\n")
        with pytest.raises(ValueError, match="Matrix Market"):
            read_matrix_market(path)

    def test_rectangular_rejected(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n3 4 1\n1 2\n"
        )
        with pytest.raises(ValueError, match="square"):
            read_matrix_market(path)


class TestLoadDispatch:
    def test_by_extension(self, tmp_path, weighted_graph):
        for name in ("g.gr", "g.mtx", "g.wel"):
            path = tmp_path / name
            if name.endswith(".gr"):
                write_dimacs(weighted_graph, path)
            elif name.endswith(".mtx"):
                write_matrix_market(weighted_graph, path)
            else:
                write_edge_list(weighted_graph, path)
            g = load_graph(path)
            assert g.n_vertices == weighted_graph.n_vertices

    def test_unknown_extension(self, tmp_path):
        path = tmp_path / "g.xyz"
        path.write_text("")
        with pytest.raises(ValueError, match="unknown graph format"):
            load_graph(path)
