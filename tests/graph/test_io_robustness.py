"""Property-based and adversarial tests of the graph file readers.

Round-trip law: writing a canonical graph in any supported format and
reading it back (plain or gzipped, directly or through ``load_graph``)
reproduces the graph bit-for-bit.  Adversarial cases: truncation,
comment-only files, 0-vs-1-index confusion and CRLF endings either parse
correctly or raise :class:`GraphParseError` pointing at the bad line.
"""

import gzip

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import from_edge_arrays
from repro.graph.io import (
    GraphParseError,
    load_graph,
    read_dimacs,
    read_edge_list,
    read_matrix_market,
    write_dimacs,
    write_edge_list,
    write_matrix_market,
)

SETTINGS = settings(max_examples=25, deadline=None, derandomize=True)


@st.composite
def canonical_graphs(draw, weighted=True):
    """Small canonical graphs whose round trip is exact.

    Vertex ``n - 1`` is pinned to an edge so the edge-list reader (which
    infers the vertex count from the ids it sees) preserves ``n``.
    """
    n = draw(st.integers(min_value=2, max_value=24))
    m = draw(st.integers(min_value=1, max_value=60))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    src += [0, n - 1]
    dst += [1, 0]
    return from_edge_arrays(
        np.asarray(src), np.asarray(dst), n, add_weights=weighted
    )


def _assert_same_graph(a, b, *, weights=True):
    assert a.n_vertices == b.n_vertices
    assert np.array_equal(a.row_ptr, b.row_ptr)
    assert np.array_equal(a.col_idx, b.col_idx)
    if weights:
        assert np.array_equal(a.weights, b.weights)


class TestRoundTrip:
    @SETTINGS
    @given(graph=canonical_graphs())
    def test_dimacs(self, graph, tmp_path_factory):
        path = tmp_path_factory.mktemp("rt") / "g.gr"
        write_dimacs(graph, path)
        _assert_same_graph(graph, read_dimacs(path))

    @SETTINGS
    @given(graph=canonical_graphs())
    def test_edge_list(self, graph, tmp_path_factory):
        path = tmp_path_factory.mktemp("rt") / "g.el"
        write_edge_list(graph, path)
        _assert_same_graph(graph, read_edge_list(path))

    @SETTINGS
    @given(graph=canonical_graphs())
    def test_matrix_market(self, graph, tmp_path_factory):
        path = tmp_path_factory.mktemp("rt") / "g.mtx"
        write_matrix_market(graph, path)
        _assert_same_graph(graph, read_matrix_market(path))

    @SETTINGS
    @given(graph=canonical_graphs(weighted=False))
    def test_unweighted_edge_list(self, graph, tmp_path_factory):
        path = tmp_path_factory.mktemp("rt") / "g.el"
        write_edge_list(graph, path)
        back = read_edge_list(path)
        _assert_same_graph(graph, back, weights=False)
        assert back.weights is None

    @SETTINGS
    @given(graph=canonical_graphs())
    @pytest.mark.parametrize("suffix", ["g.gr.gz", "g.el.gz", "g.mtx.gz"])
    def test_gzip_through_load_graph(self, graph, suffix, tmp_path_factory):
        path = tmp_path_factory.mktemp("rt") / suffix
        writer = {
            ".gr": write_dimacs,
            ".el": write_edge_list,
            ".mtx": write_matrix_market,
        }[path.suffixes[-2]]
        writer(graph, path)
        with gzip.open(path) as fh:
            assert fh.read()  # really compressed, not plain text
        _assert_same_graph(graph, load_graph(path))


class TestTruncation:
    def test_mtx_truncated_entry_section(self, tmp_path):
        path = tmp_path / "t.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "4 4 3\n"
            "1 2\n"
        )
        with pytest.raises(GraphParseError, match="truncated"):
            read_matrix_market(path)

    def test_dimacs_truncated_arc_line(self, tmp_path):
        path = tmp_path / "t.gr"
        path.write_text("p sp 4 2\na 1 2 5\na 3\n")
        with pytest.raises(GraphParseError, match=r"t\.gr:3") as exc:
            read_dimacs(path)
        assert exc.value.line == 3

    def test_truncated_gzip_stream(self, tmp_path):
        whole = tmp_path / "g.el.gz"
        with gzip.open(whole, "wt") as fh:
            fh.write("0 1\n1 2\n" * 200)
        cut = tmp_path / "cut.el.gz"
        cut.write_bytes(whole.read_bytes()[:-20])
        with pytest.raises((OSError, EOFError, GraphParseError)):
            read_edge_list(cut)


class TestCommentOnly:
    def test_edge_list_comments_only(self, tmp_path):
        path = tmp_path / "c.el"
        path.write_text("# header\n# nothing else\n\n")
        with pytest.raises(GraphParseError, match="no edges"):
            read_edge_list(path)

    def test_dimacs_comments_only(self, tmp_path):
        path = tmp_path / "c.gr"
        path.write_text("c just a comment\nc another\n")
        with pytest.raises(GraphParseError, match="problem"):
            read_dimacs(path)


class TestIndexBaseConfusion:
    def test_zero_indexed_dimacs_rejected_with_line(self, tmp_path):
        # DIMACS is 1-indexed; a 0 endpoint is the classic off-by-one.
        path = tmp_path / "z.gr"
        path.write_text("p sp 3 2\na 1 2 1\na 0 2 1\n")
        with pytest.raises(GraphParseError) as exc:
            read_dimacs(path)
        assert exc.value.line == 3

    def test_zero_indexed_mtx_rejected(self, tmp_path):
        path = tmp_path / "z.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "3 3 2\n"
            "1 2\n"
            "0 2\n"
        )
        with pytest.raises(GraphParseError) as exc:
            read_matrix_market(path)
        assert exc.value.line == 4

    def test_one_past_end_dimacs_rejected(self, tmp_path):
        # A 0-indexed writer's n-1 becomes n under a 1-indexed reader —
        # in-range; its n stays n, which must be caught.
        path = tmp_path / "p.gr"
        path.write_text("p sp 3 1\na 2 4 1\n")
        with pytest.raises(GraphParseError) as exc:
            read_dimacs(path)
        assert exc.value.line == 2


class TestLineEndings:
    def test_crlf_edge_list(self, tmp_path):
        path = tmp_path / "w.el"
        path.write_bytes(b"# crlf\r\n0 1 7\r\n1 2 9\r\n")
        g = read_edge_list(path)
        assert g.n_vertices == 3
        assert g.n_edges == 4  # symmetrized
        assert set(g.weights.tolist()) == {7, 9}

    def test_crlf_dimacs(self, tmp_path):
        path = tmp_path / "w.gr"
        path.write_bytes(b"p sp 2 1\r\na 1 2 3\r\n")
        g = read_dimacs(path)
        assert g.n_vertices == 2
        assert g.n_edges == 2

    def test_crlf_matrix_market(self, tmp_path):
        path = tmp_path / "w.mtx"
        path.write_bytes(
            b"%%MatrixMarket matrix coordinate pattern general\r\n"
            b"2 2 1\r\n"
            b"1 2\r\n"
        )
        g = read_matrix_market(path)
        assert g.n_vertices == 2
        assert g.n_edges == 2
