"""Property-based tests (hypothesis) for the graph substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    bfs_levels,
    csr_to_coo,
    from_edge_arrays,
    deterministic_weights,
)


@st.composite
def edge_arrays(draw, max_vertices=40, max_edges=120):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m).map(np.array)
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m).map(np.array)
    )
    return n, np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64)


@given(edge_arrays())
@settings(max_examples=60, deadline=None)
def test_builder_invariants(data):
    n, src, dst = data
    g = from_edge_arrays(src, dst, n, add_weights=True)
    # CSR structural invariants.
    assert g.row_ptr[0] == 0
    assert g.row_ptr[-1] == g.n_edges
    assert (np.diff(g.row_ptr) >= 0).all()
    assert int(g.degrees.sum()) == g.n_edges
    # Canonicalization invariants.
    assert g.is_symmetric()
    assert g.has_sorted_neighbors()
    # No self loops.
    assert not np.any(g.edge_sources() == g.col_idx)
    # No parallel edges: neighbor lists strictly increasing.
    for v in range(g.n_vertices):
        nbrs = g.neighbors(v)
        assert (np.diff(nbrs) > 0).all()


@given(edge_arrays())
@settings(max_examples=40, deadline=None)
def test_coo_round_trip(data):
    n, src, dst = data
    g = from_edge_arrays(src, dst, n, add_weights=True)
    back = csr_to_coo(g).to_csr()
    assert np.array_equal(back.row_ptr, g.row_ptr)
    assert np.array_equal(back.col_idx, g.col_idx)
    assert np.array_equal(back.weights, g.weights)


@given(edge_arrays())
@settings(max_examples=40, deadline=None)
def test_reverse_is_involution(data):
    n, src, dst = data
    g = from_edge_arrays(src, dst, n, symmetrize=False)
    rr = g.reverse().reverse()
    assert np.array_equal(rr.row_ptr, g.row_ptr)
    assert np.array_equal(rr.col_idx, g.col_idx)


@given(edge_arrays())
@settings(max_examples=30, deadline=None)
def test_bfs_levels_triangle_inequality(data):
    n, src, dst = data
    g = from_edge_arrays(src, dst, n)
    levels = bfs_levels(g, 0)
    # Adjacent vertices' levels differ by at most 1 (when both reached).
    s = g.edge_sources()
    for u, v in zip(s.tolist(), g.col_idx.tolist()):
        if levels[u] >= 0 and levels[v] >= 0:
            assert abs(levels[u] - levels[v]) <= 1
        # A reached vertex cannot have an unreached neighbor.
        assert not (levels[u] >= 0 and levels[v] < 0)


@given(
    st.lists(st.integers(0, 10**6), min_size=1, max_size=50),
    st.lists(st.integers(0, 10**6), min_size=1, max_size=50),
)
@settings(max_examples=50, deadline=None)
def test_weights_in_range(a, b):
    k = min(len(a), len(b))
    w = deterministic_weights(
        np.asarray(a[:k], dtype=np.int64), np.asarray(b[:k], dtype=np.int64)
    )
    assert (w >= 1).all() and (w <= 255).all()
