"""Unit tests for the CSR graph container."""

import numpy as np
import pytest

from repro.graph import CSRGraph, from_edge_list


def triangle() -> CSRGraph:
    return from_edge_list([(0, 1), (1, 2), (0, 2)], add_weights=True)


class TestConstruction:
    def test_basic_shape(self):
        g = triangle()
        assert g.n_vertices == 3
        assert g.n_edges == 6  # two directed edges per undirected edge

    def test_row_ptr_must_start_at_zero(self):
        with pytest.raises(ValueError, match="start at 0"):
            CSRGraph(np.array([1, 2]), np.array([0], dtype=np.int32))

    def test_row_ptr_must_match_edges(self):
        with pytest.raises(ValueError, match="must equal"):
            CSRGraph(np.array([0, 2]), np.array([0], dtype=np.int32))

    def test_row_ptr_monotone(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRGraph(np.array([0, 2, 1, 3]), np.array([0, 1, 2], dtype=np.int32))

    def test_col_idx_range_checked(self):
        with pytest.raises(ValueError, match="out-of-range"):
            CSRGraph(np.array([0, 1]), np.array([7], dtype=np.int32))

    def test_weights_must_be_edge_parallel(self):
        with pytest.raises(ValueError, match="edge-parallel"):
            CSRGraph(
                np.array([0, 1]),
                np.array([0], dtype=np.int32),
                weights=np.array([1, 2], dtype=np.int32),
            )

    def test_empty_row_ptr_rejected(self):
        with pytest.raises(ValueError, match="at least one entry"):
            CSRGraph(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int32))

    def test_dtypes_normalized(self):
        g = CSRGraph(np.array([0, 1], dtype=np.int16), np.array([0], dtype=np.int64))
        assert g.row_ptr.dtype == np.int64
        assert g.col_idx.dtype == np.int32


class TestAccessors:
    def test_degrees(self):
        g = triangle()
        assert np.array_equal(g.degrees, [2, 2, 2])

    def test_neighbors_sorted_by_builder(self):
        g = triangle()
        assert np.array_equal(g.neighbors(0), [1, 2])
        assert np.array_equal(g.neighbors(1), [0, 2])

    def test_neighbor_range(self):
        g = triangle()
        beg, end = g.neighbor_range(1)
        assert (beg, end) == (2, 4)

    def test_edge_sources(self):
        g = triangle()
        assert np.array_equal(g.edge_sources(), [0, 0, 1, 1, 2, 2])

    def test_iter_edges(self):
        g = triangle()
        edges = set(g.iter_edges())
        assert (0, 1) in edges and (1, 0) in edges
        assert len(edges) == 6

    def test_edge_weights_of(self):
        g = triangle()
        assert g.edge_weights_of(0).shape == (2,)

    def test_edge_weights_unweighted_raises(self):
        g = from_edge_list([(0, 1)])
        with pytest.raises(ValueError, match="unweighted"):
            g.edge_weights_of(0)

    def test_memory_bytes(self):
        g = triangle()
        expected = g.row_ptr.nbytes + g.col_idx.nbytes + g.weights.nbytes
        assert g.memory_bytes() == expected


class TestTransforms:
    def test_symmetric(self):
        assert triangle().is_symmetric()

    def test_asymmetric_detected(self):
        g = from_edge_list([(0, 1)], n_vertices=2, symmetrize=False)
        assert not g.is_symmetric()

    def test_reverse_of_asymmetric(self):
        g = from_edge_list([(0, 1), (0, 2)], n_vertices=3, symmetrize=False)
        r = g.reverse()
        assert np.array_equal(r.neighbors(1), [0])
        assert np.array_equal(r.neighbors(2), [0])
        assert r.neighbors(0).size == 0

    def test_reverse_preserves_edge_count(self):
        g = triangle()
        assert g.reverse().n_edges == g.n_edges

    def test_sorted_neighbors_check(self):
        g = triangle()
        assert g.has_sorted_neighbors()
        shuffled = CSRGraph(g.row_ptr, g.col_idx[::-1].copy())
        assert not shuffled.has_sorted_neighbors()

    def test_with_sorted_neighbors(self):
        g = CSRGraph(np.array([0, 3, 3, 3]), np.array([2, 0, 1], dtype=np.int32),
                     weights=np.array([20, 0, 10], dtype=np.int32))
        s = g.with_sorted_neighbors()
        assert np.array_equal(s.col_idx, [0, 1, 2])
        # Weights permute with their edges.
        assert np.array_equal(s.weights, [0, 10, 20])

    def test_weighted_flag(self):
        assert triangle().is_weighted
        assert not from_edge_list([(0, 1)]).is_weighted
