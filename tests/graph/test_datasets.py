"""Unit tests for the five dataset stand-ins."""

import pytest

from repro.graph import DATASETS, analyze, dataset_names, load_all, load_dataset


class TestRegistry:
    def test_five_inputs_in_paper_order(self):
        assert dataset_names() == [
            "2d-2e20.sym",
            "coPapersDBLP",
            "rmat22.sym",
            "soc-LiveJournal1",
            "USA-road-d.NY",
        ]

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("nope")

    def test_unknown_scale(self):
        with pytest.raises(KeyError, match="unknown scale"):
            load_dataset("2d-2e20.sym", "enormous")

    def test_load_all_tiny(self):
        graphs = load_all("tiny")
        assert set(graphs) == set(dataset_names())
        for name, g in graphs.items():
            assert g.name == name
            assert g.n_vertices > 0

    def test_metadata(self):
        spec = DATASETS["USA-road-d.NY"]
        assert spec.graph_type == "road map"
        assert spec.origin == "Dimacs"

    def test_deterministic(self):
        a = load_dataset("rmat22.sym", "tiny")
        b = load_dataset("rmat22.sym", "tiny")
        assert a.n_edges == b.n_edges


class TestShapeFidelity:
    """Scaled stand-ins must keep the paper's Table 5 shape profile."""

    @pytest.fixture(scope="class")
    def props(self):
        return {name: analyze(g) for name, g in load_all("tiny").items()}

    def test_grid_uniform_low_degree(self, props):
        p = props["2d-2e20.sym"]
        assert p.max_degree == 4
        assert p.pct_deg_ge_32 == 0.0

    def test_road_low_degree_high_diameter(self, props):
        p = props["USA-road-d.NY"]
        assert p.avg_degree < 6
        assert p.diameter > 3 * props["soc-LiveJournal1"].diameter

    def test_publication_is_densest(self, props):
        dblp = props["coPapersDBLP"].avg_degree
        assert all(
            dblp >= props[name].avg_degree
            for name in props
            if name != "coPapersDBLP"
        )

    def test_social_graph_skew(self, props):
        p = props["soc-LiveJournal1"]
        assert p.max_degree > 3 * p.avg_degree

    def test_grid_has_largest_diameter_class(self, props):
        # Grid and road are the high-diameter inputs (paper Table 5).
        high = {"2d-2e20.sym", "USA-road-d.NY"}
        low = set(props) - high
        assert min(props[h].diameter for h in high) > max(
            props[l].diameter for l in low
        )


class TestExtraDatasets:
    """The Indigo2-style additional inputs beyond Table 4."""

    def test_names(self):
        from repro.graph import extra_dataset_names

        assert extra_dataset_names() == ["kron-skewed", "wiki-Talk", "com-Orkut"]

    def test_unknown_extra(self):
        from repro.graph import load_extra

        with pytest.raises(KeyError, match="unknown extra"):
            load_extra("nope")

    def test_shapes(self):
        from repro.graph import analyze, load_extra

        kron = analyze(load_extra("kron-skewed", "tiny"))
        wiki = analyze(load_extra("wiki-Talk", "tiny"))
        orkut = analyze(load_extra("com-Orkut", "tiny"))
        # kron: heavier tail than the Table-4 rmat defaults.
        assert kron.max_degree > 8 * kron.avg_degree
        # wiki-Talk: extreme hub concentration over a sparse periphery.
        assert wiki.max_degree > 20 * wiki.avg_degree
        assert wiki.avg_degree < 8
        # orkut: much denser than the soc stand-in.
        assert orkut.avg_degree > 20

    def test_extras_run_through_the_kernels(self):
        from repro.graph import load_extra
        from repro.machine import RTX_3090
        from repro.runtime import Launcher
        from repro.styles import Algorithm, Model, enumerate_specs

        g = load_extra("wiki-Talk", "tiny")
        launcher = Launcher()
        spec = enumerate_specs(Algorithm.BFS, Model.CUDA)[0]
        result = launcher.run(spec, g, RTX_3090)
        assert result.verified
