"""Ingestion validation, sanitize pipeline, and quarantine."""

import json

import numpy as np
import pytest

from repro.graph import from_edge_arrays, load_graph
from repro.graph.csr import CSRGraph
from repro.graph.validate import (
    MAX_SAFE_WEIGHT,
    GraphParseError,
    GraphValidationError,
    GraphValidator,
    quarantine_file,
    sanitize_graph,
)


def _clean_graph():
    src = np.array([0, 1, 1, 2], dtype=np.int64)
    dst = np.array([1, 0, 2, 1], dtype=np.int64)
    return from_edge_arrays(src, dst, 3, symmetrize=False)


class TestValidateArrays:
    def test_clean_graph_ok(self):
        g = _clean_graph()
        report = GraphValidator().validate(g)
        assert report.ok
        assert not report.warnings

    def test_decreasing_row_ptr(self):
        report = GraphValidator().validate_arrays(
            np.array([0, 3, 1, 4]), np.zeros(4, dtype=np.int32)
        )
        assert not report.ok
        assert "VAL-ROWPTR" in report.by_rule()

    def test_row_ptr_tail_mismatch(self):
        report = GraphValidator().validate_arrays(
            np.array([0, 2, 5]), np.zeros(4, dtype=np.int32)
        )
        assert any(f.rule == "VAL-ROWPTR" for f in report.errors)

    def test_out_of_range_col_idx(self):
        report = GraphValidator().validate_arrays(
            np.array([0, 1, 2]), np.array([1, 7], dtype=np.int32)
        )
        assert any(f.rule == "VAL-COLIDX" for f in report.errors)

    def test_nan_and_negative_weights(self):
        row_ptr = np.array([0, 1, 2])
        col = np.array([1, 0], dtype=np.int32)
        rep_nan = GraphValidator().validate_arrays(
            row_ptr, col, np.array([np.nan, 1.0])
        )
        assert any(f.rule == "VAL-WEIGHT" for f in rep_nan.errors)
        rep_neg = GraphValidator().validate_arrays(
            row_ptr, col, np.array([-3.0, 1.0])
        )
        assert any(f.rule == "VAL-WEIGHT" for f in rep_neg.errors)

    def test_zero_weight_warns_not_errors(self):
        report = GraphValidator().validate_arrays(
            np.array([0, 1, 2]), np.array([1, 0], dtype=np.int32),
            np.array([0.0, 1.0]),
        )
        assert report.ok
        assert any(f.rule == "VAL-WEIGHT-RANGE" for f in report.warnings)

    def test_self_loop_and_duplicate_accounting(self):
        row_ptr = np.array([0, 3, 3])
        col = np.array([0, 1, 1], dtype=np.int32)
        report = GraphValidator().validate_arrays(row_ptr, col)
        rules = report.by_rule()
        assert "VAL-SELF-LOOP" in rules
        assert "VAL-DUP-EDGE" in rules
        assert report.ok  # warnings only

    def test_empty_graph_warns(self):
        report = GraphValidator().validate_arrays(
            np.array([0]), np.empty(0, dtype=np.int32)
        )
        assert report.ok
        assert "VAL-EMPTY" in report.by_rule()

    def test_isolated_fraction_warns(self):
        # 1 edge, 10 vertices -> 8 isolated.
        g = from_edge_arrays(
            np.array([0]), np.array([1]), 10, symmetrize=True
        )
        report = GraphValidator().validate(g)
        assert "VAL-ISOLATED" in report.by_rule()


class TestCheckAndErrors:
    def test_check_passes_clean(self):
        g = _clean_graph()
        assert GraphValidator().check(g) is g

    def test_validation_error_carries_report(self):
        report = GraphValidator().validate_arrays(
            np.array([0, 2, 1]), np.zeros(1, dtype=np.int32)
        )
        err = GraphValidationError(report, name="bad")
        assert err.report is report
        assert "VAL-ROWPTR" in str(err)
        assert isinstance(err, ValueError)

    def test_parse_error_message_has_path_and_line(self):
        err = GraphParseError("/data/g.el", 17, "non-numeric field")
        assert "/data/g.el:17" in str(err)
        assert err.line == 17
        assert isinstance(err, ValueError)


class TestSanitize:
    def test_drops_self_loops_and_dups(self):
        src = np.array([0, 0, 0, 1], dtype=np.int64)
        dst = np.array([0, 1, 1, 0], dtype=np.int64)
        g = CSRGraph(
            np.array([0, 3, 4], dtype=np.int64),
            dst.astype(np.int32), None, name="dirty",
        )
        del src
        out, report = sanitize_graph(g)
        assert out.n_edges == 2  # 0->1 and 1->0
        rules = report.by_rule()
        assert "VAL-SELF-LOOP" in rules
        assert "VAL-DUP-EDGE" in rules

    def test_clamps_weights(self):
        g = CSRGraph(
            np.array([0, 1, 2], dtype=np.int64),
            np.array([1, 0], dtype=np.int32),
            np.array([0, 1], dtype=np.int32),
            name="zero-weight",
        )
        out, report = sanitize_graph(g)
        assert out.weights is not None and out.weights.min() >= 1
        assert "VAL-WEIGHT-RANGE" in report.by_rule()
        assert out.weights.max() <= MAX_SAFE_WEIGHT

    def test_symmetrize_adds_reverse_edges(self):
        g = from_edge_arrays(
            np.array([0]), np.array([1]), 2, symmetrize=False
        )
        out, report = sanitize_graph(g, symmetrize=True)
        assert out.is_symmetric()
        assert "VAL-ASYM" in report.by_rule()

    def test_clean_graph_untouched(self):
        g = _clean_graph()
        out, report = sanitize_graph(g)
        assert out.n_edges == g.n_edges
        assert not report.findings


class TestQuarantine:
    def test_copies_file_and_writes_reason(self, tmp_path):
        bad = tmp_path / "bad.el"
        bad.write_text("0 not-a-number\n")
        qdir = tmp_path / "quarantine"
        reason_path = quarantine_file(
            bad, qdir, rule="VAL-PARSE", message="non-numeric field", line=1
        )
        assert (qdir / "bad.el").exists()
        assert bad.exists()  # copied, not moved
        payload = json.loads(reason_path.read_text())
        assert payload["rule"] == "VAL-PARSE"
        assert payload["line"] == 1
        assert payload["error_class"] == "validation"

    def test_load_graph_quarantines_parse_error(self, tmp_path):
        bad = tmp_path / "bad.el"
        bad.write_text("0 1\n0 x\n")
        qdir = tmp_path / "q"
        with pytest.raises(GraphParseError) as exc:
            load_graph(bad, quarantine_dir=qdir)
        assert exc.value.line == 2
        reason = json.loads((qdir / "bad.el.reason.json").read_text())
        assert reason["rule"] == "VAL-PARSE"
        assert reason["line"] == 2


class TestLoadGraphPolicy:
    def test_repair_policy_sanitizes(self, tmp_path):
        f = tmp_path / "dirty.el"
        f.write_text("0 1\n0 1\n1 1\n1 0\n")  # dup edge + self loop
        g = load_graph(f, policy="repair")
        assert g.n_edges == 2

    def test_strict_policy_rejects_extra_columns(self, tmp_path):
        f = tmp_path / "extra.el"
        f.write_text("0 1\n1 0 7 99\n")
        with pytest.raises(GraphParseError, match="extra columns"):
            load_graph(f, policy="strict")
        # repair policy truncates instead of rejecting
        g = load_graph(f, policy="repair")
        assert g.n_vertices == 2

    def test_unknown_policy_raises(self, tmp_path):
        f = tmp_path / "g.el"
        f.write_text("0 1\n1 0\n")
        with pytest.raises(ValueError, match="unknown policy"):
            load_graph(f, policy="lenient")

    def test_validate_false_skips_pipeline(self, tmp_path):
        # The builder still canonicalizes; validate=False only skips the
        # validator/sanitizer layer (pre-hardening behavior).
        f = tmp_path / "dirty.el"
        f.write_text("0 1\n0 1\n1 0\n")
        g = load_graph(f, validate=False, symmetrize=False)
        assert g.n_edges == 2
