"""Tests of the zero-copy shared-memory graph plane (repro.graph.shm)."""

import numpy as np
import pytest

from repro.graph import load_dataset
from repro.graph import shm
from repro.graph.shm import (
    SharedGraphGone,
    SharedGraphPlane,
    attach_graph,
    shm_enabled,
)

pytestmark = pytest.mark.skipif(
    not shm_enabled(), reason="shared memory unavailable or disabled"
)


@pytest.fixture()
def graph():
    return load_dataset("soc-LiveJournal1", "tiny")


class TestPublishAttach:
    def test_roundtrip_is_equal_and_zero_copy(self, graph):
        with SharedGraphPlane() as plane:
            handle = plane.publish(graph.name, graph)
            attached = attach_graph(handle)
            try:
                assert attached.name == graph.name
                assert np.array_equal(attached.row_ptr, graph.row_ptr)
                assert np.array_equal(attached.col_idx, graph.col_idx)
                if graph.weights is None:
                    assert attached.weights is None
                else:
                    assert np.array_equal(attached.weights, graph.weights)
                # Zero-copy: the graph's arrays are views of the shared
                # segments, not private copies made by CSRGraph.
                assert not attached.row_ptr.flags.owndata
                assert not attached.col_idx.flags.owndata
            finally:
                shm.detach_all()

    def test_attached_arrays_are_read_only(self, graph):
        with SharedGraphPlane() as plane:
            attached = attach_graph(plane.publish(graph.name, graph))
            try:
                with pytest.raises(ValueError):
                    attached.row_ptr[0] = 7
            finally:
                shm.detach_all()

    def test_fingerprint_is_inherited_not_rehashed(self, graph):
        with SharedGraphPlane() as plane:
            attached = attach_graph(plane.publish(graph.name, graph))
            try:
                # Equal content must mean equal identity for every cache
                # keyed by the fingerprint (launcher, trace store).
                assert attached.fingerprint() == graph.fingerprint()
                assert attached._fingerprint is not None  # no lazy rehash
            finally:
                shm.detach_all()

    def test_publish_memoizes_per_name(self, graph):
        with SharedGraphPlane() as plane:
            first = plane.publish(graph.name, graph)
            assert plane.publish(graph.name, graph) is first
            assert plane.handle(graph.name) is first

    def test_weighted_graph_ships_weights(self):
        graph = load_dataset("USA-road-d.NY", "tiny")
        assert graph.weights is not None
        with SharedGraphPlane() as plane:
            attached = attach_graph(plane.publish(graph.name, graph))
            try:
                assert np.array_equal(attached.weights, graph.weights)
                assert not attached.weights.flags.writeable
            finally:
                shm.detach_all()


class TestLifecycle:
    def test_close_unlinks_and_attach_raises(self, graph):
        plane = SharedGraphPlane()
        handle = plane.publish(graph.name, graph)
        plane.close()
        with pytest.raises(SharedGraphGone):
            attach_graph(handle)

    def test_close_is_idempotent(self, graph):
        plane = SharedGraphPlane()
        plane.publish(graph.name, graph)
        plane.close()
        plane.close()

    def test_publish_after_close_raises(self, graph):
        plane = SharedGraphPlane()
        plane.close()
        with pytest.raises(SharedGraphGone):
            plane.publish(graph.name, graph)

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv(shm.SHM_ENV, "0")
        assert not shm_enabled()
        monkeypatch.setenv(shm.SHM_ENV, "1")
        assert shm_enabled()

    def test_attached_graph_runs_kernels(self, graph):
        """A read-only attached graph behaves exactly like the original."""
        from repro.machine.devices import RTX_3090
        from repro.runtime import Launcher
        from repro.styles import Algorithm, Model, enumerate_specs

        spec = enumerate_specs(Algorithm.BFS, Model.CUDA)[0]
        with SharedGraphPlane() as plane:
            attached = attach_graph(plane.publish(graph.name, graph))
            try:
                native = Launcher().run(spec, graph, RTX_3090)
                shared = Launcher().run(spec, attached, RTX_3090)
                assert native == shared
            finally:
                shm.detach_all()
