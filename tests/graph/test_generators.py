"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import (
    analyze,
    clustered,
    connected_components_count,
    grid2d,
    power_law,
    random_uniform,
    rmat,
    road_network,
)


class TestGrid:
    def test_shape(self):
        g = grid2d(5, 7)
        assert g.n_vertices == 35
        # 4*(5*6 + 4*7) directed... count: horizontal 5*6, vertical 4*7,
        # each undirected edge stored twice.
        assert g.n_edges == 2 * (5 * 6 + 4 * 7)

    def test_interior_degree_four(self):
        g = grid2d(10, 10)
        assert int(g.degrees.max()) == 4
        # Corner vertices have degree 2.
        assert int(g.degrees.min()) == 2

    def test_connected(self):
        assert connected_components_count(grid2d(6, 6)) == 1

    def test_diameter(self):
        p = analyze(grid2d(8, 8))
        assert p.diameter == 14  # rows + cols - 2

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            grid2d(0, 5)

    def test_deterministic(self):
        a, b = grid2d(6, 6), grid2d(6, 6)
        assert np.array_equal(a.col_idx, b.col_idx)


class TestRoad:
    def test_shape_low_degree(self):
        g = road_network(2000, seed=1)
        p = analyze(g)
        assert p.avg_degree < 6
        assert p.max_degree <= 12

    def test_connected(self):
        assert connected_components_count(road_network(500, seed=2)) == 1

    def test_high_diameter(self):
        p = analyze(road_network(2000, seed=1))
        # Road stand-ins must be high-diameter relative to size.
        assert p.diameter > 30

    def test_deterministic(self):
        a = road_network(300, seed=5)
        b = road_network(300, seed=5)
        assert np.array_equal(a.col_idx, b.col_idx)

    def test_seed_changes_graph(self):
        a = road_network(300, seed=5)
        b = road_network(300, seed=6)
        assert a.n_edges != b.n_edges or not np.array_equal(a.col_idx, b.col_idx)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            road_network(2)


class TestRMAT:
    def test_vertex_count(self):
        g = rmat(8, 4, seed=3)
        assert g.n_vertices == 256

    def test_skewed_degrees(self):
        p = analyze(rmat(10, 8, seed=3))
        assert p.max_degree > 8 * p.avg_degree

    def test_deterministic(self):
        a, b = rmat(7, 4, seed=9), rmat(7, 4, seed=9)
        assert np.array_equal(a.col_idx, b.col_idx)

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError, match="probabilities"):
            rmat(5, 4, a=0.6, b=0.3, c=0.3)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            rmat(0)


class TestPowerLaw:
    def test_scale_free_tail(self):
        p = analyze(power_law(2000, 8, seed=4))
        assert p.max_degree > 10 * p.avg_degree

    def test_average_degree(self):
        g = power_law(2000, 8, seed=4)
        # ~2 * attach directed edges per vertex.
        assert 10 < g.degrees.mean() < 20

    def test_connected(self):
        assert connected_components_count(power_law(400, 5, seed=1)) == 1

    def test_deterministic(self):
        a, b = power_law(300, 6, seed=2), power_law(300, 6, seed=2)
        assert np.array_equal(a.col_idx, b.col_idx)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            power_law(5, 9)


class TestClustered:
    def test_dense(self):
        p = analyze(clustered(80, 12.0, seed=6))
        assert p.avg_degree > 5

    def test_heavy_tail(self):
        light = analyze(clustered(120, 8.0, seed=6))
        heavy = analyze(
            clustered(120, 8.0, heavy_tail=1.5, max_community=300, seed=6)
        )
        assert heavy.max_degree > light.max_degree

    def test_max_community_caps_degree(self):
        g = clustered(60, 10.0, heavy_tail=1.2, max_community=50, seed=6)
        # A vertex's degree can exceed one community's size through
        # overlap, but not by orders of magnitude.
        assert int(g.degrees.max()) < 50 * 4

    def test_deterministic(self):
        a = clustered(50, 9.0, seed=8)
        b = clustered(50, 9.0, seed=8)
        assert np.array_equal(a.col_idx, b.col_idx)

    def test_invalid(self):
        with pytest.raises(ValueError):
            clustered(0)


class TestUniform:
    def test_shape(self):
        g = random_uniform(100, 500, seed=1)
        assert g.n_vertices == 100
        assert g.n_edges <= 1000  # dedup may remove a few

    def test_invalid(self):
        with pytest.raises(ValueError):
            random_uniform(1, 10)


class TestAllWeighted:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: grid2d(5, 5),
            lambda: road_network(200, seed=1),
            lambda: rmat(6, 4, seed=1),
            lambda: power_law(100, 4, seed=1),
            lambda: clustered(20, 8.0, seed=1),
        ],
    )
    def test_generators_weighted_and_symmetric(self, maker):
        g = maker()
        assert g.is_weighted
        assert g.is_symmetric()
        assert g.has_sorted_neighbors()


class TestHubAndSpokes:
    def test_hub_concentration(self):
        from repro.graph import hub_and_spokes

        g = hub_and_spokes(500, n_hubs=2, spoke_degree=3.0, seed=9)
        deg = g.degrees
        hubs = sorted(deg, reverse=True)[:2]
        assert min(hubs) > 10 * deg.mean()

    def test_deterministic(self):
        from repro.graph import hub_and_spokes
        import numpy as np

        a = hub_and_spokes(200, seed=4)
        b = hub_and_spokes(200, seed=4)
        assert np.array_equal(a.col_idx, b.col_idx)

    def test_too_few_vertices(self):
        from repro.graph import hub_and_spokes

        with pytest.raises(ValueError):
            hub_and_spokes(4, n_hubs=4)

    def test_canonical_form(self):
        from repro.graph import hub_and_spokes

        g = hub_and_spokes(300, seed=2)
        assert g.is_symmetric()
        assert g.has_sorted_neighbors()
        assert g.is_weighted
