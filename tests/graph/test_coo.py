"""Unit tests for the COO graph container."""

import numpy as np
import pytest

from repro.graph import COOGraph, csr_to_coo, from_edge_list


def small_coo() -> COOGraph:
    return COOGraph(
        src=np.array([0, 1, 1, 2]),
        dst=np.array([1, 0, 2, 1]),
        n_vertices=3,
    )


class TestConstruction:
    def test_shapes(self):
        g = small_coo()
        assert g.n_edges == 4
        assert g.n_vertices == 3

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError, match="same shape"):
            COOGraph(np.array([0]), np.array([1, 2]), 3)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            COOGraph(np.array([0]), np.array([5]), 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            COOGraph(np.array([-1]), np.array([0]), 3)

    def test_weights_edge_parallel(self):
        with pytest.raises(ValueError, match="edge-parallel"):
            COOGraph(np.array([0]), np.array([1]), 2, weights=np.array([1, 2]))

    def test_isolated_vertices_allowed(self):
        g = COOGraph(np.array([0]), np.array([1]), 10)
        assert g.n_vertices == 10


class TestOperations:
    def test_degrees(self):
        g = small_coo()
        assert np.array_equal(g.degrees(), [1, 2, 1])

    def test_symmetry(self):
        assert small_coo().is_symmetric()
        assert not COOGraph(np.array([0]), np.array([1]), 2).is_symmetric()

    def test_to_csr_round_trip(self):
        g = small_coo()
        csr = g.to_csr()
        assert csr.n_edges == g.n_edges
        assert np.array_equal(csr.neighbors(1), [0, 2])

    def test_csr_to_coo(self):
        csr = from_edge_list([(0, 1), (1, 2)], add_weights=True)
        coo = csr_to_coo(csr)
        assert coo.n_edges == csr.n_edges
        assert coo.is_weighted
        # Edge order matches CSR slot order.
        assert np.array_equal(coo.src, csr.edge_sources())
        assert np.array_equal(coo.dst, csr.col_idx)

    def test_memory_bytes(self):
        g = small_coo()
        assert g.memory_bytes() == g.src.nbytes + g.dst.nbytes
