"""Unit tests for graph property analysis (Tables 4/5 machinery)."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import (
    analyze,
    bfs_levels,
    connected_components_count,
    estimate_diameter,
    from_edge_list,
    grid2d,
    random_uniform,
)


def to_nx(graph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(graph.n_vertices))
    src = graph.edge_sources()
    g.add_edges_from(zip(src.tolist(), graph.col_idx.tolist()))
    return g


class TestBfsLevels:
    def test_path_graph(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 3)])
        assert np.array_equal(bfs_levels(g, 0), [0, 1, 2, 3])

    def test_unreachable_marked(self):
        g = from_edge_list([(0, 1), (2, 3)])
        levels = bfs_levels(g, 0)
        assert levels[2] == -1 and levels[3] == -1

    def test_source_out_of_range(self):
        g = from_edge_list([(0, 1)])
        with pytest.raises(ValueError):
            bfs_levels(g, 5)

    def test_matches_networkx(self):
        g = random_uniform(80, 300, seed=7)
        ref = nx.single_source_shortest_path_length(to_nx(g), 0)
        levels = bfs_levels(g, 0)
        for v in range(g.n_vertices):
            expected = ref.get(v, -1)
            assert levels[v] == expected

    def test_isolated_source(self):
        g = from_edge_list([(1, 2)], n_vertices=4)
        levels = bfs_levels(g, 0)
        assert levels[0] == 0
        assert (levels[1:] == -1).all()


class TestDiameter:
    def test_exact_on_path(self):
        g = from_edge_list([(i, i + 1) for i in range(9)])
        assert estimate_diameter(g) == 9

    def test_exact_on_grid(self):
        g = grid2d(6, 9, weighted=False)
        assert estimate_diameter(g) == 6 + 9 - 2

    def test_lower_bound_on_random(self):
        g = random_uniform(60, 200, seed=3)
        est = estimate_diameter(g)
        exact = max(
            max(nx.eccentricity(c_sub).values())
            for c_sub in (
                to_nx(g).subgraph(c) for c in nx.connected_components(to_nx(g))
            )
        )
        assert est <= exact
        # The double sweep should get close on these sizes.
        assert est >= exact - 2

    def test_empty(self):
        g = from_edge_list([], n_vertices=0)
        assert estimate_diameter(g) == 0


class TestComponents:
    def test_single_component(self):
        assert connected_components_count(grid2d(4, 4, weighted=False)) == 1

    def test_multiple(self):
        g = from_edge_list([(0, 1), (2, 3), (4, 5)])
        assert connected_components_count(g) == 3

    def test_isolated_vertices_counted(self):
        g = from_edge_list([(0, 1)], n_vertices=4)
        assert connected_components_count(g) == 3


class TestAnalyze:
    def test_fields(self):
        g = grid2d(10, 10)
        p = analyze(g)
        assert p.n_vertices == 100
        assert p.n_edges == g.n_edges
        assert p.avg_degree == pytest.approx(g.degrees.mean())
        assert p.max_degree == 4
        assert p.pct_deg_ge_32 == 0.0
        assert p.pct_deg_ge_512 == 0.0
        assert p.diameter == 18
        assert p.size_mb == pytest.approx(g.memory_bytes() / 2**20)

    def test_explicit_diameter_skips_estimation(self):
        g = grid2d(4, 4)
        p = analyze(g, diameter=99)
        assert p.diameter == 99

    def test_table_rows_render(self):
        p = analyze(grid2d(4, 4))
        assert p.name in p.table4_row()
        assert p.name in p.table5_row()
