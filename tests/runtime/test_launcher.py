"""Unit tests for the launcher (caching, pairing, results)."""

import pytest

from repro.graph import load_dataset
from repro.machine import RTX_3090, THREADRIPPER_2950X
from repro.runtime import Launcher
from repro.styles import (
    Algorithm,
    Model,
    Persistence,
    enumerate_specs,
)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("USA-road-d.NY", "tiny")


@pytest.fixture()
def launcher():
    return Launcher()


def cuda_spec(index=0, alg=Algorithm.BFS):
    return enumerate_specs(alg, Model.CUDA)[index]


def omp_spec(index=0, alg=Algorithm.BFS):
    return enumerate_specs(alg, Model.OPENMP)[index]


class TestRun:
    def test_result_fields(self, launcher, graph):
        r = launcher.run(cuda_spec(), graph, RTX_3090)
        assert r.device == "RTX 3090"
        assert r.graph == graph.name
        assert r.seconds > 0
        assert r.throughput_ges == pytest.approx(
            graph.n_edges / r.seconds / 1e9
        )
        assert r.verified
        assert r.iterations >= 1
        assert r.launches >= 1

    def test_gpu_program_rejected_on_cpu(self, launcher, graph):
        with pytest.raises(ValueError, match="cannot run"):
            launcher.run(cuda_spec(), graph, THREADRIPPER_2950X)

    def test_cpu_program_rejected_on_gpu(self, launcher, graph):
        with pytest.raises(ValueError, match="cannot run"):
            launcher.run(omp_spec(), graph, RTX_3090)

    def test_invalid_spec_rejected(self, launcher, graph):
        bad = cuda_spec().with_axis(granularity=None)
        with pytest.raises(ValueError):
            launcher.run(bad, graph, RTX_3090)

    def test_deterministic_timing(self, launcher, graph):
        a = launcher.run(cuda_spec(), graph, RTX_3090)
        b = launcher.run(cuda_spec(), graph, RTX_3090)
        assert a.seconds == b.seconds


class TestTraceCache:
    def test_mapping_variants_share_traces(self, launcher, graph):
        spec = cuda_spec()
        launcher.run(spec, graph, RTX_3090)
        n_before = launcher.cached_traces
        launcher.run(
            spec.with_axis(persistence=Persistence.PERSISTENT), graph, RTX_3090
        )
        assert launcher.cached_traces == n_before

    def test_semantic_variants_add_traces(self, launcher, graph):
        launcher.run(cuda_spec(0), graph, RTX_3090)
        n_before = launcher.cached_traces
        specs = enumerate_specs(Algorithm.BFS, Model.CUDA)
        other = next(
            s for s in specs if s.semantic_key() != cuda_spec(0).semantic_key()
        )
        launcher.run(other, graph, RTX_3090)
        assert launcher.cached_traces == n_before + 1

    def test_cross_model_trace_sharing(self, launcher, graph):
        launcher.run(cuda_spec(), graph, RTX_3090)
        n_before = launcher.cached_traces
        # An OpenMP spec with identical semantic axes reuses the trace.
        target = cuda_spec().semantic_key()
        match = next(
            s for s in enumerate_specs(Algorithm.BFS, Model.OPENMP)
            if s.semantic_key() == target
        )
        launcher.run(match, graph, THREADRIPPER_2950X)
        assert launcher.cached_traces == n_before

    def test_release_drops_block(self, launcher, graph):
        launcher.run(cuda_spec(), graph, RTX_3090)
        assert launcher.cached_traces > 0
        launcher.release(graph, Algorithm.BFS)
        assert launcher.cached_traces == 0

    def test_release_keeps_other_algorithms(self, launcher, graph):
        launcher.run(cuda_spec(), graph, RTX_3090)
        launcher.run(cuda_spec(alg=Algorithm.CC), graph, RTX_3090)
        launcher.release(graph, Algorithm.BFS)
        assert launcher.cached_traces == 1

    def test_clear_caches(self, launcher, graph):
        launcher.run(cuda_spec(), graph, RTX_3090)
        launcher.clear_caches()
        assert launcher.cached_traces == 0


class TestVerificationWiring:
    def test_verify_disabled_still_runs(self, graph):
        launcher = Launcher(verify=False)
        r = launcher.run(cuda_spec(), graph, RTX_3090)
        assert not r.verified

    def test_different_sources_differ(self, graph):
        a = Launcher(source=0).run(cuda_spec(alg=Algorithm.SSSP), graph, RTX_3090)
        b = Launcher(source=5).run(cuda_spec(alg=Algorithm.SSSP), graph, RTX_3090)
        # Different sources induce different executions (usually different
        # iteration counts or time); at minimum both verify.
        assert a.verified and b.verified
