"""Unit tests for result verification."""

import numpy as np
import pytest

from repro.graph import power_law
from repro.runtime import VerificationError, reference_solution, verify_result
from repro.styles import Algorithm


@pytest.fixture(scope="module")
def graph():
    return power_law(150, 5, seed=21)


class TestReferences:
    @pytest.mark.parametrize("alg", list(Algorithm))
    def test_reference_exists(self, graph, alg):
        ref = reference_solution(alg, graph)
        assert ref is not None

    def test_tc_reference_is_scalar_count(self, graph):
        ref = reference_solution(Algorithm.TC, graph)
        assert ref.shape == (1,)


class TestVerification:
    @pytest.mark.parametrize("alg", list(Algorithm))
    def test_reference_verifies_against_itself(self, graph, alg):
        ref = reference_solution(alg, graph)
        verify_result(alg, graph, ref.copy(), ref)

    def test_bfs_detects_corruption(self, graph):
        ref = reference_solution(Algorithm.BFS, graph)
        bad = ref.copy()
        bad[3] += 1
        with pytest.raises(VerificationError, match="distances differ"):
            verify_result(Algorithm.BFS, graph, bad, ref)

    def test_cc_accepts_relabeled_components(self, graph):
        ref = reference_solution(Algorithm.CC, graph)
        relabeled = ref + 1000  # same partition, different label values
        verify_result(Algorithm.CC, graph, relabeled, ref)

    def test_cc_detects_wrong_partition(self, graph):
        ref = reference_solution(Algorithm.CC, graph)
        bad = ref.copy()
        bad[0] = 999
        with pytest.raises(VerificationError):
            verify_result(Algorithm.CC, graph, bad, ref)

    def test_mis_detects_invalid_set(self, graph):
        ref = reference_solution(Algorithm.MIS, graph)
        bad = np.ones_like(ref)  # everything in the set: not independent
        with pytest.raises(VerificationError, match="independent"):
            verify_result(Algorithm.MIS, graph, bad, ref)

    def test_pr_allows_small_tolerance(self, graph):
        ref = reference_solution(Algorithm.PR, graph)
        verify_result(Algorithm.PR, graph, ref + 1e-7, ref)

    def test_pr_detects_large_error(self, graph):
        ref = reference_solution(Algorithm.PR, graph)
        with pytest.raises(VerificationError, match="deviation"):
            verify_result(Algorithm.PR, graph, ref + 1e-2, ref)

    def test_tc_detects_miscount(self, graph):
        ref = reference_solution(Algorithm.TC, graph)
        with pytest.raises(VerificationError, match="counted"):
            verify_result(Algorithm.TC, graph, ref + 1, ref)
