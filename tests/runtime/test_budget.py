"""Pre-launch resource budgeting and its launcher/sweep wiring."""

import numpy as np
import pytest

from repro.bench.harness import SweepConfig
from repro.graph import from_edge_arrays
from repro.graph.generators import grid2d
from repro.machine.devices import RTX_3090, THREADRIPPER_2950X, TITAN_V
from repro.runtime import (
    BudgetExceeded,
    ErrorClass,
    FailedRun,
    Launcher,
    ResourceBudget,
    classify_error,
    estimate_bytes,
)
from repro.styles.axes import Algorithm, Model
from repro.styles.combos import enumerate_specs


def _graph():
    return grid2d(8, 8)


def _spec(algorithm=Algorithm.BFS, model=Model.CUDA):
    return enumerate_specs(algorithm, model)[0]


class TestEstimate:
    def test_scales_with_graph(self):
        small = grid2d(4, 4)
        large = grid2d(32, 32)
        assert estimate_bytes(large) > estimate_bytes(small)

    def test_data_driven_costs_more(self):
        g = _graph()
        topo = next(
            s for s in enumerate_specs(Algorithm.BFS, Model.CUDA)
            if s.driver.value == "topology"
        )
        data = next(
            s for s in enumerate_specs(Algorithm.BFS, Model.CUDA)
            if s.driver.value == "data"
        )
        assert estimate_bytes(g, data) > estimate_bytes(g, topo)


class TestResourceBudget:
    def test_inactive_by_default(self):
        assert not ResourceBudget().active

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_FOOTPRINT_MB", "2")
        monkeypatch.setenv("REPRO_MAX_SIM_SECONDS", "0.5")
        budget = ResourceBudget.from_env()
        assert budget.max_bytes == 2_000_000
        assert budget.max_seconds == 0.5
        monkeypatch.delenv("REPRO_MAX_FOOTPRINT_MB")
        monkeypatch.delenv("REPRO_MAX_SIM_SECONDS")
        assert not ResourceBudget.from_env().active

    def test_footprint_rejects_over_budget(self):
        budget = ResourceBudget(max_bytes=100)
        with pytest.raises(BudgetExceeded) as exc:
            budget.check_footprint(_graph())
        assert exc.value.dimension == "bytes"
        assert exc.value.estimated > exc.value.limit

    def test_device_memory_caps(self):
        # A budget far above the device limit still enforces the device.
        import dataclasses

        budget = ResourceBudget(max_bytes=10**18)
        tiny_gpu = dataclasses.replace(TITAN_V, mem_bytes=64.0)
        with pytest.raises(BudgetExceeded, match=tiny_gpu.name):
            budget.check_footprint(_graph(), device=tiny_gpu)

    def test_seconds_budget(self):
        budget = ResourceBudget(max_seconds=1e-12)
        with pytest.raises(BudgetExceeded) as exc:
            budget.check_seconds(1.0, label="slow run")
        assert exc.value.dimension == "seconds"


class TestLauncherWiring:
    def test_run_refuses_over_budget(self):
        launcher = Launcher(budget=ResourceBudget(max_bytes=16))
        with pytest.raises(BudgetExceeded):
            launcher.run(_spec(), _graph(), TITAN_V)

    def test_run_batch_records_budget_skip(self):
        launcher = Launcher(budget=ResourceBudget(max_bytes=16))
        failures = []
        out = launcher.run_batch(
            [_spec()], _graph(), RTX_3090,
            on_error=lambda spec, exc: failures.append(exc),
        )
        assert out == [None]
        assert len(failures) == 1
        assert isinstance(failures[0], BudgetExceeded)

    def test_sim_seconds_budget_skips_after_timing(self):
        launcher = Launcher(budget=ResourceBudget(max_seconds=1e-30))
        failures = []
        out = launcher.run_batch(
            [_spec(model=Model.OPENMP)], _graph(), THREADRIPPER_2950X,
            on_error=lambda spec, exc: failures.append(exc),
        )
        assert out == [None]
        assert all(isinstance(e, BudgetExceeded) for e in failures)

    def test_inactive_budget_runs_normally(self):
        launcher = Launcher()
        result = launcher.run(_spec(), _graph(), TITAN_V)
        assert result.seconds > 0


class TestTaxonomy:
    def test_budget_exceeded_classifies(self):
        exc = BudgetExceeded("x", estimated=2.0, limit=1.0)
        assert classify_error(exc) is ErrorClass.BUDGET
        failed = FailedRun.from_exception(exc, algorithm="bfs", graph="g")
        assert failed.error_class is ErrorClass.BUDGET

    def test_degenerate_classifies(self):
        from repro.kernels import DegenerateGraphError

        assert (
            classify_error(DegenerateGraphError("empty graph"))
            is ErrorClass.DEGENERATE
        )

    def test_divergence_classifies(self):
        from repro.kernels import ConvergenceError, DivergenceError

        assert classify_error(DivergenceError("x")) is ErrorClass.DIVERGENCE
        # Plain round-budget overruns stay kernel errors.
        assert classify_error(ConvergenceError("x")) is ErrorClass.KERNEL


class TestSweepConfigWiring:
    def test_budget_flows_into_sweep(self):
        from repro.bench.harness import run_sweep

        g = from_edge_arrays(np.array([0, 1]), np.array([1, 2]), 3)
        config = SweepConfig(
            algorithms=(Algorithm.BFS,),
            models=(Model.CUDA,),
            gpu_names=("Titan V",),
            max_footprint_bytes=8,
        )
        results = run_sweep(config, graphs={"tiny": g})
        assert not results.runs
        assert results.failures
        assert all(
            f.error_class is ErrorClass.BUDGET for f in results.failures
        )
