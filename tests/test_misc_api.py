"""Direct tests for small public helpers exercised mostly indirectly."""

import numpy as np

from repro.bench import SweepConfig
from repro.codegen import guard_name
from repro.graph import from_edge_list
from repro.kernels import flat_neighbors, wave_slices
from repro.machine import IterationProfile
from repro.runtime import Launcher
from repro.styles import Algorithm, Driver, Model, enumerate_specs, uses_worklist


class TestWaveSlices:
    def test_covers_range(self):
        slices = list(wave_slices(10, wave=4))
        assert [(s.start, s.stop) for s in slices] == [
            (0, 4), (4, 8), (8, 10),
        ]

    def test_empty(self):
        assert list(wave_slices(0)) == []


class TestFlatNeighbors:
    def test_gathers_adjacency(self):
        g = from_edge_list([(0, 1), (0, 2), (1, 2)])
        edge_pos, owner = flat_neighbors(g, np.array([0, 2]))
        assert np.array_equal(owner, [0, 0, 1, 1])
        assert np.array_equal(g.col_idx[edge_pos], [1, 2, 0, 1])

    def test_empty_items(self):
        g = from_edge_list([(0, 1)])
        edge_pos, owner = flat_neighbors(g, np.empty(0, dtype=np.int64))
        assert edge_pos.size == 0 and owner.size == 0

    def test_isolated_items(self):
        g = from_edge_list([(0, 1)], n_vertices=4)
        edge_pos, owner = flat_neighbors(g, np.array([2, 3]))
        assert edge_pos.size == 0


class TestSmallHelpers:
    def test_uses_worklist(self):
        specs = enumerate_specs(Algorithm.BFS, Model.CUDA)
        data = next(s for s in specs if s.driver is Driver.DATA)
        topo = next(s for s in specs if s.driver is Driver.TOPOLOGY)
        assert uses_worklist(data)
        assert not uses_worklist(topo)

    def test_guard_name_identifier(self):
        spec = enumerate_specs(Algorithm.TC, Model.CUDA)[0]
        name = guard_name(spec)
        assert name.isidentifier()
        assert name == name.upper()

    def test_profile_total_of(self):
        p = IterationProfile(n_items=4, inner=np.array([1, 2, 3, 4]))
        assert p.total_of(2.0, 0.5) == 2.0 * 4 + 0.5 * 10

    def test_launcher_source_for(self):
        g = from_edge_list([(0, 1), (1, 2), (1, 3)])
        assert Launcher().source_for(g) == 1  # highest degree
        assert Launcher(source=2).source_for(g) == 2

    def test_sweep_devices_for(self):
        config = SweepConfig()
        gpu_names = {d.name for d in config.devices_for(Model.CUDA)}
        cpu_names = {d.name for d in config.devices_for(Model.OPENMP)}
        assert gpu_names == {"Titan V", "RTX 3090"}
        assert cpu_names == {"Threadripper 2950X", "Xeon Gold 6226R x2"}
