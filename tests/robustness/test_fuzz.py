"""Differential fuzzing harness: determinism, oracle power, replay."""

import json

import numpy as np
import pytest

from repro.cli.main import main
from repro.robustness.fuzz import (
    SHAPES,
    FuzzReport,
    PlantedBugLauncher,
    build_case,
    load_manifest,
    mutate_values,
    replay_entry,
    run_fuzz,
    run_self_test,
    write_manifest,
)
from repro.runtime.verify import VerificationError
from repro.styles.axes import Algorithm, Model
from repro.styles.combos import enumerate_specs

pytestmark = pytest.mark.fuzz


class TestDeterminism:
    def test_same_pair_same_case(self):
        a_case, a_graph, a_spec, a_device = build_case(7, 3)
        b_case, b_graph, b_spec, b_device = build_case(7, 3)
        assert a_case == b_case
        assert np.array_equal(a_graph.row_ptr, b_graph.row_ptr)
        assert np.array_equal(a_graph.col_idx, b_graph.col_idx)
        assert np.array_equal(a_graph.weights, b_graph.weights)
        assert a_spec.label() == b_spec.label()
        assert a_device.name == b_device.name

    def test_cases_cover_the_shape_space(self):
        shapes = {build_case(0, i)[0].shape for i in range(80)}
        assert len(shapes) >= len(SHAPES) - 2

    def test_spec_index_recovers_the_spec(self):
        case, _graph, spec, _device = build_case(11, 5)
        recovered = enumerate_specs(case.algorithm, case.model)[case.spec_index]
        assert recovered.label() == spec.label() == case.spec_label

    def test_graphs_are_weighted_and_canonical(self):
        for i in range(40):
            _case, graph, _spec, _device = build_case(1, i)
            assert graph.weights is not None
            if graph.n_edges:
                assert int(graph.weights.min()) >= 1


class TestCleanKernelsHaveNoEscapes:
    def test_seed_zero_is_clean(self):
        report = run_fuzz(cases=60, seed=0)
        assert report.escapes == []
        assert report.ok + len(report.skips) == report.cases
        # Degenerate shapes must surface as typed skips, not crashes.
        assert all(
            e["failure"]["error_class"] in ("degenerate", "budget")
            for e in report.skips
        )


class TestPlantedBugs:
    def test_self_test_detects_every_algorithm(self):
        report = run_self_test()
        assert report.planted_ok
        assert report.planted_total == len(Algorithm) * 2
        assert all(
            e["failure"]["error_class"] == "verification"
            for e in report.entries
        )

    def test_planted_launcher_raises_verification(self):
        from repro.machine.devices import TITAN_V
        from repro.robustness.fuzz import _self_test_graph

        graph = _self_test_graph()
        launcher = PlantedBugLauncher(algorithm=Algorithm.BFS)
        spec = enumerate_specs(Algorithm.BFS, Model.CUDA)[0]
        with pytest.raises(VerificationError):
            launcher.run(spec, graph, TITAN_V)

    def test_cc_mutation_changes_the_partition(self):
        # canonical_components() normalizes injective relabelings, so the
        # CC mutation must move a vertex between components to be visible.
        from repro.kernels.serial import canonical_components

        single = np.zeros(4, dtype=np.int64)
        mutated = mutate_values(Algorithm.CC, single, None)
        assert not np.array_equal(
            canonical_components(mutated), canonical_components(single)
        )
        multi = np.array([0, 0, 1, 1], dtype=np.int64)
        mutated = mutate_values(Algorithm.CC, multi, None)
        assert not np.array_equal(
            canonical_components(mutated), canonical_components(multi)
        )


class TestManifestAndReplay:
    def test_round_trip_and_replay(self, tmp_path):
        self_test = run_self_test()
        fuzz = run_fuzz(cases=40, seed=0)
        path = write_manifest(tmp_path / "m.json", self_test, fuzz)
        manifest = load_manifest(path)
        assert manifest["planted_detected"] == manifest["planted_total"]
        assert manifest["escapes"] == 0
        entries = manifest["entries"]
        assert entries, "expected at least one skip or planted entry"
        for entry in entries:
            assert replay_entry(entry)["reproduced"], entry

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="manifest"):
            load_manifest(path)

    def test_skip_entries_replay(self):
        report = run_fuzz(cases=60, seed=0)
        skips = report.skips
        assert skips, "seed 0 should produce at least one degenerate skip"
        outcome = replay_entry(skips[0])
        assert outcome["reproduced"]
        assert outcome["status"] == "skip"


class TestCLI:
    def test_fuzz_exits_zero_on_clean_run(self, capsys):
        assert main(["fuzz", "--cases", "15", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "15 cases" in out

    def test_self_test_only(self, capsys):
        assert main(["fuzz", "--self-test"]) == 0
        out = capsys.readouterr().out
        assert "12/12" in out
        assert "cases" not in out  # no random fuzzing ran

    def test_smoke_writes_replayable_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "smoke.json"
        assert (
            main(
                [
                    "fuzz",
                    "--smoke",
                    "--cases",
                    "20",
                    "--manifest",
                    str(manifest),
                ]
            )
            == 0
        )
        assert manifest.exists()
        capsys.readouterr()
        assert main(["fuzz", "--replay", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "DID NOT REPRODUCE" not in out
