#!/usr/bin/env python
"""Style advisor: which styles win for *your* graph?

The paper's headline lesson is that the best parallelization/implementation
style depends on the input's degree distribution and diameter.  This
example runs every CUDA variant of a chosen algorithm on two structurally
opposite inputs (a road map and a social network) and prints, per input,
the winning style combination and how much the worst choice would cost —
the per-input version of the paper's Section 5.16 guidelines.

Run:  python examples/style_advisor.py [bfs|sssp|cc|mis|pr|tc]
"""

import sys

from repro.graph import analyze, load_dataset
from repro.machine import RTX_3090
from repro.runtime import Launcher
from repro.styles import Algorithm, Model, enumerate_specs


def advise(algorithm: Algorithm, graph_name: str, launcher: Launcher) -> None:
    graph = load_dataset(graph_name, scale="tiny")
    props = analyze(graph)
    print(f"--- {graph_name}: d_avg={props.avg_degree:.1f} "
          f"d_max={props.max_degree} diameter={props.diameter} ---")
    runs = [
        launcher.run(spec, graph, RTX_3090)
        for spec in enumerate_specs(algorithm, Model.CUDA)
    ]
    runs.sort(key=lambda r: -r.throughput_ges)
    best, worst = runs[0], runs[-1]
    print(f"best : {best.throughput_ges:9.4f} GES  {best.spec.label()}")
    print(f"worst: {worst.throughput_ges:9.4f} GES  {worst.spec.label()}")
    print(f"wrong-style penalty: "
          f"{best.throughput_ges / worst.throughput_ges:,.0f}x\n")
    return best


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "bfs"
    algorithm = Algorithm(name)
    launcher = Launcher()
    print(f"algorithm: {algorithm.value}\n")
    winners = {}
    for graph_name in ("USA-road-d.NY", "soc-LiveJournal1"):
        winners[graph_name] = advise(algorithm, graph_name, launcher)
    a, b = winners.values()
    same = a.spec.describe() == b.spec.describe()
    print(
        "the same style wins on both inputs"
        if same
        else "different inputs pick different winning styles — "
        "check your graph's shape before choosing (Section 5.16)"
    )


if __name__ == "__main__":
    main()
