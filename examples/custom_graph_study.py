#!/usr/bin/env python
"""Run the style study on your own graph file.

Loads a graph from disk (DIMACS `.gr`, SNAP edge list `.el`/`.txt`/`.wel`,
or Matrix Market `.mtx`; `.gz` accepted), runs every style variant of the
chosen algorithms on it across all four simulated devices, and prints the
winning style per (algorithm, device) — i.e. the paper's methodology
applied to one input.

Run:  python examples/custom_graph_study.py path/to/graph.mtx [algorithms...]
      python examples/custom_graph_study.py road.gr bfs sssp

With no arguments, a small synthetic RMAT graph is written to a temp file
first, so the example is self-contained.
"""

import sys
import tempfile
from pathlib import Path

from repro.bench import SweepConfig, run_sweep
from repro.graph import analyze, load_graph, rmat, write_matrix_market
from repro.styles import Algorithm, Model


def demo_graph() -> Path:
    path = Path(tempfile.gettempdir()) / "repro_demo_rmat.mtx"
    write_matrix_market(rmat(9, 8, seed=5, name="demo-rmat"), path)
    print(f"(no input given: wrote a demo RMAT graph to {path})\n")
    return path


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
        algorithms = tuple(Algorithm(a) for a in sys.argv[2:]) or tuple(Algorithm)
    else:
        path = demo_graph()
        algorithms = (Algorithm.BFS, Algorithm.SSSP, Algorithm.TC)

    graph = load_graph(path)
    props = analyze(graph)
    print(
        f"input: {graph.name} | {props.n_vertices:,} vertices, "
        f"{props.n_edges:,} directed edges, d_avg={props.avg_degree:.1f}, "
        f"d_max={props.max_degree}, diameter~{props.diameter}\n"
    )

    results = run_sweep(
        SweepConfig(algorithms=algorithms), graphs={graph.name: graph}
    )
    print(f"{len(results)} verified runs of {results.n_programs} variants\n")

    print(f"{'algorithm':<10} {'device':<20} {'best GES':>10}  winning style")
    for alg in algorithms:
        for device in ("RTX 3090", "Titan V", "Threadripper 2950X",
                       "Xeon Gold 6226R x2"):
            runs = list(results.select(algorithms=[alg], devices=[device]))
            if not runs:
                continue
            best = max(runs, key=lambda r: r.throughput_ges)
            print(
                f"{alg.value:<10} {device:<20} {best.throughput_ges:>10.4f}  "
                f"{best.spec.label()}"
            )


if __name__ == "__main__":
    main()
