#!/usr/bin/env python
"""Quickstart: run one graph program in several styles and compare.

This is the smallest end-to-end use of the library:

1. build one of the study's input graphs,
2. enumerate the style variants of an algorithm,
3. run a few of them on a simulated GPU,
4. print the verified throughputs.

Run:  python examples/quickstart.py
"""

from repro.graph import load_dataset
from repro.machine import RTX_3090
from repro.runtime import Launcher
from repro.styles import Algorithm, Model, enumerate_specs


def main() -> None:
    # The USA-road-d.NY stand-in: a low-degree, high-diameter road map.
    graph = load_dataset("USA-road-d.NY", scale="tiny")
    print(f"input: {graph.name} ({graph.n_vertices:,} vertices, "
          f"{graph.n_edges:,} directed edges)\n")

    # All 304 CUDA variants of single-source shortest path...
    specs = enumerate_specs(Algorithm.SSSP, Model.CUDA)
    print(f"the suite contains {len(specs)} CUDA SSSP variants; running 8:\n")

    launcher = Launcher()  # verifies every result against serial Dijkstra
    results = []
    for spec in specs[:: max(1, len(specs) // 8)][:8]:
        result = launcher.run(spec, graph, RTX_3090)
        results.append(result)

    results.sort(key=lambda r: -r.throughput_ges)
    print(f"{'throughput (GES)':>18}  {'iters':>5}  style")
    for r in results:
        print(f"{r.throughput_ges:>18.4f}  {r.iterations:>5}  {r.spec.label()}")

    best, worst = results[0], results[-1]
    print(
        f"\nchoosing the wrong style costs "
        f"{best.throughput_ges / worst.throughput_ges:.1f}x on this input "
        f"(every run verified against the serial reference)"
    )


if __name__ == "__main__":
    main()
