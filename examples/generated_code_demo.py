#!/usr/bin/env python
"""Close the loop: generated real code vs the simulator's prediction.

This example takes two OpenMP style variants of SSSP that the study says
should differ sharply — read-write (plain stores) vs read-modify-write
(min updates, which OpenMP must realize as critical sections) — then:

1. asks the *simulator* which one is faster on the modeled Threadripper;
2. *generates* both as real OpenMP source files (repro.codegen);
3. compiles them with g++ -O3 -fopenmp and runs them on THIS machine
   (each binary self-verifies against its serial reference);
4. compares the real wall-clock ordering with the simulated one.

Needs g++; skips politely if it's missing.

Run:  python examples/generated_code_demo.py
"""

import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.codegen import generate_source
from repro.graph import load_dataset, write_edge_list
from repro.machine import THREADRIPPER_2950X
from repro.runtime import Launcher
from repro.styles import (
    Algorithm,
    Driver,
    Flow,
    Model,
    Update,
    enumerate_specs,
)


def pick(update):
    return next(
        s for s in enumerate_specs(Algorithm.SSSP, Model.OPENMP)
        if s.update is update and s.driver is Driver.TOPOLOGY
        and s.flow is Flow.PUSH and s.omp_schedule.value == "default"
        and s.determinism.value == "nondet" and s.iteration.value == "vertex"
    )


def main() -> int:
    if shutil.which("g++") is None:
        print("g++ not found — skipping the compile half of this demo")
        return 0

    rw, rmw = pick(Update.READ_WRITE), pick(Update.READ_MODIFY_WRITE)
    graph = load_dataset("soc-LiveJournal1", scale="tiny")
    print(f"input: {graph.name} ({graph.n_vertices:,} vertices)\n")

    # 1. The simulator's verdict.
    launcher = Launcher()
    sim = {
        spec: launcher.run(spec, graph, THREADRIPPER_2950X)
        for spec in (rw, rmw)
    }
    ratio_sim = sim[rw].throughput_ges / sim[rmw].throughput_ges
    print("simulated (Threadripper 2950X model):")
    for spec in (rw, rmw):
        print(f"  {spec.update.value:<4} {sim[spec].seconds * 1e3:9.3f} ms"
              f"   {spec.label()}")
    print(f"  -> read-write predicted {ratio_sim:.1f}x faster "
          f"(OpenMP min/max = critical sections)\n")

    # 2-3. Generate, compile, run for real.
    workdir = Path(tempfile.mkdtemp(prefix="repro_demo_"))
    graph_file = workdir / "graph.el"
    write_edge_list(graph, graph_file)
    real = {}
    for spec in (rw, rmw):
        src = workdir / f"{spec.label()}.cpp"
        binary = workdir / f"{spec.label()}.bin"
        src.write_text(generate_source(spec))
        subprocess.run(
            ["g++", "-O3", "-fopenmp", str(src), "-o", str(binary)],
            check=True,
        )
        t0 = time.perf_counter()
        out = subprocess.run(
            [str(binary), str(graph_file), "0"],
            capture_output=True, text=True, check=True,
        )
        real[spec] = time.perf_counter() - t0
        assert "verified OK" in out.stdout, out.stdout

    ratio_real = real[rmw] / real[rw]
    print("real g++ -O3 -fopenmp binaries on this machine:")
    for spec in (rw, rmw):
        print(f"  {spec.update.value:<4} {real[spec] * 1e3:9.1f} ms wall"
              f"   (verified OK)")
    print(f"  -> read-write measured {ratio_real:.1f}x faster")

    agree = (ratio_sim > 1) == (ratio_real > 1)
    print(
        "\nsimulator and real hardware "
        + ("AGREE on the ordering" if agree else "DISAGREE — file a bug!")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
