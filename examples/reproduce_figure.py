#!/usr/bin/env python
"""Regenerate one of the paper's figures from a fresh sweep.

Runs the full style sweep on all five inputs (at a reduced scale by
default, so it finishes in well under a minute) and prints the selected
figure's letter-value summary — the same rows the benchmark suite asserts
against at full scale.

Run:  python examples/reproduce_figure.py [figure] [scale]
      python examples/reproduce_figure.py fig6-omp tiny
      python examples/reproduce_figure.py fig1-titanv default   # slower

Figures: fig1-3090, fig1-titanv, fig2-cuda, fig2-cpu, fig5-{cuda,omp,cpp},
fig6-{cuda,omp,cpp}, fig7-{cuda,omp,cpp}, fig8, fig12, fig13.
"""

import sys

from repro.bench import SweepConfig, run_sweep
from repro.bench.report import FIGURE_AXES, render_ratio_figure


def main() -> None:
    figure = sys.argv[1] if len(sys.argv) > 1 else "fig6-omp"
    scale = sys.argv[2] if len(sys.argv) > 2 else "tiny"
    if figure not in FIGURE_AXES:
        print(f"unknown figure {figure!r}; available: {sorted(FIGURE_AXES)}")
        raise SystemExit(2)
    print(f"sweeping every program variant at scale={scale!r} "
          f"(every run is verified)...")
    results = run_sweep(SweepConfig(scale=scale))
    print(f"{len(results)} runs of {results.n_programs} program variants\n")
    print(render_ratio_figure(results, figure))


if __name__ == "__main__":
    main()
