"""Performance smoke: trace store, vectorized timing, predictor pruning.

Three gated measurements, each written as JSON at the repository root so
the performance trajectory is tracked across PRs:

**Trace store** (``BENCH_tracestore.json``).  One small-but-real sweep
three times against a fresh store:

1. **cold** — empty store; every semantic kernel executes and is saved;
2. **warm** — identical sweep; every semantic trace must come from the
   store (zero kernel executions), the results must be *bit-identical*
   to the cold run, and the wall-clock speedup must clear a floor;
3. **new device** — the same sweep with a second GPU added; mapping
   variants of the new device re-time from the stored traces, so this
   too must execute zero kernels.

**Vectorized matrix timing** (``BENCH_matrix.json``).  The warm
sweep-block workload (PR x soc-LiveJournal1 at tiny scale, all models
and devices) timed under the per-spec scalar loop and under the
vectorized ``Launcher.run_matrix`` path; the vectorized path must be
bit-identical and beat the scalar loop by at least
``--min-matrix-speedup``.  A work-stealing worker-scaling curve
(``--scaling-workers``) is recorded alongside, unmated — CI runners have
too few cores for a meaningful gate.

**Predict-then-verify pruning** (``BENCH_advisor.json``).  The style
predictor is trained on a tiny-scale SSSP sweep, then the gate workload
(default-scale SSSP x USA-road-d.NY, CUDA) runs cold both exhaustively
and pruned; the pruned sweep must execute at least
``--min-kernel-reduction`` times fewer kernels while reporting the
identical, *measured* per-cell winners (zero regret).

Exit code 0 means every guarantee held.

Usage::

    python tools/perf_smoke.py [--json PATH] [--matrix-json PATH]
        [--advisor-json PATH] [--min-speedup X] [--min-matrix-speedup X]
        [--min-kernel-reduction X] [--keep]
"""

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_JSON = REPO_ROOT / "BENCH_tracestore.json"
DEFAULT_MATRIX_JSON = REPO_ROOT / "BENCH_matrix.json"
DEFAULT_ADVISOR_JSON = REPO_ROOT / "BENCH_advisor.json"

#: Warm must beat cold by at least this factor (the store's entire point
#: is skipping kernel execution, the sweep's dominant cost).
DEFAULT_MIN_SPEEDUP = 3.0

#: The vectorized matrix path must beat the per-spec scalar loop by at
#: least this factor on the warm sweep-block workload.
DEFAULT_MIN_MATRIX_SPEEDUP = 3.0

#: Interleaved min-of-rounds for the matrix timing comparison.
MATRIX_ROUNDS = 7

#: A cold predict-then-verify sweep must execute at least this many
#: times fewer kernels than the exhaustive cold sweep — with the same
#: per-cell winners (Table-6 answers must not move).
DEFAULT_MIN_KERNEL_REDUCTION = 5.0

#: Boosting rounds for the smoke's predictor (300 generalizes from the
#: tiny-scale training sweep to the default-scale gate workload; more
#: overfits the tiny graphs).
ADVISOR_ROUNDS = 300

#: The previous PR's recorded batched timing of this exact workload
#: (BENCH_sweep.json before the vectorized matrix path) — reported for
#: trajectory context, not gated (it is machine-specific).
RECORDED_BATCHED_SECONDS = 0.026511


def matrix_smoke(args) -> tuple:
    """Time per-spec vs vectorized-matrix on the warm block workload."""
    from repro.bench import SweepConfig, run_sweep_parallel
    from repro.graph import load_dataset
    from repro.runtime import Launcher
    from repro.styles import Algorithm, enumerate_specs

    config = SweepConfig(scale="tiny", algorithms=(Algorithm.PR,))
    graph = load_dataset("soc-LiveJournal1", "tiny")
    # Store off: the workload is warm in-memory re-timing, and the smoke's
    # temporary store directory is already gone by the time we run.
    launcher = Launcher(trace_store=False)
    work = [
        (enumerate_specs(Algorithm.PR, model), config.devices_for(model))
        for model in config.models
    ]

    def per_spec():
        return [
            launcher.run(spec, graph, device)
            for specs, devices in work
            for spec in specs
            for device in devices
        ]

    def vectorized():
        runs = []
        for specs, devices in work:
            per_device = launcher.run_matrix(specs, graph, devices)
            for i in range(len(specs)):
                runs.extend(
                    batch[i] for batch in per_device if batch[i] is not None
                )
        return runs

    print("perf smoke: vectorized matrix vs per-spec timing ...", flush=True)
    scalar_runs = per_spec()  # also warms every cache both paths share
    matrix_runs = vectorized()
    bit_identical = matrix_runs == scalar_runs

    scalar_s = matrix_s = float("inf")
    for _ in range(MATRIX_ROUNDS):  # interleaved: drift hits both alike
        start = time.perf_counter()
        per_spec()
        scalar_s = min(scalar_s, time.perf_counter() - start)
        start = time.perf_counter()
        vectorized()
        matrix_s = min(matrix_s, time.perf_counter() - start)
    speedup = scalar_s / matrix_s
    print(f"  per-spec {scalar_s:.4f}s, matrix {matrix_s:.4f}s, "
          f"speedup {speedup:.2f}x", flush=True)

    print("perf smoke: work-stealing worker-scaling curve ...", flush=True)
    scaling_config = SweepConfig(
        scale="tiny",
        algorithms=(Algorithm.BFS, Algorithm.PR),
        graphs=("USA-road-d.NY", "soc-LiveJournal1"),
        trace_cache=False,
    )
    curve = []
    cpu_count = os.cpu_count() or 1
    skipped_oversubscribed = []
    for workers in args.scaling_workers:
        if cpu_count == 1 and workers > 1:
            # A one-core runner cannot scale: multi-worker points there
            # measure process oversubscription, not the scheduler.  Record
            # that they were skipped instead of publishing misleading
            # numbers.
            skipped_oversubscribed.append(workers)
            continue
        start = time.perf_counter()
        results = run_sweep_parallel(scaling_config, workers=workers)
        seconds = time.perf_counter() - start
        curve.append({"workers": workers, "seconds": round(seconds, 3)})
        print(f"  workers={workers}: {seconds:.2f}s "
              f"({len(results.runs)} runs)", flush=True)
    if skipped_oversubscribed:
        print(f"  cpu_count={cpu_count}: skipped oversubscribed worker "
              f"counts {skipped_oversubscribed}", flush=True)

    failures = []
    if not bit_identical:
        failures.append("matrix runs are not bit-identical to per-spec runs")
    if speedup < args.min_matrix_speedup:
        failures.append(
            f"vectorized matrix speedup {speedup:.2f}x is below the "
            f"{args.min_matrix_speedup:g}x floor"
        )

    payload = {
        "benchmark": "warm sweep-block PR x soc-LiveJournal1 (tiny), "
                     "all models/devices: per-spec vs vectorized matrix",
        "runs_per_block": len(matrix_runs),
        "rounds": MATRIX_ROUNDS,
        "per_spec_seconds": round(scalar_s, 6),
        "matrix_seconds": round(matrix_s, 6),
        "matrix_speedup": round(speedup, 3),
        "recorded_batched_seconds": RECORDED_BATCHED_SECONDS,
        "speedup_vs_recorded_batched": round(
            RECORDED_BATCHED_SECONDS / matrix_s, 3
        ),
        "bit_identical": bit_identical,
        "worker_scaling": {
            "config": "BFS+PR x 2 graphs (tiny), trace cache off, "
                      "work stealing on",
            "cpu_count": cpu_count,
            "skipped_oversubscribed": skipped_oversubscribed,
            "curve": curve,
        },
    }
    args.matrix_json.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.matrix_json}", flush=True)
    return failures, speedup


def advisor_smoke(args) -> list:
    """Gate the predict-then-verify sweep: far fewer kernels, same winners.

    Trains the style predictor on a tiny-scale SSSP sweep, then runs the
    gate workload (default-scale SSSP x USA-road-d.NY, CUDA on the
    RTX 3090) twice against fresh trace stores: exhaustively and pruned
    (``top_k=8, audit_frac=0.02, max_groups=6``).  The pruned sweep must
    execute at least ``--min-kernel-reduction`` times fewer kernels, and
    its reported winner must be the exhaustive winner, *measured* (regret
    zero) — pruning may never change the paper's answers.
    """
    import shutil
    from dataclasses import replace

    from repro.bench import (
        PredictSettings,
        StylePredictor,
        SweepConfig,
        mine_results,
        run_sweep,
    )
    from repro.styles import Algorithm, Model

    print("perf smoke: predict-then-verify advisor gate ...", flush=True)
    tmp = tempfile.mkdtemp(prefix="repro-advisor-smoke-")
    saved_env = os.environ.get("REPRO_TRACE_CACHE")
    try:
        os.environ["REPRO_TRACE_CACHE"] = os.path.join(tmp, "train-traces")
        start = time.perf_counter()
        train_results = run_sweep(
            SweepConfig(scale="tiny", algorithms=(Algorithm.SSSP,))
        )
        ts = mine_results(train_results)
        predictor = StylePredictor.train(ts, seed=0, rounds=ADVISOR_ROUNDS)
        artifact = predictor.save(os.path.join(tmp, "model.json"))
        train_seconds = time.perf_counter() - start
        print(f"  trained on {len(ts)} tiny-scale rows in "
              f"{train_seconds:.2f}s", flush=True)

        gate = SweepConfig(
            scale="default",
            algorithms=(Algorithm.SSSP,),
            models=(Model.CUDA,),
            graphs=("USA-road-d.NY",),
            gpu_names=("RTX 3090",),
        )
        os.environ["REPRO_TRACE_CACHE"] = os.path.join(tmp, "cold-traces")
        start = time.perf_counter()
        exhaustive = run_sweep(gate)
        exhaustive_seconds = time.perf_counter() - start
        print(f"  exhaustive cold: {exhaustive.kernel_executions} kernels, "
              f"{len(exhaustive.runs)} runs, {exhaustive_seconds:.2f}s",
              flush=True)

        os.environ["REPRO_TRACE_CACHE"] = os.path.join(tmp, "pruned-traces")
        pruned_cfg = replace(
            gate,
            predict=PredictSettings(
                top_k=8, audit_frac=0.02, max_groups=6,
                model_path=str(artifact),
            ),
        )
        start = time.perf_counter()
        pruned = run_sweep(pruned_cfg)
        pruned_seconds = time.perf_counter() - start
        n_predicted = sum(run.predicted for run in pruned.runs)
        print(f"  pruned cold:     {pruned.kernel_executions} kernels, "
              f"{len(pruned.runs)} runs ({n_predicted} back-filled), "
              f"{pruned_seconds:.2f}s", flush=True)
    finally:
        if saved_env is None:
            os.environ.pop("REPRO_TRACE_CACHE", None)
        else:
            os.environ["REPRO_TRACE_CACHE"] = saved_env
        shutil.rmtree(tmp, ignore_errors=True)

    def winners(results):
        best = {}
        for run in results.runs:
            key = (run.spec.model.value, run.device)
            if key not in best or run.seconds < best[key].seconds:
                best[key] = run
        return best

    exhaustive_best = winners(exhaustive)
    pruned_best = winners(pruned)
    reduction = (
        exhaustive.kernel_executions / pruned.kernel_executions
        if pruned.kernel_executions
        else float("inf")
    )
    regressions = []
    regret = 0.0
    for key, ex_run in sorted(exhaustive_best.items()):
        pr_run = pruned_best.get(key)
        cell = f"{key[0]} on {key[1]}"
        if pr_run is None:
            regressions.append(f"{cell}: missing from the pruned sweep")
            continue
        if pr_run.predicted:
            regressions.append(
                f"{cell}: winner {pr_run.spec.label()} is a back-filled "
                "prediction, not a measurement"
            )
            continue
        if pr_run.spec.label() != ex_run.spec.label():
            regressions.append(
                f"{cell}: winner changed {ex_run.spec.label()} -> "
                f"{pr_run.spec.label()}"
            )
        regret = max(regret, pr_run.seconds / ex_run.seconds - 1.0)

    summary = pruned.prediction
    audit_err = summary.audit_max_rel_error() if summary else None
    failures = []
    if reduction < args.min_kernel_reduction:
        failures.append(
            f"pruned sweep ran {pruned.kernel_executions} kernels vs "
            f"{exhaustive.kernel_executions} exhaustive ({reduction:.2f}x, "
            f"floor {args.min_kernel_reduction:g}x)"
        )
    failures.extend(f"winner regression: {r}" for r in regressions)
    if regret > 0:
        failures.append(f"winner regret {regret:.4%} (must be 0)")
    if len(pruned.runs) != len(exhaustive.runs):
        failures.append(
            f"pruned sweep reported {len(pruned.runs)} runs vs "
            f"{len(exhaustive.runs)} exhaustive (back-fill incomplete)"
        )

    payload = {
        "benchmark": "predict-then-verify vs exhaustive cold sweep: "
                     "SSSP x USA-road-d.NY (default scale), CUDA on "
                     "RTX 3090; predictor trained on a tiny-scale "
                     "SSSP sweep",
        "training_rows": len(ts),
        "training_rounds": ADVISOR_ROUNDS,
        "training_seconds": round(train_seconds, 3),
        "exhaustive_kernel_executions": exhaustive.kernel_executions,
        "exhaustive_seconds": round(exhaustive_seconds, 3),
        "pruned_kernel_executions": pruned.kernel_executions,
        "pruned_seconds": round(pruned_seconds, 3),
        "kernel_reduction": round(reduction, 3),
        "runs": len(exhaustive.runs),
        "predicted_runs": n_predicted,
        "winner_regressions": regressions,
        "winner_regret": regret,
        "audit_max_rel_error": audit_err,
        "at_risk_cells": len(summary.at_risk_cells) if summary else None,
    }
    args.advisor_json.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  kernel reduction {reduction:.2f}x, winner regret "
          f"{regret:.4%}, {len(regressions)} regressions", flush=True)
    print(f"wrote {args.advisor_json}", flush=True)
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON,
                        help=f"output JSON path (default: {DEFAULT_JSON})")
    parser.add_argument("--matrix-json", type=Path,
                        default=DEFAULT_MATRIX_JSON,
                        help="matrix benchmark output JSON path "
                             f"(default: {DEFAULT_MATRIX_JSON})")
    parser.add_argument("--advisor-json", type=Path,
                        default=DEFAULT_ADVISOR_JSON,
                        help="advisor benchmark output JSON path "
                             f"(default: {DEFAULT_ADVISOR_JSON})")
    parser.add_argument("--min-kernel-reduction", type=float,
                        default=DEFAULT_MIN_KERNEL_REDUCTION,
                        help="required exhaustive/pruned kernel-execution "
                             "ratio of the predict-then-verify gate "
                             f"(default: {DEFAULT_MIN_KERNEL_REDUCTION})")
    parser.add_argument("--min-speedup", type=float,
                        default=DEFAULT_MIN_SPEEDUP,
                        help="required cold/warm wall-clock ratio "
                             f"(default: {DEFAULT_MIN_SPEEDUP})")
    parser.add_argument("--min-matrix-speedup", type=float,
                        default=DEFAULT_MIN_MATRIX_SPEEDUP,
                        help="required per-spec/vectorized-matrix ratio "
                             f"(default: {DEFAULT_MIN_MATRIX_SPEEDUP})")
    parser.add_argument("--scaling-workers", type=int, nargs="+",
                        default=[1, 2, 4, 8, 16], metavar="N",
                        help="worker counts of the recorded (ungated) "
                             "work-stealing scaling curve")
    parser.add_argument("--keep", action="store_true",
                        help="keep the temporary trace store for inspection")
    args = parser.parse_args(argv)

    # A fresh store in a tempdir: the smoke must measure this process's
    # cold/warm transition, not whatever ~/.cache already holds.
    tmp = tempfile.mkdtemp(prefix="repro-perf-smoke-")
    trace_dir = os.path.join(tmp, "traces")
    checkpoint_dir = os.path.join(tmp, "checkpoints")
    os.environ["REPRO_TRACE_CACHE"] = trace_dir

    from repro.bench import SweepConfig, TraceStore, run_sweep_parallel
    from repro.styles import Algorithm, Model

    config = SweepConfig(
        scale="default",
        algorithms=(Algorithm.SSSP,),
        models=(Model.CUDA,),
        graphs=("USA-road-d.NY",),
        gpu_names=("RTX 3090",),
    )

    def sweep(cfg):
        start = time.perf_counter()
        results = run_sweep_parallel(
            cfg, workers=1, checkpoint_dir=checkpoint_dir
        )
        return results, time.perf_counter() - start

    print("perf smoke: cold sweep (empty trace store) ...", flush=True)
    cold, cold_seconds = sweep(config)
    print(f"  {cold_seconds:.2f}s, {cold.kernel_executions} kernel "
          f"executions, {len(cold.runs)} runs", flush=True)

    print("perf smoke: warm sweep (identical config) ...", flush=True)
    warm, warm_seconds = sweep(config)
    speedup = cold_seconds / warm_seconds
    print(f"  {warm_seconds:.2f}s, {warm.kernel_executions} kernel "
          f"executions, speedup {speedup:.2f}x", flush=True)

    print("perf smoke: warm sweep with a new device added ...", flush=True)
    extended = SweepConfig(
        scale=config.scale,
        algorithms=config.algorithms,
        models=config.models,
        graphs=config.graphs,
        gpu_names=("RTX 3090", "Titan V"),
    )
    new_device, new_device_seconds = sweep(extended)
    print(f"  {new_device_seconds:.2f}s, {new_device.kernel_executions} "
          f"kernel executions, {len(new_device.runs)} runs", flush=True)

    store = TraceStore(trace_dir)
    stats = store.stats()

    failures = []
    if cold.kernel_executions == 0:
        failures.append("cold sweep executed no kernels (store not empty?)")
    if warm.kernel_executions != 0:
        failures.append(
            f"warm sweep executed {warm.kernel_executions} kernels "
            "(expected 0: every trace should come from the store)"
        )
    if warm.runs != cold.runs:
        failures.append("warm results are not bit-identical to cold")
    if new_device.kernel_executions != 0:
        failures.append(
            f"new-device sweep executed {new_device.kernel_executions} "
            "kernels (expected 0: re-timed from stored traces)"
        )
    devices = {run.device for run in new_device.runs}
    if devices != {"RTX 3090", "Titan V"}:
        failures.append(f"new-device sweep covered {sorted(devices)}")
    if speedup < args.min_speedup:
        failures.append(
            f"warm speedup {speedup:.2f}x is below the "
            f"{args.min_speedup:g}x floor"
        )
    if cold.failures or warm.failures or new_device.failures:
        failures.append("a sweep produced failure-manifest entries")

    payload = {
        "benchmark": "trace-store cold vs warm: SSSP x USA-road-d.NY "
                     "(default scale), CUDA, workers=1",
        "runs": len(cold.runs),
        "cold_seconds": round(cold_seconds, 3),
        "cold_kernel_executions": cold.kernel_executions,
        "warm_seconds": round(warm_seconds, 3),
        "warm_kernel_executions": warm.kernel_executions,
        "warm_speedup": round(speedup, 3),
        "new_device_seconds": round(new_device_seconds, 3),
        "new_device_kernel_executions": new_device.kernel_executions,
        "bit_identical": warm.runs == cold.runs,
        "store_entries": stats.entries,
        "store_bytes": stats.total_bytes,
    }
    args.json.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.json}", flush=True)

    if not args.keep:
        import shutil

        shutil.rmtree(tmp, ignore_errors=True)
    else:
        print(f"trace store kept at {trace_dir}")

    matrix_failures, matrix_speedup = matrix_smoke(args)
    failures.extend(matrix_failures)
    failures.extend(advisor_smoke(args))

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"perf smoke OK: warm sweep ran 0 kernels, {speedup:.2f}x faster, "
          f"vectorized matrix {matrix_speedup:.2f}x over per-spec, "
          "predict-then-verify gate held, bit-identical results")
    return 0


if __name__ == "__main__":
    sys.exit(main())
