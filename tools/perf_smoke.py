"""Performance smoke: trace-store warm sweeps and vectorized timing.

Two gated measurements, both written as JSON at the repository root so
the performance trajectory is tracked across PRs:

**Trace store** (``BENCH_tracestore.json``).  One small-but-real sweep
three times against a fresh store:

1. **cold** — empty store; every semantic kernel executes and is saved;
2. **warm** — identical sweep; every semantic trace must come from the
   store (zero kernel executions), the results must be *bit-identical*
   to the cold run, and the wall-clock speedup must clear a floor;
3. **new device** — the same sweep with a second GPU added; mapping
   variants of the new device re-time from the stored traces, so this
   too must execute zero kernels.

**Vectorized matrix timing** (``BENCH_matrix.json``).  The warm
sweep-block workload (PR x soc-LiveJournal1 at tiny scale, all models
and devices) timed under the per-spec scalar loop and under the
vectorized ``Launcher.run_matrix`` path; the vectorized path must be
bit-identical and beat the scalar loop by at least
``--min-matrix-speedup``.  A work-stealing worker-scaling curve
(``--scaling-workers``) is recorded alongside, unmated — CI runners have
too few cores for a meaningful gate.

Exit code 0 means every guarantee held.

Usage::

    python tools/perf_smoke.py [--json PATH] [--matrix-json PATH]
        [--min-speedup X] [--min-matrix-speedup X] [--keep]
"""

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_JSON = REPO_ROOT / "BENCH_tracestore.json"
DEFAULT_MATRIX_JSON = REPO_ROOT / "BENCH_matrix.json"

#: Warm must beat cold by at least this factor (the store's entire point
#: is skipping kernel execution, the sweep's dominant cost).
DEFAULT_MIN_SPEEDUP = 3.0

#: The vectorized matrix path must beat the per-spec scalar loop by at
#: least this factor on the warm sweep-block workload.
DEFAULT_MIN_MATRIX_SPEEDUP = 3.0

#: Interleaved min-of-rounds for the matrix timing comparison.
MATRIX_ROUNDS = 7

#: The previous PR's recorded batched timing of this exact workload
#: (BENCH_sweep.json before the vectorized matrix path) — reported for
#: trajectory context, not gated (it is machine-specific).
RECORDED_BATCHED_SECONDS = 0.026511


def matrix_smoke(args) -> tuple:
    """Time per-spec vs vectorized-matrix on the warm block workload."""
    from repro.bench import SweepConfig, run_sweep_parallel
    from repro.graph import load_dataset
    from repro.runtime import Launcher
    from repro.styles import Algorithm, enumerate_specs

    config = SweepConfig(scale="tiny", algorithms=(Algorithm.PR,))
    graph = load_dataset("soc-LiveJournal1", "tiny")
    # Store off: the workload is warm in-memory re-timing, and the smoke's
    # temporary store directory is already gone by the time we run.
    launcher = Launcher(trace_store=False)
    work = [
        (enumerate_specs(Algorithm.PR, model), config.devices_for(model))
        for model in config.models
    ]

    def per_spec():
        return [
            launcher.run(spec, graph, device)
            for specs, devices in work
            for spec in specs
            for device in devices
        ]

    def vectorized():
        runs = []
        for specs, devices in work:
            per_device = launcher.run_matrix(specs, graph, devices)
            for i in range(len(specs)):
                runs.extend(
                    batch[i] for batch in per_device if batch[i] is not None
                )
        return runs

    print("perf smoke: vectorized matrix vs per-spec timing ...", flush=True)
    scalar_runs = per_spec()  # also warms every cache both paths share
    matrix_runs = vectorized()
    bit_identical = matrix_runs == scalar_runs

    scalar_s = matrix_s = float("inf")
    for _ in range(MATRIX_ROUNDS):  # interleaved: drift hits both alike
        start = time.perf_counter()
        per_spec()
        scalar_s = min(scalar_s, time.perf_counter() - start)
        start = time.perf_counter()
        vectorized()
        matrix_s = min(matrix_s, time.perf_counter() - start)
    speedup = scalar_s / matrix_s
    print(f"  per-spec {scalar_s:.4f}s, matrix {matrix_s:.4f}s, "
          f"speedup {speedup:.2f}x", flush=True)

    print("perf smoke: work-stealing worker-scaling curve ...", flush=True)
    scaling_config = SweepConfig(
        scale="tiny",
        algorithms=(Algorithm.BFS, Algorithm.PR),
        graphs=("USA-road-d.NY", "soc-LiveJournal1"),
        trace_cache=False,
    )
    curve = []
    for workers in args.scaling_workers:
        start = time.perf_counter()
        results = run_sweep_parallel(scaling_config, workers=workers)
        seconds = time.perf_counter() - start
        curve.append({"workers": workers, "seconds": round(seconds, 3)})
        print(f"  workers={workers}: {seconds:.2f}s "
              f"({len(results.runs)} runs)", flush=True)

    failures = []
    if not bit_identical:
        failures.append("matrix runs are not bit-identical to per-spec runs")
    if speedup < args.min_matrix_speedup:
        failures.append(
            f"vectorized matrix speedup {speedup:.2f}x is below the "
            f"{args.min_matrix_speedup:g}x floor"
        )

    payload = {
        "benchmark": "warm sweep-block PR x soc-LiveJournal1 (tiny), "
                     "all models/devices: per-spec vs vectorized matrix",
        "runs_per_block": len(matrix_runs),
        "rounds": MATRIX_ROUNDS,
        "per_spec_seconds": round(scalar_s, 6),
        "matrix_seconds": round(matrix_s, 6),
        "matrix_speedup": round(speedup, 3),
        "recorded_batched_seconds": RECORDED_BATCHED_SECONDS,
        "speedup_vs_recorded_batched": round(
            RECORDED_BATCHED_SECONDS / matrix_s, 3
        ),
        "bit_identical": bit_identical,
        "worker_scaling": {
            "config": "BFS+PR x 2 graphs (tiny), trace cache off, "
                      "work stealing on",
            "cpu_count": os.cpu_count(),
            "curve": curve,
        },
    }
    args.matrix_json.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.matrix_json}", flush=True)
    return failures, speedup


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON,
                        help=f"output JSON path (default: {DEFAULT_JSON})")
    parser.add_argument("--matrix-json", type=Path,
                        default=DEFAULT_MATRIX_JSON,
                        help="matrix benchmark output JSON path "
                             f"(default: {DEFAULT_MATRIX_JSON})")
    parser.add_argument("--min-speedup", type=float,
                        default=DEFAULT_MIN_SPEEDUP,
                        help="required cold/warm wall-clock ratio "
                             f"(default: {DEFAULT_MIN_SPEEDUP})")
    parser.add_argument("--min-matrix-speedup", type=float,
                        default=DEFAULT_MIN_MATRIX_SPEEDUP,
                        help="required per-spec/vectorized-matrix ratio "
                             f"(default: {DEFAULT_MIN_MATRIX_SPEEDUP})")
    parser.add_argument("--scaling-workers", type=int, nargs="+",
                        default=[1, 2, 4, 8, 16], metavar="N",
                        help="worker counts of the recorded (ungated) "
                             "work-stealing scaling curve")
    parser.add_argument("--keep", action="store_true",
                        help="keep the temporary trace store for inspection")
    args = parser.parse_args(argv)

    # A fresh store in a tempdir: the smoke must measure this process's
    # cold/warm transition, not whatever ~/.cache already holds.
    tmp = tempfile.mkdtemp(prefix="repro-perf-smoke-")
    trace_dir = os.path.join(tmp, "traces")
    checkpoint_dir = os.path.join(tmp, "checkpoints")
    os.environ["REPRO_TRACE_CACHE"] = trace_dir

    from repro.bench import SweepConfig, TraceStore, run_sweep_parallel
    from repro.styles import Algorithm, Model

    config = SweepConfig(
        scale="default",
        algorithms=(Algorithm.SSSP,),
        models=(Model.CUDA,),
        graphs=("USA-road-d.NY",),
        gpu_names=("RTX 3090",),
    )

    def sweep(cfg):
        start = time.perf_counter()
        results = run_sweep_parallel(
            cfg, workers=1, checkpoint_dir=checkpoint_dir
        )
        return results, time.perf_counter() - start

    print("perf smoke: cold sweep (empty trace store) ...", flush=True)
    cold, cold_seconds = sweep(config)
    print(f"  {cold_seconds:.2f}s, {cold.kernel_executions} kernel "
          f"executions, {len(cold.runs)} runs", flush=True)

    print("perf smoke: warm sweep (identical config) ...", flush=True)
    warm, warm_seconds = sweep(config)
    speedup = cold_seconds / warm_seconds
    print(f"  {warm_seconds:.2f}s, {warm.kernel_executions} kernel "
          f"executions, speedup {speedup:.2f}x", flush=True)

    print("perf smoke: warm sweep with a new device added ...", flush=True)
    extended = SweepConfig(
        scale=config.scale,
        algorithms=config.algorithms,
        models=config.models,
        graphs=config.graphs,
        gpu_names=("RTX 3090", "Titan V"),
    )
    new_device, new_device_seconds = sweep(extended)
    print(f"  {new_device_seconds:.2f}s, {new_device.kernel_executions} "
          f"kernel executions, {len(new_device.runs)} runs", flush=True)

    store = TraceStore(trace_dir)
    stats = store.stats()

    failures = []
    if cold.kernel_executions == 0:
        failures.append("cold sweep executed no kernels (store not empty?)")
    if warm.kernel_executions != 0:
        failures.append(
            f"warm sweep executed {warm.kernel_executions} kernels "
            "(expected 0: every trace should come from the store)"
        )
    if warm.runs != cold.runs:
        failures.append("warm results are not bit-identical to cold")
    if new_device.kernel_executions != 0:
        failures.append(
            f"new-device sweep executed {new_device.kernel_executions} "
            "kernels (expected 0: re-timed from stored traces)"
        )
    devices = {run.device for run in new_device.runs}
    if devices != {"RTX 3090", "Titan V"}:
        failures.append(f"new-device sweep covered {sorted(devices)}")
    if speedup < args.min_speedup:
        failures.append(
            f"warm speedup {speedup:.2f}x is below the "
            f"{args.min_speedup:g}x floor"
        )
    if cold.failures or warm.failures or new_device.failures:
        failures.append("a sweep produced failure-manifest entries")

    payload = {
        "benchmark": "trace-store cold vs warm: SSSP x USA-road-d.NY "
                     "(default scale), CUDA, workers=1",
        "runs": len(cold.runs),
        "cold_seconds": round(cold_seconds, 3),
        "cold_kernel_executions": cold.kernel_executions,
        "warm_seconds": round(warm_seconds, 3),
        "warm_kernel_executions": warm.kernel_executions,
        "warm_speedup": round(speedup, 3),
        "new_device_seconds": round(new_device_seconds, 3),
        "new_device_kernel_executions": new_device.kernel_executions,
        "bit_identical": warm.runs == cold.runs,
        "store_entries": stats.entries,
        "store_bytes": stats.total_bytes,
    }
    args.json.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.json}", flush=True)

    if not args.keep:
        import shutil

        shutil.rmtree(tmp, ignore_errors=True)
    else:
        print(f"trace store kept at {trace_dir}")

    matrix_failures, matrix_speedup = matrix_smoke(args)
    failures.extend(matrix_failures)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"perf smoke OK: warm sweep ran 0 kernels, {speedup:.2f}x faster, "
          f"vectorized matrix {matrix_speedup:.2f}x over per-spec, "
          "bit-identical results")
    return 0


if __name__ == "__main__":
    sys.exit(main())
