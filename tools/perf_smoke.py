"""Trace-store performance smoke: warm sweeps must execute zero kernels.

Runs one small-but-real sweep three times against a fresh trace store:

1. **cold** — empty store; every semantic kernel executes and is saved;
2. **warm** — identical sweep; every semantic trace must come from the
   store (zero kernel executions), the results must be *bit-identical*
   to the cold run, and the wall-clock speedup must clear a floor;
3. **new device** — the same sweep with a second GPU added; mapping
   variants of the new device re-time from the stored traces, so this
   too must execute zero kernels.

The measured numbers are written to ``BENCH_tracestore.json`` at the
repository root (or ``--json PATH``) so the cold/warm trajectory is
tracked across PRs.  Exit code 0 means every guarantee held.

Usage::

    python tools/perf_smoke.py [--json PATH] [--min-speedup X] [--keep]
"""

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_JSON = REPO_ROOT / "BENCH_tracestore.json"

#: Warm must beat cold by at least this factor (the store's entire point
#: is skipping kernel execution, the sweep's dominant cost).
DEFAULT_MIN_SPEEDUP = 3.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON,
                        help=f"output JSON path (default: {DEFAULT_JSON})")
    parser.add_argument("--min-speedup", type=float,
                        default=DEFAULT_MIN_SPEEDUP,
                        help="required cold/warm wall-clock ratio "
                             f"(default: {DEFAULT_MIN_SPEEDUP})")
    parser.add_argument("--keep", action="store_true",
                        help="keep the temporary trace store for inspection")
    args = parser.parse_args(argv)

    # A fresh store in a tempdir: the smoke must measure this process's
    # cold/warm transition, not whatever ~/.cache already holds.
    tmp = tempfile.mkdtemp(prefix="repro-perf-smoke-")
    trace_dir = os.path.join(tmp, "traces")
    checkpoint_dir = os.path.join(tmp, "checkpoints")
    os.environ["REPRO_TRACE_CACHE"] = trace_dir

    from repro.bench import SweepConfig, TraceStore, run_sweep_parallel
    from repro.styles import Algorithm, Model

    config = SweepConfig(
        scale="default",
        algorithms=(Algorithm.SSSP,),
        models=(Model.CUDA,),
        graphs=("USA-road-d.NY",),
        gpu_names=("RTX 3090",),
    )

    def sweep(cfg):
        start = time.perf_counter()
        results = run_sweep_parallel(
            cfg, workers=1, checkpoint_dir=checkpoint_dir
        )
        return results, time.perf_counter() - start

    print("perf smoke: cold sweep (empty trace store) ...", flush=True)
    cold, cold_seconds = sweep(config)
    print(f"  {cold_seconds:.2f}s, {cold.kernel_executions} kernel "
          f"executions, {len(cold.runs)} runs", flush=True)

    print("perf smoke: warm sweep (identical config) ...", flush=True)
    warm, warm_seconds = sweep(config)
    speedup = cold_seconds / warm_seconds
    print(f"  {warm_seconds:.2f}s, {warm.kernel_executions} kernel "
          f"executions, speedup {speedup:.2f}x", flush=True)

    print("perf smoke: warm sweep with a new device added ...", flush=True)
    extended = SweepConfig(
        scale=config.scale,
        algorithms=config.algorithms,
        models=config.models,
        graphs=config.graphs,
        gpu_names=("RTX 3090", "Titan V"),
    )
    new_device, new_device_seconds = sweep(extended)
    print(f"  {new_device_seconds:.2f}s, {new_device.kernel_executions} "
          f"kernel executions, {len(new_device.runs)} runs", flush=True)

    store = TraceStore(trace_dir)
    stats = store.stats()

    failures = []
    if cold.kernel_executions == 0:
        failures.append("cold sweep executed no kernels (store not empty?)")
    if warm.kernel_executions != 0:
        failures.append(
            f"warm sweep executed {warm.kernel_executions} kernels "
            "(expected 0: every trace should come from the store)"
        )
    if warm.runs != cold.runs:
        failures.append("warm results are not bit-identical to cold")
    if new_device.kernel_executions != 0:
        failures.append(
            f"new-device sweep executed {new_device.kernel_executions} "
            "kernels (expected 0: re-timed from stored traces)"
        )
    devices = {run.device for run in new_device.runs}
    if devices != {"RTX 3090", "Titan V"}:
        failures.append(f"new-device sweep covered {sorted(devices)}")
    if speedup < args.min_speedup:
        failures.append(
            f"warm speedup {speedup:.2f}x is below the "
            f"{args.min_speedup:g}x floor"
        )
    if cold.failures or warm.failures or new_device.failures:
        failures.append("a sweep produced failure-manifest entries")

    payload = {
        "benchmark": "trace-store cold vs warm: SSSP x USA-road-d.NY "
                     "(default scale), CUDA, workers=1",
        "runs": len(cold.runs),
        "cold_seconds": round(cold_seconds, 3),
        "cold_kernel_executions": cold.kernel_executions,
        "warm_seconds": round(warm_seconds, 3),
        "warm_kernel_executions": warm.kernel_executions,
        "warm_speedup": round(speedup, 3),
        "new_device_seconds": round(new_device_seconds, 3),
        "new_device_kernel_executions": new_device.kernel_executions,
        "bit_identical": warm.runs == cold.runs,
        "store_entries": stats.entries,
        "store_bytes": stats.total_bytes,
    }
    args.json.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.json}", flush=True)

    if not args.keep:
        import shutil

        shutil.rmtree(tmp, ignore_errors=True)
    else:
        print(f"trace store kept at {trace_dir}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"perf smoke OK: warm sweep ran 0 kernels, {speedup:.2f}x faster, "
          "bit-identical results")
    return 0


if __name__ == "__main__":
    sys.exit(main())
