"""Service smoke: boot ``repro serve`` and exercise its resilience paths.

Five gated checks against real server subprocesses, mirroring what an
operator would see:

1. **cold sweep** — a named tiny graph gets a full recommendation with
   measured timings and ``kernel_executions > 0``;
2. **cached hit** — the identical request again must come straight from
   the result cache: ``source == "cache"`` and ``kernel_executions == 0``;
3. **fault-injected request** — with ``$REPRO_FAULTS`` killing the sweep
   executor mid-job, the same request must come back HTTP 200 with
   ``"degraded": true`` and a static-guideline recommendation instead of
   an error or a hang;
4. **graceful drain** — SIGTERM lands while a streaming request is in
   flight; the request must still complete with a full result, the
   process must exit 0, and the log must show the drain;
5. **predicted tier** — with a pre-trained style-predictor artifact
   (``$REPRO_PREDICTOR``), a cold miss the model covers answers with
   ``source == "predicted"`` and ``kernel_executions == 0``, and a
   ``"predict": false`` request still gets a real sweep.

Exit code 0 means every guarantee held.

Usage::

    python tools/serve_smoke.py [--json PATH]
"""

import argparse
import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_JSON = REPO_ROOT / "SMOKE_serve.json"

GRAPH = "2d-2e20.sym"
FAULT_GRAPH = "USA-road-d.NY"


class Server:
    """One ``repro serve`` subprocess on an ephemeral port."""

    def __init__(self, tmpdir, faults=None, predictor=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        env["REPRO_TRACE_CACHE"] = str(Path(tmpdir) / "traces")
        env["REPRO_SWEEP_CACHE"] = str(Path(tmpdir) / "sweeps")
        if faults is not None:
            env["REPRO_FAULTS"] = json.dumps(faults)
        else:
            env.pop("REPRO_FAULTS", None)
        if predictor is not None:
            env["REPRO_PREDICTOR"] = str(predictor)
        else:
            env.pop("REPRO_PREDICTOR", None)
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "--scale", "tiny",
                "serve", "--port", "0", "--workers", "1",
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        line = self.proc.stderr.readline()
        if "serving on http://" not in line:
            self.proc.kill()
            raise AssertionError(f"server failed to boot: {line!r}")
        self.port = int(line.rsplit(":", 1)[1])

    def advise(self, body, timeout=300):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=timeout)
        conn.request("POST", "/v1/advise", body=json.dumps(body))
        resp = conn.getresponse()
        payload = json.loads(resp.read())
        conn.close()
        return resp.status, payload

    def stop(self):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        code = self.proc.wait(timeout=60)
        stderr = self.proc.stderr.read()
        return code, stderr


def check(condition, label):
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {label}")
    if not condition:
        raise AssertionError(label)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON)
    args = parser.parse_args(argv)
    report = {}

    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmpdir:
        print("== healthy server: cold sweep, then cached hit ==")
        server = Server(tmpdir)
        try:
            body = {"graph": GRAPH, "algorithms": ["bfs"]}
            t0 = time.perf_counter()
            status, cold = server.advise(body)
            cold_s = time.perf_counter() - t0
            check(status == 200, f"cold request returns 200 (got {status})")
            check(cold["degraded"] is False, "cold answer is not degraded")
            check(cold["source"] == "sweep", "cold answer came from a sweep")
            check(cold["kernel_executions"] > 0, "cold sweep executed kernels")
            check(bool(cold["measured"]), "cold answer carries measured timings")
            check(bool(cold["advisor"]), "cold answer carries recommendations")

            t0 = time.perf_counter()
            status, warm = server.advise(body)
            warm_s = time.perf_counter() - t0
            check(status == 200, f"warm request returns 200 (got {status})")
            check(warm["source"] == "cache", "warm answer came from the cache")
            check(
                warm["kernel_executions"] == 0,
                "warm answer executed zero kernels",
            )
            check(
                warm["measured"] == cold["measured"],
                "warm timings identical to cold",
            )
            report["cold_seconds"] = round(cold_s, 4)
            report["warm_seconds"] = round(warm_s, 4)

            print("== graceful drain: SIGTERM during a streaming request ==")
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=300
            )
            conn.request(
                "POST", "/v1/advise",
                body=json.dumps(
                    {"graph": FAULT_GRAPH, "algorithms": ["bfs"], "stream": True}
                ),
            )
            resp = conn.getresponse()
            check(resp.status == 200, "streaming request accepted")
            first = json.loads(resp.readline())
            check(first["event"] == "queued", "streaming request past admission")
            server.proc.send_signal(signal.SIGTERM)
            events = [
                json.loads(line) for line in resp.read().splitlines() if line
            ]
            conn.close()
            check(bool(events), "in-flight request not dropped by drain")
            check(
                events[-1]["event"] == "result",
                "in-flight request completed with a result",
            )
            code, stderr = server.stop()
            check(code == 0, f"server exited 0 after drain (got {code})")
            check("drained, exiting" in stderr, "drain logged cleanly")
            report["drain_exit_code"] = code
        finally:
            if server.proc.poll() is None:
                server.proc.kill()
                server.proc.wait(timeout=10)

        print("== faulty executor: request degrades instead of failing ==")
        server = Server(
            tmpdir, faults=[{"action": "kill-executor", "graph": FAULT_GRAPH}]
        )
        try:
            t0 = time.perf_counter()
            status, payload = server.advise(
                {"graph": FAULT_GRAPH, "algorithms": ["bfs"]}
            )
            degraded_s = time.perf_counter() - t0
            check(status == 200, f"faulted request returns 200 (got {status})")
            check(payload["degraded"] is True, "faulted answer is degraded")
            check(
                payload["degraded_code"] == "executor-crashed",
                "degradation attributed to the executor crash",
            )
            check(
                payload["source"] == "static-guideline",
                "degraded answer uses the static guidelines",
            )
            check(bool(payload["advisor"]), "degraded answer still advises")
            code, stderr = server.stop()
            check(code == 0, f"faulted server drains to exit 0 (got {code})")
            report["degraded_seconds"] = round(degraded_s, 4)
        finally:
            if server.proc.poll() is None:
                server.proc.kill()
                server.proc.wait(timeout=10)

        print("== predicted tier: cold miss answered from the model ==")
        # Train the artifact against its own trace store so the servers'
        # cold/warm contract above stays untouched.
        saved = os.environ.get("REPRO_TRACE_CACHE")
        os.environ["REPRO_TRACE_CACHE"] = str(Path(tmpdir) / "train-traces")
        try:
            from repro.bench import (
                StylePredictor,
                SweepConfig,
                mine_results,
                run_sweep,
            )
            from repro.styles import Algorithm

            train = run_sweep(
                SweepConfig(scale="tiny", algorithms=(Algorithm.BFS,))
            )
            artifact = StylePredictor.train(
                mine_results(train), seed=0, rounds=300
            ).save(Path(tmpdir) / "model.json")
        finally:
            if saved is None:
                os.environ.pop("REPRO_TRACE_CACHE", None)
            else:
                os.environ["REPRO_TRACE_CACHE"] = saved
        server = Server(tmpdir, predictor=artifact)
        try:
            t0 = time.perf_counter()
            status, payload = server.advise(
                {"graph": GRAPH, "algorithms": ["bfs"]}
            )
            predicted_s = time.perf_counter() - t0
            check(status == 200, f"predicted request returns 200 (got {status})")
            check(
                payload["source"] == "predicted",
                "cold miss answered from the predictor",
            )
            check(
                payload["kernel_executions"] == 0,
                "predicted answer executed zero kernels",
            )
            check(payload["degraded"] is False, "predicted answer not degraded")
            check(bool(payload["measured"]), "predicted answer carries timings")
            check(
                all(m["predicted"] for m in payload["measured"]),
                "every predicted entry is flagged predicted",
            )
            status, optout = server.advise(
                {"graph": GRAPH, "algorithms": ["bfs"], "predict": False}
            )
            check(status == 200, f"opt-out request returns 200 (got {status})")
            check(
                optout["source"] == "sweep",
                "'predict': false opt-out runs a real sweep",
            )
            code, _ = server.stop()
            check(code == 0, f"predictor server drains to exit 0 (got {code})")
            report["predicted_seconds"] = round(predicted_s, 4)
        finally:
            if server.proc.poll() is None:
                server.proc.kill()
                server.proc.wait(timeout=10)

    args.json.write_text(json.dumps(report, indent=2) + "\n")
    print(f"report written to {args.json}")
    print("serve smoke: all guarantees held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
