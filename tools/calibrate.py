"""Calibration helper: run the full sweep once, pickle it, and print the
medians behind every figure of the paper so cost-model changes can be
checked quickly.

Usage:
    python tools/calibrate.py --fresh   # re-run the sweep
    python tools/calibrate.py           # reuse /tmp/repro_sweep.pkl
"""

import pickle
import sys
import time

import numpy as np

from repro.bench.harness import SweepConfig, run_sweep
from repro.bench.ratios import axis_ratios, ratios_by_algorithm, throughputs_by_option
from repro.styles import (
    Algorithm,
    AtomicFlavor,
    CppSchedule,
    CpuReduction,
    Determinism,
    Driver,
    Dup,
    Flow,
    GpuReduction,
    Granularity,
    Iteration,
    Model,
    OmpSchedule,
    Persistence,
    Update,
)

CACHE = "/tmp/repro_sweep.pkl"


def med(x):
    return float(np.median(x)) if len(x) else float("nan")


def get_results(fresh: bool):
    if not fresh:
        try:
            with open(CACHE, "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.PickleError):
            pass
    t0 = time.time()
    res = run_sweep(SweepConfig())
    print(f"sweep: {time.time() - t0:.0f}s, {len(res)} runs")
    res.graphs = {}  # graphs don't pickle small; drop
    with open(CACHE, "wb") as fh:
        pickle.dump(res, fh)
    return res


def main():
    res = get_results("--fresh" in sys.argv)

    print("\n== Fig 1: Atomic/CudaAtomic (want ~10 on 3090, ~100 on TitanV, TC low)")
    for dev in ("RTX 3090", "Titan V"):
        by = ratios_by_algorithm(res, "atomic_flavor", AtomicFlavor.ATOMIC, AtomicFlavor.CUDA_ATOMIC, devices=[dev])
        print(f"  {dev}:", {a.value: round(med(v), 1) for a, v in by.items()})

    noca = dict(models=[Model.CUDA])  # helper; CudaAtomic excluded below where paper does
    print("\n== Fig 2: vertex/edge (GPU ~1 except MIS>>1, TC<1; CPU >1)")
    for label, models in [("CUDA", [Model.CUDA]), ("OMP+CPP", [Model.OPENMP, Model.CPP_THREADS])]:
        by = ratios_by_algorithm(res, "iteration", Iteration.VERTEX, Iteration.EDGE, models=models)
        print(f"  {label}:", {a.value: round(med(v), 2) for a, v in by.items()})
    # Fig 2c: thread-level TC only
    by = ratios_by_algorithm(res, "iteration", Iteration.VERTEX, Iteration.EDGE,
                             models=[Model.CUDA], algorithms=[Algorithm.TC])
    # need granularity filter: do it manually
    vals = []
    for run in res.select(models=[Model.CUDA], algorithms=[Algorithm.TC]):
        if run.spec.granularity is not Granularity.THREAD:
            continue
        if run.spec.iteration is not Iteration.VERTEX:
            continue
        p = res.get(run.spec.with_axis(iteration=Iteration.EDGE), run.device, run.graph)
        if p:
            vals.append(run.throughput_ges / p.throughput_ges)
    print("  thread-TC vertex/edge (want <1):", round(med(vals), 2), f"n={len(vals)}")

    print("\n== Figs 3/4: topo/data (GPU<1, OMP<1 exc MIS, C++>1)")
    for dup in (Dup.DUP, Dup.NODUP):
        for label, models in [("CUDA", [Model.CUDA]), ("OMP", [Model.OPENMP]), ("CPP", [Model.CPP_THREADS])]:
            vals = {}
            for run in res.select(models=models):
                if run.spec.driver is not Driver.TOPOLOGY or run.spec.flow is Flow.PULL:
                    continue
                try:
                    part_spec = run.spec.with_axis(driver=Driver.DATA, dup=dup)
                except Exception:
                    continue
                p = res.get(part_spec, run.device, run.graph)
                if p:
                    vals.setdefault(run.spec.algorithm.value, []).append(run.throughput_ges / p.throughput_ges)
            print(f"  {dup.value:5s} {label}:", {k: round(med(v), 2) for k, v in vals.items()})

    print("\n== Fig 5: push/pull (>1 except PR ~slightly<1)")
    for label, models in [("CUDA", [Model.CUDA]), ("OMP", [Model.OPENMP]), ("CPP", [Model.CPP_THREADS])]:
        by = ratios_by_algorithm(res, "flow", Flow.PUSH, Flow.PULL, models=models)
        print(f"  {label}:", {a.value: round(med(v), 2) for a, v in by.items()})

    print("\n== Fig 6: rw/rmw (>=1; up to 1000x on CPU)")
    for label, models in [("CUDA", [Model.CUDA]), ("OMP", [Model.OPENMP]), ("CPP", [Model.CPP_THREADS])]:
        by = ratios_by_algorithm(res, "update", Update.READ_WRITE, Update.READ_MODIFY_WRITE, models=models)
        stats = {a.value: (round(med(v), 2), round(float(np.max(v)), 1)) for a, v in by.items()}
        print(f"  {label} (med,max):", stats)

    print("\n== Fig 7: det/nondet (<1 except PR)")
    for label, models in [("CUDA", [Model.CUDA]), ("OMP", [Model.OPENMP]), ("CPP", [Model.CPP_THREADS])]:
        by = ratios_by_algorithm(res, "determinism", Determinism.DETERMINISTIC, Determinism.NON_DETERMINISTIC, models=models)
        print(f"  {label}:", {a.value: round(med(v), 2) for a, v in by.items()})

    print("\n== Fig 8: persistent/non-persistent (~1)")
    by = ratios_by_algorithm(res, "persistence", Persistence.PERSISTENT, Persistence.NON_PERSISTENT, models=[Model.CUDA])
    print("  CUDA:", {a.value: round(med(v), 2) for a, v in by.items()})

    print("\n== Fig 9: granularity by graph (thread wins road, warp wins soc)")
    for gname in ("USA-road-d.NY", "soc-LiveJournal1"):
        th = throughputs_by_option(res, "granularity", models=[Model.CUDA], graphs=[gname], devices=["RTX 3090"])
        print(f"  {gname}:", {g.value: round(med(v), 4) for g, v in th.items()})

    print("\n== Fig 10: GPU reductions (reduction fastest, block slowest; TC > PR)")
    for alg in (Algorithm.PR, Algorithm.TC):
        th = throughputs_by_option(res, "gpu_reduction", models=[Model.CUDA], algorithms=[alg])
        print(f"  {alg.value}:", {g.value: round(med(v), 4) for g, v in th.items()})

    print("\n== Fig 11: CPU reductions (clause fastest, critical slowest; TC > PR)")
    for alg in (Algorithm.PR, Algorithm.TC):
        th = throughputs_by_option(res, "cpu_reduction", models=[Model.OPENMP, Model.CPP_THREADS], algorithms=[alg])
        print(f"  {alg.value}:", {g.value: round(med(v), 4) for g, v in th.items()})

    print("\n== Fig 12: OMP default/dynamic (>=1 mostly; MIS always >1)")
    by = ratios_by_algorithm(res, "omp_schedule", OmpSchedule.DEFAULT, OmpSchedule.DYNAMIC, models=[Model.OPENMP])
    print("  OMP:", {a.value: round(med(v), 2) for a, v in by.items()})

    print("\n== Fig 13: C++ blocked/cyclic (PR>1, TC<1, others ~1)")
    by = ratios_by_algorithm(res, "cpp_schedule", CppSchedule.BLOCKED, CppSchedule.CYCLIC, models=[Model.CPP_THREADS])
    print("  CPP:", {a.value: round(med(v), 2) for a, v in by.items()})


if __name__ == "__main__":
    main()
