"""Graph construction helpers.

All generators and file readers funnel through :func:`from_edge_arrays`,
which normalizes raw edge arrays into the canonical form the study uses:

* undirected inputs are *symmetrized* (every undirected edge appears as two
  directed edges — the paper's storage convention),
* self loops are dropped,
* parallel edges are deduplicated,
* adjacency is sorted by ``(src, dst)`` so CSR neighbor lists are sorted
  (required by the triangle-counting kernels and harmless elsewhere),
* optional deterministic integer edge weights are attached for SSSP.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .coo import COOGraph
from .csr import CSRGraph

__all__ = [
    "from_edge_arrays",
    "from_edge_list",
    "csr_to_coo",
    "deterministic_weights",
    "MAX_WEIGHT",
]

#: Edge weights are drawn from [1, MAX_WEIGHT], mirroring common practice in
#: the DIMACS road inputs (small positive integer weights).
MAX_WEIGHT = 255


def deterministic_weights(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Deterministic per-edge weights in ``[1, MAX_WEIGHT]``.

    The weight of an undirected edge must be identical in both directions,
    so the hash is computed on the unordered endpoint pair.  A fixed odd
    multiplier hash (splitmix-style) keeps the distribution flat without any
    RNG state.
    """
    a = np.minimum(src, dst).astype(np.uint64)
    b = np.maximum(src, dst).astype(np.uint64)
    h = a * np.uint64(0x9E3779B97F4A7C15) + b * np.uint64(0xBF58476D1CE4E5B9)
    h ^= h >> np.uint64(31)
    h *= np.uint64(0x94D049BB133111EB)
    h ^= h >> np.uint64(29)
    return (h % np.uint64(MAX_WEIGHT)).astype(np.int32) + 1


def from_edge_arrays(
    src: np.ndarray,
    dst: np.ndarray,
    n_vertices: int,
    *,
    weights: Optional[np.ndarray] = None,
    symmetrize: bool = True,
    dedup: bool = True,
    drop_self_loops: bool = True,
    add_weights: bool = False,
    name: str = "graph",
) -> CSRGraph:
    """Build a canonical :class:`CSRGraph` from raw edge arrays.

    Parameters
    ----------
    src, dst:
        Edge endpoint arrays (any integer dtype).
    n_vertices:
        Total vertex count.
    weights:
        Explicit edge weights; mutually exclusive with ``add_weights``.
    symmetrize:
        Add the reverse of every edge (undirected storage convention).
    dedup:
        Remove parallel edges (keeping the first weight seen).
    drop_self_loops:
        Remove ``(v, v)`` edges.
    add_weights:
        Attach :func:`deterministic_weights` after normalization.
    """
    if weights is not None and add_weights:
        raise ValueError("pass either explicit weights or add_weights, not both")
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ValueError("src and dst must have identical shape")
    w = None if weights is None else np.asarray(weights, dtype=np.int64)

    if drop_self_loops and src.size:
        keep = src != dst
        src, dst = src[keep], dst[keep]
        if w is not None:
            w = w[keep]

    if symmetrize and src.size:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        if w is not None:
            w = np.concatenate([w, w])

    n = np.int64(n_vertices)
    key = src * n + dst
    order = np.argsort(key, kind="stable")
    src, dst, key = src[order], dst[order], key[order]
    if w is not None:
        w = w[order]

    if dedup and src.size:
        keep = np.empty(src.size, dtype=bool)
        keep[0] = True
        np.not_equal(key[1:], key[:-1], out=keep[1:])
        src, dst = src[keep], dst[keep]
        if w is not None:
            w = w[keep]

    if add_weights:
        w = deterministic_weights(src, dst)

    counts = np.bincount(src, minlength=n_vertices)
    row_ptr = np.zeros(n_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=row_ptr[1:])
    return CSRGraph(
        row_ptr,
        dst.astype(np.int32),
        None if w is None else w.astype(np.int32),
        name=name,
    )


def from_edge_list(
    edges: Sequence[Tuple[int, int]],
    n_vertices: Optional[int] = None,
    **kwargs,
) -> CSRGraph:
    """Build a graph from a Python list of ``(u, v)`` pairs (test helper)."""
    if len(edges) == 0:
        n = n_vertices or 0
        return from_edge_arrays(
            np.empty(0, np.int64), np.empty(0, np.int64), n, **kwargs
        )
    arr = np.asarray(edges, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError("edges must be a sequence of (u, v) pairs")
    if n_vertices is None:
        n_vertices = int(arr.max()) + 1
    return from_edge_arrays(arr[:, 0], arr[:, 1], n_vertices, **kwargs)


def csr_to_coo(graph: CSRGraph) -> COOGraph:
    """Convert a CSR graph to the COO form used by edge-based kernels."""
    return COOGraph(
        graph.edge_sources(),
        graph.col_idx.copy(),
        graph.n_vertices,
        weights=None if graph.weights is None else graph.weights.copy(),
        name=graph.name,
    )
