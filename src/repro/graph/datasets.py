"""The five study inputs (Table 4) as parameterized synthetic stand-ins.

Each entry maps one of the paper's inputs to a generator configuration that
reproduces its *shape* (degree distribution and diameter class — the
properties Section 5.13 shows the results depend on).  Three scales are
provided:

* ``tiny``   — unit-test scale (hundreds of vertices),
* ``default``— study scale for this reproduction (thousands of vertices;
  every experiment in ``benchmarks/`` runs at this scale),
* ``full``   — the paper's actual sizes (only practical if you have time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from . import generators
from .csr import CSRGraph

__all__ = ["DatasetSpec", "DATASETS", "dataset_names", "load_dataset", "load_all"]


@dataclass(frozen=True)
class DatasetSpec:
    """One paper input and its generator at each scale."""

    name: str
    paper_name: str
    graph_type: str
    origin: str
    builders: Dict[str, Callable[[], CSRGraph]]

    def build(self, scale: str = "default") -> CSRGraph:
        if scale not in self.builders:
            raise KeyError(
                f"unknown scale {scale!r} for {self.name}; "
                f"available: {sorted(self.builders)}"
            )
        return self.builders[scale]()


def _named(fn: Callable[..., CSRGraph], name: str, **kwargs) -> Callable[[], CSRGraph]:
    def build() -> CSRGraph:
        return fn(name=name, **kwargs)

    return build


DATASETS: Dict[str, DatasetSpec] = {
    "2d-2e20.sym": DatasetSpec(
        name="2d-2e20.sym",
        paper_name="2d-2e20.sym",
        graph_type="grid",
        origin="Galois",
        builders={
            "tiny": _named(generators.grid2d, "2d-2e20.sym", rows=12, cols=12),
            "default": _named(generators.grid2d, "2d-2e20.sym", rows=80, cols=80),
            "full": _named(generators.grid2d, "2d-2e20.sym", rows=1024, cols=1024),
        },
    ),
    "coPapersDBLP": DatasetSpec(
        name="coPapersDBLP",
        paper_name="coPapersDBLP",
        graph_type="publication",
        origin="SMC",
        builders={
            "tiny": _named(
                generators.clustered, "coPapersDBLP",
                n_communities=40, community_size_mean=16.0,
                membership_per_vertex=1.8, seed=7,
            ),
            "default": _named(
                generators.clustered, "coPapersDBLP",
                n_communities=1600, community_size_mean=7.0,
                membership_per_vertex=2.2, heavy_tail=2.0,
                max_community=500, seed=7,
            ),
            "full": _named(
                generators.clustered, "coPapersDBLP",
                n_communities=120000, community_size_mean=10.0,
                membership_per_vertex=2.2, heavy_tail=2.0,
                max_community=3300, seed=7,
            ),
        },
    ),
    "rmat22.sym": DatasetSpec(
        name="rmat22.sym",
        paper_name="rmat22.sym",
        graph_type="RMAT",
        origin="Galois",
        builders={
            "tiny": _named(generators.rmat, "rmat22.sym", scale=8, edge_factor=8, seed=22),
            "default": _named(generators.rmat, "rmat22.sym", scale=13, edge_factor=8, seed=22),
            "full": _named(generators.rmat, "rmat22.sym", scale=22, edge_factor=8, seed=22),
        },
    ),
    "soc-LiveJournal1": DatasetSpec(
        name="soc-LiveJournal1",
        paper_name="soc-LiveJournal1",
        graph_type="community",
        origin="SNAP",
        builders={
            "tiny": _named(generators.power_law, "soc-LiveJournal1", n_vertices=300, attach=9, seed=1),
            "default": _named(generators.power_law, "soc-LiveJournal1", n_vertices=16000, attach=9, seed=1),
            "full": _named(generators.power_law, "soc-LiveJournal1", n_vertices=4847571, attach=9, seed=1),
        },
    ),
    "USA-road-d.NY": DatasetSpec(
        name="USA-road-d.NY",
        paper_name="USA-road-d.NY",
        graph_type="road map",
        origin="Dimacs",
        builders={
            "tiny": _named(generators.road_network, "USA-road-d.NY", n_vertices=200, seed=3),
            "default": _named(generators.road_network, "USA-road-d.NY", n_vertices=10000, seed=3),
            "full": _named(generators.road_network, "USA-road-d.NY", n_vertices=264346, seed=3),
        },
    ),
}


#: Additional inputs beyond the paper's five (Indigo2 "contains more and
#: larger graphs").  Not part of the Table 4/5 reproduction; available to
#: users for broader sweeps via :func:`load_extra`.
EXTRA_DATASETS: Dict[str, DatasetSpec] = {
    "kron-skewed": DatasetSpec(
        name="kron-skewed",
        paper_name="(extra) Kronecker, heavier tail",
        graph_type="RMAT",
        origin="synthetic",
        builders={
            "tiny": _named(
                generators.rmat, "kron-skewed",
                scale=8, edge_factor=8, a=0.65, b=0.15, c=0.15, seed=30,
            ),
            "default": _named(
                generators.rmat, "kron-skewed",
                scale=13, edge_factor=8, a=0.65, b=0.15, c=0.15, seed=30,
            ),
        },
    ),
    "wiki-Talk": DatasetSpec(
        name="wiki-Talk",
        paper_name="(extra) communication graph",
        graph_type="communication",
        origin="synthetic",
        builders={
            "tiny": _named(
                generators.hub_and_spokes, "wiki-Talk",
                n_vertices=400, n_hubs=3, spoke_degree=2.5, seed=12,
            ),
            "default": _named(
                generators.hub_and_spokes, "wiki-Talk",
                n_vertices=12000, n_hubs=6, spoke_degree=2.5, seed=12,
            ),
        },
    ),
    "com-Orkut": DatasetSpec(
        name="com-Orkut",
        paper_name="(extra) dense social network",
        graph_type="community",
        origin="synthetic",
        builders={
            "tiny": _named(
                generators.power_law, "com-Orkut",
                n_vertices=300, attach=20, seed=44,
            ),
            "default": _named(
                generators.power_law, "com-Orkut",
                n_vertices=8000, attach=30, seed=44,
            ),
        },
    ),
}


def dataset_names() -> List[str]:
    """The five input names in the paper's Table 4 order."""
    return list(DATASETS)


def extra_dataset_names() -> List[str]:
    """Names of the additional (non-Table-4) inputs."""
    return list(EXTRA_DATASETS)


def load_extra(name: str, scale: str = "default") -> CSRGraph:
    """Build one of the additional inputs."""
    if name not in EXTRA_DATASETS:
        raise KeyError(
            f"unknown extra dataset {name!r}; available: {extra_dataset_names()}"
        )
    return EXTRA_DATASETS[name].build(scale)


def load_dataset(name: str, scale: str = "default") -> CSRGraph:
    """Build (deterministically) the stand-in for one paper input."""
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; available: {dataset_names()}")
    return DATASETS[name].build(scale)


def load_all(scale: str = "default") -> Dict[str, CSRGraph]:
    """Build all five inputs at the given scale."""
    return {name: spec.build(scale) for name, spec in DATASETS.items()}
