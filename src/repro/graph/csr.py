"""Compressed-sparse-row (CSR) graph container.

The CSR layout is the representation the paper uses for all vertex-based
codes (Section 4.2): ``row_ptr`` (called ``nbr_idx`` in the paper's listings)
holds, for each vertex ``v``, the half-open range ``[row_ptr[v],
row_ptr[v+1])`` of positions in ``col_idx`` (``nbr_list``) that store the
neighbors of ``v``.  Edge weights, when present, are stored edge-parallel in
``weights``.

Every undirected edge is represented by two directed edges, matching the
paper's convention ("Every undirected edge is represented by two directed
edges in both formats").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = ["CSRGraph"]


@dataclass(frozen=True)
class CSRGraph:
    """An immutable directed graph in CSR form.

    Attributes
    ----------
    row_ptr:
        ``int64[n_vertices + 1]`` neighbor-range index (``nbr_idx``).
    col_idx:
        ``int32[n_edges]`` neighbor list (``nbr_list``).
    weights:
        Optional ``int32[n_edges]`` edge weights (SSSP uses them; other
        algorithms ignore them).
    name:
        Human-readable identifier used in reports.
    """

    row_ptr: np.ndarray
    col_idx: np.ndarray
    weights: Optional[np.ndarray] = None
    name: str = "graph"
    _degrees: np.ndarray = field(init=False, repr=False, compare=False, default=None)
    _fingerprint: Optional[str] = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        row_ptr = np.ascontiguousarray(self.row_ptr, dtype=np.int64)
        col_idx = np.ascontiguousarray(self.col_idx, dtype=np.int32)
        object.__setattr__(self, "row_ptr", row_ptr)
        object.__setattr__(self, "col_idx", col_idx)
        if self.weights is not None:
            weights = np.ascontiguousarray(self.weights, dtype=np.int32)
            object.__setattr__(self, "weights", weights)
        self._validate()
        object.__setattr__(self, "_degrees", np.diff(row_ptr))

    def _validate(self) -> None:
        if self.row_ptr.ndim != 1 or self.col_idx.ndim != 1:
            raise ValueError("row_ptr and col_idx must be one-dimensional")
        if self.row_ptr.size == 0:
            raise ValueError("row_ptr must have at least one entry")
        if self.row_ptr[0] != 0:
            raise ValueError("row_ptr must start at 0")
        if self.row_ptr[-1] != self.col_idx.size:
            raise ValueError(
                f"row_ptr[-1] ({self.row_ptr[-1]}) must equal the number of "
                f"edges ({self.col_idx.size})"
            )
        if np.any(np.diff(self.row_ptr) < 0):
            raise ValueError("row_ptr must be non-decreasing")
        n = self.row_ptr.size - 1
        if self.col_idx.size and (
            self.col_idx.min() < 0 or self.col_idx.max() >= n
        ):
            raise ValueError("col_idx contains out-of-range vertex ids")
        if self.weights is not None and self.weights.shape != self.col_idx.shape:
            raise ValueError("weights must be edge-parallel with col_idx")

    # ------------------------------------------------------------------
    # Basic shape accessors
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return self.row_ptr.size - 1

    @property
    def n_edges(self) -> int:
        """Number of *directed* edges (2x the undirected edge count)."""
        return self.col_idx.size

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex (``int64[n_vertices]``)."""
        return self._degrees

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    # ------------------------------------------------------------------
    # Neighbor access
    # ------------------------------------------------------------------
    def neighbor_range(self, v: int) -> Tuple[int, int]:
        """The ``[beg, end)`` range of edge slots belonging to vertex ``v``."""
        return int(self.row_ptr[v]), int(self.row_ptr[v + 1])

    def neighbors(self, v: int) -> np.ndarray:
        """A view of the neighbor ids of vertex ``v``."""
        beg, end = self.neighbor_range(v)
        return self.col_idx[beg:end]

    def edge_weights_of(self, v: int) -> np.ndarray:
        """A view of the weights of the edges leaving ``v``."""
        if self.weights is None:
            raise ValueError("graph is unweighted")
        beg, end = self.neighbor_range(v)
        return self.weights[beg:end]

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over directed edges as ``(src, dst)`` pairs (slow path)."""
        src = self.edge_sources()
        for s, d in zip(src.tolist(), self.col_idx.tolist()):
            yield s, d

    def edge_sources(self) -> np.ndarray:
        """Edge-parallel array of source vertices (``int32[n_edges]``)."""
        return np.repeat(
            np.arange(self.n_vertices, dtype=np.int32), self.degrees
        )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_sorted_neighbors(self) -> "CSRGraph":
        """Return an equivalent graph whose adjacency lists are sorted.

        Sorted adjacency is required by the merge-based triangle-counting
        kernels.  Weights (if any) are permuted consistently.
        """
        col = self.col_idx.copy()
        w = self.weights.copy() if self.weights is not None else None
        for v in range(self.n_vertices):
            beg, end = self.neighbor_range(v)
            order = np.argsort(col[beg:end], kind="stable")
            col[beg:end] = col[beg:end][order]
            if w is not None:
                w[beg:end] = w[beg:end][order]
        return CSRGraph(self.row_ptr, col, w, name=self.name)

    def has_sorted_neighbors(self) -> bool:
        """True if every adjacency list is non-decreasing."""
        if self.n_edges == 0:
            return True
        rising = np.diff(self.col_idx) >= 0
        # Positions where a new vertex's list begins do not constrain order.
        breaks = self.row_ptr[1:-1] - 1
        breaks = breaks[(breaks >= 0) & (breaks < rising.size)]
        rising[breaks] = True
        return bool(rising.all())

    def reverse(self) -> "CSRGraph":
        """Return the transpose graph (in-edges become out-edges).

        For the symmetric graphs used in the study the transpose equals the
        graph itself, but the pull-style kernels are written against the
        reverse graph so they stay correct on asymmetric inputs too.
        """
        from .builder import from_edge_arrays

        src = self.edge_sources()
        return from_edge_arrays(
            self.col_idx.astype(np.int64),
            src.astype(np.int64),
            self.n_vertices,
            weights=self.weights,
            name=self.name,
            symmetrize=False,
            dedup=False,
        )

    def is_symmetric(self) -> bool:
        """True if for every directed edge (u, v) the edge (v, u) exists."""
        src = self.edge_sources().astype(np.int64)
        dst = self.col_idx.astype(np.int64)
        n = np.int64(self.n_vertices)
        fwd = np.sort(src * n + dst)
        bwd = np.sort(dst * n + src)
        return bool(np.array_equal(fwd, bwd))

    def fingerprint(self) -> str:
        """SHA-256 content hash of the CSR arrays (memoized).

        The fingerprint covers structure and weights but not ``name``: two
        graphs with identical arrays are the same input regardless of what
        they are called, and everything derived from the content (traces,
        references, the source-vertex default) is shared between them.
        Unlike ``id()``, the fingerprint is stable across processes and can
        never alias a different graph after garbage collection — it is the
        cache identity used by the launcher and the persistent trace store.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256(b"csr-v1")
            digest.update(np.int64(self.n_vertices).tobytes())
            digest.update(self.row_ptr.tobytes())
            digest.update(self.col_idx.tobytes())
            if self.weights is not None:
                digest.update(b"weighted")
                digest.update(self.weights.tobytes())
            object.__setattr__(self, "_fingerprint", digest.hexdigest())
        return self._fingerprint

    def memory_bytes(self) -> int:
        """Size of the CSR arrays in bytes (Table 4's "Size" column)."""
        total = self.row_ptr.nbytes + self.col_idx.nbytes
        if self.weights is not None:
            total += self.weights.nbytes
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, n_vertices={self.n_vertices}, "
            f"n_edges={self.n_edges}, weighted={self.is_weighted})"
        )
