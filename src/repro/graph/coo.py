"""Coordinate-format (COO) graph container.

The paper stores the inputs for all *edge-based* codes in COO form
(Section 4.2): two edge-parallel arrays ``src_list`` and ``dst_list`` plus an
optional weight array.  Edge-based kernels assign one edge per work item
(Listing 1b), so the COO arrays are their primary data structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["COOGraph"]


@dataclass(frozen=True)
class COOGraph:
    """An immutable directed graph as an edge list.

    Attributes
    ----------
    src:
        ``int32[n_edges]`` source vertex of each directed edge.
    dst:
        ``int32[n_edges]`` destination vertex of each directed edge.
    n_vertices:
        Number of vertices (may exceed ``max(src, dst) + 1`` for graphs with
        isolated vertices).
    weights:
        Optional ``int32[n_edges]`` edge weights.
    """

    src: np.ndarray
    dst: np.ndarray
    n_vertices: int
    weights: Optional[np.ndarray] = None
    name: str = "graph"

    def __post_init__(self) -> None:
        src = np.ascontiguousarray(self.src, dtype=np.int32)
        dst = np.ascontiguousarray(self.dst, dtype=np.int32)
        object.__setattr__(self, "src", src)
        object.__setattr__(self, "dst", dst)
        if self.weights is not None:
            w = np.ascontiguousarray(self.weights, dtype=np.int32)
            object.__setattr__(self, "weights", w)
        self._validate()

    def _validate(self) -> None:
        if self.src.shape != self.dst.shape:
            raise ValueError("src and dst must have the same shape")
        if self.src.ndim != 1:
            raise ValueError("src/dst must be one-dimensional")
        if self.n_vertices < 0:
            raise ValueError("n_vertices must be non-negative")
        if self.src.size:
            hi = max(int(self.src.max()), int(self.dst.max()))
            lo = min(int(self.src.min()), int(self.dst.min()))
            if lo < 0 or hi >= self.n_vertices:
                raise ValueError("edge endpoints out of range")
        if self.weights is not None and self.weights.shape != self.src.shape:
            raise ValueError("weights must be edge-parallel")

    @property
    def n_edges(self) -> int:
        """Number of directed edges."""
        return self.src.size

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    def degrees(self) -> np.ndarray:
        """Out-degree of each vertex."""
        return np.bincount(self.src, minlength=self.n_vertices).astype(np.int64)

    def to_csr(self) -> "CSRGraph":
        """Convert to CSR.  Edge order within a vertex follows input order."""
        from .builder import from_edge_arrays

        return from_edge_arrays(
            self.src.astype(np.int64),
            self.dst.astype(np.int64),
            self.n_vertices,
            weights=self.weights,
            name=self.name,
            symmetrize=False,
            dedup=False,
        )

    def is_symmetric(self) -> bool:
        """True if every directed edge has its reverse present."""
        n = np.int64(self.n_vertices)
        fwd = np.sort(self.src.astype(np.int64) * n + self.dst)
        bwd = np.sort(self.dst.astype(np.int64) * n + self.src)
        return bool(np.array_equal(fwd, bwd))

    def memory_bytes(self) -> int:
        """Size of the COO arrays in bytes."""
        total = self.src.nbytes + self.dst.nbytes
        if self.weights is not None:
            total += self.weights.nbytes
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"COOGraph(name={self.name!r}, n_vertices={self.n_vertices}, "
            f"n_edges={self.n_edges}, weighted={self.is_weighted})"
        )


from .csr import CSRGraph  # noqa: E402  (cycle-free: only used in to_csr)
