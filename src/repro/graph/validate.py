"""Graph ingestion validation, normalization and quarantine.

The paper's methodology assumes every input is a *canonical* CSR graph:
monotone row offsets, in-range neighbor ids, positive finite weights,
no self loops, no parallel edges, sorted adjacency, undirected edges
stored as two directed edges (Section 4.2).  The generators guarantee
this by construction; user-supplied files guarantee nothing.  This module
is the gate between the two worlds:

* :class:`GraphValidator` checks the structural invariants and the
  degenerate-shape statistics (isolated vertices, degree skew) and
  reports violations on the shared findings model
  (:mod:`repro.analysis.findings`, ``VAL-*`` rule ids);
* :func:`sanitize_graph` is the repair pipeline — dedup, self-loop drop,
  weight clamping, optional symmetrization — returning the repaired
  graph plus a report of what it changed;
* :func:`quarantine_file` copies a rejected input next to a
  machine-readable reason file, so a batch ingestion service can skip it
  and an operator can diagnose it later.

:func:`repro.graph.io.load_graph` wires all three together behind a
``strict`` / ``repair`` policy.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from ..analysis.findings import Finding, Report, Severity
from .csr import CSRGraph

__all__ = [
    "GraphParseError",
    "GraphValidationError",
    "GraphValidator",
    "sanitize_graph",
    "quarantine_file",
    "MAX_SAFE_WEIGHT",
]

PathLike = Union[str, Path]

#: Largest weight the repair pipeline keeps: one edge relaxation must not
#: push an int64 distance past the ``INF`` sentinel, and int32 storage
#: bounds it anyway.
MAX_SAFE_WEIGHT = 2**31 - 1

#: Fraction of isolated vertices above which VAL-ISOLATED fires.
ISOLATED_WARN_FRACTION = 0.5

#: d_max / d_avg ratio above which VAL-SKEW fires (with a floor on d_max
#: so tiny graphs never trigger it).
SKEW_WARN_RATIO = 1000.0
SKEW_MIN_DEGREE = 64


class GraphParseError(ValueError):
    """A graph file's *text* is malformed.

    Carries the file path and the 1-based line number of the offending
    line, so batch ingestion logs point at the byte that broke.
    """

    def __init__(self, path: PathLike, line: Optional[int], reason: str):
        self.path = str(path)
        self.line = line
        self.reason = reason
        where = f"{self.path}:{line}" if line is not None else self.path
        super().__init__(f"{where}: {reason}")


class GraphValidationError(ValueError):
    """A parsed graph violates a structural invariant (strict policy).

    ``report`` holds the full findings list; the message carries the
    first error.
    """

    def __init__(self, report: Report, name: str = "graph"):
        self.report = report
        first = report.errors[0] if report.errors else None
        detail = first.message if first else "validation failed"
        rule = first.rule if first else "VAL"
        super().__init__(f"{name}: [{rule}] {detail}")


class GraphValidator:
    """Checks graphs (or raw CSR arrays) against the canonical invariants.

    ``validate`` returns a :class:`~repro.analysis.findings.Report`;
    callers decide whether warnings matter.  ``check`` raises
    :class:`GraphValidationError` on any error-severity finding.
    """

    def __init__(self, *, require_symmetric: bool = False,
                 require_sorted: bool = False):
        self.require_symmetric = require_symmetric
        self.require_sorted = require_sorted

    # ------------------------------------------------------------------
    def validate_arrays(
        self,
        row_ptr: np.ndarray,
        col_idx: np.ndarray,
        weights: Optional[np.ndarray] = None,
        *,
        name: str = "graph",
    ) -> Report:
        """Validate raw CSR arrays without constructing a CSRGraph.

        :class:`~repro.graph.csr.CSRGraph` raises on the worst structural
        violations at construction; this path reports *all* of them (and
        the statistical ones) instead, which is what ingestion wants.
        """
        report = Report(title=f"validate {name}")
        report.checked = 1
        row_ptr = np.asarray(row_ptr)
        col_idx = np.asarray(col_idx)

        def err(rule: str, message: str) -> None:
            report.add(Finding.of(rule, spec="", locus=name, message=message))

        def warn(rule: str, message: str) -> None:
            report.add(Finding(rule=rule, spec="", locus=name,
                               message=message, severity=Severity.WARNING))

        structural_ok = True
        if row_ptr.ndim != 1 or row_ptr.size == 0:
            err("VAL-ROWPTR", "row_ptr must be one-dimensional and non-empty")
            structural_ok = False
        else:
            if row_ptr[0] != 0:
                err("VAL-ROWPTR", f"row_ptr must start at 0, got {int(row_ptr[0])}")
                structural_ok = False
            if row_ptr[-1] != col_idx.size:
                err(
                    "VAL-ROWPTR",
                    f"row_ptr[-1] ({int(row_ptr[-1])}) must equal the edge "
                    f"count ({col_idx.size})",
                )
                structural_ok = False
            diffs = np.diff(row_ptr)
            if diffs.size and np.any(diffs < 0):
                first = int(np.argmax(diffs < 0))
                err(
                    "VAL-ROWPTR",
                    f"row offsets decrease at vertex {first} "
                    f"({int(row_ptr[first])} -> {int(row_ptr[first + 1])})",
                )
                structural_ok = False

        n = max(int(row_ptr.size) - 1, 0)
        if col_idx.size:
            lo, hi = int(col_idx.min()), int(col_idx.max())
            if lo < 0 or hi >= n:
                err(
                    "VAL-COLIDX",
                    f"neighbor ids span [{lo}, {hi}] but must lie in "
                    f"[0, {n - 1}]",
                )
                structural_ok = False

        if weights is not None:
            w = np.asarray(weights)
            if w.shape != col_idx.shape:
                err(
                    "VAL-WEIGHT",
                    f"weights have shape {w.shape}, expected {col_idx.shape}",
                )
            elif w.size:
                wf = w.astype(np.float64, copy=False)
                bad = ~np.isfinite(wf)
                if np.any(bad):
                    err(
                        "VAL-WEIGHT",
                        f"{int(bad.sum())} weight(s) are NaN or infinite",
                    )
                elif np.any(wf < 0):
                    err(
                        "VAL-WEIGHT",
                        f"{int((wf < 0).sum())} negative weight(s) "
                        f"(min {wf.min():g})",
                    )
                else:
                    n_zero = int((wf == 0).sum())
                    n_huge = int((wf > MAX_SAFE_WEIGHT).sum())
                    if n_zero or n_huge:
                        warn(
                            "VAL-WEIGHT-RANGE",
                            f"{n_zero} zero and {n_huge} overflow-prone "
                            f"weight(s) (safe range is [1, {MAX_SAFE_WEIGHT}])",
                        )

        if not structural_ok:
            return report

        # ---- accounting / statistics (valid structure required) -------
        graph = CSRGraph(row_ptr.astype(np.int64), col_idx.astype(np.int32),
                         None, name=name)
        self._stats(graph, report, warn)
        return report

    def validate(self, graph: CSRGraph) -> Report:
        """Validate an already-constructed (hence structurally sound)
        graph: weight sanity plus the degenerate-shape statistics."""
        report = self.validate_arrays(
            graph.row_ptr, graph.col_idx, graph.weights, name=graph.name
        )
        return report

    def check(self, graph: CSRGraph) -> CSRGraph:
        """Raise :class:`GraphValidationError` on any error finding."""
        report = self.validate(graph)
        if not report.ok:
            raise GraphValidationError(report, name=graph.name)
        return graph

    # ------------------------------------------------------------------
    def _stats(self, graph: CSRGraph, report: Report, warn) -> None:
        n, m = graph.n_vertices, graph.n_edges
        if n == 0 or m == 0:
            warn("VAL-EMPTY", f"{n} vertices, {m} directed edges")
            return

        src = graph.edge_sources().astype(np.int64)
        dst = graph.col_idx.astype(np.int64)
        n_self = int((src == dst).sum())
        if n_self:
            warn("VAL-SELF-LOOP", f"{n_self} self loop(s)")

        key = src * np.int64(n) + dst
        key_sorted = np.sort(key)
        n_dup = int(key.size - np.unique(key_sorted).size)
        if n_dup:
            warn("VAL-DUP-EDGE", f"{n_dup} duplicate parallel edge(s)")

        degrees = graph.degrees
        n_isolated = int((degrees == 0).sum())
        frac = n_isolated / n
        if frac > ISOLATED_WARN_FRACTION:
            warn(
                "VAL-ISOLATED",
                f"{n_isolated}/{n} vertices ({frac:.0%}) are isolated",
            )
        d_max = int(degrees.max())
        d_avg = m / n
        if d_max >= SKEW_MIN_DEGREE and d_avg > 0 and d_max / d_avg > SKEW_WARN_RATIO:
            warn(
                "VAL-SKEW",
                f"d_max {d_max} is {d_max / d_avg:.0f}x the average degree "
                f"{d_avg:.2f}",
            )

        if self.require_sorted and not graph.has_sorted_neighbors():
            report.add(Finding.of(
                "VAL-UNSORTED", spec="", locus=graph.name,
                message="adjacency lists are not sorted",
            ))
        if self.require_symmetric and not graph.is_symmetric():
            warn("VAL-ASYM", "graph is not symmetric (missing reverse edges)")


def sanitize_graph(
    graph: CSRGraph,
    *,
    symmetrize: bool = False,
    clamp_weights: bool = True,
) -> Tuple[CSRGraph, Report]:
    """Normalize a graph into the canonical study form, reporting repairs.

    Drops self loops, dedups parallel edges, sorts adjacency, clamps
    weights into ``[1, MAX_SAFE_WEIGHT]`` (NaN becomes 1), and optionally
    adds missing reverse edges.  Returns ``(repaired, report)``; the
    report's warnings record every repair that actually changed something.
    """
    from .builder import from_edge_arrays

    report = Report(title=f"sanitize {graph.name}")
    report.checked = 1

    def repaired(rule: str, message: str) -> None:
        report.add(Finding(rule=rule, spec="", locus=graph.name,
                           message=message, severity=Severity.WARNING))

    src = graph.edge_sources().astype(np.int64)
    dst = graph.col_idx.astype(np.int64)
    w = None
    if graph.weights is not None:
        wf = graph.weights.astype(np.float64)
        if clamp_weights:
            n_bad = int((~np.isfinite(wf)).sum())
            wf = np.where(np.isfinite(wf), wf, 1.0)
            n_clamped = int(((wf < 1) | (wf > MAX_SAFE_WEIGHT)).sum())
            wf = np.clip(wf, 1.0, float(MAX_SAFE_WEIGHT))
            if n_bad:
                repaired("VAL-WEIGHT", f"replaced {n_bad} non-finite weight(s) with 1")
            if n_clamped:
                repaired(
                    "VAL-WEIGHT-RANGE",
                    f"clamped {n_clamped} weight(s) into [1, {MAX_SAFE_WEIGHT}]",
                )
        w = wf.astype(np.int64)

    n_self = int((src == dst).sum())
    if n_self:
        repaired("VAL-SELF-LOOP", f"dropped {n_self} self loop(s)")

    was_symmetric = graph.is_symmetric() if symmetrize else True
    out = from_edge_arrays(
        src, dst, graph.n_vertices,
        weights=w,
        symmetrize=symmetrize and not was_symmetric,
        dedup=True,
        drop_self_loops=True,
        name=graph.name,
    )
    # from_edge_arrays dedups post-symmetrization, so compare against the
    # self-loop-free count to attribute the delta correctly.
    base_edges = graph.n_edges - n_self
    if symmetrize and not was_symmetric:
        repaired("VAL-ASYM", "added reverse edges to symmetrize the graph")
    elif out.n_edges < base_edges:
        repaired(
            "VAL-DUP-EDGE",
            f"deduplicated {base_edges - out.n_edges} parallel edge(s)",
        )
    return out, report


def quarantine_file(
    path: PathLike,
    quarantine_dir: PathLike,
    *,
    rule: str,
    message: str,
    line: Optional[int] = None,
    policy: str = "strict",
) -> Path:
    """Copy a rejected input into the quarantine directory with a
    machine-readable reason file; returns the reason-file path.

    The original is *copied*, never moved — user inputs are not ours to
    relocate.  The reason file is ``<name>.reason.json`` next to the
    copy, shaped like one failure-manifest entry so tooling that already
    parses :class:`~repro.runtime.errors.FailedRun` JSON can ingest it.
    """
    src = Path(path)
    qdir = Path(quarantine_dir)
    qdir.mkdir(parents=True, exist_ok=True)
    if src.exists():
        shutil.copy2(src, qdir / src.name)
    reason_path = qdir / (src.name + ".reason.json")
    payload = {
        "file": str(src),
        "rule": rule,
        "message": message,
        "line": line,
        "policy": policy,
        "error_class": "validation",
    }
    tmp = reason_path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n")
    tmp.replace(reason_path)
    return reason_path
