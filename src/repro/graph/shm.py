"""Zero-copy shared-memory graph plane for the parallel sweep.

The sweep's worker processes all operate on the *same* deterministic input
graphs, yet before this module each worker either rebuilt its graph from
the dataset registry (CPU time per block) or received a pickled copy
(serialization time plus a private copy per worker).  The plane publishes
each graph's CSR arrays exactly once into POSIX shared memory
(:mod:`multiprocessing.shared_memory`); workers *attach* to the segments
and wrap them in read-only numpy views, so every process shares one
physical copy of ``row_ptr``/``col_idx``/``weights`` with zero
deserialization — the Gunrock/GraphBLAST lesson that shared graph storage
is what amortizes per-variant overhead, applied to the analytic pipeline.

Lifecycle and crash-safety:

* the **publisher** (the sweep supervisor) owns the segments: it unlinks
  them in a ``finally`` and, as a backstop, via ``atexit`` — a crashed or
  interrupted sweep never leaks ``/dev/shm`` segments;
* **workers** only ever attach.  Attached segments are de-registered from
  Python's resource tracker (which would otherwise unlink segments it does
  not own when any worker exits) and closed, never unlinked;
* attach is **tolerant**: a stale cached mapping (e.g. after an in-process
  retry) is dropped and re-attached, and a segment that is genuinely gone
  raises :class:`SharedGraphGone` so the caller can fall back to rebuilding
  the graph locally — a dead plane costs a rebuild, never the block.

``$REPRO_SHM=0`` disables the plane entirely (workers fall back to the
rebuild/pickle paths).
"""

from __future__ import annotations

import atexit
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .csr import CSRGraph

try:  # pragma: no cover - absent only on exotic platforms
    from multiprocessing import resource_tracker, shared_memory

    _HAVE_SHM = True
except ImportError:  # pragma: no cover
    _HAVE_SHM = False

__all__ = [
    "SHM_ENV",
    "SharedGraphGone",
    "SharedArraySpec",
    "SharedGraphHandle",
    "SharedGraphPlane",
    "shm_enabled",
    "attach_graph",
    "detach_all",
]

#: Set to ``0`` (or empty) to disable the shared-memory plane.
SHM_ENV = "REPRO_SHM"


def shm_enabled() -> bool:
    """True when shared-memory publication is available and not disabled."""
    return _HAVE_SHM and os.environ.get(SHM_ENV, "1") not in ("", "0")


class SharedGraphGone(RuntimeError):
    """An attach target no longer exists (publisher closed or crashed)."""


@dataclass(frozen=True)
class SharedArraySpec:
    """Where one numpy array lives in shared memory."""

    segment: str
    shape: Tuple[int, ...]
    dtype: str  #: numpy dtype string (e.g. ``<i8``)


@dataclass(frozen=True)
class SharedGraphHandle:
    """A picklable reference to one published graph.

    Ships to workers instead of the graph itself; :func:`attach_graph`
    reconstructs a read-only :class:`CSRGraph` over the shared buffers.
    """

    graph_name: str
    fingerprint: str
    row_ptr: SharedArraySpec
    col_idx: SharedArraySpec
    weights: Optional[SharedArraySpec]


class SharedGraphPlane:
    """Publisher side: owns the shared segments of a set of graphs."""

    def __init__(self) -> None:
        self._segments: List[object] = []
        self._handles: Dict[str, SharedGraphHandle] = {}
        self._closed = False
        # Backstop only — the sweep closes the plane in a ``finally``.
        atexit.register(self.close)

    def publish(self, name: str, graph: CSRGraph) -> SharedGraphHandle:
        """Copy one graph's CSR arrays into shared memory, once."""
        if self._closed:
            raise SharedGraphGone("graph plane is closed")
        existing = self._handles.get(name)
        if existing is not None:
            return existing
        handle = SharedGraphHandle(
            graph_name=name,
            fingerprint=graph.fingerprint(),
            row_ptr=self._share(graph.row_ptr),
            col_idx=self._share(graph.col_idx),
            weights=None if graph.weights is None else self._share(graph.weights),
        )
        self._handles[name] = handle
        return handle

    def handle(self, name: str) -> Optional[SharedGraphHandle]:
        return self._handles.get(name)

    def close(self) -> None:
        """Close and unlink every published segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except (FileNotFoundError, OSError):
                pass  # already unlinked (or torn down by the OS)
        self._segments.clear()
        self._handles.clear()

    def __enter__(self) -> "SharedGraphPlane":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _share(self, array: np.ndarray) -> SharedArraySpec:
        # Zero-length arrays (an edgeless graph) still need a 1-byte
        # segment — SharedMemory rejects size 0.
        segment = shared_memory.SharedMemory(
            create=True, size=max(1, array.nbytes)
        )
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        self._segments.append(segment)
        _PUBLISHED.add(segment.name)
        return SharedArraySpec(
            segment=segment.name, shape=tuple(array.shape), dtype=array.dtype.str
        )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-process cache of attached segments, so shards of the same graph in
#: one worker map it once, and a retry re-uses (or replaces) the mapping.
_ATTACHED: Dict[str, object] = {}

#: Segment names created by *this* process (or its fork parent, which
#: shares the same resource tracker).  Attaching one of these must not
#: de-register it — the publisher's unlink does that exactly once.
_PUBLISHED: set = set()


def _untrack(segment) -> None:
    """De-register an attached segment from the resource tracker.

    On Python < 3.13 every ``SharedMemory``, attached or created, is
    registered with the tracker — which then unlinks segments it does not
    own when the registering process exits.  The publisher owns cleanup;
    attachers must not.
    """
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


def _attach_segment(name: str):
    segment = _ATTACHED.get(name)
    if segment is not None:
        return segment
    try:
        try:  # Python >= 3.13: never tracked in the first place
            segment = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:
            segment = shared_memory.SharedMemory(name=name)
            if name not in _PUBLISHED:
                _untrack(segment)
    except FileNotFoundError:
        raise SharedGraphGone(
            f"shared-memory segment {name!r} is gone (publisher exited?)"
        ) from None
    _ATTACHED[name] = segment
    return segment


def _attach_array(spec: SharedArraySpec) -> np.ndarray:
    for retry in (False, True):
        segment = _attach_segment(spec.segment)
        try:
            array = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf
            )
            break
        except (TypeError, ValueError):
            # Stale mapping (segment closed under us): drop and re-attach.
            _ATTACHED.pop(spec.segment, None)
            if retry:
                raise SharedGraphGone(
                    f"shared-memory segment {spec.segment!r} is unusable"
                ) from None
    array.flags.writeable = False
    return array


def attach_graph(handle: SharedGraphHandle) -> CSRGraph:
    """Reconstruct a read-only :class:`CSRGraph` over shared buffers.

    Zero-copy: the returned graph's arrays are views of the published
    segments (``CSRGraph`` keeps already-contiguous, correctly-typed
    arrays as-is).  Raises :class:`SharedGraphGone` when the plane no
    longer exists — callers fall back to rebuilding the graph.
    """
    if not _HAVE_SHM:  # pragma: no cover - platform without shm
        raise SharedGraphGone("multiprocessing.shared_memory is unavailable")
    graph = CSRGraph(
        row_ptr=_attach_array(handle.row_ptr),
        col_idx=_attach_array(handle.col_idx),
        weights=None if handle.weights is None else _attach_array(handle.weights),
        name=handle.graph_name,
    )
    # The publisher hashed the same bytes; inherit instead of re-hashing
    # megabytes per attach.
    object.__setattr__(graph, "_fingerprint", handle.fingerprint)
    return graph


def detach_all() -> None:
    """Close every segment this process attached (never unlinks)."""
    for segment in _ATTACHED.values():
        try:
            segment.close()
        except OSError:  # pragma: no cover - already closed by the OS
            pass
    _ATTACHED.clear()
