"""Graph substrate: containers, builders, generators, I/O, and analysis.

This subpackage is the study's data layer.  The canonical storage forms are
:class:`~repro.graph.csr.CSRGraph` (vertex-based kernels) and
:class:`~repro.graph.coo.COOGraph` (edge-based kernels), matching Section 4.2
of the paper.
"""

from .builder import (
    MAX_WEIGHT,
    csr_to_coo,
    deterministic_weights,
    from_edge_arrays,
    from_edge_list,
)
from .coo import COOGraph
from .csr import CSRGraph
from .datasets import (
    DATASETS,
    EXTRA_DATASETS,
    DatasetSpec,
    dataset_names,
    extra_dataset_names,
    load_all,
    load_dataset,
    load_extra,
)
from .generators import (
    clustered,
    grid2d,
    hub_and_spokes,
    power_law,
    random_uniform,
    rmat,
    road_network,
)
from .io import (
    load_graph,
    read_dimacs,
    read_edge_list,
    read_matrix_market,
    write_dimacs,
    write_edge_list,
    write_matrix_market,
)
from .shm import (
    SharedGraphGone,
    SharedGraphHandle,
    SharedGraphPlane,
    attach_graph,
    shm_enabled,
)
from .properties import (
    GraphProperties,
    analyze,
    bfs_levels,
    connected_components_count,
    estimate_diameter,
)
from .validate import (
    MAX_SAFE_WEIGHT,
    GraphParseError,
    GraphValidationError,
    GraphValidator,
    quarantine_file,
    sanitize_graph,
)

__all__ = [
    "CSRGraph",
    "COOGraph",
    "from_edge_arrays",
    "from_edge_list",
    "csr_to_coo",
    "deterministic_weights",
    "MAX_WEIGHT",
    "grid2d",
    "road_network",
    "rmat",
    "power_law",
    "clustered",
    "hub_and_spokes",
    "random_uniform",
    "GraphProperties",
    "analyze",
    "bfs_levels",
    "estimate_diameter",
    "connected_components_count",
    "DatasetSpec",
    "DATASETS",
    "EXTRA_DATASETS",
    "extra_dataset_names",
    "load_extra",
    "dataset_names",
    "load_dataset",
    "load_all",
    "load_graph",
    "read_dimacs",
    "write_dimacs",
    "read_edge_list",
    "write_edge_list",
    "read_matrix_market",
    "write_matrix_market",
    "SharedGraphPlane",
    "SharedGraphHandle",
    "SharedGraphGone",
    "attach_graph",
    "shm_enabled",
    "GraphValidator",
    "GraphParseError",
    "GraphValidationError",
    "sanitize_graph",
    "quarantine_file",
    "MAX_SAFE_WEIGHT",
]
