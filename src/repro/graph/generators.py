"""Synthetic graph generators.

The study's five inputs were chosen to span graph *shapes*: a 2-D grid and a
road network (tiny degrees, huge diameter), an RMAT graph and a social
network (power-law degrees, small diameter), and a publication graph (dense,
clustered).  Real traces are not redistributable here, so each generator
reproduces the shape parameters that drive the paper's findings — degree
distribution and diameter (Section 5.13 correlates against exactly these).

All generators are deterministic given their ``seed`` and are fully
vectorized (no per-edge Python loops).
"""

from __future__ import annotations

import numpy as np

from .builder import from_edge_arrays
from .csr import CSRGraph

__all__ = [
    "grid2d",
    "road_network",
    "rmat",
    "power_law",
    "clustered",
    "hub_and_spokes",
    "random_uniform",
]


def grid2d(rows: int, cols: int, *, weighted: bool = True, name: str = "grid2d") -> CSRGraph:
    """A ``rows x cols`` 4-neighbor mesh (the ``2d-2e20.sym`` stand-in).

    Every interior vertex has degree 4; the diameter is ``rows + cols - 2``.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid must have positive dimensions")
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    right_src = idx[:, :-1].ravel()
    right_dst = idx[:, 1:].ravel()
    down_src = idx[:-1, :].ravel()
    down_dst = idx[1:, :].ravel()
    src = np.concatenate([right_src, down_src])
    dst = np.concatenate([right_dst, down_dst])
    return from_edge_arrays(
        src, dst, rows * cols, add_weights=weighted, name=name
    )


def road_network(
    n_vertices: int,
    *,
    extra_edge_fraction: float = 0.15,
    removal_fraction: float = 0.12,
    seed: int = 0,
    weighted: bool = True,
    name: str = "road",
) -> CSRGraph:
    """A road-map-like graph (the ``USA-road-d.NY`` stand-in).

    Road networks are near-planar with average degree ~2.8, maximum degree
    below 10, and very large diameter.  We start from a thin rectangular
    grid (aspect ratio 4:1 stretches the diameter), randomly delete a
    fraction of the grid edges (dead ends, rivers), and add a few short
    "diagonal" connections so degrees vary between 1 and ~8.
    """
    if n_vertices < 4:
        raise ValueError("road networks need at least 4 vertices")
    rng = np.random.default_rng(seed)
    cols = max(2, int(np.sqrt(n_vertices / 4.0)))
    rows = max(2, n_vertices // cols)
    n = rows * cols
    idx = np.arange(n, dtype=np.int64).reshape(rows, cols)
    right = np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()], axis=1)
    down = np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()], axis=1)
    grid_edges = np.concatenate([right, down])
    keep = rng.random(grid_edges.shape[0]) >= removal_fraction
    # Keep a spanning backbone: never delete the first column's vertical
    # edges nor the first row's horizontal edges, so the graph stays
    # connected (road inputs are connected).
    backbone_h = right[:: cols - 1] if cols > 1 else right[:0]
    backbone_v = down[: cols]
    kept = np.concatenate([grid_edges[keep], backbone_h, backbone_v])

    n_extra = int(extra_edge_fraction * kept.shape[0])
    if n_extra:
        base = rng.integers(0, n, size=n_extra, dtype=np.int64)
        # Short-range connections only: roads link nearby intersections.
        offset = rng.integers(1, cols + 2, size=n_extra, dtype=np.int64)
        extra = np.stack([base, np.minimum(base + offset, n - 1)], axis=1)
        kept = np.concatenate([kept, extra])

    return from_edge_arrays(
        kept[:, 0], kept[:, 1], n, add_weights=weighted, name=name
    )


def rmat(
    scale: int,
    edge_factor: int = 8,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    weighted: bool = True,
    name: str = "rmat",
) -> CSRGraph:
    """An RMAT (recursive-matrix) graph (the ``rmat22.sym`` stand-in).

    ``2**scale`` vertices and ``edge_factor * 2**scale`` undirected edge
    samples, generated with the classic (a, b, c, d) quadrant recursion.
    The default parameters are Graph500's, which also match the Galois
    generator used by the paper.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("quadrant probabilities must sum to <= 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = edge_factor * n
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # Each recursion level picks a quadrant: vectorized over all m edges.
    for level in range(scale):
        r = rng.random(m)
        bit_src = (r >= a + b).astype(np.int64)  # quadrants c, d set src bit
        r2 = rng.random(m)
        # Within the chosen src half, pick the dst bit with the conditional
        # probabilities b/(a+b) (top) and d/(c+d) (bottom).
        p_top = b / (a + b)
        p_bot = d / (c + d) if (c + d) > 0 else 0.0
        thresh = np.where(bit_src == 0, p_top, p_bot)
        bit_dst = (r2 < thresh).astype(np.int64)
        src = (src << 1) | bit_src
        dst = (dst << 1) | bit_dst
    # Permute vertex ids so locality does not leak the recursion structure.
    perm = rng.permutation(n).astype(np.int64)
    return from_edge_arrays(
        perm[src], perm[dst], n, add_weights=weighted, name=name
    )


def power_law(
    n_vertices: int,
    attach: int = 9,
    *,
    seed: int = 0,
    weighted: bool = True,
    name: str = "powerlaw",
) -> CSRGraph:
    """A preferential-attachment graph (the ``soc-LiveJournal1`` stand-in).

    Barabási–Albert-style: each new vertex attaches ``attach`` edges to
    existing vertices chosen proportionally to their current degree, giving
    the scale-free degree distribution of social networks (a few hubs with
    degree orders of magnitude above the average).
    """
    if n_vertices < attach + 1:
        raise ValueError("n_vertices must exceed the attachment count")
    rng = np.random.default_rng(seed)
    m0 = attach + 1
    # Seed clique.
    seed_pairs = np.array(
        [(i, j) for i in range(m0) for j in range(i + 1, m0)], dtype=np.int64
    )
    # Repeated-endpoint trick: sampling uniformly from the endpoint list of
    # existing edges is sampling proportionally to degree.
    total_new = (n_vertices - m0) * attach
    endpoint_pool = np.empty(2 * seed_pairs.size // 2 * 2 + 2 * total_new, dtype=np.int64)
    pool_len = 0
    for u, v in seed_pairs:
        endpoint_pool[pool_len] = u
        endpoint_pool[pool_len + 1] = v
        pool_len += 2
    src_new = np.repeat(np.arange(m0, n_vertices, dtype=np.int64), attach)
    dst_new = np.empty(total_new, dtype=np.int64)
    # Vectorize in waves: all `attach` edges of one new vertex are sampled
    # together from the pool as it existed before that vertex arrived.
    randoms = rng.random(total_new)
    pos = 0
    for v in range(m0, n_vertices):
        picks = (randoms[pos : pos + attach] * pool_len).astype(np.int64)
        targets = endpoint_pool[picks]
        dst_new[pos : pos + attach] = targets
        endpoint_pool[pool_len : pool_len + attach] = targets
        endpoint_pool[pool_len + attach : pool_len + 2 * attach] = v
        pool_len += 2 * attach
        pos += attach
    src = np.concatenate([seed_pairs[:, 0], src_new])
    dst = np.concatenate([seed_pairs[:, 1], dst_new])
    return from_edge_arrays(
        src, dst, n_vertices, add_weights=weighted, name=name
    )


def clustered(
    n_communities: int,
    community_size_mean: float = 12.0,
    *,
    membership_per_vertex: float = 1.6,
    heavy_tail: float = 0.0,
    max_community: int = 2000,
    seed: int = 0,
    weighted: bool = True,
    name: str = "clustered",
) -> CSRGraph:
    """An overlapping-clique graph (the ``coPapersDBLP`` stand-in).

    Co-authorship graphs are unions of cliques (one per paper), which is why
    coPapersDBLP has a huge average degree (56.4) and strong clustering.  We
    sample community sizes (Poisson by default; Pareto-tailed when
    ``heavy_tail`` > 0, mimicking the rare huge collaborations that give
    coPapersDBLP its 3,299-degree hubs), assign member vertices (with
    overlap), and emit the full clique of every community.
    """
    if n_communities < 1:
        raise ValueError("need at least one community")
    rng = np.random.default_rng(seed)
    if heavy_tail > 0:
        raw = rng.pareto(heavy_tail, n_communities) * community_size_mean
        sizes = 3 + np.minimum(raw, max_community - 3).astype(np.int64)
    else:
        sizes = 3 + rng.poisson(max(community_size_mean - 3.0, 0.1), n_communities)
    total_slots = int(sizes.sum())
    n_vertices = max(int(total_slots / membership_per_vertex), int(sizes.max()) + 1)
    members = rng.integers(0, n_vertices, size=total_slots, dtype=np.int64)

    # Emit cliques: for each community, all ordered pairs of its members.
    srcs = []
    dsts = []
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    for ci in range(n_communities):
        group = members[offsets[ci] : offsets[ci + 1]]
        g = np.unique(group)
        if g.size < 2:
            continue
        a, b = np.meshgrid(g, g, indexing="ij")
        mask = a < b
        srcs.append(a[mask])
        dsts.append(b[mask])
    if not srcs:
        raise ValueError("degenerate community structure")
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    return from_edge_arrays(
        src, dst, n_vertices, add_weights=weighted, name=name
    )


def hub_and_spokes(
    n_vertices: int,
    n_hubs: int = 4,
    *,
    spoke_degree: float = 2.0,
    hub_fraction: float = 0.6,
    seed: int = 0,
    weighted: bool = True,
    name: str = "hubs",
) -> CSRGraph:
    """A few massive hubs plus a sparse periphery (wiki-Talk-like shape).

    Communication graphs concentrate a large fraction of all edges on a
    handful of vertices (administrators, bots).  ``hub_fraction`` of the
    edges connect random vertices to one of the ``n_hubs`` hubs; the rest
    form a sparse random periphery.  The result has extreme d_max/d_avg
    skew — the worst case for thread-granularity load balance.
    """
    if n_vertices < n_hubs + 2:
        raise ValueError("need more vertices than hubs")
    rng = np.random.default_rng(seed)
    total_edges = int(n_vertices * spoke_degree)
    n_hub_edges = int(total_edges * hub_fraction)
    hubs = rng.integers(0, n_hubs, size=n_hub_edges, dtype=np.int64)
    others = rng.integers(n_hubs, n_vertices, size=n_hub_edges, dtype=np.int64)
    n_rest = total_edges - n_hub_edges
    rest_src = rng.integers(0, n_vertices, size=n_rest, dtype=np.int64)
    rest_dst = rng.integers(0, n_vertices, size=n_rest, dtype=np.int64)
    src = np.concatenate([hubs, rest_src])
    dst = np.concatenate([others, rest_dst])
    return from_edge_arrays(
        src, dst, n_vertices, add_weights=weighted, name=name
    )


def random_uniform(
    n_vertices: int,
    n_edges: int,
    *,
    seed: int = 0,
    weighted: bool = True,
    name: str = "uniform",
) -> CSRGraph:
    """An Erdős–Rényi-style graph (test workloads, not a paper input)."""
    if n_vertices < 2:
        raise ValueError("need at least two vertices")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_vertices, size=n_edges, dtype=np.int64)
    dst = rng.integers(0, n_vertices, size=n_edges, dtype=np.int64)
    return from_edge_arrays(
        src, dst, n_vertices, add_weights=weighted, name=name
    )
