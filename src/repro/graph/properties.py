"""Graph property analysis (Tables 4 and 5 of the paper).

The study characterizes each input by vertex/edge counts, storage size,
average and maximum degree, the percentage of vertices with degree >= 32
and >= 512 (the warp and half-block widths), and the diameter.  Section 5.13
then correlates throughputs against exactly these properties, so we compute
all of them here.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, fields
from typing import Dict, Optional

import numpy as np

from .csr import CSRGraph

__all__ = [
    "GraphProperties",
    "analyze",
    "bfs_levels",
    "estimate_diameter",
    "connected_components_count",
]


@dataclass(frozen=True)
class GraphProperties:
    """The per-graph rows of Tables 4 and 5."""

    name: str
    n_vertices: int
    n_edges: int
    size_mb: float
    avg_degree: float
    max_degree: int
    pct_deg_ge_32: float
    pct_deg_ge_512: float
    diameter: int

    def table4_row(self) -> str:
        return (
            f"{self.name:<18} {self.n_vertices:>10,} {self.n_edges:>12,} "
            f"{self.size_mb:>8.1f}"
        )

    def table5_row(self) -> str:
        return (
            f"{self.name:<18} {self.avg_degree:>6.1f} {self.max_degree:>7,} "
            f"{self.pct_deg_ge_32:>6.1%} {self.pct_deg_ge_512:>8.3%} "
            f"{self.diameter:>8,}"
        )

    # -- model-feature views (repro.bench.predictor) -------------------
    def features(self) -> Dict[str, float]:
        """The properties as regression features.

        Counts span orders of magnitude across scales, so they enter in
        log space; the degree percentiles and average degree are already
        scale-free and enter raw.  Key order is fixed — the predictor's
        artifact schema is built from it.
        """
        return {
            "g_log_vertices": math.log1p(self.n_vertices),
            "g_log_edges": math.log1p(self.n_edges),
            "g_avg_degree": self.avg_degree,
            "g_log_max_degree": math.log1p(self.max_degree),
            "g_pct_deg_ge_32": self.pct_deg_ge_32,
            "g_pct_deg_ge_512": self.pct_deg_ge_512,
            "g_log_diameter": math.log1p(self.diameter),
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready exact field dict (trace-store metadata)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "GraphProperties":
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """Levels (hop distances) from ``source``; unreachable = -1.

    Vectorized frontier expansion; used for diameter estimation and as the
    serial BFS reference.
    """
    n = graph.n_vertices
    if not 0 <= source < n:
        raise ValueError("source out of range")
    level = np.full(n, -1, dtype=np.int64)
    level[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    row_ptr, col = graph.row_ptr, graph.col_idx
    while frontier.size:
        depth += 1
        # Gather all neighbors of the frontier.
        begs = row_ptr[frontier]
        ends = row_ptr[frontier + 1]
        counts = ends - begs
        total = int(counts.sum())
        if total == 0:
            break
        starts = np.repeat(begs, counts)
        # Offset of each gathered slot within its vertex's adjacency list.
        seg_starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
        inner = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, counts)
        nbrs = col[starts + inner]
        fresh = nbrs[level[nbrs] == -1]
        if fresh.size == 0:
            break
        fresh = np.unique(fresh)
        level[fresh] = depth
        frontier = fresh
    return level


def estimate_diameter(graph: CSRGraph, *, sweeps: int = 4, seed: int = 0) -> int:
    """Lower-bound the diameter with the iterated double-sweep heuristic.

    Exact diameters are infeasible for the larger inputs; double sweep is
    exact on trees and extremely tight on road/grid graphs, which are the
    inputs where the diameter matters to the study.
    """
    n = graph.n_vertices
    if n == 0:
        return 0
    rng = np.random.default_rng(seed)
    start = int(rng.integers(0, n))
    best = 0
    for _ in range(max(1, sweeps)):
        levels = bfs_levels(graph, start)
        reached = levels >= 0
        if not reached.any():
            break
        ecc = int(levels[reached].max())
        best = max(best, ecc)
        # Restart from the farthest vertex.
        far = np.flatnonzero(levels == ecc)
        nxt = int(far[0])
        if nxt == start:
            break
        start = nxt
    return best


def connected_components_count(graph: CSRGraph) -> int:
    """Number of connected components (union of BFS sweeps)."""
    n = graph.n_vertices
    seen = np.zeros(n, dtype=bool)
    count = 0
    for v in range(n):
        if not seen[v]:
            count += 1
            levels = bfs_levels(graph, v)
            seen |= levels >= 0
    return count


def analyze(graph: CSRGraph, *, diameter: Optional[int] = None) -> GraphProperties:
    """Compute the Table 4 + Table 5 properties of ``graph``."""
    deg = graph.degrees
    n = graph.n_vertices
    avg = float(deg.mean()) if n else 0.0
    mx = int(deg.max()) if n else 0
    ge32 = float((deg >= 32).mean()) if n else 0.0
    ge512 = float((deg >= 512).mean()) if n else 0.0
    diam = estimate_diameter(graph) if diameter is None else diameter
    return GraphProperties(
        name=graph.name,
        n_vertices=n,
        n_edges=graph.n_edges,
        size_mb=graph.memory_bytes() / (1024.0 * 1024.0),
        avg_degree=avg,
        max_degree=mx,
        pct_deg_ge_32=ge32,
        pct_deg_ge_512=ge512,
        diameter=diam,
    )
