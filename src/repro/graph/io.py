"""Graph file I/O.

The paper's inputs come from four sources with three on-disk formats:
DIMACS ``.gr`` (road maps), whitespace edge lists (SNAP), and Matrix Market
``.mtx`` (SuiteSparse).  We read and write all three so users can run the
suite on the original files when they have them.

Every reader reports malformed text as :class:`GraphParseError` carrying
the file path and the 1-based line number, and :func:`load_graph` runs the
parsed graph through :class:`~repro.graph.validate.GraphValidator` behind
a ``strict`` / ``repair`` policy (see :mod:`repro.graph.validate`):

* ``strict`` — any structural error (and any row with unexpected extra
  columns) rejects the file; with ``quarantine_dir`` set the file is
  copied there next to a machine-readable reason file.
* ``repair`` (default) — tolerant parsing plus the
  :func:`~repro.graph.validate.sanitize_graph` normalization pipeline
  (self-loop drop, dedup, weight clamping).
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from .builder import from_edge_arrays
from .csr import CSRGraph
from .validate import (
    GraphParseError,
    GraphValidationError,
    GraphValidator,
    quarantine_file,
    sanitize_graph,
)

__all__ = [
    "read_dimacs",
    "write_dimacs",
    "read_edge_list",
    "write_edge_list",
    "read_matrix_market",
    "write_matrix_market",
    "load_graph",
    "GraphParseError",
]

PathLike = Union[str, Path]

#: Numbered line: (1-based line number, stripped text).
_NumberedLine = Tuple[int, str]


def _open_text(path: PathLike, mode: str = "rt"):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode)
    return open(path, mode)


def _parse_numeric_lines(
    lines: List[_NumberedLine],
    n_cols_min: int,
    *,
    path: PathLike,
    n_cols_max: int = 3,
    strict: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Parse whitespace-separated numeric rows with real error context.

    Returns ``(values, linenos)`` where ``values`` is a dense
    ``float64[rows, n_cols]`` array (the column count is fixed by the
    first row, at least ``n_cols_min``, at most ``n_cols_max``) and
    ``linenos`` maps each row back to its 1-based line number.  Rows with
    fewer columns than the first row, or non-numeric fields, raise
    :class:`GraphParseError`; rows with *extra* columns raise under
    ``strict`` and are truncated otherwise.
    """
    if not lines:
        return np.empty((0, n_cols_min), dtype=np.float64), np.empty(0, np.int64)
    n_cols = min(max(n_cols_min, len(lines[0][1].split())), n_cols_max)
    rows = []
    linenos = []
    for lineno, ln in lines:
        parts = ln.split()
        if len(parts) < n_cols:
            raise GraphParseError(
                path, lineno,
                f"expected {n_cols} columns, got {len(parts)}: {ln!r}",
            )
        if strict and len(parts) > n_cols:
            raise GraphParseError(
                path, lineno,
                f"unexpected extra columns (expected {n_cols}, got "
                f"{len(parts)}): {ln!r}",
            )
        try:
            rows.append([float(p) for p in parts[:n_cols]])
        except ValueError:
            raise GraphParseError(
                path, lineno, f"non-numeric field in row: {ln!r}"
            ) from None
        linenos.append(lineno)
    return (
        np.asarray(rows, dtype=np.float64),
        np.asarray(linenos, dtype=np.int64),
    )


def _check_vertex_range(
    ids: np.ndarray,
    linenos: np.ndarray,
    n_vertices: Optional[int],
    *,
    path: PathLike,
    one_indexed: bool,
) -> None:
    """Reject out-of-range endpoint ids, pointing at the offending line."""
    if ids.size == 0:
        return
    lo = 1 if one_indexed else 0
    bad = ids < lo
    if n_vertices is not None:
        hi = n_vertices if one_indexed else n_vertices - 1
        bad |= ids > hi
    if np.any(bad):
        pos = int(np.argmax(bad))
        origin = "1-indexed" if one_indexed else "0-indexed"
        raise GraphParseError(
            path, int(linenos[pos]),
            f"vertex id {int(ids[pos])} out of range (format is {origin}"
            + (f", {n_vertices} vertices declared)" if n_vertices is not None else ")"),
        )


# ----------------------------------------------------------------------
# DIMACS challenge format (.gr): "c" comments, "p sp N M", "a u v w".
# ----------------------------------------------------------------------
def read_dimacs(
    path: PathLike,
    *,
    symmetrize: bool = True,
    strict: bool = False,
    name: Optional[str] = None,
) -> CSRGraph:
    """Read a 9th-DIMACS shortest-path file (1-indexed ``a u v w`` arcs)."""
    n_vertices = None
    arcs: List[_NumberedLine] = []
    with _open_text(path) as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) < 4 or parts[1] not in ("sp", "edge"):
                    raise GraphParseError(
                        path, lineno, f"unsupported problem line: {line!r}"
                    )
                try:
                    n_vertices = int(parts[2])
                except ValueError:
                    raise GraphParseError(
                        path, lineno, f"non-integer vertex count: {parts[2]!r}"
                    ) from None
                if n_vertices < 0:
                    raise GraphParseError(
                        path, lineno, f"negative vertex count: {n_vertices}"
                    )
            elif line.startswith("a") or line.startswith("e"):
                arcs.append((lineno, line[1:].strip()))
            else:
                raise GraphParseError(
                    path, lineno, f"unrecognized DIMACS line: {line!r}"
                )
    if n_vertices is None:
        raise GraphParseError(path, None, "missing DIMACS problem ('p') line")
    arr, linenos = _parse_numeric_lines(
        arcs, 2, path=path, n_cols_max=3, strict=strict
    )
    srcs = arr[:, 0].astype(np.int64)
    dsts = arr[:, 1].astype(np.int64)
    _check_vertex_range(srcs, linenos, n_vertices, path=path, one_indexed=True)
    _check_vertex_range(dsts, linenos, n_vertices, path=path, one_indexed=True)
    wts = (
        arr[:, 2].astype(np.int64)
        if arr.shape[1] >= 3
        else np.ones(srcs.size, dtype=np.int64)
    )
    return from_edge_arrays(
        srcs - 1,
        dsts - 1,
        n_vertices,
        weights=wts,
        symmetrize=symmetrize,
        name=name or Path(path).stem,
    )


def write_dimacs(graph: CSRGraph, path: PathLike) -> None:
    """Write the directed edges of ``graph`` as a DIMACS ``.gr`` file."""
    src = graph.edge_sources()
    with _open_text(path, "wt") as fh:
        fh.write(f"c generated by repro\np sp {graph.n_vertices} {graph.n_edges}\n")
        w = graph.weights if graph.weights is not None else np.ones(graph.n_edges, dtype=np.int32)
        for s, d, wt in zip(src.tolist(), graph.col_idx.tolist(), w.tolist()):
            fh.write(f"a {s + 1} {d + 1} {wt}\n")


# ----------------------------------------------------------------------
# SNAP-style edge lists: "# comment" lines then "u v [w]" per line.
# ----------------------------------------------------------------------
def read_edge_list(
    path: PathLike,
    *,
    symmetrize: bool = True,
    weighted: Optional[bool] = None,
    strict: bool = False,
    name: Optional[str] = None,
) -> CSRGraph:
    """Read a whitespace edge list (0-indexed; SNAP convention)."""
    data_lines: List[_NumberedLine] = []
    with _open_text(path) as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            data_lines.append((lineno, line))
    if not data_lines:
        raise GraphParseError(path, None, "edge list contains no edges")
    first_cols = len(data_lines[0][1].split())
    has_weights = first_cols >= 3 if weighted is None else weighted
    arr, linenos = _parse_numeric_lines(
        data_lines, 3 if has_weights else 2, path=path,
        n_cols_max=3 if has_weights else 2, strict=strict,
    )
    src = arr[:, 0].astype(np.int64)
    dst = arr[:, 1].astype(np.int64)
    _check_vertex_range(src, linenos, None, path=path, one_indexed=False)
    _check_vertex_range(dst, linenos, None, path=path, one_indexed=False)
    w = arr[:, 2].astype(np.int64) if has_weights and arr.shape[1] >= 3 else None
    n = int(max(src.max(), dst.max())) + 1
    return from_edge_arrays(
        src, dst, n, weights=w, symmetrize=symmetrize,
        name=name or Path(path).stem,
    )


def write_edge_list(graph: CSRGraph, path: PathLike) -> None:
    """Write directed edges as ``u v [w]`` lines."""
    src = graph.edge_sources()
    with _open_text(path, "wt") as fh:
        fh.write("# generated by repro\n")
        if graph.weights is not None:
            for s, d, w in zip(src.tolist(), graph.col_idx.tolist(), graph.weights.tolist()):
                fh.write(f"{s} {d} {w}\n")
        else:
            for s, d in zip(src.tolist(), graph.col_idx.tolist()):
                fh.write(f"{s} {d}\n")


# ----------------------------------------------------------------------
# Matrix Market coordinate format (SuiteSparse).
# ----------------------------------------------------------------------
def read_matrix_market(
    path: PathLike,
    *,
    strict: bool = False,
    name: Optional[str] = None,
) -> CSRGraph:
    """Read an ``.mtx`` coordinate file (pattern or real, general/symmetric)."""
    with _open_text(path) as fh:
        header = fh.readline().strip()
        if not header.startswith("%%MatrixMarket"):
            raise GraphParseError(path, 1, "not a Matrix Market file")
        tokens = header.split()
        if len(tokens) < 5 or tokens[1] != "matrix" or tokens[2] != "coordinate":
            raise GraphParseError(
                path, 1, f"unsupported MatrixMarket header: {header!r}"
            )
        field, symmetry = tokens[3], tokens[4]
        if field not in ("pattern", "real", "integer"):
            raise GraphParseError(path, 1, f"unsupported field type: {field}")
        lineno = 1
        line = fh.readline()
        lineno += 1
        while line.startswith("%"):
            line = fh.readline()
            lineno += 1
        if not line.strip():
            raise GraphParseError(path, lineno, "missing size line")
        try:
            rows_n, cols_n, nnz = (int(x) for x in line.split()[:3])
        except ValueError:
            raise GraphParseError(
                path, lineno, f"malformed size line: {line.strip()!r}"
            ) from None
        if rows_n != cols_n:
            raise GraphParseError(
                path, lineno,
                f"adjacency matrices must be square, got {rows_n}x{cols_n}",
            )
        if nnz < 0:
            raise GraphParseError(path, lineno, f"negative entry count: {nnz}")
        data: List[_NumberedLine] = []
        for _ in range(nnz):
            raw = fh.readline()
            lineno += 1
            if not raw:
                raise GraphParseError(
                    path, lineno,
                    f"file truncated: expected {nnz} entries, got {len(data)}",
                )
            text = raw.strip()
            if text:
                data.append((lineno, text))
        if len(data) < nnz:
            raise GraphParseError(
                path, lineno,
                f"file truncated: expected {nnz} entries, got {len(data)}",
            )
    min_cols = 2 if field == "pattern" else 3
    arr, linenos = _parse_numeric_lines(
        data, min_cols, path=path, n_cols_max=3, strict=strict
    )
    src = arr[:, 0].astype(np.int64)
    dst = arr[:, 1].astype(np.int64)
    _check_vertex_range(src, linenos, rows_n, path=path, one_indexed=True)
    _check_vertex_range(dst, linenos, rows_n, path=path, one_indexed=True)
    w = None
    if field in ("real", "integer") and arr.shape[1] >= 3:
        w = np.maximum(np.abs(arr[:, 2]).astype(np.int64), 1)
    return from_edge_arrays(
        src - 1, dst - 1, rows_n, weights=w,
        # Both 'general' and 'symmetric' storage get the study's
        # two-directed-edges convention.
        symmetrize=True,
        name=name or Path(path).stem,
    )


def write_matrix_market(graph: CSRGraph, path: PathLike) -> None:
    """Write the graph as a general pattern/integer coordinate ``.mtx``."""
    src = graph.edge_sources()
    field = "integer" if graph.weights is not None else "pattern"
    with _open_text(path, "wt") as fh:
        fh.write(f"%%MatrixMarket matrix coordinate {field} general\n")
        fh.write(f"{graph.n_vertices} {graph.n_vertices} {graph.n_edges}\n")
        if graph.weights is not None:
            for s, d, w in zip(src.tolist(), graph.col_idx.tolist(), graph.weights.tolist()):
                fh.write(f"{s + 1} {d + 1} {w}\n")
        else:
            for s, d in zip(src.tolist(), graph.col_idx.tolist()):
                fh.write(f"{s + 1} {d + 1}\n")


_READERS = {
    ".gr": read_dimacs,
    ".el": read_edge_list,
    ".txt": read_edge_list,
    ".wel": read_edge_list,
    ".mtx": read_matrix_market,
}

_POLICIES = ("strict", "repair")


def load_graph(
    path: PathLike,
    *,
    policy: str = "repair",
    validate: bool = True,
    quarantine_dir: Optional[PathLike] = None,
    **kwargs,
) -> CSRGraph:
    """Read, validate and normalize a graph file (dispatch on extension).

    ``policy`` selects how much malformation is tolerated:

    * ``"strict"`` — extra columns reject the row, and any error-severity
      validation finding (out-of-range ids, bad weights) rejects the file
      with :class:`GraphValidationError`;
    * ``"repair"`` (default) — extra columns are truncated and the graph
      is passed through :func:`sanitize_graph` (self-loop drop, dedup,
      weight clamping) before being returned.

    With ``quarantine_dir``, a rejected file is copied there alongside a
    ``<name>.reason.json`` describing the rejection (see
    :func:`~repro.graph.validate.quarantine_file`); the exception is
    re-raised either way.  ``validate=False`` skips validation entirely
    (the pre-hardening behavior).  Remaining ``kwargs`` go to the format
    reader (``.gz`` is transparently handled).
    """
    if policy not in _POLICIES:
        raise ValueError(f"unknown policy {policy!r}; expected one of {_POLICIES}")
    p = Path(path)
    suffix = p.suffixes[-2] if p.suffix == ".gz" and len(p.suffixes) >= 2 else p.suffix
    reader = _READERS.get(suffix)
    if reader is None:
        raise ValueError(
            f"unknown graph format {suffix!r}; expected one of {sorted(_READERS)}"
        )
    try:
        graph = reader(path, strict=(policy == "strict"), **kwargs)
        if not validate:
            return graph
        if policy == "strict":
            report = GraphValidator().validate(graph)
            if not report.ok:
                raise GraphValidationError(report, name=graph.name)
            return graph
        repaired, _report = sanitize_graph(graph)
        return repaired
    except GraphParseError as exc:
        if quarantine_dir is not None:
            quarantine_file(
                path, quarantine_dir,
                rule="VAL-PARSE", message=exc.reason, line=exc.line,
                policy=policy,
            )
        raise
    except GraphValidationError as exc:
        if quarantine_dir is not None:
            first = exc.report.errors[0] if exc.report.errors else None
            quarantine_file(
                path, quarantine_dir,
                rule=first.rule if first else "VAL-PARSE",
                message=first.message if first else str(exc),
                policy=policy,
            )
        raise
