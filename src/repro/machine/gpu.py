"""Analytic GPU timing model.

Converts an :class:`~repro.machine.trace.ExecutionTrace` plus the mapping
axes of a :class:`~repro.styles.spec.StyleSpec` into simulated time on a
:class:`~repro.machine.specs.GPUSpec`.

Model structure per launch (one :class:`IterationProfile`):

1. **Issue makespan** — per-item costs are decomposed into execution units
   (warps or blocks) according to the granularity and persistence axes
   (:mod:`repro.machine.scheduling`); the launch's issue time is the list-
   scheduling bound ``max(total_width_weighted / issue_slots, longest_unit)``.
2. **Memory time** — total bytes moved divided by bandwidth, with
   uncoalesced (scattered) accesses expanded to full sectors.  The launch
   takes ``max(issue, memory)`` — whichever resource saturates first.
3. **Serial add-ons** — same-address atomic conflicts, hot-counter
   operations (worklist size), the reduction of the chosen reduction style,
   and the kernel-launch overhead.

The default-``cuda::atomic`` flavor multiplies the RMW and data-array
load/store costs (seq_cst + system scope), which is the entire Figure 1
effect: kernels that stream loads/stores through ``cuda::atomic`` (CC, MIS,
BFS, SSSP) slow down by the ls-multiplier while TC (one add, plain
structure reads) barely moves.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..styles.axes import (
    AtomicFlavor,
    Granularity,
    GpuReduction,
    Iteration,
    Model,
    Persistence,
)
from ..styles.spec import StyleSpec
from .scheduling import (
    WARP_WIDTH,
    UnitDecomposition,
    cached_decomposition,
    gpu_units,
    makespan,
)
from .specs import GPUSpec
from .trace import ExecutionTrace, IterationProfile

__all__ = ["GPUModel"]

_DECOMP_CACHE_ATTR = "_gpu_decomp_cache"

#: Independent L2 atomic units: collisions on different addresses are
#: processed concurrently across this many banks.
L2_BANKS = 32.0


class GPUModel:
    """Times execution traces on one GPU spec."""

    def __init__(self, spec: GPUSpec):
        self.spec = spec

    # ------------------------------------------------------------------
    def time_trace(self, trace: ExecutionTrace, style: StyleSpec) -> float:
        """Simulated wall time in seconds for the whole program."""
        if style.model is not Model.CUDA:
            raise ValueError("GPUModel times CUDA specs only")
        mem_bw = self._bandwidth_for(trace)
        cycles = 0.0
        for profile in trace.profiles:
            cycles += self.profile_cycles(profile, style, mem_bw=mem_bw)
        return self.spec.seconds(cycles)

    def _bandwidth_for(self, trace: ExecutionTrace) -> float:
        """Effective streaming bandwidth for this program's working set.

        When the CSR arrays plus the data arrays fit in the L2, repeated
        sweeps stream from L2, not DRAM (the paper's inputs exceed all
        caches; scaled inputs often do not).
        """
        footprint = trace.n_vertices * 16.0 + trace.n_edges * 8.0
        if footprint <= self.spec.l2_size_bytes:
            return self.spec.l2_bytes_per_cycle
        return self.spec.mem_bytes_per_cycle

    def time_trace_batch(
        self, trace: ExecutionTrace, styles: Sequence[StyleSpec]
    ) -> List[float]:
        """Simulated wall times of many mapping variants of one trace.

        Bit-identical to calling :meth:`time_trace` per style: the batch
        resolves the trace's bandwidth once and, within each launch, shares
        the core (issue + memory + contention) cycles across styles whose
        mapping differs only in the reduction axis — that value is the same
        float either way, it is simply not recomputed.
        """
        styles = list(styles)
        contexts = [self._style_context(style) for style in styles]
        s = self.spec
        mem_bw = self._bandwidth_for(trace)
        totals = [0.0] * len(styles)
        for p in trace.profiles:
            if p.n_items == 0:
                for i in range(len(totals)):
                    totals[i] += s.cycles_launch
                continue
            cores: dict = {}
            for i, (style, gran, persistent, flavor_ls, flavor_rmw, key) in (
                enumerate(contexts)
            ):
                core = cores.get(key)
                if core is None:
                    core = self._core_cycles(
                        p, style, gran, persistent, flavor_ls, flavor_rmw, mem_bw
                    )
                    cores[key] = core
                totals[i] += (
                    core
                    + self._reduction_cycles(p, style, gran, flavor_rmw)
                    + s.cycles_launch
                )
        return [s.seconds(t) for t in totals]

    def _style_context(self, style: StyleSpec) -> Tuple:
        """Pre-resolved mapping context of one style, with the key under
        which its core cycles are shared within a launch."""
        if style.model is not Model.CUDA:
            raise ValueError("GPUModel times CUDA specs only")
        s = self.spec
        flavor_rmw = (
            s.cudaatomic_rmw_mult
            if style.atomic_flavor is AtomicFlavor.CUDA_ATOMIC
            else 1.0
        )
        flavor_ls = (
            s.cudaatomic_ls_mult
            if style.atomic_flavor is AtomicFlavor.CUDA_ATOMIC
            else 1.0
        )
        gran = style.granularity or Granularity.THREAD
        persistent = style.persistence is Persistence.PERSISTENT
        core_key = (style.atomic_flavor, gran, persistent, style.iteration)
        return style, gran, persistent, flavor_ls, flavor_rmw, core_key

    def throughput(self, trace: ExecutionTrace, style: StyleSpec) -> float:
        """Giga-edges per second (the paper's Section 4.5 metric)."""
        seconds = self.time_trace(trace, style)
        return trace.n_edges / seconds / 1e9

    # ------------------------------------------------------------------
    def profile_cycles(
        self,
        p: IterationProfile,
        style: StyleSpec,
        *,
        mem_bw: Optional[float] = None,
    ) -> float:
        """Simulated cycles of one kernel launch."""
        s = self.spec
        if mem_bw is None:
            mem_bw = s.mem_bytes_per_cycle
        if p.n_items == 0:
            return s.cycles_launch
        _, gran, persistent, flavor_ls, flavor_rmw, _ = self._style_context(style)
        core = self._core_cycles(
            p, style, gran, persistent, flavor_ls, flavor_rmw, mem_bw
        )
        red_cycles = self._reduction_cycles(p, style, gran, flavor_rmw)
        return core + red_cycles + s.cycles_launch

    def _core_cycles(
        self,
        p: IterationProfile,
        style: StyleSpec,
        gran: Granularity,
        persistent: bool,
        flavor_ls: float,
        flavor_rmw: float,
        mem_bw: float,
    ) -> float:
        """Issue + memory + contention cycles of one launch — everything
        except the reduction style and the launch overhead.  Depends on the
        style only through (atomic flavor, granularity, persistence,
        iteration), which is what makes batch sharing possible."""
        s = self.spec
        # --- per-item coefficient assembly -----------------------------
        alpha = (
            p.base_cycles * s.cycles_compute
            + p.struct_loads_base * s.cycles_load
            + p.shared_loads_base * s.cycles_load * flavor_ls
            + p.shared_stores_base * s.cycles_store * flavor_ls
            + p.atomics_base * s.cycles_atomic * flavor_rmw
        )
        beta_atomic = p.atomics_inner * s.cycles_atomic * flavor_rmw
        beta_other = (
            p.inner_cycles * s.cycles_compute
            + p.struct_loads_inner * s.cycles_load
            + p.shared_loads_inner * s.cycles_load * flavor_ls
            + p.shared_stores_inner * s.cycles_store * flavor_ls
        )
        # Same-address inner atomics cannot be strip-mined across lanes.
        if p.atomics_same_address_per_item and gran is not Granularity.THREAD:
            beta_par, beta_ser = beta_other, beta_atomic
        else:
            beta_par, beta_ser = beta_other + beta_atomic, 0.0
        # Granularity synchronization: block-wide processing of one item
        # requires a barrier per item; warps sync implicitly (lockstep).
        if gran is Granularity.BLOCK:
            alpha += (p.barriers_per_item + 1.0) * s.cycles_barrier
        elif p.barriers_per_item:
            alpha += p.barriers_per_item * s.cycles_barrier

        # --- issue makespan --------------------------------------------
        units = self._units(p, gran, persistent)
        total, longest = units.times(alpha, beta_par, beta_ser)
        issue_cycles = makespan(total * units.width, longest, s.issue_slots)

        # --- memory time -------------------------------------------------
        mem_cycles = self._memory_cycles(
            p, style, gran, mem_bw, flavor_ls=flavor_ls, flavor_rmw=flavor_rmw
        )

        # --- serial add-ons ----------------------------------------------
        # Same-address atomics serialize per address; different addresses
        # proceed in parallel across the L2 banks.  The launch pays the
        # longest single-address chain plus the bank-throughput cost of the
        # remaining collisions (scaled by how much of the launch is
        # actually concurrent).
        active_threads = s.issue_slots * WARP_WIDTH
        overlap = min(1.0, active_threads / p.n_items)
        conflict_cycles = flavor_rmw * s.cycles_atomic_conflict * (
            p.max_conflict
            + p.conflict_extra * overlap / L2_BANKS
        )
        hot_cycles = p.hot_atomics * s.cycles_hot_atomic * flavor_rmw

        return max(issue_cycles, mem_cycles) + conflict_cycles + hot_cycles

    # ------------------------------------------------------------------
    def _units(
        self, p: IterationProfile, gran: Granularity, persistent: bool
    ) -> UnitDecomposition:
        """Decompose with a per-profile memo (mapping variants re-time the
        same profiles; the decomposition depends only on gran/persistence
        and this device's geometry)."""
        key = (gran, persistent, self.spec.block_size, self.spec.resident_threads)
        return cached_decomposition(
            p,
            _DECOMP_CACHE_ATTR,
            key,
            lambda: gpu_units(
                p.inner,
                p.n_items,
                gran,
                persistent,
                block_size=self.spec.block_size,
                resident_threads=self.spec.resident_threads,
            ),
        )

    def _memory_cycles(
        self,
        p: IterationProfile,
        style: StyleSpec,
        gran: Granularity,
        mem_bw: float,
        *,
        flavor_ls: float = 1.0,
        flavor_rmw: float = 1.0,
    ) -> float:
        """DRAM time: bytes moved / bandwidth, sector-expanded when
        scattered.

        Structure streams (CSR/COO/worklist) coalesce when consecutive
        lanes touch consecutive addresses: always true for the per-item
        (base) accesses and for strip-mined inner loops (warp/block
        granularity), but false for thread-granularity neighbor walks,
        where each lane streams through its own adjacency list.
        Data-array accesses (dist/comp/rank...) are scattered by nature.
        """
        s = self.spec
        inner_total = float(p.total_inner)
        n = float(p.n_items)
        struct_inner_factor = (
            s.uncoalesced_factor if gran is Granularity.THREAD else 1.0
        )
        if style.iteration is Iteration.EDGE and p.inner is None:
            struct_inner_factor = 1.0
        struct_bytes = 4.0 * (
            p.struct_loads_base * n + p.struct_loads_inner * inner_total * struct_inner_factor
        )
        shared_accesses = (
            (p.shared_loads_base + p.shared_stores_base) * n
            + (p.shared_loads_inner + p.shared_stores_inner) * inner_total
        )
        if p.atomics_same_address_per_item:
            # An item's inner atomics all hit one cell: the line stays in
            # the L2 and reaches memory once, not once per trip.
            atomic_accesses = (p.atomics_base + min(p.atomics_inner, 1.0)) * n
        else:
            atomic_accesses = p.atomics_base * n + p.atomics_inner * inner_total
        # Default cuda::atomic (seq_cst, system scope) defeats caching and
        # pipelining of the data-array traffic; the stall time is modeled
        # as serialization-equivalent extra traffic.
        scattered_bytes = 4.0 * s.scatter_factor * (
            shared_accesses * flavor_ls + 2.0 * atomic_accesses * flavor_rmw
        )
        return (struct_bytes + scattered_bytes) / mem_bw

    def _reduction_cycles(
        self,
        p: IterationProfile,
        style: StyleSpec,
        gran: Granularity,
        flavor_rmw: float,
    ) -> float:
        """Section 2.10.1 reduction styles.

        * global-add: every contribution is an atomic on one L2 address —
          fully serialized at the hot-atomic rate.
        * block-add: block-scope atomics on a global block counter do not
          beat the L2 (same path, narrower scope), and the style adds a
          barrier plus one global add per block — the slowest, matching
          Figure 10 and the paper's explanation.
        * reduction-add: warp-shuffle trees are issue-parallel; only one
          global add per block remains.
        """
        if p.reduction_items <= 0 or style.gpu_reduction is None:
            return 0.0
        s = self.spec
        items = p.reduction_items
        lanes_per_item = {
            Granularity.THREAD: 1,
            Granularity.WARP: WARP_WIDTH,
            Granularity.BLOCK: s.block_size,
        }[gran]
        launch_threads = max(p.n_items * lanes_per_item, 1)
        n_blocks = max(1, -(-launch_threads // s.block_size))
        red = style.gpu_reduction
        if red is GpuReduction.GLOBAL_ADD:
            return items * s.cycles_hot_atomic * flavor_rmw
        if red is GpuReduction.BLOCK_ADD:
            return (
                items * s.cycles_hot_atomic * flavor_rmw
                + n_blocks * (s.cycles_hot_atomic + 2.0 * s.cycles_barrier)
            )
        # REDUCTION_ADD: parallel shuffle tree + one global add per block.
        parallel = items * s.cycles_shuffle_red / (s.issue_slots * WARP_WIDTH)
        return parallel + n_blocks * s.cycles_hot_atomic
