"""Analytic GPU timing model.

Converts an :class:`~repro.machine.trace.ExecutionTrace` plus the mapping
axes of a :class:`~repro.styles.spec.StyleSpec` into simulated time on a
:class:`~repro.machine.specs.GPUSpec`.

Model structure per launch (one :class:`IterationProfile`):

1. **Issue makespan** — per-item costs are decomposed into execution units
   (warps or blocks) according to the granularity and persistence axes
   (:mod:`repro.machine.scheduling`); the launch's issue time is the list-
   scheduling bound ``max(total_width_weighted / issue_slots, longest_unit)``.
2. **Memory time** — total bytes moved divided by bandwidth, with
   uncoalesced (scattered) accesses expanded to full sectors.  The launch
   takes ``max(issue, memory)`` — whichever resource saturates first.
3. **Serial add-ons** — same-address atomic conflicts, hot-counter
   operations (worklist size), the reduction of the chosen reduction style,
   and the kernel-launch overhead.

The default-``cuda::atomic`` flavor multiplies the RMW and data-array
load/store costs (seq_cst + system scope), which is the entire Figure 1
effect: kernels that stream loads/stores through ``cuda::atomic`` (CC, MIS,
BFS, SSSP) slow down by the ls-multiplier while TC (one add, plain
structure reads) barely moves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..styles.axes import (
    AtomicFlavor,
    Granularity,
    GpuReduction,
    Iteration,
    Model,
    Persistence,
)
from ..styles.spec import StyleSpec
from .scheduling import (
    WARP_WIDTH,
    UnitDecomposition,
    cached_decomposition,
    gpu_uniform_geometry,
    gpu_units,
    makespan,
    stack_decompositions,
)
from .specs import GPUSpec
from .trace import ExecutionTrace, IterationProfile, ProfileMatrix

__all__ = ["GPUModel"]

_DECOMP_CACHE_ATTR = "_gpu_decomp_cache"

#: Independent L2 atomic units: collisions on different addresses are
#: processed concurrently across this many banks.
L2_BANKS = 32.0


class GPUModel:
    """Times execution traces on one GPU spec."""

    def __init__(self, spec: GPUSpec):
        self.spec = spec
        self._bw_cache: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    def time_trace(self, trace: ExecutionTrace, style: StyleSpec) -> float:
        """Simulated wall time in seconds for the whole program."""
        if style.model is not Model.CUDA:
            raise ValueError("GPUModel times CUDA specs only")
        mem_bw = self._bandwidth_for(trace)
        cycles = 0.0
        for profile in trace.profiles:
            cycles += self.profile_cycles(profile, style, mem_bw=mem_bw)
        return self.spec.seconds(cycles)

    def _bandwidth_for(self, trace: ExecutionTrace) -> float:
        """Effective streaming bandwidth for this program's working set.

        When the CSR arrays plus the data arrays fit in the L2, repeated
        sweeps stream from L2, not DRAM (the paper's inputs exceed all
        caches; scaled inputs often do not).  The resolution is memoized
        per trace fingerprint — the (n_vertices, n_edges) pair that fully
        determines it — so repeated batch calls skip it.
        """
        key = (trace.n_vertices, trace.n_edges)
        bw = self._bw_cache.get(key)
        if bw is None:
            footprint = trace.n_vertices * 16.0 + trace.n_edges * 8.0
            if footprint <= self.spec.l2_size_bytes:
                bw = self.spec.l2_bytes_per_cycle
            else:
                bw = self.spec.mem_bytes_per_cycle
            self._bw_cache[key] = bw
        return bw

    def time_trace_batch(
        self, trace: ExecutionTrace, styles: Sequence[StyleSpec]
    ) -> List[float]:
        """Simulated wall times of many mapping variants of one trace.

        Bit-identical to calling :meth:`time_trace` per style, but computed
        as one vectorized pass over the trace's
        :class:`~repro.machine.trace.ProfileMatrix`: core (issue + memory +
        contention) cycles are evaluated once per distinct (granularity,
        persistence, iteration) × atomic-flavor combination as a
        per-step vector, reduction cycles once per distinct reduction
        context, and styles gather their step columns by group index — a
        style whose mapping differs only in the reduction axis reuses the
        exact same core floats.  The per-step cycle matrix is reduced over
        the step axis with ``np.add.reduce``, which accumulates in the
        same left-to-right order as the scalar loop.
        """
        styles = list(styles)
        contexts = [self._style_context(style) for style in styles]
        if not styles:
            return []
        s = self.spec
        mem_bw = self._bandwidth_for(trace)
        pm = trace.profile_matrix()
        cycles = np.full((pm.n_steps, len(styles)), s.cycles_launch)
        if pm.nonzero.size:
            # Core-cycle group index: styles sharing (granularity,
            # persistence, iteration) share one batch evaluation, with
            # their distinct atomic-flavor pairs as its rows.
            core_rows: Dict[Tuple, Dict[Tuple[float, float], int]] = {}
            for style, gran, persistent, flavor_ls, flavor_rmw, _ in contexts:
                rows = core_rows.setdefault(
                    (gran, persistent, style.iteration), {}
                )
                rows.setdefault((flavor_ls, flavor_rmw), len(rows))
            # Core and reduction vectors depend only on (trace, device,
            # group), so they are memoized on the profile matrix — warm
            # re-timing (trace-store resumes, cross-device matrix passes)
            # replays the stored floats instead of recomputing them.
            core_mats = {
                gkey: pm.geometry(
                    ("gpu-core", s, gkey, tuple(rows)),
                    lambda gk=gkey, fl=tuple(rows): self._core_cycles_batch(
                        pm, gk[0], gk[1], gk[2], list(fl), mem_bw
                    ),
                )
                for gkey, rows in core_rows.items()
            }
            reds: Dict[Tuple, object] = {}
            add = np.empty((len(styles), pm.nonzero.size))
            for i, (style, gran, persistent, flavor_ls, flavor_rmw, _) in (
                enumerate(contexts)
            ):
                gkey = (gran, persistent, style.iteration)
                core = core_mats[gkey][core_rows[gkey][flavor_ls, flavor_rmw]]
                rkey = (style.gpu_reduction, gran, flavor_rmw)
                red = reds.get(rkey)
                if red is None:
                    red = pm.geometry(
                        ("gpu-red", s, rkey),
                        lambda rk=rkey: self._reduction_cycles_batch(
                            pm, rk[0], rk[1], rk[2]
                        ),
                    )
                    reds[rkey] = red
                add[i] = core + red
            cycles[pm.nonzero] += add.T
        totals = np.add.reduce(cycles, axis=0)
        return [float(s.seconds(t)) for t in totals]

    def _style_context(self, style: StyleSpec) -> Tuple:
        """Pre-resolved mapping context of one style, with the key under
        which its core cycles are shared within a launch."""
        if style.model is not Model.CUDA:
            raise ValueError("GPUModel times CUDA specs only")
        s = self.spec
        flavor_rmw = (
            s.cudaatomic_rmw_mult
            if style.atomic_flavor is AtomicFlavor.CUDA_ATOMIC
            else 1.0
        )
        flavor_ls = (
            s.cudaatomic_ls_mult
            if style.atomic_flavor is AtomicFlavor.CUDA_ATOMIC
            else 1.0
        )
        gran = style.granularity or Granularity.THREAD
        persistent = style.persistence is Persistence.PERSISTENT
        core_key = (style.atomic_flavor, gran, persistent, style.iteration)
        return style, gran, persistent, flavor_ls, flavor_rmw, core_key

    def throughput(self, trace: ExecutionTrace, style: StyleSpec) -> float:
        """Giga-edges per second (the paper's Section 4.5 metric)."""
        seconds = self.time_trace_batch(trace, [style])[0]
        return trace.n_edges / seconds / 1e9

    # ------------------------------------------------------------------
    def _core_cycles_batch(
        self,
        pm: ProfileMatrix,
        gran: Granularity,
        persistent: bool,
        iteration: Optional[Iteration],
        flavors: Sequence[Tuple[float, float]],
        mem_bw: float,
    ) -> np.ndarray:
        """Vectorized :meth:`_core_cycles`: one ``(flavors × steps)``
        matrix over the trace's nonzero steps, entry-for-entry bit-identical
        to the scalar expression.  The zero-coefficient branches the scalar
        path skips only ever skip exact ``+ 0.0`` terms, so they are applied
        unconditionally here."""
        s = self.spec
        fls = np.array([f[0] for f in flavors])[:, None]
        frm = np.array([f[1] for f in flavors])[:, None]
        # --- per-item coefficient assembly -----------------------------
        alpha = (
            pm.base_cycles * s.cycles_compute
            + pm.struct_loads_base * s.cycles_load
            + pm.shared_loads_base * s.cycles_load * fls
            + pm.shared_stores_base * s.cycles_store * fls
            + pm.atomics_base * s.cycles_atomic * frm
        )
        beta_atomic = pm.atomics_inner * s.cycles_atomic * frm
        beta_other = (
            pm.inner_cycles * s.cycles_compute
            + pm.struct_loads_inner * s.cycles_load
            + pm.shared_loads_inner * s.cycles_load * fls
            + pm.shared_stores_inner * s.cycles_store * fls
        )
        # Same-address inner atomics cannot be strip-mined across lanes.
        if gran is Granularity.THREAD:
            beta_par = beta_other + beta_atomic
            beta_ser = None
        else:
            beta_par = np.where(
                pm.same_address, beta_other, beta_other + beta_atomic
            )
            beta_ser = np.where(pm.same_address, beta_atomic, 0.0)
        if gran is Granularity.BLOCK:
            alpha = alpha + (pm.barriers_per_item + 1.0) * s.cycles_barrier
        else:
            alpha = alpha + pm.barriers_per_item * s.cycles_barrier

        # --- issue makespan --------------------------------------------
        total = np.empty_like(alpha)
        longest = np.empty_like(alpha)
        uniform = ~pm.has_inner
        if uniform.any():
            units_u, base_u, _ = pm.geometry(
                ("gpu", gran, persistent, s.block_size, s.resident_threads),
                lambda: gpu_uniform_geometry(
                    pm.n_items_int[uniform], gran, persistent,
                    block_size=s.block_size,
                    resident_threads=s.resident_threads,
                ),
            )
            t = alpha[:, uniform] * base_u
            total[:, uniform] = t * units_u
            longest[:, uniform] = t
        arrayful = np.flatnonzero(pm.has_inner)
        if arrayful.size:
            stacked = pm.geometry(
                (
                    "gpu-stack", gran, persistent,
                    s.block_size, s.resident_threads,
                ),
                lambda: stack_decompositions(
                    [
                        self._units(pm.profiles[j], gran, persistent)
                        for j in arrayful
                    ],
                    arrayful,
                ),
            )
            for su in stacked:
                pos = su.positions
                total[:, pos], longest[:, pos] = su.times_batch(
                    alpha[:, pos],
                    beta_par[:, pos],
                    None if beta_ser is None else beta_ser[:, pos],
                )
        width = (
            s.block_size / WARP_WIDTH if gran is Granularity.BLOCK else 1.0
        )
        issue = np.maximum(total * width / s.issue_slots, longest)

        # --- memory time -----------------------------------------------
        mem = self._memory_cycles_batch(pm, gran, iteration, fls, frm, mem_bw)

        # --- serial add-ons --------------------------------------------
        overlap = np.minimum(1.0, s.issue_slots * WARP_WIDTH / pm.n_items)
        conflict = frm * s.cycles_atomic_conflict * (
            pm.max_conflict + pm.conflict_extra * overlap / L2_BANKS
        )
        hot = pm.hot_atomics * s.cycles_hot_atomic * frm
        return np.maximum(issue, mem) + conflict + hot

    def _memory_cycles_batch(
        self,
        pm: ProfileMatrix,
        gran: Granularity,
        iteration: Optional[Iteration],
        fls: np.ndarray,
        frm: np.ndarray,
        mem_bw: float,
    ) -> np.ndarray:
        """Vectorized :meth:`_memory_cycles` over the nonzero steps."""
        s = self.spec
        sif = s.uncoalesced_factor if gran is Granularity.THREAD else 1.0
        sif_vec = np.full(pm.n_items.shape, sif)
        if iteration is Iteration.EDGE:
            sif_vec[~pm.has_inner] = 1.0
        struct_bytes = 4.0 * (
            pm.struct_loads_base * pm.n_items
            + pm.struct_loads_inner * pm.total_inner * sif_vec
        )
        shared_accesses = (
            (pm.shared_loads_base + pm.shared_stores_base) * pm.n_items
            + (pm.shared_loads_inner + pm.shared_stores_inner) * pm.total_inner
        )
        atomic_accesses = np.where(
            pm.same_address,
            (pm.atomics_base + np.minimum(pm.atomics_inner, 1.0)) * pm.n_items,
            pm.atomics_base * pm.n_items + pm.atomics_inner * pm.total_inner,
        )
        scattered_bytes = 4.0 * s.scatter_factor * (
            shared_accesses * fls + 2.0 * atomic_accesses * frm
        )
        return (struct_bytes + scattered_bytes) / mem_bw

    def _reduction_cycles_batch(
        self,
        pm: ProfileMatrix,
        red: Optional[GpuReduction],
        gran: Granularity,
        flavor_rmw: float,
    ):
        """Vectorized :meth:`_reduction_cycles` over the nonzero steps.

        Returns the scalar ``0.0`` when the style has no reduction axis
        (broadcasting it is exact: ``x + 0.0 == x`` for the non-negative
        cycle counts involved)."""
        if red is None:
            return 0.0
        s = self.spec
        lanes_per_item = {
            Granularity.THREAD: 1,
            Granularity.WARP: WARP_WIDTH,
            Granularity.BLOCK: s.block_size,
        }[gran]
        launch_threads = np.maximum(pm.n_items_int * lanes_per_item, 1)
        n_blocks = np.maximum(1, -(-launch_threads // s.block_size))
        items = pm.reduction_items
        if red is GpuReduction.GLOBAL_ADD:
            val = items * s.cycles_hot_atomic * flavor_rmw
        elif red is GpuReduction.BLOCK_ADD:
            val = (
                items * s.cycles_hot_atomic * flavor_rmw
                + n_blocks * (s.cycles_hot_atomic + 2.0 * s.cycles_barrier)
            )
        else:
            val = (
                items * s.cycles_shuffle_red / (s.issue_slots * WARP_WIDTH)
                + n_blocks * s.cycles_hot_atomic
            )
        return np.where(items > 0, val, 0.0)

    # ------------------------------------------------------------------
    def profile_cycles(
        self,
        p: IterationProfile,
        style: StyleSpec,
        *,
        mem_bw: Optional[float] = None,
    ) -> float:
        """Simulated cycles of one kernel launch."""
        s = self.spec
        if mem_bw is None:
            mem_bw = s.mem_bytes_per_cycle
        if p.n_items == 0:
            return s.cycles_launch
        _, gran, persistent, flavor_ls, flavor_rmw, _ = self._style_context(style)
        core = self._core_cycles(
            p, style, gran, persistent, flavor_ls, flavor_rmw, mem_bw
        )
        red_cycles = self._reduction_cycles(p, style, gran, flavor_rmw)
        return core + red_cycles + s.cycles_launch

    def _core_cycles(
        self,
        p: IterationProfile,
        style: StyleSpec,
        gran: Granularity,
        persistent: bool,
        flavor_ls: float,
        flavor_rmw: float,
        mem_bw: float,
    ) -> float:
        """Issue + memory + contention cycles of one launch — everything
        except the reduction style and the launch overhead.  Depends on the
        style only through (atomic flavor, granularity, persistence,
        iteration), which is what makes batch sharing possible."""
        s = self.spec
        # --- per-item coefficient assembly -----------------------------
        alpha = (
            p.base_cycles * s.cycles_compute
            + p.struct_loads_base * s.cycles_load
            + p.shared_loads_base * s.cycles_load * flavor_ls
            + p.shared_stores_base * s.cycles_store * flavor_ls
            + p.atomics_base * s.cycles_atomic * flavor_rmw
        )
        beta_atomic = p.atomics_inner * s.cycles_atomic * flavor_rmw
        beta_other = (
            p.inner_cycles * s.cycles_compute
            + p.struct_loads_inner * s.cycles_load
            + p.shared_loads_inner * s.cycles_load * flavor_ls
            + p.shared_stores_inner * s.cycles_store * flavor_ls
        )
        # Same-address inner atomics cannot be strip-mined across lanes.
        if p.atomics_same_address_per_item and gran is not Granularity.THREAD:
            beta_par, beta_ser = beta_other, beta_atomic
        else:
            beta_par, beta_ser = beta_other + beta_atomic, 0.0
        # Granularity synchronization: block-wide processing of one item
        # requires a barrier per item; warps sync implicitly (lockstep).
        if gran is Granularity.BLOCK:
            alpha += (p.barriers_per_item + 1.0) * s.cycles_barrier
        elif p.barriers_per_item:
            alpha += p.barriers_per_item * s.cycles_barrier

        # --- issue makespan --------------------------------------------
        units = self._units(p, gran, persistent)
        total, longest = units.times(alpha, beta_par, beta_ser)
        issue_cycles = makespan(total * units.width, longest, s.issue_slots)

        # --- memory time -------------------------------------------------
        mem_cycles = self._memory_cycles(
            p, style, gran, mem_bw, flavor_ls=flavor_ls, flavor_rmw=flavor_rmw
        )

        # --- serial add-ons ----------------------------------------------
        # Same-address atomics serialize per address; different addresses
        # proceed in parallel across the L2 banks.  The launch pays the
        # longest single-address chain plus the bank-throughput cost of the
        # remaining collisions (scaled by how much of the launch is
        # actually concurrent).
        active_threads = s.issue_slots * WARP_WIDTH
        overlap = min(1.0, active_threads / p.n_items)
        conflict_cycles = flavor_rmw * s.cycles_atomic_conflict * (
            p.max_conflict
            + p.conflict_extra * overlap / L2_BANKS
        )
        hot_cycles = p.hot_atomics * s.cycles_hot_atomic * flavor_rmw

        return max(issue_cycles, mem_cycles) + conflict_cycles + hot_cycles

    # ------------------------------------------------------------------
    def _units(
        self, p: IterationProfile, gran: Granularity, persistent: bool
    ) -> UnitDecomposition:
        """Decompose with a per-profile memo (mapping variants re-time the
        same profiles; the decomposition depends only on gran/persistence
        and this device's geometry)."""
        key = (gran, persistent, self.spec.block_size, self.spec.resident_threads)
        return cached_decomposition(
            p,
            _DECOMP_CACHE_ATTR,
            key,
            lambda: gpu_units(
                p.inner,
                p.n_items,
                gran,
                persistent,
                block_size=self.spec.block_size,
                resident_threads=self.spec.resident_threads,
            ),
        )

    def _memory_cycles(
        self,
        p: IterationProfile,
        style: StyleSpec,
        gran: Granularity,
        mem_bw: float,
        *,
        flavor_ls: float = 1.0,
        flavor_rmw: float = 1.0,
    ) -> float:
        """DRAM time: bytes moved / bandwidth, sector-expanded when
        scattered.

        Structure streams (CSR/COO/worklist) coalesce when consecutive
        lanes touch consecutive addresses: always true for the per-item
        (base) accesses and for strip-mined inner loops (warp/block
        granularity), but false for thread-granularity neighbor walks,
        where each lane streams through its own adjacency list.
        Data-array accesses (dist/comp/rank...) are scattered by nature.
        """
        s = self.spec
        inner_total = float(p.total_inner)
        n = float(p.n_items)
        struct_inner_factor = (
            s.uncoalesced_factor if gran is Granularity.THREAD else 1.0
        )
        if style.iteration is Iteration.EDGE and p.inner is None:
            struct_inner_factor = 1.0
        struct_bytes = 4.0 * (
            p.struct_loads_base * n + p.struct_loads_inner * inner_total * struct_inner_factor
        )
        shared_accesses = (
            (p.shared_loads_base + p.shared_stores_base) * n
            + (p.shared_loads_inner + p.shared_stores_inner) * inner_total
        )
        if p.atomics_same_address_per_item:
            # An item's inner atomics all hit one cell: the line stays in
            # the L2 and reaches memory once, not once per trip.
            atomic_accesses = (p.atomics_base + min(p.atomics_inner, 1.0)) * n
        else:
            atomic_accesses = p.atomics_base * n + p.atomics_inner * inner_total
        # Default cuda::atomic (seq_cst, system scope) defeats caching and
        # pipelining of the data-array traffic; the stall time is modeled
        # as serialization-equivalent extra traffic.
        scattered_bytes = 4.0 * s.scatter_factor * (
            shared_accesses * flavor_ls + 2.0 * atomic_accesses * flavor_rmw
        )
        return (struct_bytes + scattered_bytes) / mem_bw

    def _reduction_cycles(
        self,
        p: IterationProfile,
        style: StyleSpec,
        gran: Granularity,
        flavor_rmw: float,
    ) -> float:
        """Section 2.10.1 reduction styles.

        * global-add: every contribution is an atomic on one L2 address —
          fully serialized at the hot-atomic rate.
        * block-add: block-scope atomics on a global block counter do not
          beat the L2 (same path, narrower scope), and the style adds a
          barrier plus one global add per block — the slowest, matching
          Figure 10 and the paper's explanation.
        * reduction-add: warp-shuffle trees are issue-parallel; only one
          global add per block remains.
        """
        if p.reduction_items <= 0 or style.gpu_reduction is None:
            return 0.0
        s = self.spec
        items = p.reduction_items
        lanes_per_item = {
            Granularity.THREAD: 1,
            Granularity.WARP: WARP_WIDTH,
            Granularity.BLOCK: s.block_size,
        }[gran]
        launch_threads = max(p.n_items * lanes_per_item, 1)
        n_blocks = max(1, -(-launch_threads // s.block_size))
        red = style.gpu_reduction
        if red is GpuReduction.GLOBAL_ADD:
            return items * s.cycles_hot_atomic * flavor_rmw
        if red is GpuReduction.BLOCK_ADD:
            return (
                items * s.cycles_hot_atomic * flavor_rmw
                + n_blocks * (s.cycles_hot_atomic + 2.0 * s.cycles_barrier)
            )
        # REDUCTION_ADD: parallel shuffle tree + one global add per block.
        parallel = items * s.cycles_shuffle_red / (s.issue_slots * WARP_WIDTH)
        return parallel + n_blocks * s.cycles_hot_atomic
