"""The four devices of the paper's testbed (Section 4.3).

System 1: Ryzen Threadripper 2950X (16 cores) + Titan V.
System 2: dual Xeon Gold 6226R (32 cores)    + RTX 3090.

The constants encode the architectural differences the paper's results
hinge on:

* The Titan V (Volta, sm_70) executes default-``cuda::atomic`` operations
  dramatically slower than the Ampere RTX 3090 — Figure 1 shows median
  Atomic/CudaAtomic ratios of ~100 on the Titan V vs ~10 on the 3090.  The
  ``cudaatomic_*`` multipliers reflect that (seq_cst system-scope fences are
  far more expensive pre-Ampere).
* CPU atomics go through the shared L3 and are relatively more expensive
  than GPU atomics (Section 5.5), and OpenMP ``min``/``max`` updates must be
  critical sections (Section 5.3.1) — that cost lives in the CPU model.
"""

from __future__ import annotations

from typing import Dict, Union

from .specs import CPUSpec, GPUSpec

__all__ = [
    "TITAN_V",
    "RTX_3090",
    "THREADRIPPER_2950X",
    "XEON_GOLD_6226R",
    "GPUS",
    "CPUS",
    "DEVICES",
    "get_device",
]

TITAN_V = GPUSpec(
    name="Titan V",
    sm_count=80,
    issue_warps_per_sm=4,
    clock_ghz=1.2,
    mem_bytes_per_cycle=544.0,  # 653 GB/s / 1.2 GHz
    l2_size_bytes=4.5e6,
    l2_bytes_per_cycle=1600.0,
    block_size=256,
    resident_threads=80 * 2048,
    cycles_compute=1.0,
    cycles_load=6.0,
    cycles_store=4.0,
    cycles_atomic=18.0,
    cycles_atomic_conflict=3.0,
    cycles_hot_atomic=4.0,
    cycles_shared_atomic=8.0,
    cycles_shuffle_red=1.5,
    cycles_barrier=30.0,
    cycles_launch=6000.0,  # ~5 us at 1.2 GHz
    uncoalesced_factor=3.0,
    scatter_factor=8.0,
    cudaatomic_rmw_mult=300.0,
    cudaatomic_ls_mult=420.0,
    mem_bytes=12e9,  # 12 GB HBM2
)

RTX_3090 = GPUSpec(
    name="RTX 3090",
    sm_count=82,
    issue_warps_per_sm=4,
    clock_ghz=1.74,
    mem_bytes_per_cycle=538.0,  # 936 GB/s / 1.74 GHz
    l2_size_bytes=6.0e6,
    l2_bytes_per_cycle=1600.0,
    block_size=256,
    resident_threads=82 * 1536,
    cycles_compute=1.0,
    cycles_load=5.0,
    cycles_store=4.0,
    cycles_atomic=14.0,
    cycles_atomic_conflict=2.0,
    cycles_hot_atomic=3.0,
    cycles_shared_atomic=7.0,
    cycles_shuffle_red=1.5,
    cycles_barrier=25.0,
    cycles_launch=8700.0,  # ~5 us at 1.74 GHz
    uncoalesced_factor=3.0,
    scatter_factor=8.0,
    cudaatomic_rmw_mult=30.0,
    cudaatomic_ls_mult=45.0,
    mem_bytes=24e9,  # 24 GB GDDR6X
)

THREADRIPPER_2950X = CPUSpec(
    name="Threadripper 2950X",
    threads=16,
    clock_ghz=3.5,
    mem_bytes_per_cycle=14.0,  # ~50 GB/s / 3.5 GHz
    l3_size_bytes=32e6,
    l3_bytes_per_cycle=60.0,
    cycles_compute=1.0,
    cycles_load=2.5,
    cycles_store=2.0,
    cycles_atomic=35.0,  # lock-prefixed RMW through L3 (two CCX dies)
    cycles_atomic_conflict=60.0,
    cycles_hot_atomic=55.0,
    cycles_critical=420.0,
    cycles_dynamic_dispatch=150.0,
    cycles_region_omp=14000.0,  # ~4 us fork/join
    cycles_region_cpp=90000.0,  # ~26 us: thread create + join per step
    cyclic_locality_factor=1.8,
    dynamic_chunk=1,
    mem_bytes=128e9,
)

XEON_GOLD_6226R = CPUSpec(
    name="Xeon Gold 6226R x2",
    threads=32,
    clock_ghz=2.9,
    mem_bytes_per_cycle=38.0,  # ~110 GB/s aggregate / 2.9 GHz
    l3_size_bytes=44e6,
    l3_bytes_per_cycle=120.0,
    cycles_compute=1.0,
    cycles_load=2.5,
    cycles_store=2.0,
    cycles_atomic=40.0,  # cross-socket coherence makes atomics pricier
    cycles_atomic_conflict=80.0,
    cycles_hot_atomic=70.0,
    cycles_critical=500.0,
    cycles_dynamic_dispatch=160.0,
    cycles_region_omp=18000.0,
    cycles_region_cpp=120000.0,
    cyclic_locality_factor=1.8,
    dynamic_chunk=1,
    mem_bytes=256e9,
)

GPUS: Dict[str, GPUSpec] = {spec.name: spec for spec in (TITAN_V, RTX_3090)}
CPUS: Dict[str, CPUSpec] = {
    spec.name: spec for spec in (THREADRIPPER_2950X, XEON_GOLD_6226R)
}
DEVICES: Dict[str, Union[GPUSpec, CPUSpec]] = {**GPUS, **CPUS}


def get_device(name: str) -> Union[GPUSpec, CPUSpec]:
    """Look up one of the four testbed devices by name."""
    try:
        return DEVICES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(DEVICES)}"
        ) from exc
