"""Device specs as model features.

The learned style predictor (:mod:`repro.bench.predictor`) needs every
device described by the same fixed-width numeric vector.  GPU and CPU
specs share some cost constants (clock, memory bandwidth, atomic costs)
and differ in others (launch cost vs. fork/join cost, cache tiers); the
feature space here is the *union* of both dataclasses' numeric fields,
with a field that does not exist on a device reading as ``0.0`` and an
explicit ``dev_is_gpu`` indicator so the model can tell the families
apart.  Feature order is deterministic (sorted union), which the
predictor's versioned artifact schema depends on.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Dict, Tuple, Union

from .specs import CPUSpec, GPUSpec

__all__ = ["DEVICE_FEATURE_NAMES", "device_features"]

DeviceSpec = Union[GPUSpec, CPUSpec]


def _numeric_field_names(spec_cls) -> Tuple[str, ...]:
    return tuple(
        f.name for f in fields(spec_cls)
        if f.type in ("int", "float")
    )


#: Union of the numeric spec fields of both device families, plus the
#: derived parallelism width and the family indicator.  Sorted so the
#: ordering is a function of the dataclass definitions only.
DEVICE_FEATURE_NAMES: Tuple[str, ...] = tuple(
    f"dev_{name}" for name in sorted(
        set(_numeric_field_names(GPUSpec))
        | set(_numeric_field_names(CPUSpec))
    )
) + ("dev_parallelism", "dev_is_gpu")


def device_features(device: DeviceSpec) -> Dict[str, float]:
    """One device as a ``{feature name: value}`` row.

    Keys are exactly :data:`DEVICE_FEATURE_NAMES` for every device, so
    rows from different device families align column-for-column.
    """
    out: Dict[str, float] = {}
    for name in DEVICE_FEATURE_NAMES:
        if name in ("dev_parallelism", "dev_is_gpu"):
            continue
        out[name] = float(getattr(device, name[len("dev_"):], 0.0))
    if isinstance(device, GPUSpec):
        out["dev_parallelism"] = float(device.resident_threads)
        out["dev_is_gpu"] = 1.0
    else:
        out["dev_parallelism"] = float(device.threads)
        out["dev_is_gpu"] = 0.0
    return out
