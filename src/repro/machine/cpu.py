"""Analytic CPU timing model (OpenMP and C++ threads).

Structure mirrors :mod:`repro.machine.gpu` with the CPU-specific effects of
Sections 2.10.2, 2.11, 2.12 and 5.3/5.5:

* **OpenMP min/max updates are critical sections** — OpenMP's ``atomic``
  pragma supports only simple operators, so the RMW-style min/max relaxation
  must use ``omp critical`` (Section 5.3.1: "max and min operations ... must
  be implemented with slow critical sections in OpenMP but can be done with
  fast atomics in C++").  Critical sections serialize chip-wide, which is
  where the enormous OpenMP ratio ranges of Figures 3-6 come from.
* **Scheduling** — OpenMP default = static contiguous chunks; dynamic =
  work-stealing chunks with per-chunk dispatch overhead (Section 2.11).
  C++ blocked/cyclic are explicit contiguous/strided assignments
  (Section 2.12); cyclic loses spatial locality on streaming accesses.
* **Parallel-region overhead** — every launch pays a fork/join; the
  straightforward C++-threads style creates and joins ``std::thread``
  objects per step, which is an order of magnitude pricier than OpenMP's
  pooled workers.  This is why small-frontier data-driven codes pay more in
  C++ (Section 5.16: "C++ prefers the topology-driven style because the
  worklist overhead often cannot offset the work-efficiency benefit").
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..styles.axes import (
    CppSchedule,
    CpuReduction,
    Model,
    OmpSchedule,
)
from ..styles.spec import StyleSpec
from .scheduling import (
    UnitDecomposition,
    cached_decomposition,
    cpu_blocked_units,
    cpu_cyclic_units,
    makespan,
)
from .specs import CPUSpec
from .trace import ExecutionTrace, IterationProfile

__all__ = ["CPUModel"]

_DECOMP_CACHE_ATTR = "_cpu_decomp_cache"


class CPUModel:
    """Times execution traces on one CPU spec, for OpenMP or C++ codes."""

    def __init__(self, spec: CPUSpec):
        self.spec = spec

    # ------------------------------------------------------------------
    def time_trace(self, trace: ExecutionTrace, style: StyleSpec) -> float:
        """Simulated wall time in seconds for the whole program."""
        if style.model is Model.CUDA:
            raise ValueError("CPUModel times OpenMP / C++-threads specs only")
        mem_bw = self._bandwidth_for(trace)
        cycles = 0.0
        for profile in trace.profiles:
            cycles += self.profile_cycles(profile, style, mem_bw=mem_bw)
        return self.spec.seconds(cycles)

    def _bandwidth_for(self, trace: ExecutionTrace) -> float:
        """L3-resident working sets stream at L3, not DRAM, speed."""
        footprint = trace.n_vertices * 16.0 + trace.n_edges * 8.0
        if footprint <= self.spec.l3_size_bytes:
            return self.spec.l3_bytes_per_cycle
        return self.spec.mem_bytes_per_cycle

    def time_trace_batch(
        self, trace: ExecutionTrace, styles: Sequence[StyleSpec]
    ) -> List[float]:
        """Simulated wall times of many mapping variants of one trace.

        Bit-identical to calling :meth:`time_trace` per style: the batch
        resolves the trace's bandwidth once and, within each step, shares
        the core (work + memory + contention) cycles across styles whose
        mapping differs only in the reduction axis.
        """
        styles = list(styles)
        s = self.spec
        regions = []
        keys = []
        for style in styles:
            if style.model is Model.CUDA:
                raise ValueError("CPUModel times OpenMP / C++-threads specs only")
            regions.append(
                s.cycles_region_omp
                if style.model is Model.OPENMP
                else s.cycles_region_cpp
            )
            keys.append((style.model, style.omp_schedule, style.cpp_schedule))
        mem_bw = self._bandwidth_for(trace)
        totals = [0.0] * len(styles)
        for p in trace.profiles:
            if p.n_items == 0:
                for i, region in enumerate(regions):
                    totals[i] += region
                continue
            cores: dict = {}
            for i, style in enumerate(styles):
                core = cores.get(keys[i])
                if core is None:
                    core = self._core_cycles(p, style, mem_bw)
                    cores[keys[i]] = core
                totals[i] += (
                    core + self._reduction_cycles(p, style) + regions[i]
                )
        return [s.seconds(t) for t in totals]

    def throughput(self, trace: ExecutionTrace, style: StyleSpec) -> float:
        """Giga-edges per second (Section 4.5 metric)."""
        return trace.n_edges / self.time_trace(trace, style) / 1e9

    # ------------------------------------------------------------------
    def profile_cycles(
        self,
        p: IterationProfile,
        style: StyleSpec,
        *,
        mem_bw: Optional[float] = None,
    ) -> float:
        """Simulated cycles of one parallel step."""
        s = self.spec
        if mem_bw is None:
            mem_bw = s.mem_bytes_per_cycle
        region = (
            s.cycles_region_omp
            if style.model is Model.OPENMP
            else s.cycles_region_cpp
        )
        if p.n_items == 0:
            return region
        core = self._core_cycles(p, style, mem_bw)
        red_cycles = self._reduction_cycles(p, style)
        return core + red_cycles + region

    def _core_cycles(
        self, p: IterationProfile, style: StyleSpec, mem_bw: float
    ) -> float:
        """Work + memory + contention cycles of one step — everything except
        the reduction style and the parallel-region overhead.  Depends on
        the style only through (model, omp_schedule, cpp_schedule), which is
        what makes batch sharing possible."""
        s = self.spec
        cyclic = style.cpp_schedule is CppSchedule.CYCLIC
        load_factor = s.cyclic_locality_factor if cyclic else 1.0

        # OpenMP realizes min/max RMW as critical sections, which serialize
        # chip-wide; everything else stays in the per-item coefficients.
        minmax_critical = style.model is Model.OPENMP and p.atomic_minmax
        atomic_cost = 0.0 if minmax_critical else s.cycles_atomic

        alpha = (
            p.base_cycles * s.cycles_compute
            + p.struct_loads_base * s.cycles_load * load_factor
            + p.shared_loads_base * s.cycles_load
            + p.shared_stores_base * s.cycles_store
            + p.atomics_base * atomic_cost
        )
        beta = (
            p.inner_cycles * s.cycles_compute
            + p.struct_loads_inner * s.cycles_load * load_factor
            + p.shared_loads_inner * s.cycles_load
            + p.shared_stores_inner * s.cycles_store
            + p.atomics_inner * atomic_cost
        )

        work_cycles = self._schedule_cycles(p, style, alpha, beta)

        serial_cycles = 0.0
        if minmax_critical:
            serial_cycles += p.total_atomics * s.cycles_critical

        mem_cycles = self._memory_cycles(p, load_factor, mem_bw)

        overlap = min(1.0, s.threads / p.n_items)
        conflict_cycles = p.conflict_extra * s.cycles_atomic_conflict * overlap
        hot_cycles = p.hot_atomics * s.cycles_hot_atomic

        return (
            max(work_cycles, mem_cycles)
            + serial_cycles
            + conflict_cycles
            + hot_cycles
        )

    # ------------------------------------------------------------------
    def _schedule_cycles(
        self, p: IterationProfile, style: StyleSpec, alpha: float, beta: float
    ) -> float:
        """Makespan under the spec's scheduling policy."""
        s = self.spec
        if style.model is Model.OPENMP and style.omp_schedule is OmpSchedule.DYNAMIC:
            # Greedy dynamic scheduling: classic bound (balanced up to the
            # longest single chunk) plus dispatch overhead.  Every chunk
            # grab is a fetch-add on the shared loop counter — a hot
            # atomic that serializes across the chip — plus some per-chunk
            # bookkeeping that runs inside the grabbing thread.
            total = alpha * p.n_items + beta * p.total_inner
            if p.inner is not None and p.inner.size:
                longest_item = alpha + beta * float(p.inner.max())
            else:
                longest_item = alpha
            chunk = max(1, s.dynamic_chunk)
            n_chunks = -(-p.n_items // chunk)
            # The loop counter only becomes a serialization point when
            # threads finish chunks faster than the counter can hand new
            # ones out; pressure is the ratio of grab rate to service rate.
            body = max(total / n_chunks, 1.0)
            pressure = min(1.0, s.threads * s.cycles_hot_atomic / body)
            dispatch_serial = n_chunks * s.cycles_hot_atomic * pressure
            dispatch_local = n_chunks * s.cycles_dynamic_dispatch / s.threads
            return (
                total / s.threads
                + longest_item * chunk
                + dispatch_serial
                + dispatch_local
            )

        units = self._units(p, style)
        total, longest = units.times(alpha, beta, 0.0)
        return makespan(total, longest, units.n_units or 1)

    def _units(self, p: IterationProfile, style: StyleSpec) -> UnitDecomposition:
        cyclic = style.cpp_schedule is CppSchedule.CYCLIC
        builder = cpu_cyclic_units if cyclic else cpu_blocked_units
        return cached_decomposition(
            p,
            _DECOMP_CACHE_ATTR,
            (cyclic, self.spec.threads),
            lambda: builder(p.inner, p.n_items, self.spec.threads),
        )

    def _memory_cycles(
        self, p: IterationProfile, load_factor: float, mem_bw: float
    ) -> float:
        """Bandwidth bound: streaming structure + scattered data traffic."""
        s = self.spec
        n = float(p.n_items)
        inner_total = float(p.total_inner)
        struct_bytes = 4.0 * load_factor * (
            p.struct_loads_base * n + p.struct_loads_inner * inner_total
        )
        data_accesses = (
            (p.shared_loads_base + p.shared_stores_base) * n
            + (p.shared_loads_inner + p.shared_stores_inner) * inner_total
            + 2.0 * (p.atomics_base * n + p.atomics_inner * inner_total)
        )
        # Scattered 4-byte accesses pull whole 64-byte lines; charge a
        # conservative 16-byte effective cost (partial line reuse).
        return (struct_bytes + 16.0 * data_accesses) / mem_bw

    def _reduction_cycles(self, p: IterationProfile, style: StyleSpec) -> float:
        """Section 2.10.2 reduction styles.

        * atomic: every contribution is a lock-prefixed RMW on one hot
          line — serialized through the LLC.
        * critical: every contribution enters a mutex — serialized and an
          order of magnitude pricier per op (Figure 11's worst case).
        * clause (OpenMP) / private partials (C++): thread-local adds,
          one combining atomic per thread.
        """
        if p.reduction_items <= 0 or style.cpu_reduction is None:
            return 0.0
        s = self.spec
        items = p.reduction_items
        red = style.cpu_reduction
        if red is CpuReduction.ATOMIC:
            return items * s.cycles_hot_atomic
        if red is CpuReduction.CRITICAL:
            return items * s.cycles_critical
        # CLAUSE: private accumulation in registers/L1, combine at the end.
        return items * s.cycles_compute / s.threads + s.threads * s.cycles_atomic
