"""Analytic CPU timing model (OpenMP and C++ threads).

Structure mirrors :mod:`repro.machine.gpu` with the CPU-specific effects of
Sections 2.10.2, 2.11, 2.12 and 5.3/5.5:

* **OpenMP min/max updates are critical sections** — OpenMP's ``atomic``
  pragma supports only simple operators, so the RMW-style min/max relaxation
  must use ``omp critical`` (Section 5.3.1: "max and min operations ... must
  be implemented with slow critical sections in OpenMP but can be done with
  fast atomics in C++").  Critical sections serialize chip-wide, which is
  where the enormous OpenMP ratio ranges of Figures 3-6 come from.
* **Scheduling** — OpenMP default = static contiguous chunks; dynamic =
  work-stealing chunks with per-chunk dispatch overhead (Section 2.11).
  C++ blocked/cyclic are explicit contiguous/strided assignments
  (Section 2.12); cyclic loses spatial locality on streaming accesses.
* **Parallel-region overhead** — every launch pays a fork/join; the
  straightforward C++-threads style creates and joins ``std::thread``
  objects per step, which is an order of magnitude pricier than OpenMP's
  pooled workers.  This is why small-frontier data-driven codes pay more in
  C++ (Section 5.16: "C++ prefers the topology-driven style because the
  worklist overhead often cannot offset the work-efficiency benefit").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..styles.axes import (
    CppSchedule,
    CpuReduction,
    Model,
    OmpSchedule,
)
from ..styles.spec import StyleSpec
from .scheduling import (
    UnitDecomposition,
    cached_decomposition,
    cpu_blocked_units,
    cpu_cyclic_units,
    cpu_uniform_geometry,
    makespan,
    stack_decompositions,
)
from .specs import CPUSpec
from .trace import ExecutionTrace, IterationProfile, ProfileMatrix

__all__ = ["CPUModel"]

_DECOMP_CACHE_ATTR = "_cpu_decomp_cache"


class CPUModel:
    """Times execution traces on one CPU spec, for OpenMP or C++ codes."""

    def __init__(self, spec: CPUSpec):
        self.spec = spec
        self._bw_cache: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    def time_trace(self, trace: ExecutionTrace, style: StyleSpec) -> float:
        """Simulated wall time in seconds for the whole program."""
        if style.model is Model.CUDA:
            raise ValueError("CPUModel times OpenMP / C++-threads specs only")
        mem_bw = self._bandwidth_for(trace)
        cycles = 0.0
        for profile in trace.profiles:
            cycles += self.profile_cycles(profile, style, mem_bw=mem_bw)
        return self.spec.seconds(cycles)

    def _bandwidth_for(self, trace: ExecutionTrace) -> float:
        """L3-resident working sets stream at L3, not DRAM, speed.

        Memoized per trace fingerprint — the (n_vertices, n_edges) pair
        that fully determines it — so repeated batch calls skip it.
        """
        key = (trace.n_vertices, trace.n_edges)
        bw = self._bw_cache.get(key)
        if bw is None:
            footprint = trace.n_vertices * 16.0 + trace.n_edges * 8.0
            if footprint <= self.spec.l3_size_bytes:
                bw = self.spec.l3_bytes_per_cycle
            else:
                bw = self.spec.mem_bytes_per_cycle
            self._bw_cache[key] = bw
        return bw

    def time_trace_batch(
        self, trace: ExecutionTrace, styles: Sequence[StyleSpec]
    ) -> List[float]:
        """Simulated wall times of many mapping variants of one trace.

        Bit-identical to calling :meth:`time_trace` per style, but computed
        as one vectorized pass over the trace's
        :class:`~repro.machine.trace.ProfileMatrix`: core (work + memory +
        contention) cycles are evaluated once per distinct
        (model, omp_schedule, cpp_schedule) combination as a per-step
        vector, reduction cycles once per reduction style, and styles
        gather their step columns by group index — a style whose mapping
        differs only in the reduction axis reuses the exact same core
        floats.  The per-step cycle matrix is reduced over the step axis
        with ``np.add.reduce``, which accumulates in the same
        left-to-right order as the scalar loop.
        """
        styles = list(styles)
        if not styles:
            return []
        s = self.spec
        regions = []
        keys = []
        for style in styles:
            if style.model is Model.CUDA:
                raise ValueError("CPUModel times OpenMP / C++-threads specs only")
            regions.append(
                s.cycles_region_omp
                if style.model is Model.OPENMP
                else s.cycles_region_cpp
            )
            keys.append((style.model, style.omp_schedule, style.cpp_schedule))
        mem_bw = self._bandwidth_for(trace)
        pm = trace.profile_matrix()
        cycles = np.empty((pm.n_steps, len(styles)))
        cycles[:] = regions
        if pm.nonzero.size:
            cores: Dict[Tuple, np.ndarray] = {}
            reds: Dict[Optional[CpuReduction], object] = {}
            add = np.empty((len(styles), pm.nonzero.size))
            # Memoized on the profile matrix per (device, group): warm
            # re-timing replays the stored floats (see the GPU twin).
            for i, style in enumerate(styles):
                core = cores.get(keys[i])
                if core is None:
                    core = pm.geometry(
                        ("cpu-core", s, keys[i]),
                        lambda k=keys[i]: self._core_cycles_batch(
                            pm, *k, mem_bw=mem_bw
                        ),
                    )
                    cores[keys[i]] = core
                red = reds.get(style.cpu_reduction)
                if red is None:
                    red = pm.geometry(
                        ("cpu-red", s, style.cpu_reduction),
                        lambda r=style.cpu_reduction: (
                            self._reduction_cycles_batch(pm, r)
                        ),
                    )
                    reds[style.cpu_reduction] = red
                add[i] = core + red
            cycles[pm.nonzero] += add.T
        totals = np.add.reduce(cycles, axis=0)
        return [float(s.seconds(t)) for t in totals]

    def throughput(self, trace: ExecutionTrace, style: StyleSpec) -> float:
        """Giga-edges per second (Section 4.5 metric)."""
        return trace.n_edges / self.time_trace_batch(trace, [style])[0] / 1e9

    # ------------------------------------------------------------------
    def profile_cycles(
        self,
        p: IterationProfile,
        style: StyleSpec,
        *,
        mem_bw: Optional[float] = None,
    ) -> float:
        """Simulated cycles of one parallel step."""
        s = self.spec
        if mem_bw is None:
            mem_bw = s.mem_bytes_per_cycle
        region = (
            s.cycles_region_omp
            if style.model is Model.OPENMP
            else s.cycles_region_cpp
        )
        if p.n_items == 0:
            return region
        core = self._core_cycles(p, style, mem_bw)
        red_cycles = self._reduction_cycles(p, style)
        return core + red_cycles + region

    def _core_cycles(
        self, p: IterationProfile, style: StyleSpec, mem_bw: float
    ) -> float:
        """Work + memory + contention cycles of one step — everything except
        the reduction style and the parallel-region overhead.  Depends on
        the style only through (model, omp_schedule, cpp_schedule), which is
        what makes batch sharing possible."""
        s = self.spec
        cyclic = style.cpp_schedule is CppSchedule.CYCLIC
        load_factor = s.cyclic_locality_factor if cyclic else 1.0

        # OpenMP realizes min/max RMW as critical sections, which serialize
        # chip-wide; everything else stays in the per-item coefficients.
        minmax_critical = style.model is Model.OPENMP and p.atomic_minmax
        atomic_cost = 0.0 if minmax_critical else s.cycles_atomic

        alpha = (
            p.base_cycles * s.cycles_compute
            + p.struct_loads_base * s.cycles_load * load_factor
            + p.shared_loads_base * s.cycles_load
            + p.shared_stores_base * s.cycles_store
            + p.atomics_base * atomic_cost
        )
        beta = (
            p.inner_cycles * s.cycles_compute
            + p.struct_loads_inner * s.cycles_load * load_factor
            + p.shared_loads_inner * s.cycles_load
            + p.shared_stores_inner * s.cycles_store
            + p.atomics_inner * atomic_cost
        )

        work_cycles = self._schedule_cycles(p, style, alpha, beta)

        serial_cycles = 0.0
        if minmax_critical:
            serial_cycles += p.total_atomics * s.cycles_critical

        mem_cycles = self._memory_cycles(p, load_factor, mem_bw)

        overlap = min(1.0, s.threads / p.n_items)
        conflict_cycles = p.conflict_extra * s.cycles_atomic_conflict * overlap
        hot_cycles = p.hot_atomics * s.cycles_hot_atomic

        return (
            max(work_cycles, mem_cycles)
            + serial_cycles
            + conflict_cycles
            + hot_cycles
        )

    # ------------------------------------------------------------------
    def _schedule_cycles(
        self, p: IterationProfile, style: StyleSpec, alpha: float, beta: float
    ) -> float:
        """Makespan under the spec's scheduling policy."""
        s = self.spec
        if style.model is Model.OPENMP and style.omp_schedule is OmpSchedule.DYNAMIC:
            # Greedy dynamic scheduling: classic bound (balanced up to the
            # longest single chunk) plus dispatch overhead.  Every chunk
            # grab is a fetch-add on the shared loop counter — a hot
            # atomic that serializes across the chip — plus some per-chunk
            # bookkeeping that runs inside the grabbing thread.
            total = alpha * p.n_items + beta * p.total_inner
            if p.inner is not None and p.inner.size:
                longest_item = alpha + beta * float(p.inner.max())
            else:
                longest_item = alpha
            chunk = max(1, s.dynamic_chunk)
            n_chunks = -(-p.n_items // chunk)
            # The loop counter only becomes a serialization point when
            # threads finish chunks faster than the counter can hand new
            # ones out; pressure is the ratio of grab rate to service rate.
            body = max(total / n_chunks, 1.0)
            pressure = min(1.0, s.threads * s.cycles_hot_atomic / body)
            dispatch_serial = n_chunks * s.cycles_hot_atomic * pressure
            dispatch_local = n_chunks * s.cycles_dynamic_dispatch / s.threads
            return (
                total / s.threads
                + longest_item * chunk
                + dispatch_serial
                + dispatch_local
            )

        units = self._units(p, style)
        total, longest = units.times(alpha, beta, 0.0)
        return makespan(total, longest, units.n_units or 1)

    def _units(self, p: IterationProfile, style: StyleSpec) -> UnitDecomposition:
        return self._units_for(p, style.cpp_schedule is CppSchedule.CYCLIC)

    def _units_for(self, p: IterationProfile, cyclic: bool) -> UnitDecomposition:
        builder = cpu_cyclic_units if cyclic else cpu_blocked_units
        return cached_decomposition(
            p,
            _DECOMP_CACHE_ATTR,
            (cyclic, self.spec.threads),
            lambda: builder(p.inner, p.n_items, self.spec.threads),
        )

    # ------------------------------------------------------------------
    def _core_cycles_batch(
        self,
        pm: ProfileMatrix,
        model: Model,
        omp: Optional[OmpSchedule],
        cpp: Optional[CppSchedule],
        *,
        mem_bw: float,
    ) -> np.ndarray:
        """Vectorized :meth:`_core_cycles`: one per-step vector over the
        trace's nonzero steps, entry-for-entry bit-identical to the scalar
        expression."""
        s = self.spec
        cyclic = cpp is CppSchedule.CYCLIC
        load_factor = s.cyclic_locality_factor if cyclic else 1.0

        # OpenMP realizes min/max RMW as critical sections (chip-wide
        # serialization); the atomic cost then leaves the coefficients.
        if model is Model.OPENMP:
            atomic_cost = np.where(pm.atomic_minmax, 0.0, s.cycles_atomic)
            serial = np.where(
                pm.atomic_minmax, pm.total_atomics * s.cycles_critical, 0.0
            )
        else:
            atomic_cost = s.cycles_atomic
            serial = 0.0

        alpha = (
            pm.base_cycles * s.cycles_compute
            + pm.struct_loads_base * s.cycles_load * load_factor
            + pm.shared_loads_base * s.cycles_load
            + pm.shared_stores_base * s.cycles_store
            + pm.atomics_base * atomic_cost
        )
        beta = (
            pm.inner_cycles * s.cycles_compute
            + pm.struct_loads_inner * s.cycles_load * load_factor
            + pm.shared_loads_inner * s.cycles_load
            + pm.shared_stores_inner * s.cycles_store
            + pm.atomics_inner * atomic_cost
        )

        work = self._schedule_cycles_batch(pm, model, omp, cyclic, alpha, beta)
        mem = self._memory_cycles_batch(pm, load_factor, mem_bw)

        overlap = np.minimum(1.0, s.threads / pm.n_items)
        conflict = pm.conflict_extra * s.cycles_atomic_conflict * overlap
        hot = pm.hot_atomics * s.cycles_hot_atomic

        return np.maximum(work, mem) + serial + conflict + hot

    def _schedule_cycles_batch(
        self,
        pm: ProfileMatrix,
        model: Model,
        omp: Optional[OmpSchedule],
        cyclic: bool,
        alpha: np.ndarray,
        beta: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`_schedule_cycles` over the nonzero steps."""
        s = self.spec
        if model is Model.OPENMP and omp is OmpSchedule.DYNAMIC:
            total = alpha * pm.n_items + beta * pm.total_inner
            # For steps without an inner loop ``max_inner`` is 0 and the
            # term is an exact + 0.0, matching the scalar branch.
            longest_item = alpha + beta * pm.max_inner
            chunk = max(1, s.dynamic_chunk)
            n_chunks = -(-pm.n_items_int // chunk)
            body = np.maximum(total / n_chunks, 1.0)
            pressure = np.minimum(1.0, s.threads * s.cycles_hot_atomic / body)
            dispatch_serial = n_chunks * s.cycles_hot_atomic * pressure
            dispatch_local = n_chunks * s.cycles_dynamic_dispatch / s.threads
            return (
                total / s.threads
                + longest_item * chunk
                + dispatch_serial
                + dispatch_local
            )

        total = np.empty_like(alpha)
        longest = np.empty_like(alpha)
        n_units = np.empty(alpha.shape, dtype=np.int64)
        uniform = ~pm.has_inner
        if uniform.any():
            units_u, base_u = pm.geometry(
                ("cpu", s.threads),
                lambda: cpu_uniform_geometry(
                    pm.n_items_int[uniform], s.threads
                ),
            )
            t = alpha[uniform] * base_u
            total[uniform] = t * units_u
            longest[uniform] = t
            n_units[uniform] = units_u
        arrayful = np.flatnonzero(pm.has_inner)
        if arrayful.size:
            stacked = pm.geometry(
                ("cpu-stack", cyclic, s.threads),
                lambda: stack_decompositions(
                    [
                        self._units_for(pm.profiles[j], cyclic)
                        for j in arrayful
                    ],
                    arrayful,
                ),
            )
            for su in stacked:
                pos = su.positions
                total[pos], longest[pos] = su.times_batch(
                    alpha[pos], beta[pos]
                )
                n_units[pos] = su.n_units
        return np.maximum(total / n_units, longest)

    def _memory_cycles_batch(
        self, pm: ProfileMatrix, load_factor: float, mem_bw: float
    ) -> np.ndarray:
        """Vectorized :meth:`_memory_cycles` over the nonzero steps."""
        s = self.spec
        struct_bytes = 4.0 * load_factor * (
            pm.struct_loads_base * pm.n_items
            + pm.struct_loads_inner * pm.total_inner
        )
        data_accesses = (
            (pm.shared_loads_base + pm.shared_stores_base) * pm.n_items
            + (pm.shared_loads_inner + pm.shared_stores_inner) * pm.total_inner
            + 2.0 * (
                pm.atomics_base * pm.n_items
                + pm.atomics_inner * pm.total_inner
            )
        )
        return (struct_bytes + 16.0 * data_accesses) / mem_bw

    def _reduction_cycles_batch(
        self, pm: ProfileMatrix, red: Optional[CpuReduction]
    ):
        """Vectorized :meth:`_reduction_cycles` over the nonzero steps.

        Returns the scalar ``0.0`` when the style has no reduction axis
        (broadcasting it is exact: ``x + 0.0 == x`` for the non-negative
        cycle counts involved)."""
        if red is None:
            return 0.0
        s = self.spec
        items = pm.reduction_items
        if red is CpuReduction.ATOMIC:
            val = items * s.cycles_hot_atomic
        elif red is CpuReduction.CRITICAL:
            val = items * s.cycles_critical
        else:
            val = (
                items * s.cycles_compute / s.threads
                + s.threads * s.cycles_atomic
            )
        return np.where(items > 0, val, 0.0)

    def _memory_cycles(
        self, p: IterationProfile, load_factor: float, mem_bw: float
    ) -> float:
        """Bandwidth bound: streaming structure + scattered data traffic."""
        s = self.spec
        n = float(p.n_items)
        inner_total = float(p.total_inner)
        struct_bytes = 4.0 * load_factor * (
            p.struct_loads_base * n + p.struct_loads_inner * inner_total
        )
        data_accesses = (
            (p.shared_loads_base + p.shared_stores_base) * n
            + (p.shared_loads_inner + p.shared_stores_inner) * inner_total
            + 2.0 * (p.atomics_base * n + p.atomics_inner * inner_total)
        )
        # Scattered 4-byte accesses pull whole 64-byte lines; charge a
        # conservative 16-byte effective cost (partial line reuse).
        return (struct_bytes + 16.0 * data_accesses) / mem_bw

    def _reduction_cycles(self, p: IterationProfile, style: StyleSpec) -> float:
        """Section 2.10.2 reduction styles.

        * atomic: every contribution is a lock-prefixed RMW on one hot
          line — serialized through the LLC.
        * critical: every contribution enters a mutex — serialized and an
          order of magnitude pricier per op (Figure 11's worst case).
        * clause (OpenMP) / private partials (C++): thread-local adds,
          one combining atomic per thread.
        """
        if p.reduction_items <= 0 or style.cpu_reduction is None:
            return 0.0
        s = self.spec
        items = p.reduction_items
        red = style.cpu_reduction
        if red is CpuReduction.ATOMIC:
            return items * s.cycles_hot_atomic
        if red is CpuReduction.CRITICAL:
            return items * s.cycles_critical
        # CLAUSE: private accumulation in registers/L1, combine at the end.
        return items * s.cycles_compute / s.threads + s.threads * s.cycles_atomic
