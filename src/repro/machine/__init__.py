"""Machine models: device specs and analytic GPU/CPU timing."""

from .cpu import CPUModel
from .devices import (
    CPUS,
    DEVICES,
    GPUS,
    RTX_3090,
    THREADRIPPER_2950X,
    TITAN_V,
    XEON_GOLD_6226R,
    get_device,
)
from .gpu import GPUModel
from .inspect import ProfileSummary, render_trace, summarize_trace, trace_to_csv
from .matrix import model_for_device, time_matrix
from .scheduling import (
    WARP_WIDTH,
    UnitDecomposition,
    cpu_blocked_units,
    cpu_cyclic_units,
    gpu_units,
    makespan,
)
from .specs import CPUSpec, GPUSpec
from .trace import (
    ExecutionTrace,
    IterationProfile,
    ProfileMatrix,
    conflict_stats,
)

__all__ = [
    "GPUSpec",
    "CPUSpec",
    "GPUModel",
    "CPUModel",
    "TITAN_V",
    "RTX_3090",
    "THREADRIPPER_2950X",
    "XEON_GOLD_6226R",
    "GPUS",
    "CPUS",
    "DEVICES",
    "get_device",
    "ExecutionTrace",
    "IterationProfile",
    "ProfileMatrix",
    "conflict_stats",
    "time_matrix",
    "model_for_device",
    "ProfileSummary",
    "summarize_trace",
    "trace_to_csv",
    "render_trace",
    "UnitDecomposition",
    "gpu_units",
    "cpu_blocked_units",
    "cpu_cyclic_units",
    "makespan",
    "WARP_WIDTH",
]
