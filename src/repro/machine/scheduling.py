"""Work-to-execution-unit decomposition.

Turning a launch's per-item inner-trip counts into per-unit serial work is
where most of the style effects physically live:

* thread/warp/block granularity (Section 2.8) changes which unit owns an
  item's inner loop and whether that loop is strip-mined across lanes;
* persistent vs non-persistent (Section 2.7) changes the item-to-thread
  assignment (cyclic over a resident grid vs one thread per item);
* blocked vs cyclic C++ scheduling (Section 2.12) and OpenMP default
  (static) scheduling (Section 2.11) change the item-to-thread assignment
  on CPUs.

Everything here is exact list accounting over the launch's real trip
counts — no statistical assumptions about the degree distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..styles.axes import Granularity

__all__ = [
    "UnitDecomposition",
    "StackedUnits",
    "stack_decompositions",
    "gpu_units",
    "gpu_uniform_geometry",
    "cpu_blocked_units",
    "cpu_cyclic_units",
    "cpu_uniform_geometry",
    "cached_decomposition",
    "makespan",
]

WARP_WIDTH = 32


@dataclass(frozen=True)
class UnitDecomposition:
    """Per-execution-unit serial work of one launch.

    A "unit" is whatever executes serially with respect to itself: a warp
    (thread/warp granularity), a block (block granularity), or a CPU
    thread.  To keep memory bounded for launches with hundreds of
    thousands of units, the representation is sparse: a ``None`` array
    with the matching ``uniform_*`` scalar set means "this component is
    identical for every unit" (e.g. each warp/block owns exactly one item,
    or there is no inner loop).  ``trips_ser`` may alias the launch's raw
    trip array — it is never mutated.

    Attributes
    ----------
    base:
        Per-unit count of serialized item-base executions
        (or ``uniform_base`` for all units).
    trips_par:
        Per-unit inner trips after strip-mining (lanes share the loop).
    trips_ser:
        Per-unit raw inner trips (for operations that cannot be
        strip-mined, e.g. same-address atomics).
    width:
        Warp-issue slots one unit occupies (1 for warps, block_size/32 for
        blocks, 1 for CPU threads).
    n_units:
        Number of units.
    """

    base: Optional[np.ndarray]
    trips_par: Optional[np.ndarray]
    trips_ser: Optional[np.ndarray]
    width: float
    n_units: int
    uniform_base: float = 0.0
    uniform_trips: float = 0.0

    def times(self, alpha: float, beta_par: float, beta_ser: float) -> Tuple[float, float]:
        """(sum of unit times, max unit time) for the given coefficients."""
        if self.n_units == 0:
            return 0.0, 0.0
        if self.base is None and self.trips_par is None:
            t = (
                alpha * self.uniform_base
                + (beta_par + beta_ser) * self.uniform_trips
            )
            return t * self.n_units, t
        const = alpha * self.uniform_base if self.base is None else 0.0
        t = None if self.base is None else alpha * self.base
        if self.trips_par is not None and (beta_par != 0.0 or beta_ser != 0.0):
            trips = beta_par * self.trips_par
            if beta_ser != 0.0:
                trips = trips + beta_ser * self.trips_ser
            t = trips if t is None else t + trips
        if t is None:
            return const * self.n_units, const
        return float(t.sum()) + const * self.n_units, float(t.max()) + const

    def times_batch(
        self,
        alphas: np.ndarray,
        betas_par: np.ndarray,
        betas_ser: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`times` over K coefficient sets.

        Returns ``(totals, longests)`` float64 arrays of shape ``(K,)``
        whose entry ``k`` is bit-identical to
        ``times(alphas[k], betas_par[k], betas_ser[k])``: the per-unit
        expression applies the same operations in the same order, the
        row-wise ``sum``/``max`` use the same reduction routine as their
        1-D counterparts, and the zero-coefficient branches `times`
        skips only ever skip exact ``+ 0.0`` terms.
        """
        alphas = np.asarray(alphas, dtype=np.float64)
        betas_par = np.asarray(betas_par, dtype=np.float64)
        betas_ser = np.asarray(betas_ser, dtype=np.float64)
        if self.n_units == 0:
            zero = np.zeros_like(alphas)
            return zero, zero.copy()
        if self.base is None and self.trips_par is None:
            t = (
                alphas * self.uniform_base
                + (betas_par + betas_ser) * self.uniform_trips
            )
            return t * self.n_units, t
        const = (
            alphas * self.uniform_base
            if self.base is None
            else np.zeros_like(alphas)
        )
        rows = (
            None if self.base is None else alphas[:, None] * self.base[None, :]
        )
        if self.trips_par is not None:
            trips = betas_par[:, None] * self.trips_par[None, :]
            if self.trips_ser is not None:
                trips = trips + betas_ser[:, None] * self.trips_ser[None, :]
            rows = trips if rows is None else rows + trips
        if rows is None:
            return const * self.n_units, const.copy()
        return (
            rows.sum(axis=1) + const * self.n_units,
            rows.max(axis=1) + const,
        )


@dataclass(frozen=True)
class StackedUnits:
    """Same-shape array decompositions of several launches, stacked.

    Launch steps whose :class:`UnitDecomposition` arrays have identical
    length and component layout are stacked into one 2-D matrix: row ``g``
    holds step ``positions[g]``'s per-unit arrays, so a whole batch of
    launches reduces in a few broadcast expressions instead of a Python
    loop over steps.  Row-wise reductions over the stacked matrix are
    bit-identical to each step's 1-D reduction: numpy applies the same
    pairwise routine to every same-length contiguous row.
    """

    positions: np.ndarray
    base: Optional[np.ndarray]
    trips_par: Optional[np.ndarray]
    trips_ser: Optional[np.ndarray]
    uniform_base: float
    n_units: int

    def times_batch(
        self,
        alphas: np.ndarray,
        betas_par: np.ndarray,
        betas_ser: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(totals, longests) for coefficient arrays of shape ``(..., g)``.

        The trailing axis indexes the stacked steps; any leading axes
        broadcast (e.g. atomic-flavor rows).  Each entry is bit-identical
        to the step's own :meth:`UnitDecomposition.times` with the matching
        scalar coefficients: operations apply in the same order and a
        ``None`` ``betas_ser`` skips the serial term exactly like the
        scalar zero-coefficient branch.
        """
        rows = None
        if self.trips_par is not None:
            rows = betas_par[..., None] * self.trips_par
            if betas_ser is not None and self.trips_ser is not None:
                rows = rows + betas_ser[..., None] * self.trips_ser
        if self.base is None:
            const = alphas * self.uniform_base
            if rows is None:
                return const * self.n_units, const.copy()
            return (
                np.add.reduce(rows, axis=-1) + const * self.n_units,
                np.maximum.reduce(rows, axis=-1) + const,
            )
        t = alphas[..., None] * self.base
        if rows is not None:
            t = t + rows
        return np.add.reduce(t, axis=-1), np.maximum.reduce(t, axis=-1)


def stack_decompositions(
    units_list: Sequence[UnitDecomposition], positions: np.ndarray
) -> List[StackedUnits]:
    """Group per-step array decompositions into stackable batches.

    ``units_list[i]`` is step ``positions[i]``'s decomposition.  Steps are
    grouped by unit count and component layout — launches over the same
    item set (e.g. every round of a topology-driven sweep) collapse into
    one group.  ``np.stack`` copies and dtype-promotes the rows;
    int→float64 promotion is exact for the trip-count magnitudes involved,
    so the stacked products match the per-step ones bit-for-bit.
    """
    groups: Dict[Tuple, List[Tuple[int, UnitDecomposition]]] = {}
    for pos, u in zip(positions, units_list):
        kind = (
            u.n_units,
            u.base is None,
            u.trips_par is None,
            u.trips_ser is None,
            u.uniform_base,
            u.uniform_trips,
        )
        groups.setdefault(kind, []).append((int(pos), u))
    out = []
    for items in groups.values():
        first = items[0][1]
        out.append(
            StackedUnits(
                np.array([p for p, _ in items], dtype=np.intp),
                None
                if first.base is None
                else np.stack([u.base for _, u in items]),
                None
                if first.trips_par is None
                else np.stack([u.trips_par for _, u in items]),
                None
                if first.trips_ser is None
                else np.stack([u.trips_ser for _, u in items]),
                first.uniform_base,
                first.n_units,
            )
        )
    return out


def makespan(total: float, longest: float, slots: float) -> float:
    """Greedy list-scheduling makespan bound: max(total/slots, longest)."""
    if slots <= 0:
        raise ValueError("slots must be positive")
    return max(total / slots, longest)


def cached_decomposition(profile, cache_attr: str, key, builder):
    """Fetch (or build and memoize) a profile's :class:`UnitDecomposition`.

    A decomposition depends only on the mapping axes and the device
    geometry, so every mapping variant that re-times the same launch
    shares it.  The memo lives on the profile object itself and therefore
    has exactly the trace cache's lifetime — released together with the
    trace when the sweep drops the block.
    """
    cache = getattr(profile, cache_attr, None)
    if cache is None:
        cache = {}
        setattr(profile, cache_attr, cache)
    units = cache.get(key)
    if units is None:
        units = builder()
        cache[key] = units
    return units


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _pad_reshape(values: np.ndarray, width: int) -> np.ndarray:
    """Pad with zeros to a multiple of ``width`` and reshape to rows."""
    n = values.size
    rows = -(-n // width)
    if rows * width != n:
        padded = np.zeros(rows * width, dtype=values.dtype)
        padded[:n] = values
        values = padded
    return values.reshape(rows, width)


def _strided_sums(values: np.ndarray, n_slots: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-slot (count, sum) under cyclic assignment item ``i -> i % n_slots``."""
    n = values.size
    counts = np.full(n_slots, n // n_slots, dtype=np.int64)
    counts[: n % n_slots] += 1
    waves = _pad_reshape(values, n_slots)
    return counts, waves.sum(axis=0)


def _contiguous_sums(values: np.ndarray, n_slots: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-slot (count, sum) under blocked assignment (contiguous chunks).

    Chunk boundaries follow the OpenMP static convention:
    slot ``t`` gets ``[t*n//T, (t+1)*n//T)``.
    """
    n = values.size
    bounds = (np.arange(n_slots + 1, dtype=np.int64) * n) // n_slots
    csum = np.concatenate([[0], np.cumsum(values, dtype=np.int64)])
    sums = csum[bounds[1:]] - csum[bounds[:-1]]
    counts = np.diff(bounds)
    return counts, sums


def _lockstep_warps(
    base: np.ndarray, trips: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Collapse per-thread work into per-warp work (lockstep: lane max)."""
    return (
        _pad_reshape(base, WARP_WIDTH).max(axis=1).astype(np.float64),
        _pad_reshape(trips, WARP_WIDTH).max(axis=1),
    )


# ----------------------------------------------------------------------
# GPU decompositions
# ----------------------------------------------------------------------
def gpu_units(
    inner: Optional[np.ndarray],
    n_items: int,
    granularity: Granularity,
    persistent: bool,
    *,
    block_size: int,
    resident_threads: int,
) -> UnitDecomposition:
    """Decompose a GPU launch into warp- or block-level units.

    ``inner is None`` means every item is identical (no inner loop): the
    decomposition collapses to the uniform fast path.
    """
    if n_items == 0:
        return UnitDecomposition(None, None, None, 1.0, 0)

    if inner is None:
        return _gpu_units_uniform(
            n_items, granularity, persistent,
            block_size=block_size, resident_threads=resident_threads,
        )

    trips = inner
    if granularity is Granularity.THREAD:
        if persistent:
            slots = min(resident_threads, n_items)
            counts, sums = _strided_sums(trips, slots)
            wbase, wtrips = _lockstep_warps(counts, sums)
            return UnitDecomposition(wbase, wtrips, wtrips, 1.0, wbase.size)
        # Lockstep warps of one item per lane: every warp runs the item
        # base once; its trip time is the slowest lane's trip count.
        wtrips = _pad_reshape(trips, WARP_WIDTH).max(axis=1)
        return UnitDecomposition(
            None, wtrips, wtrips, 1.0, wtrips.size, uniform_base=1.0
        )

    lane_width = WARP_WIDTH if granularity is Granularity.WARP else block_size
    unit_width = 1.0 if granularity is Granularity.WARP else block_size / WARP_WIDTH
    strip = -(-trips // lane_width)  # ceil(t / lanes): strip-mined trips
    if persistent:
        n_resident_units = max(1, resident_threads // lane_width)
        slots = min(n_resident_units, n_items)
        counts, strip_sums = _strided_sums(strip, slots)
        _, raw_sums = _strided_sums(trips, slots)
        return UnitDecomposition(
            counts.astype(np.float64),
            strip_sums,
            raw_sums,
            unit_width,
            slots,
        )
    # One unit per item; the raw trip array is aliased, never copied.
    return UnitDecomposition(
        None, strip, trips, unit_width, n_items, uniform_base=1.0
    )


def _gpu_units_uniform(
    n_items: int,
    granularity: Granularity,
    persistent: bool,
    *,
    block_size: int,
    resident_threads: int,
) -> UnitDecomposition:
    """Uniform-item fast path (no per-unit arrays needed)."""
    if granularity is Granularity.THREAD:
        if persistent:
            slots = min(resident_threads, n_items)
            per_thread = -(-n_items // slots)
            n_units = -(-slots // WARP_WIDTH)
            return UnitDecomposition(
                None, None, None, 1.0, n_units,
                uniform_base=float(per_thread), uniform_trips=0.0,
            )
        n_units = -(-n_items // WARP_WIDTH)
        return UnitDecomposition(None, None, None, 1.0, n_units, uniform_base=1.0)

    lane_width = WARP_WIDTH if granularity is Granularity.WARP else block_size
    unit_width = 1.0 if granularity is Granularity.WARP else block_size / WARP_WIDTH
    if persistent:
        n_units = max(1, min(resident_threads // lane_width, n_items))
        per_unit = -(-n_items // n_units)
        return UnitDecomposition(
            None, None, None, unit_width, n_units, uniform_base=float(per_unit)
        )
    return UnitDecomposition(None, None, None, unit_width, n_items, uniform_base=1.0)


# ----------------------------------------------------------------------
# CPU decompositions
# ----------------------------------------------------------------------
def cpu_blocked_units(
    inner: Optional[np.ndarray], n_items: int, threads: int
) -> UnitDecomposition:
    """Static contiguous chunks (OpenMP default / C++ blocked)."""
    if n_items == 0:
        return UnitDecomposition(None, None, None, 1.0, 0)
    n_units = min(threads, n_items)
    if inner is None:
        per = -(-n_items // n_units)
        return UnitDecomposition(
            None, None, None, 1.0, n_units, uniform_base=float(per)
        )
    counts, sums = _contiguous_sums(inner, n_units)
    return UnitDecomposition(
        counts.astype(np.float64),
        sums.astype(np.float64),
        sums.astype(np.float64),
        1.0,
        n_units,
    )


def cpu_cyclic_units(
    inner: Optional[np.ndarray], n_items: int, threads: int
) -> UnitDecomposition:
    """Round-robin assignment (C++ cyclic schedule)."""
    if n_items == 0:
        return UnitDecomposition(None, None, None, 1.0, 0)
    n_units = min(threads, n_items)
    if inner is None:
        per = -(-n_items // n_units)
        return UnitDecomposition(
            None, None, None, 1.0, n_units, uniform_base=float(per)
        )
    counts, sums = _strided_sums(inner, n_units)
    return UnitDecomposition(
        counts.astype(np.float64),
        sums.astype(np.float64),
        sums.astype(np.float64),
        1.0,
        n_units,
    )


# ----------------------------------------------------------------------
# Vectorized uniform-step geometry
# ----------------------------------------------------------------------
def gpu_uniform_geometry(
    n_items: np.ndarray,
    granularity: Granularity,
    persistent: bool,
    *,
    block_size: int,
    resident_threads: int,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Vectorized :func:`_gpu_units_uniform` over an int64 step vector.

    For launches without an inner loop the unit decomposition collapses to
    three numbers; this computes them for a whole vector of such launches
    at once.  Returns ``(n_units, uniform_base, width)`` where the arrays
    are per step (``n_units`` int64, ``uniform_base`` float64) and
    ``width`` is the scalar unit width shared by every step of this
    (granularity, persistence) pair.  All integer math uses the same
    floor-division ceil idiom as the scalar path, so the values are exact.
    Every ``n_items`` entry must be positive.
    """
    n = np.asarray(n_items, dtype=np.int64)
    if granularity is Granularity.THREAD:
        if persistent:
            slots = np.minimum(resident_threads, n)
            base = -(-n // slots)
            units = -(-slots // WARP_WIDTH)
            return units, base.astype(np.float64), 1.0
        return -(-n // WARP_WIDTH), np.ones(n.shape), 1.0
    lane_width = WARP_WIDTH if granularity is Granularity.WARP else block_size
    unit_width = 1.0 if granularity is Granularity.WARP else block_size / WARP_WIDTH
    if persistent:
        units = np.maximum(1, np.minimum(resident_threads // lane_width, n))
        per_unit = -(-n // units)
        return units, per_unit.astype(np.float64), unit_width
    return n.copy(), np.ones(n.shape), unit_width


def cpu_uniform_geometry(
    n_items: np.ndarray, threads: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized uniform-step geometry of the static CPU schedules.

    Blocked and cyclic assignment coincide when every item is identical,
    so one ``(n_units, uniform_base)`` pair serves both.  Every
    ``n_items`` entry must be positive.
    """
    n = np.asarray(n_items, dtype=np.int64)
    units = np.minimum(threads, n)
    per = -(-n // units)
    return units, per.astype(np.float64)
