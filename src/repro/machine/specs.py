"""Device specifications for the simulated machines.

Two GPU specs and two CPU specs mirror the paper's Section 4.3 testbed.
Every cost parameter is documented with its physical meaning; the *shape*
results of Section 5 depend on orderings and orders of magnitude, never on
the third significant digit of these constants (the benchmark suite asserts
shapes, not absolute values).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUSpec", "CPUSpec"]


@dataclass(frozen=True)
class GPUSpec:
    """An analytic CUDA device model.

    Cycle costs are *amortized issue costs*: the expected pipeline occupancy
    an instruction adds to its warp, assuming the usual latency hiding from
    multithreading.  Raw DRAM latency therefore does not appear; bandwidth
    and serialization do.
    """

    name: str
    sm_count: int
    #: Warp instructions the whole chip can issue per cycle per SM
    #: (sub-partitions with independent schedulers).
    issue_warps_per_sm: int
    clock_ghz: float
    #: Main-memory bandwidth available to the kernel, in bytes per cycle
    #: (bandwidth GB/s divided by clock GHz).
    mem_bytes_per_cycle: float
    #: L2 capacity in bytes and L2 bandwidth in bytes per cycle: working
    #: sets that fit in the L2 stream at L2 rather than DRAM speed (the
    #: paper's inputs exceed all caches; the scaled stand-ins often fit,
    #: so the cache tier must be modeled for the same effects to surface).
    l2_size_bytes: float
    l2_bytes_per_cycle: float
    #: Threads per block assumed for block-granularity codes.
    block_size: int
    #: Resident threads when a persistent kernel fills the machine.
    resident_threads: int
    # --- per-access amortized cycle costs --------------------------------
    cycles_compute: float  #: one arithmetic/control step
    cycles_load: float  #: coalesced 4-byte global load
    cycles_store: float  #: coalesced 4-byte global store
    cycles_atomic: float  #: un-contended global atomic RMW
    #: additional serialization cycles per conflicting atomic on the same
    #: address (the L2 processes same-address atomics one at a time).
    cycles_atomic_conflict: float
    #: serialization per operation on a single *hot* address (worklist
    #: counters, global-add reduction counters).
    cycles_hot_atomic: float
    #: shared-memory atomic (block-add reductions): serialization per op.
    cycles_shared_atomic: float
    #: per-contribution cost of a warp-shuffle tree reduction.
    cycles_shuffle_red: float
    #: intra-block barrier (__syncthreads).
    cycles_barrier: float
    #: fixed host-side cost of one kernel launch, in cycles.
    cycles_launch: float
    #: transaction multiplier for thread-granularity adjacency streaming:
    #: each lane walks its own list, so sectors are partially wasted (with
    #: some reuse from caching between a lane's consecutive accesses).
    uncoalesced_factor: float
    #: transaction multiplier for truly random data-array accesses: a
    #: 4-byte access occupies a full 32-byte sector.
    scatter_factor: float
    # --- cuda::atomic default (seq_cst, system scope) multipliers ---------
    #: factor on atomic RMW ops under default CudaAtomic.
    cudaatomic_rmw_mult: float
    #: factor on .load()/.store() accesses under default CudaAtomic.
    cudaatomic_ls_mult: float
    #: Device memory capacity in bytes — the pre-launch
    #: :class:`~repro.runtime.budget.ResourceBudget` gate caps estimated
    #: working sets at this (a real kernel would OOM past it).
    mem_bytes: float = 8e9

    @property
    def issue_slots(self) -> int:
        """Concurrent warp-issue slots chip-wide."""
        return self.sm_count * self.issue_warps_per_sm

    def seconds(self, cycles: float) -> float:
        """Cycles to wall seconds; broadcasts over cycle arrays."""
        return cycles / (self.clock_ghz * 1e9)


@dataclass(frozen=True)
class CPUSpec:
    """An analytic multicore CPU model."""

    name: str
    threads: int  #: worker threads used by the study (no hyperthreading)
    clock_ghz: float
    mem_bytes_per_cycle: float
    #: Shared last-level-cache capacity and bandwidth (see GPUSpec.l2_*).
    l3_size_bytes: float
    l3_bytes_per_cycle: float
    # --- per-access amortized cycle costs --------------------------------
    cycles_compute: float
    cycles_load: float  #: cache-resident / streaming 4-byte load
    cycles_store: float
    cycles_atomic: float  #: lock-prefixed RMW through the shared LLC
    cycles_atomic_conflict: float  #: extra serialization per conflicting op
    cycles_hot_atomic: float  #: per-op serialization on one hot address
    #: cost of one critical-section entry/exit (mutex); critical sections
    #: additionally serialize chip-wide, which the model applies on top.
    cycles_critical: float
    #: per-chunk dispatch cost of OpenMP dynamic scheduling.
    cycles_dynamic_dispatch: float
    #: OpenMP parallel-region fork/join (per parallel loop).
    cycles_region_omp: float
    #: C++ `std::thread` create/join per parallel step (no thread pool in
    #: the straightforward styles the suite uses).
    cycles_region_cpp: float
    #: multiplier on streaming loads under a cyclic schedule (lost spatial
    #: locality: each thread touches every Nth element of a cache line).
    cyclic_locality_factor: float
    #: iterations per dynamic chunk (OpenMP's default dynamic chunk size).
    dynamic_chunk: int
    #: Host memory capacity in bytes (see GPUSpec.mem_bytes).
    mem_bytes: float = 64e9

    def seconds(self, cycles: float) -> float:
        """Cycles to wall seconds; broadcasts over cycle arrays."""
        return cycles / (self.clock_ghz * 1e9)
