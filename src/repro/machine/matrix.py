"""Cross-device variant-matrix timing.

The paper's central artifact is the full (style variants × devices) timing
matrix of one semantic execution.  :func:`time_matrix` produces exactly
that in one pass: it builds the trace's
:class:`~repro.machine.trace.ProfileMatrix` once (cached on the trace) and
runs each device's vectorized batch over the styles that can execute
there, so the whole matrix costs a handful of broadcast evaluations
instead of ``styles × devices`` scalar walks.  Every finite cell is
bit-identical to the corresponding scalar
:meth:`~repro.machine.gpu.GPUModel.time_trace` /
:meth:`~repro.machine.cpu.CPUModel.time_trace` call.
"""

from __future__ import annotations

from typing import Dict, Sequence, Union

import numpy as np

from ..styles.spec import StyleSpec
from .cpu import CPUModel
from .gpu import GPUModel
from .specs import CPUSpec, GPUSpec
from .trace import ExecutionTrace

__all__ = ["time_matrix", "model_for_device"]

DeviceSpec = Union[GPUSpec, CPUSpec]

#: Module-level model memo: specs are frozen (hashable) and models are
#: stateless beyond their bandwidth cache, so every caller shares them —
#: which also shares the per-trace-fingerprint bandwidth memo.
_MODELS: Dict[DeviceSpec, Union[GPUModel, CPUModel]] = {}


def model_for_device(device: DeviceSpec) -> Union[GPUModel, CPUModel]:
    """The (memoized) timing model of a device spec."""
    model = _MODELS.get(device)
    if model is None:
        model = (
            GPUModel(device) if isinstance(device, GPUSpec) else CPUModel(device)
        )
        _MODELS[device] = model
    return model


def time_matrix(
    trace: ExecutionTrace,
    styles: Sequence[StyleSpec],
    devices: Sequence[DeviceSpec],
) -> np.ndarray:
    """Simulated seconds of every (style, device) pair in one pass.

    Returns a ``(len(styles), len(devices))`` float64 matrix; cell
    ``[i, j]`` is NaN when style ``i``'s programming model cannot run on
    device ``j`` (a CUDA style on a CPU and vice versa), otherwise it is
    bit-identical to ``model.time_trace(trace, styles[i])`` on that
    device.
    """
    styles = list(styles)
    devices = list(devices)
    out = np.full((len(styles), len(devices)), np.nan)
    for j, device in enumerate(devices):
        gpu_device = isinstance(device, GPUSpec)
        indices = [
            i for i, style in enumerate(styles)
            if style.model.is_gpu == gpu_device
        ]
        if not indices:
            continue
        model = model_for_device(device)
        seconds = model.time_trace_batch(
            trace, [styles[i] for i in indices]
        )
        out[indices, j] = seconds
    return out
