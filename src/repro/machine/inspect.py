"""Trace inspection utilities.

The execution traces are the study's intermediate representation; these
helpers summarize them for humans (per-phase work breakdowns, operation
mixes, convergence behavior) and export them as CSV for external analysis.
Used by the CLI and handy when investigating why one style loses.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Dict, List

from .trace import ExecutionTrace, IterationProfile

__all__ = ["ProfileSummary", "summarize_trace", "trace_to_csv", "render_trace"]


@dataclass(frozen=True)
class ProfileSummary:
    """Aggregated operation counts of one launch."""

    label: str
    n_items: int
    inner_total: int
    loads: float
    stores: float
    atomics: float
    conflict_extra: float
    hot_atomics: float
    reduction_items: float

    @classmethod
    def of(cls, p: IterationProfile) -> "ProfileSummary":
        return cls(
            label=p.label,
            n_items=p.n_items,
            inner_total=p.total_inner,
            loads=p.total_loads,
            stores=p.total_stores,
            atomics=p.total_atomics,
            conflict_extra=p.conflict_extra,
            hot_atomics=p.hot_atomics,
            reduction_items=p.reduction_items,
        )


def summarize_trace(trace: ExecutionTrace) -> Dict[str, ProfileSummary]:
    """Aggregate the trace's launches by phase label."""
    acc: Dict[str, List[IterationProfile]] = {}
    for p in trace.profiles:
        acc.setdefault(p.label, []).append(p)
    out: Dict[str, ProfileSummary] = {}
    for label, profiles in acc.items():
        out[label] = ProfileSummary(
            label=label,
            n_items=sum(p.n_items for p in profiles),
            inner_total=sum(p.total_inner for p in profiles),
            loads=sum(p.total_loads for p in profiles),
            stores=sum(p.total_stores for p in profiles),
            atomics=sum(p.total_atomics for p in profiles),
            conflict_extra=sum(p.conflict_extra for p in profiles),
            hot_atomics=sum(p.hot_atomics for p in profiles),
            reduction_items=sum(p.reduction_items for p in profiles),
        )
    return out


def trace_to_csv(trace: ExecutionTrace) -> str:
    """One CSV row per launch (for spreadsheets / pandas)."""
    buf = io.StringIO()
    buf.write(
        "launch,label,n_items,inner_total,loads,stores,atomics,"
        "conflict_extra,max_conflict,hot_atomics,reduction_items\n"
    )
    for idx, p in enumerate(trace.profiles):
        buf.write(
            f"{idx},{p.label},{p.n_items},{p.total_inner},"
            f"{p.total_loads:.1f},{p.total_stores:.1f},{p.total_atomics:.1f},"
            f"{p.conflict_extra:.1f},{p.max_conflict},{p.hot_atomics:.1f},"
            f"{p.reduction_items:.1f}\n"
        )
    return buf.getvalue()


def render_trace(trace: ExecutionTrace) -> str:
    """A human-readable per-phase summary of a trace."""
    lines = [trace.summary(), ""]
    lines.append(
        f"{'phase':<24} {'launches':>8} {'items':>12} {'inner':>12} "
        f"{'atomics':>12} {'hot':>10}"
    )
    counts: Dict[str, int] = {}
    for p in trace.profiles:
        counts[p.label] = counts.get(p.label, 0) + 1
    for label, summary in summarize_trace(trace).items():
        lines.append(
            f"{label:<24} {counts[label]:>8} {summary.n_items:>12,} "
            f"{summary.inner_total:>12,} {summary.atomics:>12,.0f} "
            f"{summary.hot_atomics:>10,.0f}"
        )
    return "\n".join(lines)
