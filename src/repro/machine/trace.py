"""Execution traces: the interface between kernels and machine models.

A styled kernel *executes* its algorithm (vectorized, on the real graph)
and, for every parallel step it performs, records an
:class:`IterationProfile` — an exact operation profile of that step.  The
machine models then convert profiles into simulated time for any mapping
combination (granularity, persistence, atomic flavor, reduction style,
schedule) without re-executing the kernel.

Profiles use a ``base + inner`` coefficient form: a work item (vertex, edge
or worklist entry) performs ``*_base`` operations unconditionally plus
``*_inner`` operations per inner-loop trip, with the per-item trip counts in
:attr:`IterationProfile.inner`.  This is exact for the kernels in this
suite, whose inner loops are uniform per trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = [
    "IterationProfile",
    "ExecutionTrace",
    "ProfileMatrix",
    "conflict_stats",
]


def conflict_stats(addresses: np.ndarray, n_cells: int) -> "tuple[float, int]":
    """Contention statistics of one launch's atomic destinations.

    Returns ``(conflict_extra, max_conflict)`` where ``conflict_extra`` is
    the total number of same-address collisions, i.e. ``sum(max(0, c-1))``
    over addresses, and ``max_conflict`` is the largest per-address count.
    """
    if addresses.size == 0:
        return 0.0, 0
    counts = np.bincount(addresses, minlength=n_cells)
    counts = counts[counts > 0]
    return float((counts - 1).sum()), int(counts.max())


@dataclass
class IterationProfile:
    """Operation profile of one parallel step (one kernel launch / one
    parallel region).

    Attributes
    ----------
    n_items:
        Number of work items launched.
    inner:
        ``int64[n_items]`` inner-loop trip counts (neighbor counts for
        vertex items, merge lengths for TC).  ``None`` means no inner loop.
    base_cycles / inner_cycles:
        Arithmetic/control steps per item / per trip.
    struct_loads_*:
        Loads of graph structure (row_ptr/col_idx/weights/worklist): these
        are plain loads in every atomic flavor, and they form the streaming
        access pattern whose coalescing depends on the mapping.
    shared_loads_* / shared_stores_*:
        Accesses to the shared *data* arrays (dist/comp/rank/status...).
        Under the default-CudaAtomic flavor these go through
        ``cuda::atomic<T>::load/store`` and pay the seq_cst penalty.
    atomics_*:
        Atomic RMW operations on the data arrays.
    atomic_minmax:
        True when the RMWs are min/max (OpenMP must realize them as
        critical sections; C++ and CUDA have native RMW for them).
    atomics_same_address_per_item:
        True when an item's inner-loop atomics all hit one address (the
        pull style updating its own vertex): warp/block strip-mining cannot
        parallelize those.
    conflict_extra / max_conflict:
        Cross-item same-address collision statistics (from
        :func:`conflict_stats` over the real destination addresses).
    store_conflict_extra / store_max_conflict:
        Same statistics for *plain* (non-atomic) stores of the read-write
        styles: the wave-granular write-write races of Section 2.5.  The
        trace sanitizer asserts they stay benign; the timing models do not
        charge them (plain stores do not serialize).
    wl_pushes:
        Worklist pushes performed by a data-driven pass (must equal the
        next pass's item count).  ``-1`` on launches that are not
        worklist passes.
    hot_atomics:
        Operations on a single hot address (worklist-size counter).
    reduction_items:
        Contributions to the sum reduction of PR/TC, timed according to the
        reduction-style mapping axis.
    barriers_per_item:
        Block-level barriers per item (beyond the implicit granularity
        sync the device model already charges).
    label:
        Phase name, for debugging and trace inspection.
    """

    n_items: int
    inner: Optional[np.ndarray] = None
    base_cycles: float = 1.0
    inner_cycles: float = 0.0
    struct_loads_base: float = 0.0
    struct_loads_inner: float = 0.0
    shared_loads_base: float = 0.0
    shared_loads_inner: float = 0.0
    shared_stores_base: float = 0.0
    shared_stores_inner: float = 0.0
    atomics_base: float = 0.0
    atomics_inner: float = 0.0
    atomic_minmax: bool = False
    atomics_same_address_per_item: bool = False
    conflict_extra: float = 0.0
    max_conflict: int = 0
    store_conflict_extra: float = 0.0
    store_max_conflict: int = 0
    wl_pushes: int = -1
    hot_atomics: float = 0.0
    reduction_items: float = 0.0
    barriers_per_item: float = 0.0
    label: str = "step"

    def __post_init__(self) -> None:
        if self.n_items < 0:
            raise ValueError("n_items must be non-negative")
        if self.inner is not None:
            # int32 halves the footprint of large worklist traces; trip
            # counts are far below 2**31 (reductions promote to int64).
            self.inner = np.asarray(self.inner, dtype=np.int32)
            if self.inner.shape != (self.n_items,):
                raise ValueError(
                    f"inner must have shape ({self.n_items},), "
                    f"got {self.inner.shape}"
                )

    # ------------------------------------------------------------------
    @property
    def total_inner(self) -> int:
        """Total inner-loop trips across all items."""
        if self.inner is None:
            return 0
        return int(self.inner.sum())

    def total_of(self, base: float, per_inner: float) -> float:
        """Total count of an operation class over the whole launch."""
        return base * self.n_items + per_inner * self.total_inner

    @property
    def total_loads(self) -> float:
        return self.total_of(
            self.struct_loads_base + self.shared_loads_base,
            self.struct_loads_inner + self.shared_loads_inner,
        )

    @property
    def total_stores(self) -> float:
        return self.total_of(self.shared_stores_base, self.shared_stores_inner)

    @property
    def total_atomics(self) -> float:
        return self.total_of(self.atomics_base, self.atomics_inner)


#: Float64 counter columns of :class:`ProfileMatrix`, in storage order.
#: ``total_inner``/``max_inner``/``total_atomics`` are derived from the
#: profile once so the vectorized models never walk ``inner`` arrays again.
PROFILE_FIELDS = (
    "n_items",
    "total_inner",
    "max_inner",
    "base_cycles",
    "inner_cycles",
    "struct_loads_base",
    "struct_loads_inner",
    "shared_loads_base",
    "shared_loads_inner",
    "shared_stores_base",
    "shared_stores_inner",
    "atomics_base",
    "atomics_inner",
    "conflict_extra",
    "max_conflict",
    "hot_atomics",
    "reduction_items",
    "barriers_per_item",
    "total_atomics",
)


class ProfileMatrix:
    """A trace's per-step counters stacked into one ``(steps × fields)``
    ndarray, plus the masks and index vectors the vectorized device models
    broadcast over.

    The device models only spend cycles on steps with work, so every field
    attribute (``base_cycles``, ``atomics_inner``, ...) is the column
    restricted to the steps with ``n_items > 0``; :attr:`nonzero` maps
    those rows back to step positions and :attr:`data` holds the full
    unrestricted matrix.  All counts are exactly representable in float64
    (they are far below 2**53), so stacking loses no precision.

    Built once per trace via :meth:`ExecutionTrace.profile_matrix` and
    cached there; :attr:`profiles` keeps the nonzero steps' profile
    objects so per-step :class:`UnitDecomposition` memos stay shared with
    the scalar path.
    """

    __slots__ = ("data", "n_steps", "nonzero", "profiles", "n_items_int",
                 "has_inner", "same_address", "atomic_minmax",
                 "_geometry") + PROFILE_FIELDS

    def __init__(self, profiles: List[IterationProfile]):
        n = len(profiles)
        data = np.empty((n, len(PROFILE_FIELDS)))
        for j, p in enumerate(profiles):
            inner = p.inner
            if inner is None or inner.size == 0:
                total_inner = 0
                max_inner = 0
            else:
                total_inner = int(inner.sum())
                max_inner = int(inner.max())
            data[j] = (
                p.n_items, total_inner, max_inner,
                p.base_cycles, p.inner_cycles,
                p.struct_loads_base, p.struct_loads_inner,
                p.shared_loads_base, p.shared_loads_inner,
                p.shared_stores_base, p.shared_stores_inner,
                p.atomics_base, p.atomics_inner,
                p.conflict_extra, p.max_conflict,
                p.hot_atomics, p.reduction_items, p.barriers_per_item,
                p.total_of(p.atomics_base, p.atomics_inner),
            )
        self.data = data
        self.n_steps = n
        nonzero = np.flatnonzero(data[:, 0] > 0)
        self.nonzero = nonzero
        sub = data[nonzero]
        for i, name in enumerate(PROFILE_FIELDS):
            setattr(self, name, sub[:, i])
        self.n_items_int = sub[:, 0].astype(np.int64)
        live = [profiles[k] for k in nonzero]
        self.profiles = live
        self.has_inner = np.array(
            [p.inner is not None for p in live], dtype=bool
        )
        self.same_address = np.array(
            [p.atomics_same_address_per_item for p in live], dtype=bool
        )
        self.atomic_minmax = np.array(
            [p.atomic_minmax for p in live], dtype=bool
        )
        self._geometry: dict = {}

    def geometry(self, key, builder):
        """Memoize a device-geometry-dependent derivation (e.g. the
        uniform-step unit decomposition vectors of one (granularity,
        persistence) pair) for the lifetime of this matrix."""
        value = self._geometry.get(key)
        if value is None:
            value = builder()
            self._geometry[key] = value
        return value


@dataclass
class ExecutionTrace:
    """The full simulated execution of one semantic program on one graph.

    Produced once per (semantic style combination, graph); timed many times
    (once per mapping combination per device).
    """

    profiles: List[IterationProfile] = field(default_factory=list)
    n_edges: int = 0  #: directed edge count of the input (for throughput)
    n_vertices: int = 0
    iterations: int = 0  #: convergence iterations of the outer loop
    converged: bool = True
    label: str = ""

    def add(self, profile: IterationProfile) -> None:
        self.profiles.append(profile)
        self._profile_matrix = None

    def profile_matrix(self) -> ProfileMatrix:
        """The (cached) stacked counter matrix of this trace's steps.

        Invalidated by :meth:`add`; traces are append-only in practice, so
        once timing starts the cache lives as long as the trace does.
        """
        pm = getattr(self, "_profile_matrix", None)
        if pm is None:
            pm = ProfileMatrix(self.profiles)
            self._profile_matrix = pm
        return pm

    @property
    def total_work_items(self) -> int:
        return sum(p.n_items for p in self.profiles)

    @property
    def total_inner(self) -> int:
        return sum(p.total_inner for p in self.profiles)

    @property
    def total_atomics(self) -> float:
        return sum(p.total_atomics for p in self.profiles)

    @property
    def n_launches(self) -> int:
        return len(self.profiles)

    def summary(self) -> str:
        return (
            f"trace {self.label!r}: {self.iterations} iterations, "
            f"{self.n_launches} launches, {self.total_work_items} items, "
            f"{self.total_inner} inner trips"
        )
