"""Stable, machine-readable error vocabulary of the serving plane.

Every non-2xx response (and every degraded-mode annotation) the service
emits carries a JSON body of one frozen shape, so clients, load
balancers, and dashboards can key off *codes* instead of parsing prose:

.. code-block:: json

    {
      "error": {
        "code": "executor-crashed",
        "status": 502,
        "retryable": true,
        "message": "worker process died (exit code 97)",
        "error_class": "crash"
      },
      "request_id": "req-000042",
      "degraded": false
    }

``code`` comes from the closed :data:`ERROR_CODES` registry below —
service-level conditions (admission, quotas, deadlines, drain) plus one
code per :class:`~repro.runtime.errors.ErrorClass` of the sweep runtime's
failure taxonomy, mapped by :data:`ERROR_CLASS_CODES`.  ``error_class`` is
the raw taxonomy value when a sweep failure caused the error and ``null``
for purely service-level conditions.  ``retryable`` tells a client
whether the same request can reasonably be retried (after ``Retry-After``
where present).  The whole vocabulary is frozen by
``tests/serve/test_error_schema.py`` — extending it is fine, renaming or
dropping a code is a reviewed contract change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..runtime.errors import ErrorClass

__all__ = [
    "ErrorCode",
    "ERROR_CODES",
    "ERROR_CLASS_CODES",
    "ServiceError",
    "error_payload",
    "code_for_error_class",
]


@dataclass(frozen=True)
class ErrorCode:
    """One entry of the closed error-code registry."""

    code: str
    status: int  #: HTTP status the code maps onto
    retryable: bool
    description: str


def _registry(*entries: ErrorCode) -> Dict[str, ErrorCode]:
    return {entry.code: entry for entry in entries}


#: The closed registry of every error code the service can emit.
ERROR_CODES: Dict[str, ErrorCode] = _registry(
    # -- service-level conditions ------------------------------------
    ErrorCode("bad-request", 400, False,
              "malformed request line, headers, or JSON body"),
    ErrorCode("not-found", 404, False, "unknown endpoint"),
    ErrorCode("method-not-allowed", 405, False,
              "endpoint exists but not for this HTTP method"),
    ErrorCode("unknown-graph", 404, False,
              "named graph is not in the dataset registry"),
    ErrorCode("payload-too-large", 413, False,
              "request body exceeds the configured size limit"),
    ErrorCode("invalid-graph", 422, False,
              "uploaded graph failed structural validation"),
    ErrorCode("queue-full", 429, True,
              "job queue at capacity; backpressure, retry after a delay"),
    ErrorCode("quota-exceeded", 429, True,
              "per-tenant admission quota exhausted"),
    ErrorCode("deadline-exceeded", 504, True,
              "request deadline expired before a result was produced"),
    ErrorCode("shutting-down", 503, True,
              "server is draining; retry against another instance"),
    ErrorCode("breaker-open", 503, True,
              "sweep executor circuit breaker is open"),
    ErrorCode("internal", 500, True, "unexpected server-side failure"),
    # -- sweep-runtime failure taxonomy (one per ErrorClass) ---------
    ErrorCode("verification-failed", 500, False,
              "styled kernel disagreed with the serial reference"),
    ErrorCode("kernel-error", 500, False,
              "kernel raised while executing or timing"),
    ErrorCode("executor-timeout", 504, True,
              "sweep executor exceeded its deadline and was killed"),
    ErrorCode("executor-crashed", 502, True,
              "sweep executor worker died without reporting a result"),
    ErrorCode("checkpoint-corrupt", 500, True,
              "checkpoint or cache entry failed its integrity check"),
    ErrorCode("interrupted", 503, True,
              "execution was interrupted by shutdown"),
    ErrorCode("numerical-divergence", 422, False,
              "kernel state provably diverged on this input"),
    ErrorCode("budget-exceeded", 413, False,
              "estimated resource footprint exceeds the admitted budget"),
    ErrorCode("degenerate-graph", 422, False,
              "graph shape cannot run the requested kernel"),
)

#: :class:`ErrorClass` value -> stable service error code.  Total: every
#: taxonomy member maps somewhere (frozen by the schema test).
ERROR_CLASS_CODES: Dict[ErrorClass, str] = {
    ErrorClass.VERIFICATION: "verification-failed",
    ErrorClass.KERNEL: "kernel-error",
    ErrorClass.TIMEOUT: "executor-timeout",
    ErrorClass.CRASH: "executor-crashed",
    ErrorClass.CHECKPOINT: "checkpoint-corrupt",
    ErrorClass.INTERRUPTED: "interrupted",
    ErrorClass.DIVERGENCE: "numerical-divergence",
    ErrorClass.BUDGET: "budget-exceeded",
    ErrorClass.DEGENERATE: "degenerate-graph",
}

#: Error classes that indicate a *worker-environment* fault (the process
#: or machine, not the request): these feed the circuit breaker and are
#: answered with the degraded static-guideline fallback instead of an
#: error, because the input itself is fine.
ENVIRONMENT_CLASSES = frozenset(
    {ErrorClass.CRASH, ErrorClass.TIMEOUT, ErrorClass.INTERRUPTED}
)


def code_for_error_class(error_class: ErrorClass) -> str:
    """The stable service code of one sweep-runtime failure class."""
    return ERROR_CLASS_CODES[error_class]


class ServiceError(Exception):
    """A request-terminating condition with a stable code.

    Raising one anywhere in the request path produces the frozen JSON
    error body (and HTTP status) for its code; ``error_class`` carries
    the underlying sweep-taxonomy value when one exists.
    """

    def __init__(
        self,
        code: str,
        message: str,
        *,
        error_class: Optional[ErrorClass] = None,
        retry_after: Optional[float] = None,
    ):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown service error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.error_class = error_class
        self.retry_after = retry_after

    @property
    def status(self) -> int:
        return ERROR_CODES[self.code].status

    @property
    def retryable(self) -> bool:
        return ERROR_CODES[self.code].retryable

    @classmethod
    def from_error_class(
        cls, error_class: ErrorClass, message: str
    ) -> "ServiceError":
        return cls(
            code_for_error_class(error_class), message, error_class=error_class
        )


def error_payload(error: ServiceError, request_id: str) -> Dict[str, object]:
    """The frozen JSON error-body shape for one :class:`ServiceError`."""
    return {
        "error": {
            "code": error.code,
            "status": error.status,
            "retryable": error.retryable,
            "message": error.message,
            "error_class": (
                None if error.error_class is None else error.error_class.value
            ),
        },
        "request_id": request_id,
        "degraded": False,
    }
