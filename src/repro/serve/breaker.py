"""Circuit breaker around the sweep executor.

When the worker environment is unhealthy — processes dying, blocks
timing out — every cold request pays the full retry-and-fail cost before
falling back, and the dying workers themselves load the machine.  The
breaker converts that into fast, cheap degradation:

* **CLOSED** (healthy): requests run normally; consecutive
  *environment-class* failures (crash / timeout / interrupted — see
  :data:`~repro.serve.errors.ENVIRONMENT_CLASSES`) are counted, and
  reaching the threshold trips the breaker.  Any success resets the
  count: deterministic kernel failures are the request's problem, not
  the environment's, and do not trip it.
* **OPEN**: the executor is skipped entirely; requests get the static
  guideline answer immediately (tagged ``"degraded": true``) until the
  cool-down elapses.
* **HALF_OPEN**: after the cool-down, exactly one probe request is let
  through.  Success closes the breaker; failure reopens it for another
  cool-down.

The clock is injected so tests can drive state transitions without
sleeping.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Callable

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a single half-open probe."""

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        #: Lifetime counters for /statz.
        self.trips = 0

    @property
    def state(self) -> BreakerState:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """May a request use the executor right now?

        In HALF_OPEN only the first caller gets ``True`` (the probe);
        everyone else stays degraded until the probe reports back.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_inflight = False
            self._state = BreakerState.CLOSED

    def record_failure(self) -> None:
        """Record one environment-class failure (one per failed attempt)."""
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                # The probe failed: straight back to OPEN, fresh cool-down.
                self._trip()
                return
            self._consecutive_failures += 1
            if (
                self._state is BreakerState.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip()

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._probe_inflight = False
        self._consecutive_failures = 0
        self.trips += 1

    def _maybe_half_open(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self.reset_seconds
        ):
            self._state = BreakerState.HALF_OPEN
            self._probe_inflight = False

    def snapshot(self) -> dict:
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state.value,
                "consecutive_failures": self._consecutive_failures,
                "trips": self.trips,
            }
