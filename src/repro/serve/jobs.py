"""Supervised sweep jobs for the advisor service.

A cold request needs a real sweep: run the requested algorithms over the
client's graph on every requested model x device and time every style
variant.  Kernels execute arbitrary simulated programs, so the service
never runs them in its own process — each job attempt gets a dedicated
worker process (fork + pipe, the same supervision idiom as
:mod:`repro.bench.parallel`) that can crash, hang, or be killed without
taking the event loop with it.

The executor retries environment-class failures (crash / timeout) with
exponential backoff while the request's deadline allows, and reports the
final outcome as either a compact result payload or a typed
:class:`JobFailed` carrying the :class:`~repro.runtime.errors.ErrorClass`
— the service layer decides whether that means a degraded answer or an
error body.

Fault injection: workers honour the ``kill-executor`` and
``hang-request`` actions of ``$REPRO_FAULTS`` (see
:mod:`repro.bench.faults`), which is how the chaos suite and the CI smoke
test manufacture dying executors deterministically.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..graph.csr import CSRGraph
from ..runtime.errors import ErrorClass, classify_error
from ..runtime.launcher import Launcher
from ..styles.axes import Algorithm, Model
from ..styles.combos import enumerate_specs
from .errors import ENVIRONMENT_CLASSES

__all__ = ["SweepJob", "JobFailed", "ExecutorPool", "execute_job_inline"]

#: Poll granularity of the supervision loop (seconds): fine enough that a
#: deadline overrun is bounded, coarse enough to stay cheap.
_POLL_SECONDS = 0.05


@dataclass(frozen=True)
class SweepJob:
    """One unit of executor work: sweep these styles over this graph."""

    graph: CSRGraph
    algorithms: Tuple[Algorithm, ...]
    models: Tuple[Model, ...]
    gpu_names: Tuple[str, ...]
    cpu_names: Tuple[str, ...]
    verify: bool = True
    trace_cache: bool = True


class JobFailed(RuntimeError):
    """One job attempt (or the whole job) failed, with its taxonomy class."""

    def __init__(self, error_class: ErrorClass, message: str, *, attempts: int = 1):
        super().__init__(message)
        self.error_class = error_class
        self.message = message
        self.attempts = attempts

    @property
    def environment(self) -> bool:
        """Was this the environment's fault (retryable, breaker-relevant)
        rather than the request's?"""
        return self.error_class in ENVIRONMENT_CLASSES


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def execute_job_inline(job: SweepJob, *, attempt: int = 1) -> dict:
    """Run one job in the current process and summarize the outcome.

    This is the worker's body, importable directly so unit tests (and any
    future in-process execution mode) can exercise the sweep logic
    without process supervision.
    """
    from ..bench import faults
    from ..bench.harness import sweep_block_runs
    from ..machine.devices import CPUS, GPUS

    config_devices = {
        model: (
            [GPUS[name] for name in job.gpu_names]
            if model.is_gpu
            else [CPUS[name] for name in job.cpu_names]
        )
        for model in job.models
    }
    from ..bench.tracestore import resolve_trace_store

    launcher = Launcher(
        verify=job.verify,
        trace_store=resolve_trace_store(enabled=job.trace_cache) or False,
    )
    runs = []
    failures = []
    for algorithm in job.algorithms:
        faults.inject_executor_fault(algorithm.value, job.graph.name, attempt)
        for model in job.models:
            specs = enumerate_specs(algorithm, model)
            for run in sweep_block_runs(
                launcher, specs, job.graph, config_devices[model],
                failures=failures,
            ):
                runs.append(run)
        launcher.release(job.graph, algorithm)
    return summarize_runs(runs, failures, launcher.kernel_executions)


def summarize_runs(runs, failures, kernel_executions: int) -> dict:
    """Compact, JSON-ready summary of a sweep: the best style per
    (algorithm, model, device) cell plus the failure manifest."""
    best: Dict[Tuple[str, str, str], object] = {}
    for run in runs:
        key = (run.spec.algorithm.value, run.spec.model.value, run.device)
        current = best.get(key)
        if current is None or run.seconds < current.seconds:
            best[key] = run
    measured = [
        {
            "algorithm": alg,
            "model": model,
            "device": device,
            "style": run.spec.label(),
            "seconds": run.seconds,
            "throughput_ges": run.throughput_ges,
            "verified": run.verified,
            "predicted": bool(getattr(run, "predicted", False)),
        }
        for (alg, model, device), run in sorted(best.items())
    ]
    return {
        "measured": measured,
        "n_runs": len(runs),
        "n_failures": len(failures),
        "failures": [
            {
                "algorithm": f.algorithm,
                "error_class": f.error_class.value,
                "message": f.message,
                "digest": f.digest,
                "stage": f.stage,
            }
            for f in failures
        ],
        "kernel_executions": kernel_executions,
    }


def _job_worker_main(conn, job: SweepJob, attempt: int) -> None:
    """Worker entry point: run the job, send one outcome tuple, exit."""
    import signal

    from ..bench import faults

    # The fork inherits the server's asyncio signal machinery: its
    # SIGTERM/SIGINT handlers and — critically — the loop's signal wakeup
    # fd, a socket pair shared with the parent.  Left in place, the
    # SIGTERM the supervisor sends *this worker* during cleanup would be
    # written into that shared pipe and read by the parent's event loop
    # as "the server was signalled" — draining the whole service after
    # every job.  Restore default dispositions before doing anything.
    try:
        signal.set_wakeup_fd(-1)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass

    os.environ[faults.WORKER_ENV] = "1"
    try:
        payload = execute_job_inline(job, attempt=attempt)
        conn.send(("ok", payload))
    except BaseException as exc:  # noqa: BLE001 - must never escape the worker
        error_class = classify_error(exc)
        try:
            conn.send(("error", error_class.value, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Supervisor side
# ----------------------------------------------------------------------
@dataclass
class ExecutorPool:
    """Bounded pool of supervised one-shot job workers.

    ``max_workers`` bounds concurrent worker processes (requests queue on
    the semaphore); each attempt runs under the caller's remaining
    deadline and a dead or overdue worker is killed and reaped — the pool
    never leaks children.
    """

    max_workers: int = 2
    max_attempts: int = 3
    backoff_base_seconds: float = 0.1
    _slots: asyncio.Semaphore = field(init=False, repr=False)
    #: Lifetime counters for /statz.
    jobs_run: int = 0
    attempts_failed: int = 0

    def __post_init__(self) -> None:
        self._slots = asyncio.Semaphore(self.max_workers)

    async def run_job(
        self,
        job: SweepJob,
        *,
        deadline: float,
        on_attempt: Optional[Callable[[int], None]] = None,
    ) -> dict:
        """Run one job to completion under ``deadline`` (absolute
        ``time.monotonic`` seconds).

        Environment-class attempt failures are retried with exponential
        backoff while attempts and deadline remain; the terminal failure
        is raised as :class:`JobFailed` with the *last* attempt's class.
        """
        async with self._slots:
            self.jobs_run += 1
            last: Optional[JobFailed] = None
            for attempt in range(1, self.max_attempts + 1):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                if on_attempt is not None:
                    on_attempt(attempt)
                try:
                    return await asyncio.to_thread(
                        self._supervise_attempt, job, attempt, remaining
                    )
                except JobFailed as exc:
                    self.attempts_failed += 1
                    last = exc
                    if not exc.environment:
                        raise JobFailed(
                            exc.error_class, exc.message, attempts=attempt
                        )
                backoff = self.backoff_base_seconds * (2 ** (attempt - 1))
                backoff = min(backoff, max(deadline - time.monotonic(), 0))
                if backoff > 0:
                    await asyncio.sleep(backoff)
            if last is not None:
                raise JobFailed(
                    last.error_class,
                    f"{last.message} (retries exhausted)",
                    attempts=self.max_attempts,
                )
            raise JobFailed(
                ErrorClass.TIMEOUT,
                "request deadline expired before the job could start",
            )

    # -- blocking section, always called via asyncio.to_thread ---------
    def _supervise_attempt(
        self, job: SweepJob, attempt: int, timeout: float
    ) -> dict:
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_job_worker_main,
            args=(child_conn, job, attempt),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        deadline = time.monotonic() + timeout
        try:
            while True:
                if parent_conn.poll(_POLL_SECONDS):
                    try:
                        outcome = parent_conn.recv()
                    except EOFError:
                        raise JobFailed(
                            ErrorClass.CRASH,
                            f"worker for {job.graph.name} closed its pipe "
                            "without a result",
                            attempts=attempt,
                        )
                    return self._interpret(outcome, attempt)
                if not proc.is_alive():
                    # Dead worker may still have flushed its outcome.
                    if parent_conn.poll(0):
                        outcome = parent_conn.recv()
                        return self._interpret(outcome, attempt)
                    code = proc.exitcode
                    raise JobFailed(
                        ErrorClass.CRASH,
                        f"worker for {job.graph.name} died "
                        f"(exit code {code}) without reporting a result",
                        attempts=attempt,
                    )
                if time.monotonic() > deadline:
                    raise JobFailed(
                        ErrorClass.TIMEOUT,
                        f"job for {job.graph.name} exceeded its "
                        f"{timeout:.1f}s deadline and was killed",
                        attempts=attempt,
                    )
        finally:
            parent_conn.close()
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=2.0)
            else:
                proc.join(timeout=2.0)

    @staticmethod
    def _interpret(outcome, attempt: int) -> dict:
        if not isinstance(outcome, tuple) or not outcome:
            raise JobFailed(
                ErrorClass.CRASH, "worker sent a malformed outcome",
                attempts=attempt,
            )
        if outcome[0] == "ok":
            return outcome[1]
        _, class_value, message = outcome
        raise JobFailed(ErrorClass(class_value), message, attempts=attempt)
