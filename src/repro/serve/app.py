"""The style-advisor service: an always-on serving plane for the study.

``repro serve`` boots an asyncio HTTP server where a client POSTs a
graph — by dataset name or as an edge-list upload — and gets back the
paper's style recommendations for it plus measured best-style timings
from a real (simulated) sweep.  The request path is built to *degrade*,
never to drop:

1. **Validate & fingerprint.**  Uploads go through the ingestion gate
   (:class:`~repro.graph.validate.GraphValidator`); the content address
   (:meth:`CSRGraph.fingerprint`) keys everything downstream.
2. **Serve warm.**  A fingerprint the service has answered before comes
   from the in-memory result cache; with a warm persistent trace store
   even a fresh worker re-times styles with zero kernel executions.
   A cold miss the trained style predictor covers is answered from the
   model instead (``"source": "predicted"``, zero kernel executions);
   clients that need measured numbers opt out with ``"predict": false``.
3. **Admit or refuse.**  A bounded admission queue (HTTP 429), per-tenant
   quotas (429), and an explicit drain state (503) put backpressure in
   the status code, not in latency.
4. **Execute supervised.**  Cold requests run on a worker-process pool
   with per-request deadlines and retry-with-backoff; identical
   concurrent requests coalesce onto one sweep.
5. **Degrade gracefully.**  A circuit breaker trips on consecutive
   worker-environment failures; while it is open (or when retries are
   exhausted) the service answers instantly from the static Section 5.16
   guidelines (:func:`~repro.bench.advisor.advise`), tagged
   ``"degraded": true`` — a worse answer, never an outage.

Every failure the service can produce maps to a stable error code
(:mod:`repro.serve.errors`); SIGTERM/SIGINT drain in-flight requests
before the process exits.
"""

from __future__ import annotations

import asyncio
import itertools
import signal
import sys
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..bench.advisor import advise
from ..graph.builder import from_edge_arrays
from ..graph.csr import CSRGraph
from ..graph.datasets import DATASETS, EXTRA_DATASETS
from ..graph.properties import analyze as analyze_graph
from ..graph.validate import GraphValidationError, GraphValidator
from ..machine.devices import CPUS, DEVICES, GPUS
from ..runtime.budget import estimate_bytes
from ..runtime.errors import ErrorClass
from ..styles.axes import Algorithm, Model
from .breaker import CircuitBreaker
from .errors import ServiceError, code_for_error_class, error_payload
from .httpd import (
    HttpRequest,
    end_ndjson_stream,
    read_request,
    send_json,
    send_ndjson_event,
    start_ndjson_stream,
)
from .jobs import ExecutorPool, JobFailed, SweepJob
from .quotas import TenantQuota, TenantQuotas

__all__ = ["ServeConfig", "StyleAdvisorService", "serve_main"]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one service instance (all bounded by default)."""

    host: str = "127.0.0.1"
    port: int = 8321  #: 0 = pick a free port (printed on boot)
    #: Scale at which named dataset graphs are built.  ``tiny`` keeps a
    #: cold sweep interactive; operators with patience can serve
    #: ``default`` scale.
    scale: str = "tiny"
    #: Algorithms swept when the request does not name any.
    default_algorithms: Tuple[Algorithm, ...] = (Algorithm.BFS,)
    #: Max requests admitted but not yet answered (the admission queue).
    max_inflight: int = 16
    #: Concurrent sweep worker processes.
    max_workers: int = 2
    #: Per-request wall-clock deadline (seconds); requests may lower it
    #: via ``deadline_ms``, never raise it.
    deadline_seconds: float = 60.0
    max_attempts: int = 3
    max_body_bytes: int = 8 * 1024 * 1024
    #: Uploaded graphs larger than this (estimated working set) are
    #: refused with ``budget-exceeded`` before any worker is spawned.
    max_graph_bytes: int = 256 * 1024 * 1024
    breaker_threshold: int = 3
    breaker_reset_seconds: float = 30.0
    tenant_quota: TenantQuota = TenantQuota(max_inflight=8)
    result_cache_entries: int = 128
    verify: bool = True
    trace_cache: bool = True
    #: Answer cold misses from the trained style predictor when its
    #: coverage allows (the ``cache → predicted → sweep →
    #: static-guideline`` ladder); ``False`` drops the predicted tier.
    predict: bool = True
    drain_grace_seconds: float = 20.0


class StyleAdvisorService:
    """The serving plane: owns the listener, the executor pool, and every
    robustness mechanism between them."""

    def __init__(self, config: ServeConfig = ServeConfig()):
        self.config = config
        self.pool = ExecutorPool(
            max_workers=config.max_workers, max_attempts=config.max_attempts
        )
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_threshold,
            reset_seconds=config.breaker_reset_seconds,
        )
        self.quotas = TenantQuotas(default=config.tenant_quota)
        self.validator = GraphValidator()
        self._server: Optional[asyncio.base_events.Server] = None
        self._draining = False
        self._drain_event: Optional[asyncio.Event] = None
        self._inflight = 0
        self._connections: set = set()
        self._request_ids = itertools.count(1)
        #: fingerprint-keyed graphs already built/validated this process.
        self._graph_cache: Dict[str, CSRGraph] = {}
        #: fingerprint-keyed graph feature vectors (predictor inputs).
        self._gfeat_cache: Dict[str, dict] = {}
        #: ``None`` until the first cold miss; then ``(predictor, reason)``
        #: — resolved once so a corrupt artifact is quarantined once.
        self._predictor_state: Optional[tuple] = None
        #: LRU of finished answers, keyed by the full request identity.
        self._results: "Dict[tuple, dict]" = {}
        #: In-flight sweeps by the same identity (request coalescing).
        self._pending: Dict[tuple, asyncio.Task] = {}
        self.stats = {
            "requests": 0,
            "answers": 0,
            "cache_hits": 0,
            "predicted": 0,
            "coalesced": 0,
            "degraded": 0,
            "errors": 0,
            "rejected": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        self._drain_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        print(f"serving on http://{host}:{port}", file=sys.stderr, flush=True)
        return host, port

    async def run_until_drained(self) -> None:
        """Serve until :meth:`request_drain` (e.g. from a signal), then
        drain: stop accepting, wait for in-flight requests, close."""
        assert self._server is not None and self._drain_event is not None
        async with self._server:
            await self._drain_event.wait()
            self._draining = True
            self._server.close()
            await self._server.wait_closed()
            deadline = time.monotonic() + self.config.drain_grace_seconds
            while self._inflight > 0 and time.monotonic() < deadline:
                await asyncio.sleep(0.05)
        for writer in list(self._connections):
            writer.close()
        print("drained, exiting", file=sys.stderr, flush=True)

    def request_drain(self) -> None:
        """Begin graceful shutdown (idempotent; signal-handler safe)."""
        self._draining = True
        if self._drain_event is not None:
            self._drain_event.set()

    def install_signal_handlers(self, loop: asyncio.AbstractEventLoop) -> None:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                signal.signal(signum, lambda *_: self.request_drain())

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        request_id = f"req-{next(self._request_ids):06d}"
        self._inflight += 1
        try:
            await self._serve_one(reader, writer, request_id)
        except (ConnectionResetError, BrokenPipeError):
            pass  # peer went away; nothing to answer
        except Exception as exc:  # noqa: BLE001 - last-resort error body
            self.stats["errors"] += 1
            try:
                error = ServiceError("internal", f"{type(exc).__name__}: {exc}")
                await send_json(
                    writer, error.status, error_payload(error, request_id)
                )
            except Exception:
                pass
        finally:
            self._inflight -= 1
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _serve_one(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        request_id: str,
    ) -> None:
        self.stats["requests"] += 1
        try:
            request = await read_request(
                reader, max_body=self.config.max_body_bytes
            )
        except ServiceError as error:
            self.stats["errors"] += 1
            await send_json(
                writer, error.status, error_payload(error, request_id)
            )
            return
        if request is None:
            return  # bare TCP probe

        try:
            await self._route(request, writer, request_id)
        except ServiceError as error:
            if error.status == 429:
                self.stats["rejected"] += 1
            else:
                self.stats["errors"] += 1
            headers = (
                {"Retry-After": str(int(max(error.retry_after, 1)))}
                if error.retry_after is not None
                else None
            )
            await send_json(
                writer,
                error.status,
                error_payload(error, request_id),
                extra_headers=headers,
            )

    async def _route(
        self, request: HttpRequest, writer, request_id: str
    ) -> None:
        path, method = request.path, request.method
        if path == "/healthz":
            if method != "GET":
                raise ServiceError("method-not-allowed", "use GET /healthz")
            await send_json(writer, 200, {"status": "ok"})
        elif path == "/readyz":
            if method != "GET":
                raise ServiceError("method-not-allowed", "use GET /readyz")
            if self._draining:
                raise ServiceError("shutting-down", "server is draining")
            await send_json(
                writer, 200,
                {"status": "ready", "breaker": self.breaker.state.value},
            )
        elif path == "/statz":
            if method != "GET":
                raise ServiceError("method-not-allowed", "use GET /statz")
            await send_json(writer, 200, self.statz())
        elif path == "/v1/advise":
            if method != "POST":
                raise ServiceError(
                    "method-not-allowed", "use POST /v1/advise"
                )
            await self._advise(request, writer, request_id)
        else:
            raise ServiceError("not-found", f"no such endpoint {path!r}")

    def statz(self) -> dict:
        return {
            "stats": dict(self.stats),
            "inflight": self._inflight,
            "breaker": self.breaker.snapshot(),
            "quotas": self.quotas.snapshot(),
            "executor": {
                "jobs_run": self.pool.jobs_run,
                "attempts_failed": self.pool.attempts_failed,
            },
            "result_cache_entries": len(self._results),
            "draining": self._draining,
        }

    # ------------------------------------------------------------------
    # The advise path
    # ------------------------------------------------------------------
    async def _advise(
        self, request: HttpRequest, writer, request_id: str
    ) -> None:
        started = time.monotonic()
        if self._draining:
            raise ServiceError(
                "shutting-down", "server is draining", retry_after=1.0
            )
        body = request.json()
        graph = self._resolve_graph(body)
        algorithms, models, gpus, cpus = self._resolve_axes(body)
        deadline_ms = body.get("deadline_ms")
        deadline_s = self.config.deadline_seconds
        if deadline_ms is not None:
            try:
                deadline_s = min(deadline_s, float(deadline_ms) / 1000.0)
            except (TypeError, ValueError):
                raise ServiceError("bad-request", "deadline_ms must be a number")
        stream = bool(body.get("stream", False))
        allow_predict = bool(body.get("predict", True))
        tenant = request.header("x-repro-tenant", "anonymous")

        # Admission: global queue bound, then the tenant's quota, then the
        # deterministic enqueue fault hook (chaos testing).
        if self._inflight > self.config.max_inflight:
            raise ServiceError(
                "queue-full",
                f"{self._inflight} requests in flight "
                f"(limit {self.config.max_inflight})",
                retry_after=1.0,
            )
        nbytes = estimate_bytes(graph)
        if nbytes > self.config.max_graph_bytes:
            raise ServiceError(
                "budget-exceeded",
                f"estimated working set {nbytes / 1e6:.1f} MB exceeds the "
                f"service limit {self.config.max_graph_bytes / 1e6:.1f} MB",
            )
        reservation = self.quotas.admit(tenant, nbytes)
        try:
            from ..bench import faults

            try:
                faults.inject_enqueue_fault(
                    algorithms[0].value if algorithms else "", graph.name
                )
            except faults.FaultInjected as exc:
                raise ServiceError(
                    "queue-full", f"{exc}", retry_after=1.0
                ) from None

            if stream:
                await start_ndjson_stream(writer)
                await send_ndjson_event(
                    writer,
                    {"event": "queued", "request_id": request_id,
                     "fingerprint": graph.fingerprint()},
                )

            payload = await self._answer(
                graph, algorithms, models, gpus, cpus,
                deadline_s=deadline_s,
                request_id=request_id,
                progress=writer if stream else None,
                allow_predict=allow_predict,
            )
        finally:
            reservation.release()

        payload["request_id"] = request_id
        payload["elapsed_ms"] = round((time.monotonic() - started) * 1000, 3)
        self.stats["answers"] += 1
        if payload.get("degraded"):
            self.stats["degraded"] += 1
        if stream:
            await send_ndjson_event(
                writer, {"event": "result", **payload}
            )
            await end_ndjson_stream(writer)
        else:
            await send_json(writer, 200, payload)

    # -- graph & axes resolution ---------------------------------------
    def _resolve_graph(self, body: dict) -> CSRGraph:
        name = body.get("graph")
        edges = body.get("edges")
        if (name is None) == (edges is None):
            raise ServiceError(
                "bad-request",
                "provide exactly one of 'graph' (a dataset name) or "
                "'edges' (an edge-list upload)",
            )
        if name is not None:
            if not isinstance(name, str):
                raise ServiceError("bad-request", "'graph' must be a string")
            registry = {**DATASETS, **EXTRA_DATASETS}
            spec = registry.get(name)
            if spec is None or self.config.scale not in spec.builders:
                raise ServiceError(
                    "unknown-graph",
                    f"unknown graph {name!r}; known: {sorted(registry)}",
                )
            cached = self._graph_cache.get(f"name:{name}")
            if cached is None:
                cached = spec.build(self.config.scale)
                self._graph_cache[f"name:{name}"] = cached
            return cached
        return self._build_upload(body, edges)

    def _build_upload(self, body: dict, edges) -> CSRGraph:
        if not isinstance(edges, list):
            raise ServiceError(
                "bad-request", "'edges' must be a list of [u, v] pairs"
            )
        try:
            arr = np.asarray(edges, dtype=np.int64)
        except (ValueError, OverflowError):
            raise ServiceError(
                "invalid-graph", "'edges' is not a rectangular integer list"
            )
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ServiceError(
                "invalid-graph", "'edges' must be [u, v] pairs"
            )
        n_vertices = body.get("n_vertices")
        if n_vertices is None:
            n_vertices = int(arr.max()) + 1 if arr.size else 0
        if not isinstance(n_vertices, int) or n_vertices < 0:
            raise ServiceError(
                "bad-request", "'n_vertices' must be a non-negative integer"
            )
        if arr.size and (arr.min() < 0 or arr.max() >= n_vertices):
            raise ServiceError(
                "invalid-graph",
                f"edge endpoints must lie in [0, {n_vertices - 1}]",
            )
        weights = body.get("weights")
        w = None
        if weights is not None:
            if not isinstance(weights, list) or len(weights) != arr.shape[0]:
                raise ServiceError(
                    "invalid-graph",
                    "'weights' must be a list with one entry per edge",
                )
            w = np.asarray(weights, dtype=np.int64)
        try:
            graph = from_edge_arrays(
                arr[:, 0], arr[:, 1], n_vertices,
                weights=w, symmetrize=True, dedup=True, drop_self_loops=True,
                name="upload",
            )
            self.validator.check(graph)
        except GraphValidationError as exc:
            raise ServiceError("invalid-graph", str(exc)) from None
        except ValueError as exc:
            raise ServiceError("invalid-graph", str(exc)) from None
        fp = graph.fingerprint()
        cached = self._graph_cache.get(fp)
        if cached is not None:
            return cached
        graph = CSRGraph(
            graph.row_ptr, graph.col_idx, graph.weights,
            name=f"upload-{fp[:8]}",
        )
        self._graph_cache[fp] = graph
        return graph

    def _resolve_axes(self, body: dict):
        def enum_list(key, enum_type, default):
            raw = body.get(key)
            if raw is None:
                raw = body.get(key[:-1])  # singular alias: "algorithm"
                if raw is not None:
                    raw = [raw]
            if raw is None:
                return default
            if not isinstance(raw, list) or not raw:
                raise ServiceError(
                    "bad-request", f"'{key}' must be a non-empty list"
                )
            out = []
            for value in raw:
                try:
                    out.append(enum_type(value))
                except ValueError:
                    known = sorted(e.value for e in enum_type)
                    raise ServiceError(
                        "bad-request",
                        f"unknown {key[:-1]} {value!r}; known: {known}",
                    )
            return tuple(out)

        algorithms = enum_list(
            "algorithms", Algorithm, self.config.default_algorithms
        )
        models = enum_list("models", Model, tuple(Model))
        gpus = tuple(body.get("gpus", tuple(GPUS)))
        cpus = tuple(body.get("cpus", tuple(CPUS)))
        for name in gpus:
            if name not in GPUS:
                raise ServiceError(
                    "bad-request", f"unknown GPU {name!r}; known: {sorted(GPUS)}"
                )
        for name in cpus:
            if name not in CPUS:
                raise ServiceError(
                    "bad-request", f"unknown CPU {name!r}; known: {sorted(CPUS)}"
                )
        return algorithms, models, gpus, cpus

    # -- answering ------------------------------------------------------
    def _result_key(self, graph, algorithms, models, gpus, cpus) -> tuple:
        return (
            graph.fingerprint(),
            tuple(a.value for a in algorithms),
            tuple(m.value for m in models),
            gpus,
            cpus,
            self.config.verify,
        )

    async def _answer(
        self,
        graph: CSRGraph,
        algorithms,
        models,
        gpus,
        cpus,
        *,
        deadline_s: float,
        request_id: str,
        progress=None,
        allow_predict: bool = True,
    ) -> dict:
        key = self._result_key(graph, algorithms, models, gpus, cpus)
        cached = self._results.get(key)
        if cached is not None:
            # LRU touch.
            self._results.pop(key)
            self._results[key] = cached
            self.stats["cache_hits"] += 1
            return {
                **cached, "source": "cache", "kernel_executions": 0,
                "degraded": False,
            }

        # The predicted tier: a cold miss the trained model fully covers
        # answers instantly with zero kernel executions.  It sits above
        # the breaker on purpose — a learned estimate beats the static
        # guidelines even while the executor is unhealthy.
        if allow_predict:
            predicted = self._predicted_payload(
                graph, algorithms, models, gpus, cpus
            )
            if predicted is not None:
                self.stats["predicted"] += 1
                return predicted

        if not self.breaker.allow():
            return self._degraded_payload(
                graph, "circuit breaker is open", code="breaker-open"
            )

        pending = self._pending.get(key)
        if pending is not None:
            self.stats["coalesced"] += 1
            payload = dict(await asyncio.shield(pending))
            # A degraded answer keeps its static-guideline provenance —
            # followers must see the same contract as the leader.
            if not payload.get("degraded"):
                payload["source"] = "coalesced"
            return payload

        task = asyncio.ensure_future(
            self._sweep_and_package(
                graph, algorithms, models, gpus, cpus,
                deadline_s=deadline_s, progress=progress,
            )
        )
        self._pending[key] = task
        try:
            payload = await asyncio.shield(task)
        finally:
            self._pending.pop(key, None)
        if not payload.get("degraded") and "error" not in payload:
            self._results[key] = {
                k: v for k, v in payload.items()
                if k not in ("source", "kernel_executions")
            }
            while len(self._results) > self.config.result_cache_entries:
                self._results.pop(next(iter(self._results)))
        return payload

    async def _sweep_and_package(
        self, graph, algorithms, models, gpus, cpus, *, deadline_s, progress
    ) -> dict:
        job = SweepJob(
            graph=graph,
            algorithms=algorithms,
            models=models,
            gpu_names=gpus,
            cpu_names=cpus,
            verify=self.config.verify,
            trace_cache=self.config.trace_cache,
        )
        deadline = time.monotonic() + deadline_s

        def on_attempt(attempt: int) -> None:
            if progress is not None:
                asyncio.ensure_future(
                    send_ndjson_event(
                        progress, {"event": "attempt", "attempt": attempt}
                    )
                )

        try:
            summary = await self.pool.run_job(
                job, deadline=deadline, on_attempt=on_attempt
            )
        except JobFailed as failure:
            if failure.environment:
                # One breaker strike per failed attempt: a single request
                # that burned through every retry is as loud a signal as
                # several requests failing once each.
                for _ in range(max(failure.attempts, 1)):
                    self.breaker.record_failure()
                return self._degraded_payload(
                    graph,
                    f"sweep executor unavailable: {failure.message}",
                    code=None,
                    error_class=failure.error_class,
                )
            raise ServiceError.from_error_class(
                failure.error_class, failure.message
            )
        self.breaker.record_success()
        if not summary["measured"] and summary["failures"]:
            # Nothing ran at all: surface the first deterministic failure.
            first = summary["failures"][0]
            raise ServiceError.from_error_class(
                ErrorClass(first["error_class"]), first["message"]
            )
        return {
            "graph": self._graph_info(graph),
            "advisor": self._advisor_info(graph),
            "measured": summary["measured"],
            "failures": summary["failures"],
            "n_runs": summary["n_runs"],
            "kernel_executions": summary["kernel_executions"],
            "degraded": False,
            "source": "sweep",
        }

    # -- the predicted tier --------------------------------------------
    def _get_predictor(self):
        """The style predictor, resolved lazily and at most once."""
        if not self.config.predict:
            return None
        if self._predictor_state is None:
            from ..bench.predictor import resolve_predictor

            predictor, reason = resolve_predictor()
            self._predictor_state = (predictor, reason)
            if predictor is None:
                print(
                    f"predicted tier unavailable: {reason}",
                    file=sys.stderr, flush=True,
                )
        return self._predictor_state[0]

    def _graph_features(self, graph: CSRGraph) -> dict:
        fp = graph.fingerprint()
        feat = self._gfeat_cache.get(fp)
        if feat is None:
            feat = analyze_graph(graph).features()
            self._gfeat_cache[fp] = feat
        return feat

    def _predicted_payload(
        self, graph, algorithms, models, gpus, cpus
    ) -> Optional[dict]:
        """Answer from the model, or ``None`` when a real sweep must run.

        ``None`` whenever any requested (algorithm, device) cell lies
        outside the model's training coverage — prediction there would be
        extrapolation, and the service never serves guesses it cannot
        bound.  Predicted answers are not stored in the result LRU, so a
        later ``"predict": false`` request still gets measured numbers.
        """
        predictor = self._get_predictor()
        if predictor is None:
            return None
        cells = []
        for algorithm in algorithms:
            for model in models:
                for name in gpus if model.is_gpu else cpus:
                    if not predictor.covers(algorithm, name):
                        return None
                    cells.append((algorithm, model, name))
        if not cells:
            return None
        gfeat = self._graph_features(graph)
        measured = []
        for algorithm, model, name in cells:
            spec, seconds = predictor.best_style(
                algorithm, model, gfeat, DEVICES[name]
            )
            measured.append({
                "algorithm": algorithm.value,
                "model": model.value,
                "device": name,
                "style": spec.label(),
                "seconds": seconds,
                "throughput_ges": graph.n_edges / seconds / 1e9,
                "verified": False,
                "predicted": True,
            })
        return {
            "graph": self._graph_info(graph),
            "advisor": self._advisor_info(graph),
            "measured": measured,
            "failures": [],
            "n_runs": len(measured),
            "kernel_executions": 0,
            "degraded": False,
            "source": "predicted",
        }

    def _degraded_payload(
        self, graph, reason: str, *, code, error_class=None
    ) -> dict:
        if code is None and error_class is not None:
            code = code_for_error_class(error_class)
        return {
            "graph": self._graph_info(graph),
            "advisor": self._advisor_info(graph),
            "measured": [],
            "failures": [],
            "n_runs": 0,
            "kernel_executions": 0,
            "degraded": True,
            "degraded_reason": reason,
            "degraded_code": code,
            "source": "static-guideline",
        }

    @staticmethod
    def _graph_info(graph: CSRGraph) -> dict:
        return {
            "name": graph.name,
            "fingerprint": graph.fingerprint(),
            "n_vertices": graph.n_vertices,
            "n_edges": graph.n_edges,
            "weighted": graph.is_weighted,
        }

    @staticmethod
    def _advisor_info(graph: CSRGraph) -> list:
        report = advise(graph)
        return [
            {
                "axis": r.axis,
                "choice": r.choice,
                "rationale": r.rationale,
                "section": r.section,
                "model": None if r.model is None else r.model.value,
            }
            for r in report.recommendations
        ]


async def serve_main(config: ServeConfig = ServeConfig()) -> None:
    """Boot the service and run until drained (the CLI entry point)."""
    service = StyleAdvisorService(config)
    loop = asyncio.get_running_loop()
    service.install_signal_handlers(loop)
    await service.start()
    await service.run_until_drained()
