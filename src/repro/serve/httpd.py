"""Minimal asyncio HTTP/1.1 plumbing for the advisor service.

The serving plane is deliberately stdlib-only, so this module implements
just enough of HTTP/1.1 for the service's needs: parse one request per
connection (``Connection: close`` semantics — load balancers in front of
the service own keep-alive), emit JSON responses, and stream NDJSON
progress events over chunked transfer encoding.  Malformed input becomes
a typed :class:`~repro.serve.errors.ServiceError` (``bad-request`` /
``payload-too-large``), never a dropped connection.
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .errors import ServiceError

__all__ = [
    "HttpRequest",
    "read_request",
    "send_json",
    "start_ndjson_stream",
    "send_ndjson_event",
    "end_ndjson_stream",
]

#: Upper bound on the request head (request line + headers) — generous
#: for real clients, small enough that a garbage stream cannot balloon.
MAX_HEAD_BYTES = 64 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class HttpRequest:
    """One parsed request: method, split path, lower-cased headers, body."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        """The body as a JSON object (``bad-request`` on anything else)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except ValueError as exc:
            raise ServiceError("bad-request", f"body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ServiceError("bad-request", "body must be a JSON object")
        return payload

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


async def read_request(
    reader: asyncio.StreamReader, *, max_body: int
) -> Optional[HttpRequest]:
    """Parse one HTTP/1.1 request from the stream.

    Returns ``None`` when the peer closed the connection before sending
    anything (a health-checker's TCP probe, not an error).  Raises
    :class:`ServiceError` on malformed or oversized input.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ServiceError("bad-request", "truncated request head")
    except asyncio.LimitOverrunError:
        raise ServiceError("bad-request", "request head exceeds limit")
    if len(head) > MAX_HEAD_BYTES:
        raise ServiceError("bad-request", "request head exceeds limit")

    lines = head.decode("latin-1").split("\r\n")
    method, target = _parse_request_line(lines[0])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ServiceError("bad-request", f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    path, query = _split_target(target)
    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise ServiceError("bad-request", "non-numeric Content-Length")
        if length < 0:
            raise ServiceError("bad-request", "negative Content-Length")
        if length > max_body:
            raise ServiceError(
                "payload-too-large",
                f"body of {length} bytes exceeds the {max_body}-byte limit",
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ServiceError("bad-request", "body shorter than Content-Length")
    elif headers.get("transfer-encoding", "").lower() == "chunked":
        raise ServiceError(
            "bad-request", "chunked request bodies are not supported"
        )
    return HttpRequest(
        method=method, path=path, query=query, headers=headers, body=body
    )


def _parse_request_line(line: str) -> Tuple[str, str]:
    parts = line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ServiceError("bad-request", f"malformed request line {line!r}")
    return parts[0].upper(), parts[1]


def _split_target(target: str) -> Tuple[str, Dict[str, str]]:
    parsed = urllib.parse.urlsplit(target)
    query = {
        key: values[-1]
        for key, values in urllib.parse.parse_qs(parsed.query).items()
    }
    return parsed.path or "/", query


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
def _head(
    status: int, *, content_type: str, extra: Optional[Dict[str, str]] = None
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    for name, value in (extra or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n").encode("latin-1")


async def send_json(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict,
    *,
    extra_headers: Optional[Dict[str, str]] = None,
) -> None:
    """Send one complete JSON response and flush it."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    head = _head(
        status, content_type="application/json", extra=extra_headers
    )
    writer.write(head + f"Content-Length: {len(body)}\r\n\r\n".encode() + body)
    await writer.drain()


async def start_ndjson_stream(
    writer: asyncio.StreamWriter, status: int = 200
) -> None:
    """Open a chunked NDJSON response (one JSON event per line)."""
    head = _head(
        status,
        content_type="application/x-ndjson",
        extra={"Transfer-Encoding": "chunked"},
    )
    writer.write(head + b"\r\n")
    await writer.drain()


async def send_ndjson_event(writer: asyncio.StreamWriter, event: dict) -> None:
    """Send one event line as an HTTP chunk (flushed immediately, so
    clients see progress as it happens)."""
    line = (json.dumps(event, sort_keys=True) + "\n").encode()
    writer.write(f"{len(line):x}\r\n".encode() + line + b"\r\n")
    await writer.drain()


async def end_ndjson_stream(writer: asyncio.StreamWriter) -> None:
    writer.write(b"0\r\n\r\n")
    await writer.drain()
