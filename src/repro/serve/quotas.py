"""Per-tenant admission quotas for the advisor service.

One misbehaving client must not be able to occupy every executor slot or
pin the machine's memory with huge uploads.  Each tenant (the
``X-Repro-Tenant`` header; ``anonymous`` when absent) gets a quota of
concurrent in-flight requests and reserved estimated bytes; admission
*reserves* against the quota atomically and the reservation is released
when the request finishes, whatever its outcome.

The byte side reuses the sweep runtime's pre-launch budgeting
(:class:`~repro.runtime.budget.ResourceBudget` semantics): a request's
cost is :func:`~repro.runtime.budget.estimate_bytes` of its graph, so the
same estimate that gates a kernel launch gates service admission.

Thread-safe by a plain lock: the service calls it from the event loop,
but tests (and any future threaded front end) hammer it from many threads
— over-admission under concurrency is exactly the bug this class exists
to prevent.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from .errors import ServiceError

__all__ = ["TenantQuota", "QuotaReservation", "TenantQuotas"]


@dataclass(frozen=True)
class TenantQuota:
    """Limits for one tenant; ``None`` disables a dimension."""

    max_inflight: Optional[int] = 4
    max_bytes: Optional[int] = None


@dataclass
class _TenantState:
    inflight: int = 0
    reserved_bytes: int = 0


class QuotaReservation:
    """One admitted request's hold on its tenant's quota.

    Context-manager style; releasing twice is a no-op, so error paths can
    release defensively.
    """

    def __init__(self, quotas: "TenantQuotas", tenant: str, nbytes: int):
        self._quotas = quotas
        self.tenant = tenant
        self.nbytes = nbytes
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._quotas._release(self.tenant, self.nbytes)

    def __enter__(self) -> "QuotaReservation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class TenantQuotas:
    """Atomic reserve/release of per-tenant admission quotas."""

    def __init__(self, default: TenantQuota = TenantQuota()):
        self.default = default
        self._overrides: Dict[str, TenantQuota] = {}
        self._state: Dict[str, _TenantState] = {}
        self._lock = threading.Lock()

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        with self._lock:
            self._overrides[tenant] = quota

    def quota_for(self, tenant: str) -> TenantQuota:
        return self._overrides.get(tenant, self.default)

    def admit(self, tenant: str, nbytes: int) -> QuotaReservation:
        """Reserve one request slot and ``nbytes`` for ``tenant``.

        Raises ``quota-exceeded`` (:class:`ServiceError`, HTTP 429) when
        either dimension would overflow; the check and the reservation are
        one atomic step, so N racing admissions can never jointly exceed
        the quota.
        """
        quota = self.quota_for(tenant)
        with self._lock:
            state = self._state.setdefault(tenant, _TenantState())
            if (
                quota.max_inflight is not None
                and state.inflight + 1 > quota.max_inflight
            ):
                raise ServiceError(
                    "quota-exceeded",
                    f"tenant {tenant!r} already has {state.inflight} "
                    f"in-flight request(s) (limit {quota.max_inflight})",
                    retry_after=1.0,
                )
            if (
                quota.max_bytes is not None
                and state.reserved_bytes + nbytes > quota.max_bytes
            ):
                raise ServiceError(
                    "quota-exceeded",
                    f"tenant {tenant!r} would reserve "
                    f"{(state.reserved_bytes + nbytes) / 1e6:.1f} MB "
                    f"(limit {quota.max_bytes / 1e6:.1f} MB)",
                    retry_after=1.0,
                )
            state.inflight += 1
            state.reserved_bytes += nbytes
        return QuotaReservation(self, tenant, nbytes)

    def _release(self, tenant: str, nbytes: int) -> None:
        with self._lock:
            state = self._state.get(tenant)
            if state is None:
                return
            state.inflight = max(0, state.inflight - 1)
            state.reserved_bytes = max(0, state.reserved_bytes - nbytes)

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Current usage per tenant (for ``/statz``)."""
        with self._lock:
            return {
                tenant: {
                    "inflight": state.inflight,
                    "reserved_bytes": state.reserved_bytes,
                }
                for tenant, state in self._state.items()
                if state.inflight or state.reserved_bytes
            }
