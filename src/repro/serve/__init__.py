"""Always-on style-advisor service (``repro serve``).

The serving plane of the reproduction: clients POST a graph and get the
paper's style recommendations plus measured best-style timings, behind
admission control, per-tenant quotas, a circuit breaker, and graceful
degradation to the static Section 5.16 guidelines.  See
``docs/serving.md`` for the API and the robustness model.
"""

from .app import ServeConfig, StyleAdvisorService, serve_main
from .breaker import BreakerState, CircuitBreaker
from .errors import (
    ERROR_CLASS_CODES,
    ERROR_CODES,
    ServiceError,
    code_for_error_class,
    error_payload,
)
from .jobs import ExecutorPool, JobFailed, SweepJob
from .quotas import TenantQuota, TenantQuotas

__all__ = [
    "ServeConfig",
    "StyleAdvisorService",
    "serve_main",
    "BreakerState",
    "CircuitBreaker",
    "ERROR_CODES",
    "ERROR_CLASS_CODES",
    "ServiceError",
    "code_for_error_class",
    "error_payload",
    "ExecutorPool",
    "JobFailed",
    "SweepJob",
    "TenantQuota",
    "TenantQuotas",
]
