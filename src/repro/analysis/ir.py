"""A loop-structured IR for the generated CUDA / OpenMP / C++ sources.

The conformance linter (PR 3) checks construct *presence* by substring;
this module actually parses the emitted programs.  The pipeline is

1. a **lexer** that strips comments and string literals while preserving
   line numbers,
2. a **structural parser** that brace-matches the token stream into a
   tree of blocks, statements and preprocessor directives, and
3. a **region extractor** that lifts each parallel construct — CUDA
   ``__global__`` kernels, ``#pragma omp parallel for`` loops, and
   ``parallel_step`` C++-thread lambdas — into a
   :class:`ParallelRegion`: its loop nest (with induction variables), a
   tiny dataflow environment (``var -> defining expression``), and every
   shared-array access classified as read / plain write / atomic RMW /
   capture with its index expression resolved to node-, edge- or
   neighbor-indirect form.

The generators emit a closed construct set (the paper's Listings 1-13),
so this parser does not need to be a C++ front end — but unlike the
substring linter it is *structural*: moving an atomic, renaming a buffer
or re-indexing a worklist changes the IR even when the old substrings
survive somewhere in the file.  The race detector
(:mod:`repro.analysis.races`) and the style-inference engine
(:mod:`repro.analysis.infer`) both run on this IR.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "AccessKind",
    "IndexClass",
    "Guard",
    "RegionKind",
    "ArrayAccess",
    "Loop",
    "ParallelRegion",
    "FunctionInfo",
    "SourceIR",
    "parse_source",
    "strip_comments",
    "match_brace_block",
]


# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------
def strip_comments(text: str) -> str:
    """Blank out comments and string/char literals, keeping the layout.

    Every replaced character becomes a space (newlines survive), so line
    numbers and column structure of the result match the input exactly.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif ch == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif ch in "\"'":
            quote = ch
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                        i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


def match_brace_block(text: str, open_index: int) -> int:
    """Index just past the ``}`` matching the ``{`` at ``open_index``.

    ``text`` must already be comment/string-stripped.  Returns ``len(text)``
    when the block never closes (truncated source).
    """
    assert text[open_index] == "{"
    depth = 0
    for i in range(open_index, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


# ----------------------------------------------------------------------
# Structural parse tree
# ----------------------------------------------------------------------
@dataclass
class Stmt:
    """One semicolon-terminated statement."""

    text: str
    line: int


@dataclass
class Directive:
    """One preprocessor line (``#pragma``, ``#define``, ``#include`` ...)."""

    text: str
    line: int


@dataclass
class Block:
    """A brace-delimited block: its header text and ordered children."""

    header: str
    line: int
    children: List[Union["Block", Stmt, Directive]] = field(default_factory=list)


_BLOCK_HEADER_KEYWORDS = (
    "struct", "class", "enum", "union", "namespace", "extern", "else", "do", "try",
)


def _opens_block(pending: str) -> bool:
    """Whether a ``{`` after ``pending`` starts a block (vs. a brace init).

    The generators' block openers always end in ``)`` (function bodies,
    control statements, lambdas) or are bare ``{`` lines (critical
    sections); everything else (``std::atomic<int> changed{0}``,
    ``std::vector<int>{source}``) is an initializer.
    """
    p = pending.strip()
    if not p or p.endswith(")"):
        return True
    first = p.split(None, 1)[0] if p else ""
    return first in _BLOCK_HEADER_KEYWORDS or p.endswith("else")


def _parse_tree(stripped: str) -> Block:
    """Parse comment-stripped source into a root block."""
    root = Block(header="", line=1)
    stack = [root]
    paren_stack: List[int] = []
    buf: List[str] = []
    buf_line = 1
    line = 1
    paren = 0
    i, n = 0, len(stripped)

    def flush_stmt() -> None:
        nonlocal buf, buf_line
        text = "".join(buf).strip()
        if text:
            stack[-1].children.append(Stmt(text=text, line=buf_line))
        buf = []
        buf_line = line

    while i < n:
        ch = stripped[i]
        # Preprocessor directives own the rest of their (logical) line.
        if ch == "#" and not "".join(buf).strip():
            j = i
            while j < n and stripped[j] != "\n":
                j += 1
            stack[-1].children.append(
                Directive(text=stripped[i:j].strip(), line=line)
            )
            i = j
            buf = []
            buf_line = line
            continue
        if ch == "\n":
            line += 1
            buf.append(" ")
            if not "".join(buf).strip():
                buf_line = line
            i += 1
            continue
        if ch == "(":
            paren += 1
        elif ch == ")":
            paren = max(0, paren - 1)
        if ch == "{":
            pending = "".join(buf)
            if _opens_block(pending):
                # A lambda body inside a call ("parallel_step([&](int tid) {")
                # opens at paren depth > 0; suspend the depth for its scope.
                block = Block(header=pending.strip(), line=buf_line)
                stack[-1].children.append(block)
                stack.append(block)
                paren_stack.append(paren)
                paren = 0
                buf = []
                buf_line = line
                i += 1
                continue
            # Brace initializer: consume inline up to the matching brace.
            end = match_brace_block(stripped, i)
            chunk = stripped[i:end]
            line += chunk.count("\n")
            buf.append(chunk)
            i = end
            continue
        if ch == "}" and paren == 0:
            flush_stmt()
            if len(stack) > 1:
                stack.pop()
                paren = paren_stack.pop() if paren_stack else 0
            i += 1
            continue
        if ch == ";" and paren == 0:
            buf.append(";")
            flush_stmt()
            i += 1
            continue
        buf.append(ch)
        i += 1
    flush_stmt()
    return root


# ----------------------------------------------------------------------
# IR dataclasses
# ----------------------------------------------------------------------
class AccessKind(enum.Enum):
    """How a statement touches a shared location."""

    READ = "read"
    WRITE = "write"  #: plain (or relaxed ``.store``) write — racy if shared
    ATOMIC_RMW = "rmw"  #: atomicMin/Add/Max, fetch_*, exchange, CAS, guarded RMW
    CAPTURE = "capture"  #: atomic RMW whose old value is consumed (slot claim)


class IndexClass(enum.Enum):
    """What the resolved index expression ranges over (Listing 1/3/4/8)."""

    ITEM = "item"  #: the work-item id itself — injective across items
    WORKLIST = "worklist"  #: ``wl[item]`` — duplicates possible (dup styles)
    NEIGHBOR = "neighbor"  #: ``nbr_list[...]`` indirect — many-to-one
    ENDPOINT = "endpoint"  #: ``src_list``/``dst_list`` endpoint — many-to-one
    SLOT = "slot"  #: claimed via an atomic capture — injective by construction
    THREAD = "thread"  #: derived from the thread/lane/tid id — per-thread slot
    LITERAL = "literal"  #: a compile-time constant — all threads collide
    SCALAR = "scalar"  #: no index: the location is a shared scalar
    OTHER = "other"  #: unresolved — treated as potentially many-to-one


class Guard(enum.Enum):
    """The synchronization context an access executes under."""

    NONE = "none"
    CRITICAL = "critical"  #: inside ``#pragma omp critical``
    ATOMIC_PRAGMA = "atomic"  #: statement under ``#pragma omp atomic``
    CAPTURE_PRAGMA = "capture"  #: statement under ``#pragma omp atomic capture``
    MUTEX = "mutex"  #: after a ``std::lock_guard`` in the same block
    REDUCTION = "reduction"  #: variable named in a ``reduction(+:...)`` clause


class RegionKind(enum.Enum):
    CUDA_KERNEL = "cuda_kernel"
    OMP_FOR = "omp_for"
    CPP_THREADS = "cpp_threads"


@dataclass(frozen=True)
class ArrayAccess:
    """One classified access to a shared location inside a parallel region."""

    array: str  #: base name (``val``, ``wl_next``, ``status_out`` ...)
    index: str  #: raw index expression ("" for scalars)
    kind: AccessKind
    index_class: IndexClass
    guard: Guard
    line: int
    rhs: str = ""  #: stored expression for writes ("" otherwise)
    condition: str = ""  #: innermost enclosing ``if`` header text

    @property
    def injective(self) -> bool:
        """Whether distinct parallel work items hit distinct cells."""
        return self.index_class in (
            IndexClass.ITEM,
            IndexClass.SLOT,
            IndexClass.THREAD,
        )


@dataclass(frozen=True)
class Loop:
    """One loop of a region's nest."""

    header: str
    var: Optional[str]
    line: int
    depth: int  #: 0 = the region's item loop


@dataclass
class ParallelRegion:
    """One parallel construct with its loop nest and classified accesses."""

    kind: RegionKind
    name: str  #: kernel/function name, or a short pragma/lambda tag
    line: int
    pragma: str  #: the owning ``#pragma omp ...`` text ("" otherwise)
    item_var: Optional[str]  #: induction variable of the item loop
    loops: List[Loop] = field(default_factory=list)
    accesses: List[ArrayAccess] = field(default_factory=list)
    env: Dict[str, str] = field(default_factory=dict)
    locals: set = field(default_factory=set)
    body: str = ""  #: flattened statement text (joined, for construct probes)

    def accesses_to(self, array: str) -> List[ArrayAccess]:
        return [a for a in self.accesses if a.array == array]

    def arrays(self) -> List[str]:
        seen: Dict[str, None] = {}
        for a in self.accesses:
            seen.setdefault(a.array, None)
        return list(seen)


@dataclass(frozen=True)
class FunctionInfo:
    """One function definition found at file scope."""

    name: str
    header: str
    line: int
    is_kernel: bool  #: ``__global__``
    is_device: bool  #: ``__device__``


@dataclass
class SourceIR:
    """The parsed form of one emitted source file."""

    includes: List[str]
    defines: Dict[str, str]
    typedefs: Dict[str, str]
    functions: List[FunctionInfo]
    regions: List[ParallelRegion]
    text: str  #: the comment-stripped source

    def has_include(self, name: str) -> bool:
        return any(name in inc for inc in self.includes)

    def region_bodies(self) -> str:
        return "\n".join(r.body for r in self.regions)


# ----------------------------------------------------------------------
# Region extraction
# ----------------------------------------------------------------------
_GLOBAL_RE = re.compile(r"__global__\s+void\s+(\w+)")
_FUNC_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*\($")
_FOR_VAR_RE = re.compile(r"for\s*\(\s*(?:[\w:<>]+\s+)*?(\w+)\s*=")
_FOR_CONT_RE = re.compile(r"for\s*\(\s*;\s*(\w+)")
_DECL_RE = re.compile(
    r"^(?:const\s+|static\s+|unsigned\s+|signed\s+|long\s+|short\s+)*"
    r"(?:[\w:]+(?:<[^;{}()]*>)?)(?:\s*[*&]+\s*|\s+)(\w+)\s*(?:=|;|\{|,|\[)"
)
_ASSIGN_RE = re.compile(r"(\*?\w+(?:\[[^\]]*\])?)\s*(?<![=!<>+\-*/%&|^])=(?!=)\s*")
_INT_LITERAL_RE = re.compile(r"^[({\s]*-?\d+[)}\s]*$")
_CAST_RE = re.compile(r"\((?:int|long long|val_t|rank_t|size_t|signed char)\)")

#: declaration keywords that precede a variable name
_TYPE_WORDS = frozenset(
    "const static signed unsigned int long float double bool char auto void".split()
)


def _loop_var(header: str) -> Optional[str]:
    m = _FOR_VAR_RE.search(header)
    if m:
        return m.group(1)
    m = _FOR_CONT_RE.search(header)
    if m:
        return m.group(1)
    return None


def _declared_names(stmt_text: str) -> List[str]:
    """Names declared by a statement (``const int v = ...``, ``int a, b;``)."""
    t = stmt_text.strip().rstrip(";").strip()
    m = _DECL_RE.match(t + ";")
    if not m:
        return []
    names = [m.group(1)]
    # Multi-declarations: "const int s = g.src_list[v], d = g.dst_list[v]".
    for part in _split_top_level(t, ","):
        part = part.strip()
        pm = re.match(r"(\w+)\s*(?:=|;|$|\{|\[)", part)
        if pm and pm.group(1) not in _TYPE_WORDS and pm.group(1) not in names:
            # Only count pieces that look like follow-on declarators.
            if "=" in part or re.fullmatch(r"\w+", part):
                names.append(pm.group(1))
    return names


def _split_top_level(text: str, sep: str) -> List[str]:
    out, depth, cur = [], 0, []
    for ch in text:
        if ch in "([{<":
            depth += 1
        elif ch in ")]}>":
            depth = max(0, depth - 1)
        if ch == sep and depth == 0:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    out.append("".join(cur))
    return out


def _assignments(stmt_text: str) -> List[Tuple[str, str]]:
    """All top-level ``name = expr`` pairs in one statement."""
    pairs = []
    t = stmt_text.strip().rstrip(";")
    for piece in _split_top_level(t, ","):
        m = _ASSIGN_RE.search(piece)
        if not m:
            continue
        lhs = m.group(1).lstrip("*").strip()
        rhs = piece[m.end():].strip()
        if "[" in lhs:  # array-element store, not a dataflow definition
            continue
        pairs.append((lhs, rhs))
    return pairs


# -- atomic-call patterns ----------------------------------------------
_ATOMIC_HEAD_RE = re.compile(
    r"\b(atomicMin|atomicMax|atomicAdd_block|atomicAdd|atomic_min|atomic_fetch_add)"
    r"\s*\(\s*&?\s*([\w.]+)\s*"
)
_METHOD_NAME_RE = re.compile(
    r"\.\s*(fetch_min|fetch_add|fetch_max|exchange|compare_exchange_weak"
    r"|store|load)\s*\("
)
_PLAIN_ARRAY_RE = re.compile(r"\b(\w+)\s*\[")
_LVALUE_HEAD_RE = re.compile(r"^\s*\*?\s*([\w.]+)")
_WRITE_OP_RE = re.compile(r"\s*(\+\+|(?:[+\-*/|&^])?=(?!=))")
_INLINE_HEAD_RE = re.compile(r"\s*(?:else\s+)?(for|if|while)\s*\(")


def _scan_bracket(text: str, start: int) -> Optional[int]:
    """``text[start] == '['``: index just past the matching ``]``, or None.

    Handles nested subscripts (``stat[g.nbr_list[k]]``), which a
    first-``]`` regex group silently truncates.
    """
    depth = 0
    for i in range(start, len(text)):
        if text[i] == "[":
            depth += 1
        elif text[i] == "]":
            depth -= 1
            if depth == 0:
                return i + 1
    return None


def _iter_atomic_calls(text: str):
    """Yield ``(target, bracket, span)`` for every atomic intrinsic call."""
    for m in _ATOMIC_HEAD_RE.finditer(text):
        bracket = None
        end = m.end()
        if end < len(text) and text[end] == "[":
            close = _scan_bracket(text, end)
            if close is not None:
                bracket = text[end:close]
                end = close
        # Leave the index sub-expression outside the consumed span so the
        # read pass still records arrays mentioned inside it.
        span_end = m.end() + 1 if bracket else end
        yield m.group(2), bracket, (m.start(), span_end), m.start()


def _iter_method_calls(text: str):
    """Yield ``(target, bracket, method, spans, call_start)`` for
    ``x[...].fetch_min(...)``-style std::atomic method calls, scanning
    backwards through nested subscripts from the method name."""
    for m in _METHOD_NAME_RE.finditer(text):
        pos = m.start() - 1
        while pos >= 0 and text[pos].isspace():
            pos -= 1
        bracket = None
        bracket_start = None
        if pos >= 0 and text[pos] == "]":
            depth, j = 0, pos
            while j >= 0:
                if text[j] == "]":
                    depth += 1
                elif text[j] == "[":
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            if j < 0:
                continue
            bracket, bracket_start = text[j : pos + 1], j
            pos = j - 1
            while pos >= 0 and text[pos].isspace():
                pos -= 1
        end_id = pos + 1
        while pos >= 0 and (text[pos].isalnum() or text[pos] == "_"):
            pos -= 1
        target = text[pos + 1 : end_id]
        if not target:
            continue
        spans = (
            [(pos + 1, bracket_start + 1), (m.start(), m.end())]
            if bracket is not None
            else [(pos + 1, m.end())]
        )
        yield target, bracket, m.group(1), spans, pos + 1


def _peel_inline_heads(text: str) -> Tuple[int, List[str]]:
    """Consume leading ``for (...)`` / ``if (...)`` wrappers of a one-line
    statement; return (core start offset, peeled condition headers)."""
    conds: List[str] = []
    pos = 0
    bare_else = re.match(r"\s*else\b(?!\s+(?:if|for|while)\b)", text)
    if bare_else:
        pos = bare_else.end()
    while True:
        m = _INLINE_HEAD_RE.match(text, pos)
        if not m:
            break
        depth, i, close = 0, m.end() - 1, None
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    close = i
                    break
            i += 1
        if close is None:
            break
        if m.group(1) in ("if", "while"):
            conds.append(text[m.start() : close + 1].strip())
        pos = close + 1
    return pos, conds


def _match_write_lhs(text: str):
    """Depth-aware replacement for the old write-LHS regex: returns
    ``(target, bracket, op, lhs_start, op_end)`` or None."""
    hm = _LVALUE_HEAD_RE.match(text)
    if not hm:
        return None
    target, pos = hm.group(1), hm.end()
    bracket = None
    while pos < len(text) and text[pos].isspace():
        pos += 1
    if pos < len(text) and text[pos] == "[":
        close = _scan_bracket(text, pos)
        if close is None:
            return None
        bracket, pos = text[pos:close], close
    om = _WRITE_OP_RE.match(text, pos)
    if not om:
        return None
    return target, bracket, om.group(1), hm.start(1), om.end()

_GRAPH_ARRAYS = frozenset(
    {"nbr_idx", "nbr_list", "e_weight", "src_list", "dst_list", "deg", "wl"}
)


def _bracket_expr(raw: Optional[str]) -> str:
    if not raw:
        return ""
    return raw.strip()[1:-1].strip()


class _RegionBuilder:
    """Walks one region's block tree, classifying accesses as it goes."""

    def __init__(self, kind: RegionKind, name: str, line: int, pragma: str):
        self.region = ParallelRegion(
            kind=kind, name=name, line=line, pragma=pragma, item_var=None
        )
        self.body_parts: List[str] = []
        red = re.search(r"reduction\s*\(\s*[+*]\s*:\s*(\w+)", pragma or "")
        self.reduction_vars = {red.group(1)} if red else set()
        self.capture_vars: set = set()

    # -- dataflow ------------------------------------------------------
    def note_declarations(self, stmt_text: str) -> None:
        for name in _declared_names(stmt_text):
            self.region.locals.add(name)

    def note_assignments(self, stmt_text: str, guard: Guard) -> None:
        for lhs, rhs in _assignments(stmt_text):
            self.region.env[lhs] = rhs
            if guard is Guard.CAPTURE_PRAGMA or _is_capture_rhs(rhs):
                self.capture_vars.add(lhs)

    def resolve_index(self, expr: str) -> IndexClass:
        return _classify_index(
            expr, self.region.env, self.region.item_var, self.capture_vars
        )

    # -- access emission -----------------------------------------------
    def add_access(
        self,
        array: str,
        index_raw: Optional[str],
        kind: AccessKind,
        guard: Guard,
        line: int,
        rhs: str = "",
        condition: str = "",
    ) -> None:
        array = array.split(".")[-1] if array.startswith("g.") else array
        if array in self.region.locals:
            return
        index = _bracket_expr(index_raw)
        if index_raw is None:
            icls = IndexClass.SCALAR
        else:
            icls = self.resolve_index(index)
        if array in self.reduction_vars and kind is AccessKind.WRITE:
            guard = Guard.REDUCTION
        self.region.accesses.append(
            ArrayAccess(
                array=array,
                index=index,
                kind=kind,
                index_class=icls,
                guard=guard,
                line=line,
                rhs=rhs.strip(),
                condition=condition.strip(),
            )
        )

    def scan_statement(self, stmt: Stmt, guard: Guard, condition: str) -> None:
        # Inline single-statement loops: "for (...) body;" — classify the
        # body with the loop var in scope.
        if re.match(r"\s*for\s*\(", stmt.text):
            var = _loop_var(stmt.text)
            self.region.loops.append(
                Loop(
                    header=stmt.text,
                    var=var,
                    line=stmt.line,
                    depth=len(self.region.loops),
                )
            )
            if var:
                self.region.locals.add(var)
                self.region.env[var] = var  # self-definition: a raw loop index
            if self.region.item_var is None:
                self.region.item_var = var
        self.scan_text(stmt.text, stmt.line, guard, condition)

    def scan_text(
        self, text: str, line: int, guard: Guard, condition: str
    ) -> None:
        """Extract and classify every access in one statement/header text."""
        self.body_parts.append(text)
        self.note_declarations(text)
        # A for-header is "init; test; step" — recording "test; step)" as
        # the induction variable's defining expression poisons every index
        # that resolves through it, so headers keep env.setdefault(var, var).
        is_for_header = bool(re.match(r"\s*for\s*\(", text))
        if not is_for_header:
            self.note_assignments(text, guard)
        consumed_spans: List[Tuple[int, int]] = []

        # 1) atomic call forms
        for target, bracket, span, call_start in _iter_atomic_calls(text):
            kind = AccessKind.ATOMIC_RMW
            prefix = text[:call_start]
            if _ASSIGN_RE.search(prefix.split(";")[-1]) or re.search(
                r"[=(]\s*$", prefix.strip()[-1:] or ""
            ):
                kind = AccessKind.CAPTURE
            self.add_access(
                target, bracket, kind, guard, line, condition=condition
            )
            consumed_spans.append(span)

        # 2) std::atomic method forms
        for target, bracket, method, spans, call_start in _iter_method_calls(
            text
        ):
            if method == "load":
                kind = AccessKind.READ
            elif method == "store":
                kind = AccessKind.WRITE
            elif method in ("fetch_add", "exchange") and _used_as_value(
                text, call_start
            ):
                kind = AccessKind.CAPTURE
            else:
                kind = AccessKind.ATOMIC_RMW
            rhs = ""
            if kind is AccessKind.WRITE:
                # ".store(1, std::memory_order_relaxed)" stores 1: the
                # memory-order argument is not part of the value.
                method_end = spans[-1][1]
                rhs = text[method_end:].split(")")[0].split(",")[0]
            self.add_access(
                target, bracket, kind, guard, line, rhs=rhs,
                condition=condition,
            )
            consumed_spans.extend(spans)

        # 3) plain write on the statement's left-hand side.  One-line
        # statements keep their control wrappers ("if (..) cell = v;"), so
        # peel those first — the peeled if-headers join the condition
        # context (they gate the store, which the race rules inspect).
        core_start, inline_conds = _peel_inline_heads(text)
        store_condition = " && ".join(
            ([condition] if condition else []) + inline_conds
        )
        wm = _match_write_lhs(text[core_start:])
        if wm:
            target, bracket, op, lhs_rel, op_rel_end = wm
            lhs_start = core_start + lhs_rel
            op_end = core_start + op_rel_end
            looks_decl = bool(_DECL_RE.match(text[core_start:].strip()))
            if not looks_decl and not any(
                s <= lhs_start < e for s, e in consumed_spans
            ):
                # Normalize compound assignments into explicit RMW form so
                # the race rules can see the cell on the right-hand side.
                if op == "++":
                    rhs = f"{target} + 1"
                elif op != "=":
                    tail = text[op_end:].rstrip(";").strip()
                    rhs = f"{target} {op[0]} ({tail})"
                else:
                    rhs = text[op_end:].rstrip(";").strip()
                kind = AccessKind.WRITE
                if guard in (Guard.ATOMIC_PRAGMA, Guard.CRITICAL, Guard.MUTEX):
                    kind = AccessKind.ATOMIC_RMW
                elif guard is Guard.CAPTURE_PRAGMA:
                    kind = AccessKind.CAPTURE
                self.add_access(
                    target, bracket, kind, guard, line, rhs=rhs,
                    condition=store_condition or condition,
                )
                # Consume the target name and its opening bracket only, so
                # arrays inside the subscript still surface as reads below.
                consumed_spans.append(
                    (lhs_start, lhs_start + len(target) + (1 if bracket else 0))
                )

        # 4) remaining bracketed occurrences are reads
        for m in _PLAIN_ARRAY_RE.finditer(text):
            if any(s <= m.start() < e for s, e in consumed_spans):
                continue
            name = m.group(1)
            if name in ("g", "if", "for", "while", "int") or name in self.region.locals:
                continue
            close = _scan_bracket(text, m.end() - 1)
            if close is None:
                continue
            self.add_access(
                name, text[m.end() - 1 : close],
                AccessKind.READ, guard, line, condition=condition,
            )

    # -- tree walk ------------------------------------------------------
    def walk(self, block: Block, depth: int, guard: Guard, condition: str) -> None:
        pending_guard: Optional[Guard] = None
        mutex_held = False
        for child in block.children:
            if isinstance(child, Directive):
                d = child.text
                if d.startswith("#pragma omp critical"):
                    pending_guard = Guard.CRITICAL
                elif d.startswith("#pragma omp atomic capture"):
                    pending_guard = Guard.CAPTURE_PRAGMA
                elif d.startswith("#pragma omp atomic"):
                    pending_guard = Guard.ATOMIC_PRAGMA
                continue
            child_guard = pending_guard or (Guard.MUTEX if mutex_held else guard)
            pending_guard = None
            if isinstance(child, Stmt):
                if "std::lock_guard" in child.text:
                    mutex_held = True
                    self.body_parts.append(child.text)
                    continue
                self.scan_statement(child, child_guard, condition)
            else:  # Block
                header = child.header
                new_condition = condition
                if header.startswith(("for", "while")):
                    var = _loop_var(header)
                    self.region.loops.append(
                        Loop(header=header, var=var, line=child.line, depth=depth)
                    )
                    if var:
                        # A for-header declaration scopes the var locally;
                        # map it to itself so indices resolve to "raw loop
                        # index" unless an assignment refines it.
                        if _FOR_VAR_RE.search(header):
                            self.region.locals.add(var)
                        self.region.env.setdefault(var, var)
                    if self.region.item_var is None:
                        self.region.item_var = var
                    self.scan_text(header, child.line, child_guard, condition)
                    self.walk(child, depth + 1, child_guard, new_condition)
                elif header.startswith("if"):
                    new_condition = header
                    # Headers carry accesses too — reads, and atomics used
                    # as conditions ("if (atomicMax(&stat[u], itr) != itr)").
                    self.scan_text(header, child.line, child_guard, condition)
                    self.walk(child, depth, child_guard, new_condition)
                else:  # bare critical block, lambdas, else-blocks ...
                    self.body_parts.append(header)
                    self.walk(child, depth, child_guard, new_condition)

    def finish(self) -> ParallelRegion:
        self.region.body = "\n".join(self.body_parts)
        return self.region


def _is_capture_rhs(rhs: str) -> bool:
    return bool(
        re.search(r"\batomicAdd\s*\(", rhs)
        or ".fetch_add(" in rhs
        or re.search(r"\w+\s*\+\+", rhs)
    )


def _used_as_value(text: str, call_start: int) -> bool:
    """Whether a fetch_add/exchange result is consumed (index or compare)."""
    prefix = text[:call_start]
    return bool(
        re.search(r"\[\s*$", prefix)
        or _ASSIGN_RE.search(prefix.split(";")[-1])
        or re.search(r"\(\s*$", prefix)
        or "if" in prefix.split(";")[-1]
    )


def _classify_index(
    expr: str,
    env: Dict[str, str],
    item_var: Optional[str],
    capture_vars: set,
    _depth: int = 0,
) -> IndexClass:
    e = _CAST_RE.sub("", expr).strip()
    e = e.strip("()").strip()
    if not e:
        return IndexClass.SCALAR
    if _INT_LITERAL_RE.match(e):
        return IndexClass.LITERAL
    if ".fetch_add(" in e or "atomicAdd" in e or "++" in e:
        return IndexClass.SLOT
    if "nbr_list[" in e:
        return IndexClass.NEIGHBOR
    if "src_list[" in e or "dst_list[" in e:
        return IndexClass.ENDPOINT
    if re.match(r"^wl\s*\[", e):
        return IndexClass.WORKLIST
    if "threadIdx" in e or "blockIdx" in e or e in ("tid", "lane", "wid", "gidx"):
        return IndexClass.THREAD
    if _depth > 8:
        return IndexClass.OTHER
    if e in capture_vars:
        return IndexClass.SLOT
    if item_var is not None and e == item_var:
        return IndexClass.ITEM
    # Simple arithmetic on a resolvable base ("item + 1", "expr + k") keeps
    # the base's class only for pure additive-with-constant forms.
    if e in env and env[e] != e:
        return _classify_index(env[e], env, item_var, capture_vars, _depth + 1)
    if e in env and env[e] == e:
        # A raw loop index: the region's own item loop var is the item;
        # inner loop indices walk neighbor/edge ranges.
        return IndexClass.ITEM if e == item_var else IndexClass.NEIGHBOR
    return IndexClass.OTHER


# ----------------------------------------------------------------------
# File-level extraction
# ----------------------------------------------------------------------
def _extract_file_facts(
    root: Block,
) -> Tuple[List[str], Dict[str, str], Dict[str, str], List[FunctionInfo]]:
    includes: List[str] = []
    defines: Dict[str, str] = {}
    typedefs: Dict[str, str] = {}
    functions: List[FunctionInfo] = []

    def visit(block: Block) -> None:
        for child in block.children:
            if isinstance(child, Directive):
                t = child.text
                if t.startswith("#include"):
                    includes.append(t[len("#include"):].strip())
                elif t.startswith("#define"):
                    parts = t.split(None, 2)
                    if len(parts) >= 2:
                        defines[parts[1].split("(")[0]] = (
                            parts[2] if len(parts) > 2 else ""
                        )
            elif isinstance(child, Stmt):
                m = re.match(r"typedef\s+(.+?)\s+(\w+)\s*;", child.text)
                if m:
                    typedefs[m.group(2)] = m.group(1)
            elif isinstance(child, Block):
                header = child.header
                if "(" in header and not header.startswith(
                    ("for", "if", "while", "switch")
                ):
                    name_m = re.search(r"([A-Za-z_]\w*)\s*\(", header)
                    if name_m:
                        functions.append(
                            FunctionInfo(
                                name=name_m.group(1),
                                header=header,
                                line=child.line,
                                is_kernel="__global__" in header,
                                is_device="__device__" in header,
                            )
                        )
                visit(child)

    visit(root)
    return includes, defines, typedefs, functions


def _kernel_param_arrays(header: str) -> List[str]:
    """Pointer parameter names of a kernel signature (shared arrays)."""
    if "(" not in header:
        return []
    params = header[header.index("(") + 1 :]
    out = []
    for piece in _split_top_level(params.rstrip(") "), ","):
        piece = piece.strip()
        m = re.search(r"[*&]\s*(?:__restrict__\s+)?(\w+)\s*$", piece)
        if m:
            out.append(m.group(1))
    return out


def _stmt_region(
    kind: RegionKind, name: str, stmt: Stmt, pragma: str
) -> ParallelRegion:
    """A region whose whole body is one inline ``for (...) stmt;`` line."""
    builder = _RegionBuilder(kind, name, stmt.line, pragma)
    m = re.match(r"\s*for\s*\(([^;]*);[^;]*;[^)]*\)\s*(.*)$", stmt.text)
    body = stmt.text
    if m:
        var = _loop_var(stmt.text)
        builder.region.item_var = var
        builder.region.loops.append(
            Loop(header=stmt.text, var=var, line=stmt.line, depth=0)
        )
        if var:
            builder.region.locals.add(var)
            builder.region.env[var] = var
        body = m.group(2)
    builder.scan_statement(Stmt(text=body, line=stmt.line), Guard.NONE, "")
    return builder.finish()


def _collect_regions(root: Block) -> List[ParallelRegion]:
    regions: List[ParallelRegion] = []

    def visit(block: Block) -> None:
        pending_pragma: Optional[Directive] = None
        for child in block.children:
            if isinstance(child, Directive):
                if child.text.startswith("#pragma omp parallel for"):
                    pending_pragma = child
                continue
            if pending_pragma is not None:
                pragma = pending_pragma.text
                pending_pragma = None
                if isinstance(child, Block) and child.header.startswith("for"):
                    builder = _RegionBuilder(
                        RegionKind.OMP_FOR, "omp parallel for", child.line, pragma
                    )
                    var = _loop_var(child.header)
                    builder.region.item_var = var
                    builder.region.loops.append(
                        Loop(header=child.header, var=var, line=child.line, depth=0)
                    )
                    if var:
                        builder.region.locals.add(var)
                        builder.region.env[var] = var
                    builder.walk(child, 1, Guard.NONE, "")
                    regions.append(builder.finish())
                    visit_skip(child)
                    continue
                if isinstance(child, Stmt) and child.text.lstrip().startswith("for"):
                    regions.append(
                        _stmt_region(
                            RegionKind.OMP_FOR, "omp parallel for", child, pragma
                        )
                    )
                    continue
            if isinstance(child, Block):
                header = child.header
                if "__global__" in header:
                    m = _GLOBAL_RE.search(header)
                    name = m.group(1) if m else "kernel"
                    builder = _RegionBuilder(
                        RegionKind.CUDA_KERNEL, name, child.line, ""
                    )
                    # The generators always call the work-item id `item`
                    # (nonpersistent kernels guard it with `if`, so no
                    # loop header names it).
                    builder.region.item_var = "item"
                    for p in _kernel_param_arrays(header):
                        builder.region.env.setdefault(p, p + "[param]")
                    builder.walk(child, 0, Guard.NONE, "")
                    regions.append(builder.finish())
                    continue
                if "parallel_step(" in header and "void" not in header:
                    builder = _RegionBuilder(
                        RegionKind.CPP_THREADS, "parallel_step", child.line, ""
                    )
                    builder.region.locals.add("tid")
                    builder.walk(child, 0, Guard.NONE, "")
                    regions.append(builder.finish())
                    continue
                visit(child)

    def visit_skip(block: Block) -> None:  # regions never nest in this suite
        return

    visit(root)
    return regions


@lru_cache(maxsize=4096)
def parse_source(text: str) -> SourceIR:
    """Parse one emitted source into its :class:`SourceIR`.

    Memoized on the source text: the conformance linter, the race
    detector and the inference engine all share one parse per file (and
    repeated ``lint_suite`` calls in one process — e.g. the analyze CI
    gate plus the analysis tests — reuse it too).
    """
    stripped = strip_comments(text)
    root = _parse_tree(stripped)
    includes, defines, typedefs, functions = _extract_file_facts(root)
    regions = _collect_regions(root)
    return SourceIR(
        includes=includes,
        defines=defines,
        typedefs=typedefs,
        functions=functions,
        regions=regions,
        text=stripped,
    )
