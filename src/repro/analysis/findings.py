"""The findings model shared by both analysis passes.

A :class:`Finding` is one rule violation: which rule, how severe, which
program variant (by style label), where (a file path for the static
linter, a launch locus for the trace sanitizer), and a human-readable
message.  A :class:`Report` aggregates findings and renders them as text
(for terminals) or JSON (for CI artifacts and tooling).

Every rule has a stable id registered in :data:`RULES`; tests assert on
these ids, so treat them as public API.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Severity", "Finding", "Report", "RULES", "rule_catalog"]


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings mean the artifact (source file, manifest or trace)
    contradicts its declared style and would corrupt downstream results;
    ``WARNING`` findings are suspicious but not methodology-breaking;
    ``NOTE`` findings are expected-by-design observations (e.g. the
    benign same-value races Section 2.5 permits) kept visible for audit.
    """

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"


#: rule id -> (default severity, one-line description).  The catalog is
#: documentation *and* validation: creating a Finding with an unknown rule
#: id raises, which keeps the docs in docs/analysis.md honest.
RULES: Dict[str, Tuple[Severity, str]] = {
    # ---- static style-conformance rules (conformance.py) -------------
    "CONF-UPDATE": (
        Severity.ERROR,
        "atomic min/RMW update construct present iff the update axis is rmw "
        "(relaxation algorithms)",
    ),
    "CONF-CUDA-ATOMIC": (
        Severity.ERROR,
        "cuda::atomic include/value types present iff the atomic flavor is "
        "cudaatomic",
    ),
    "CONF-WORKLIST": (
        Severity.ERROR,
        "worklist machinery (wl indexing / push buffers) present iff the "
        "driver axis is data",
    ),
    "CONF-STAMP": (
        Severity.ERROR,
        "duplicate-suppression stamp (atomicMax / critical stamp / "
        "exchange) present iff the dup axis is nodup",
    ),
    "CONF-OMP-SCHEDULE": (
        Severity.ERROR,
        "#pragma omp ... schedule(dynamic) present iff the omp schedule "
        "axis is dynamic",
    ),
    "CONF-CPP-SCHEDULE": (
        Severity.ERROR,
        "blocked-range thread loop present iff the cpp schedule axis is "
        "blocked (cyclic otherwise)",
    ),
    "CONF-GPU-REDUCTION": (
        Severity.ERROR,
        "GPU reduction construct (global atomicAdd / atomicAdd_block / "
        "warp shuffle tree) matches the gpu reduction axis",
    ),
    "CONF-CPU-REDUCTION": (
        Severity.ERROR,
        "CPU reduction construct (clause or per-thread partial / atomic / "
        "critical or mutex) matches the cpu reduction axis",
    ),
    "CONF-PERSISTENCE": (
        Severity.ERROR,
        "grid-stride loop present iff the persistence axis is persistent",
    ),
    "CONF-GRANULARITY": (
        Severity.ERROR,
        "work-item index derivation matches the granularity axis "
        "(thread / warp / block)",
    ),
    "CONF-DETERMINISM": (
        Severity.ERROR,
        "two-array double buffering present iff the determinism axis is det",
    ),
    # ---- manifest cross-check rules (conformance.py) -----------------
    "MAN-PARSE": (
        Severity.ERROR,
        "MANIFEST.tsv row is malformed or its style label does not parse "
        "back to a StyleSpec",
    ),
    "MAN-INVALID": (
        Severity.ERROR,
        "manifest row is internally inconsistent (model/algorithm columns "
        "vs label, file name vs label, or an invalid style combination)",
    ),
    "MAN-FILE": (
        Severity.ERROR,
        "manifest lists a source file that does not exist on disk",
    ),
    "MAN-DUP": (
        Severity.ERROR,
        "the same (style, bits) variant appears more than once in the "
        "manifest",
    ),
    "MAN-UNKNOWN": (
        Severity.ERROR,
        "manifest contains a variant that enumerate_specs does not produce",
    ),
    "MAN-MISSING": (
        Severity.ERROR,
        "enumerate_specs produces a variant the manifest does not contain "
        "(checked when the suite is complete, or under --strict)",
    ),
    # ---- graph ingestion-validation rules (repro.graph.validate) -----
    "VAL-PARSE": (
        Severity.ERROR,
        "a graph file could not be parsed (message carries path and "
        "1-based line number)",
    ),
    "VAL-ROWPTR": (
        Severity.ERROR,
        "CSR row offsets are not a monotone [0 .. n_edges] index",
    ),
    "VAL-COLIDX": (
        Severity.ERROR,
        "CSR column indices contain out-of-range vertex ids",
    ),
    "VAL-WEIGHT": (
        Severity.ERROR,
        "edge weights contain negative, NaN or infinite values",
    ),
    "VAL-WEIGHT-RANGE": (
        Severity.WARNING,
        "edge weights contain zeros or values near the int32 overflow "
        "boundary (clamped under the repair policy)",
    ),
    "VAL-SELF-LOOP": (
        Severity.WARNING,
        "self loops present (the canonical form drops them)",
    ),
    "VAL-DUP-EDGE": (
        Severity.WARNING,
        "duplicate parallel edges present (the canonical form dedups them)",
    ),
    "VAL-ASYM": (
        Severity.WARNING,
        "graph is not symmetric (the study stores every undirected edge "
        "as two directed edges; pull kernels assume symmetry)",
    ),
    "VAL-EMPTY": (
        Severity.WARNING,
        "graph has no vertices or no edges (degenerate input)",
    ),
    "VAL-ISOLATED": (
        Severity.WARNING,
        "a large fraction of vertices is isolated",
    ),
    "VAL-SKEW": (
        Severity.WARNING,
        "extreme degree skew (d_max vastly above d_avg): expect severe "
        "load imbalance under thread granularity",
    ),
    "VAL-UNSORTED": (
        Severity.ERROR,
        "adjacency lists are not sorted (the merge-based triangle "
        "kernels require sorted neighbors)",
    ),
    # ---- IR-level static race rules (races.py) -----------------------
    "RACE-PLAIN": (
        Severity.ERROR,
        "a plain (non-atomic) write under a parallel loop can collide "
        "with another access to the same array through a non-injective "
        "index map, and the written values are not provably identical",
    ),
    "RACE-WL-ALIAS": (
        Severity.ERROR,
        "a worklist push buffer is written through an index that is not "
        "an atomically-claimed slot, so concurrent pushes alias",
    ),
    "RACE-REDUCTION": (
        Severity.ERROR,
        "a shared accumulator is updated with an unguarded read-modify-"
        "write (no atomic, critical, mutex or reduction clause)",
    ),
    "RACE-BENIGN": (
        Severity.NOTE,
        "a same-value write-write race the study's Section 2.5 "
        "resolution permits: a monotone conditional improvement store or "
        "a constant-store scatter (benign by construction)",
    ),
    # ---- IR style-inference differential rules (infer.py) ------------
    "INFER-ITERATION": (
        Severity.ERROR,
        "IR-inferred iteration axis (vertex/edge) disagrees with the "
        "declared style",
    ),
    "INFER-DRIVER": (
        Severity.ERROR,
        "IR-inferred driver axis (topology/data) disagrees with the "
        "declared style",
    ),
    "INFER-DUP": (
        Severity.ERROR,
        "IR-inferred duplicate-handling axis (dup/nodup) disagrees with "
        "the declared style",
    ),
    "INFER-FLOW": (
        Severity.ERROR,
        "IR-inferred flow axis (push/pull) disagrees with the declared "
        "style",
    ),
    "INFER-UPDATE": (
        Severity.ERROR,
        "IR-inferred update axis (rw/rmw) disagrees with the declared "
        "style",
    ),
    "INFER-DETERMINISM": (
        Severity.ERROR,
        "IR-inferred determinism axis (det/nondet) disagrees with the "
        "declared style",
    ),
    "INFER-PERSISTENCE": (
        Severity.ERROR,
        "IR-inferred persistence axis (persistent/nonpersistent) "
        "disagrees with the declared style",
    ),
    "INFER-GRANULARITY": (
        Severity.ERROR,
        "IR-inferred granularity axis (thread/warp/block) disagrees "
        "with the declared style",
    ),
    "INFER-ATOMIC-FLAVOR": (
        Severity.ERROR,
        "IR-inferred atomic-flavor axis (atomic/cudaatomic) disagrees "
        "with the declared style",
    ),
    "INFER-GPU-REDUCTION": (
        Severity.ERROR,
        "IR-inferred GPU reduction axis (global/block/warp-tree add) "
        "disagrees with the declared style",
    ),
    "INFER-CPU-REDUCTION": (
        Severity.ERROR,
        "IR-inferred CPU reduction axis (atomic/critical/clause) "
        "disagrees with the declared style",
    ),
    "INFER-OMP-SCHEDULE": (
        Severity.ERROR,
        "IR-inferred OpenMP schedule axis (default/dynamic) disagrees "
        "with the declared style",
    ),
    "INFER-CPP-SCHEDULE": (
        Severity.ERROR,
        "IR-inferred C++ thread schedule axis (blocked/cyclic) disagrees "
        "with the declared style",
    ),
    "INFER-DIVERGENCE": (
        Severity.NOTE,
        "the three-way differential split: the construct-presence linter "
        "and the IR inference engine reached different verdicts for the "
        "same axis (one of the two analyses was fooled)",
    ),
    # ---- dynamic trace-sanitizer rules (sanitizer.py) ----------------
    "SAN-NEG": (
        Severity.ERROR,
        "an operation count, item count or inner trip count is negative",
    ),
    "SAN-INNER-SHAPE": (
        Severity.ERROR,
        "a profile's per-item inner vector length does not match its item "
        "count",
    ),
    "SAN-RW-HIST": (
        Severity.ERROR,
        "a read-write (plain store) style recorded an atomic-address "
        "conflict histogram",
    ),
    "SAN-RMW-HIST": (
        Severity.ERROR,
        "an rmw push step performed atomics but recorded no atomic-address "
        "conflict histogram",
    ),
    "SAN-STORE-RACE": (
        Severity.ERROR,
        "plain-store write-write conflict statistics recorded under an rmw "
        "style",
    ),
    "SAN-RACE-BENIGN": (
        Severity.ERROR,
        "plain-store write-write conflicts occurred on a run that did not "
        "converge to the verified fixed point (the Section 2.5 race was "
        "not benign)",
    ),
    "SAN-WL-BALANCE": (
        Severity.ERROR,
        "a worklist pass's push count does not match the next pass's item "
        "count",
    ),
    "SAN-WL-FINAL": (
        Severity.ERROR,
        "the trace converged but its final worklist pass still pushed items",
    ),
    "SAN-DETERMINISM": (
        Severity.ERROR,
        "double-buffer refresh launches present iff the determinism axis "
        "is det (iterative algorithms)",
    ),
}


def rule_catalog() -> Dict[str, str]:
    """rule id -> description (for docs and ``analyze --rules``)."""
    return {rule: desc for rule, (_sev, desc) in RULES.items()}


@dataclass(frozen=True)
class Finding:
    """One rule violation."""

    rule: str
    spec: str  #: style label of the affected variant ("" when n/a)
    locus: str  #: file path (linter) or launch locus (sanitizer)
    message: str
    severity: Severity = Severity.ERROR

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ValueError(f"unknown rule id {self.rule!r}")

    @classmethod
    def of(cls, rule: str, *, spec: str, locus: str, message: str) -> "Finding":
        """Create a finding with the rule's registered default severity."""
        return cls(
            rule=rule,
            spec=spec,
            locus=locus,
            message=message,
            severity=RULES[rule][0],
        )

    def render(self) -> str:
        where = f" [{self.locus}]" if self.locus else ""
        return f"{self.severity.value}: {self.rule}{where} {self.spec}: {self.message}"


@dataclass
class Report:
    """Aggregated findings of one analysis run."""

    findings: List[Finding] = field(default_factory=list)
    checked: int = 0  #: artifacts examined (files or launches)
    title: str = "analysis"

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def notes(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.NOTE]

    @property
    def ok(self) -> bool:
        """True when no error-severity findings were raised."""
        return not self.errors

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return counts

    # ------------------------------------------------------------------
    def render_text(self) -> str:
        lines = [f"{self.title}: {self.checked} checked"]
        for f in self.findings:
            lines.append("  " + f.render())
        if self.findings:
            per_rule = ", ".join(
                f"{rule} x{n}" for rule, n in sorted(self.by_rule().items())
            )
            summary = (
                f"{len(self.errors)} error(s), {len(self.warnings)} "
                f"warning(s)"
            )
            if self.notes:
                summary += f", {len(self.notes)} note(s)"
            lines.append(f"{summary} ({per_rule})")
        else:
            lines.append("no findings")
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "title": self.title,
            "checked": self.checked,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "notes": len(self.notes),
            "findings": [
                {
                    "rule": f.rule,
                    "severity": f.severity.value,
                    "spec": f.spec,
                    "locus": f.locus,
                    "message": f.message,
                }
                for f in self.findings
            ],
        }
        return json.dumps(payload, indent=2) + "\n"

    def merged(self, other: "Report", title: Optional[str] = None) -> "Report":
        """A new report combining this one with ``other``."""
        out = Report(title=title or self.title)
        out.findings = list(self.findings) + list(other.findings)
        out.checked = self.checked + other.checked
        return out
