"""Correctness tooling for the generated suite and the simulator.

The paper's methodology rests on two properties that nothing else in the
pipeline checks end to end:

1. every generated program actually *exhibits* the style combination its
   :class:`~repro.styles.spec.StyleSpec` declares (Tables 2/3), and
2. every simulated execution respects the invariants the styles imply —
   in particular that the read-write (racy) styles stay benign in the
   Section 2.5 sense.

This subpackage provides three audits on one shared findings model:

* :mod:`repro.analysis.conformance` — a static style-conformance linter
  over the emitted CUDA / OpenMP / C++ sources plus a manifest
  cross-check against the style enumeration;
* :mod:`repro.analysis.ir` + :mod:`repro.analysis.races` +
  :mod:`repro.analysis.infer` — a structural parse of every emitted
  source into a loop-structured :class:`~repro.analysis.ir.SourceIR`,
  with a static race detector and a style-inference engine that
  re-derives all 13 axes from the IR and cross-checks them against both
  the manifest and the construct linter (``repro analyze --ir``);
* :mod:`repro.analysis.sanitizer` — a dynamic trace sanitizer that
  validates :class:`~repro.machine.trace.ExecutionTrace` /
  :class:`~repro.machine.trace.IterationProfile` invariants after a run
  (optionally on every launch via ``$REPRO_SANITIZE``).

All are wired into the CLI as ``python -m repro analyze``.
"""

from .findings import Finding, Report, Severity, rule_catalog
from .conformance import lint_source, lint_suite, spec_from_label
from .infer import analyze_source_ir, infer_axes
from .ir import SourceIR, parse_source
from .races import detect_races
from .sanitizer import SanitizerError, assert_sane, sanitize_result, sanitize_trace

__all__ = [
    "Finding",
    "Report",
    "Severity",
    "rule_catalog",
    "lint_source",
    "lint_suite",
    "spec_from_label",
    "SourceIR",
    "parse_source",
    "detect_races",
    "infer_axes",
    "analyze_source_ir",
    "SanitizerError",
    "assert_sane",
    "sanitize_result",
    "sanitize_trace",
]
