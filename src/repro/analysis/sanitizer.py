"""Dynamic trace sanitizer: style invariants over execution traces.

The styled kernels *execute* their algorithm and record an
:class:`~repro.machine.trace.IterationProfile` per launch; everything the
machine models later time flows through those profiles.  This module
checks, after a run, that a trace is consistent with the semantic style
that produced it — the ThreadSanitizer discipline transplanted onto the
simulator:

* RMW (atomic) styles must record an atomic-address conflict histogram on
  their push steps, and read-write styles must not;
* the wave-granular write-write conflicts that read-write push styles
  perform on *plain* stores are detected and asserted benign — the run
  must still have converged to the verified fixed point (the Section 2.5
  resolution the simulator commits to);
* plain-store conflict statistics must never appear under an RMW style;
* a data-driven pass's worklist push count must balance the next pass's
  item count, and a converged run's final pass must push nothing;
* per-item cost vectors must be non-negative with ``inner`` lengths
  matching item counts;
* deterministic styles must show their double-buffer refresh launches,
  non-deterministic ones must not.

:func:`sanitize_trace` returns a :class:`~repro.analysis.findings.Report`;
:func:`assert_sane` raises :class:`SanitizerError` instead, which is what
:class:`~repro.runtime.launcher.Launcher` calls when ``$REPRO_SANITIZE``
is set.
"""

from __future__ import annotations

from typing import List, Tuple, Union

from ..machine.trace import ExecutionTrace, IterationProfile
from ..styles.axes import Algorithm, Determinism, Flow, Update
from ..styles.spec import SemanticKey, StyleSpec
from .findings import Finding, Report

__all__ = ["SanitizerError", "sanitize_trace", "sanitize_result", "assert_sane"]

#: Algorithms that run the shared relaxation engine (their step profiles
#: are labelled ``relax-*``).
RELAX_ALGORITHMS = frozenset({Algorithm.BFS, Algorithm.SSSP, Algorithm.CC})

#: IterationProfile fields that must never be negative.
_COUNT_FIELDS: Tuple[str, ...] = (
    "base_cycles",
    "inner_cycles",
    "struct_loads_base",
    "struct_loads_inner",
    "shared_loads_base",
    "shared_loads_inner",
    "shared_stores_base",
    "shared_stores_inner",
    "atomics_base",
    "atomics_inner",
    "conflict_extra",
    "max_conflict",
    "store_conflict_extra",
    "store_max_conflict",
    "hot_atomics",
    "reduction_items",
    "barriers_per_item",
)

Style = Union[StyleSpec, SemanticKey]


class SanitizerError(RuntimeError):
    """A trace violated a style invariant; carries the full report."""

    def __init__(self, report: Report):
        self.report = report
        super().__init__(report.render_text())


def _style_label(style: Style) -> str:
    if isinstance(style, StyleSpec):
        return style.label()
    parts = [style.algorithm.value]
    for axis in ("iteration", "driver", "dup", "flow", "update", "determinism"):
        value = getattr(style, axis)
        if value is not None:
            parts.append(value.value)
    return "-".join(parts)


def sanitize_trace(style: Style, trace: ExecutionTrace) -> Report:
    """Check one execution trace against its semantic style; returns the
    findings report (``report.ok`` when every invariant holds)."""
    label = _style_label(style)
    report = Report(title=f"sanitize {label}")
    report.checked = trace.n_launches
    alg = style.algorithm
    relax = alg in RELAX_ALGORITHMS
    deterministic = style.determinism is Determinism.DETERMINISTIC

    wl_passes: List[Tuple[int, IterationProfile]] = []
    store_conflicts = 0.0
    for i, p in enumerate(trace.profiles):
        locus = f"launch {i} ({p.label})"

        negative = [name for name in _COUNT_FIELDS if getattr(p, name) < 0]
        if p.n_items < 0:
            negative.append("n_items")
        if p.wl_pushes < -1:
            negative.append("wl_pushes")
        if p.inner is not None and p.inner.size and int(p.inner.min()) < 0:
            negative.append("inner")
        if negative:
            report.add(
                Finding.of(
                    "SAN-NEG", spec=label, locus=locus,
                    message="negative count field(s): " + ", ".join(negative),
                )
            )

        if p.inner is not None and p.inner.shape != (p.n_items,):
            report.add(
                Finding.of(
                    "SAN-INNER-SHAPE", spec=label, locus=locus,
                    message=f"inner has shape {p.inner.shape}, expected "
                            f"({p.n_items},)",
                )
            )

        if relax and p.label.startswith("relax-"):
            if style.update is Update.READ_WRITE and (
                p.conflict_extra or p.max_conflict
            ):
                report.add(
                    Finding.of(
                        "SAN-RW-HIST", spec=label, locus=locus,
                        message=(
                            "read-write style recorded an atomic conflict "
                            f"histogram (extra={p.conflict_extra}, "
                            f"max={p.max_conflict})"
                        ),
                    )
                )
            if (
                style.update is Update.READ_MODIFY_WRITE
                and style.flow is Flow.PUSH
                and p.total_atomics > 0
                and p.max_conflict < 1
            ):
                report.add(
                    Finding.of(
                        "SAN-RMW-HIST", spec=label, locus=locus,
                        message=(
                            f"rmw push step performed {p.total_atomics:.0f} "
                            "atomics but recorded no conflict histogram"
                        ),
                    )
                )
            if style.update is Update.READ_MODIFY_WRITE and (
                p.store_conflict_extra or p.store_max_conflict
            ):
                report.add(
                    Finding.of(
                        "SAN-STORE-RACE", spec=label, locus=locus,
                        message=(
                            "plain-store conflict statistics under an rmw "
                            f"style (extra={p.store_conflict_extra}, "
                            f"max={p.store_max_conflict})"
                        ),
                    )
                )
            store_conflicts += p.store_conflict_extra

        if p.label.endswith("-wl") and p.wl_pushes >= 0:
            wl_passes.append((i, p))

    for (i, prev), (j, nxt) in zip(wl_passes, wl_passes[1:]):
        if prev.wl_pushes != nxt.n_items:
            report.add(
                Finding.of(
                    "SAN-WL-BALANCE", spec=label,
                    locus=f"launch {i} ({prev.label}) -> launch {j}",
                    message=(
                        f"pass pushed {prev.wl_pushes} items but the next "
                        f"worklist pass processed {nxt.n_items}"
                    ),
                )
            )
    if trace.converged and wl_passes:
        i, last = wl_passes[-1]
        if last.wl_pushes != 0:
            report.add(
                Finding.of(
                    "SAN-WL-FINAL", spec=label,
                    locus=f"launch {i} ({last.label})",
                    message="converged trace's final worklist pass still "
                            f"pushed {last.wl_pushes} item(s)",
                )
            )

    if store_conflicts and not trace.converged:
        report.add(
            Finding.of(
                "SAN-RACE-BENIGN", spec=label, locus="trace",
                message=(
                    f"{store_conflicts:.0f} plain-store write-write "
                    "conflict(s) on a run that did not converge — the "
                    "read-write race was not benign"
                ),
            )
        )

    if (relax or alg is Algorithm.MIS) and trace.iterations >= 1:
        has_refresh = any(
            p.label == "double-buffer refresh" for p in trace.profiles
        )
        if deterministic != has_refresh:
            message = (
                "deterministic style shows no double-buffer refresh launches"
                if deterministic
                else "non-deterministic style shows double-buffer refresh launches"
            )
            report.add(
                Finding.of("SAN-DETERMINISM", spec=label, locus="trace",
                           message=message)
            )
    return report


def sanitize_result(style: Style, result) -> Report:
    """Sanitize a :class:`~repro.kernels.base.KernelResult`'s trace."""
    return sanitize_trace(style, result.trace)


def assert_sane(style: Style, trace: ExecutionTrace) -> None:
    """Raise :class:`SanitizerError` if the trace violates any invariant."""
    report = sanitize_trace(style, trace)
    if not report.ok:
        raise SanitizerError(report)
