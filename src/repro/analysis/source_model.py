"""A lightweight token/structure model of one generated source file.

The conformance linter does not parse C++ — the generators emit a closed
set of constructs (the paper's Listings 1-13), so substring presence plus
a little block structure around ``#pragma omp critical`` is exact for
this suite.  :class:`SourceModel` packages those queries so the rules in
:mod:`repro.analysis.conformance` read as construct checks, not string
soup.
"""

from __future__ import annotations

from typing import List

__all__ = ["SourceModel"]


class SourceModel:
    """Token and structure queries over one emitted source text."""

    def __init__(self, text: str):
        self.text = text
        self.lines = text.splitlines()

    # ------------------------------------------------------------------
    def has(self, token: str) -> bool:
        """Whether ``token`` appears anywhere in the source."""
        return token in self.text

    def has_any(self, *tokens: str) -> bool:
        return any(t in self.text for t in tokens)

    def count(self, token: str) -> int:
        return self.text.count(token)

    # ------------------------------------------------------------------
    def omp_pragmas(self) -> List[str]:
        """All ``#pragma omp ...`` lines (stripped)."""
        return [
            ln.strip() for ln in self.lines if ln.lstrip().startswith("#pragma omp")
        ]

    def critical_blocks(self) -> List[str]:
        """The guarded text of each ``#pragma omp critical`` section.

        The generators emit critical sections as the pragma line followed
        by a braced block (or, for reductions, a single statement); the
        next three lines always cover the guarded code, which is all the
        rules need to classify what the section protects.
        """
        blocks = []
        for i, ln in enumerate(self.lines):
            if "#pragma omp critical" in ln:
                blocks.append("\n".join(self.lines[i + 1 : i + 4]))
        return blocks

    def atomic_pragma_targets(self) -> List[str]:
        """The statement guarded by each ``#pragma omp atomic`` (non-capture)."""
        targets = []
        for i, ln in enumerate(self.lines):
            stripped = ln.strip()
            if stripped == "#pragma omp atomic" and i + 1 < len(self.lines):
                targets.append(self.lines[i + 1].strip())
        return targets
