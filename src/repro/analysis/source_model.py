"""A lightweight token/structure model of one generated source file.

The conformance linter does not parse C++ — the generators emit a closed
set of constructs (the paper's Listings 1-13), so substring presence plus
a little block structure around ``#pragma omp critical`` is exact for
this suite.  :class:`SourceModel` packages those queries so the rules in
:mod:`repro.analysis.conformance` read as construct checks, not string
soup.  (The full structural parse lives in :mod:`repro.analysis.ir`;
this model stays cheap and line-oriented.)
"""

from __future__ import annotations

from typing import List

from .ir import match_brace_block, strip_comments

__all__ = ["SourceModel"]


class SourceModel:
    """Token and structure queries over one emitted source text."""

    def __init__(self, text: str):
        self.text = text
        self.lines = text.splitlines()

    # ------------------------------------------------------------------
    def has(self, token: str) -> bool:
        """Whether ``token`` appears anywhere in the source."""
        return token in self.text

    def has_any(self, *tokens: str) -> bool:
        return any(t in self.text for t in tokens)

    def count(self, token: str) -> int:
        return self.text.count(token)

    # ------------------------------------------------------------------
    def omp_pragmas(self) -> List[str]:
        """All ``#pragma omp ...`` lines (stripped)."""
        return [
            ln.strip() for ln in self.lines if ln.lstrip().startswith("#pragma omp")
        ]

    def critical_blocks(self) -> List[str]:
        """The guarded text of each ``#pragma omp critical`` section.

        Brace-matched: a pragma followed by a ``{ ... }`` block yields the
        whole block regardless of its length; a pragma followed by a bare
        statement yields text up to the first ``;``.  Comments and string
        literals are blanked before matching so braces inside them cannot
        skew the count.
        """
        stripped = strip_comments(self.text)
        blocks = []
        pos = 0
        while True:
            at = stripped.find("#pragma omp critical", pos)
            if at < 0:
                break
            eol = stripped.find("\n", at)
            if eol < 0:
                break
            # First non-whitespace character after the pragma line decides
            # the section form: a braced block or a single statement.
            i = eol
            while i < len(stripped) and stripped[i] in " \t\r\n":
                i += 1
            if i >= len(stripped):
                break
            if stripped[i] == "{":
                end = match_brace_block(stripped, i)
                blocks.append(self.text[i:end])
                pos = end
            else:
                end = stripped.find(";", i)
                end = end + 1 if end >= 0 else len(stripped)
                blocks.append(self.text[i:end])
                pos = end
        return blocks

    def atomic_pragma_targets(self) -> List[str]:
        """The statement guarded by each ``#pragma omp atomic`` (non-capture)."""
        targets = []
        for i, ln in enumerate(self.lines):
            stripped = ln.strip()
            if stripped == "#pragma omp atomic" and i + 1 < len(self.lines):
                targets.append(self.lines[i + 1].strip())
        return targets
