"""Static style-conformance linter for the generated source suite.

For every :class:`~repro.styles.spec.StyleSpec`, the generators emit a
closed set of constructs (the paper's Listings 1-13).  :func:`lint_source`
checks that one emitted source contains *exactly* the constructs its axes
demand — an atomic-min update iff the update axis is ``rmw``, worklist
machinery iff the driver is ``data`` (plus the atomicMax stamp iff
``nodup``), ``schedule(dynamic)`` iff the OpenMP schedule axis says so,
reduction constructs matching the reduction axes, the grid-stride loop
shape iff persistent, and two-array buffering iff deterministic.

:func:`lint_suite` additionally cross-checks a generated suite's
``MANIFEST.tsv`` against :func:`repro.styles.combos.enumerate_specs`:
every row must parse back to a valid spec, point at an existing file with
the canonical name, and the per-(model, algorithm) variant sets must
match the enumeration (exactly when the suite is complete or ``strict``,
as a subset when it was sampled with ``--limit``).

Rule ids live in :data:`repro.analysis.findings.RULES`.
"""

from __future__ import annotations

import multiprocessing
import os
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from ..codegen.common import file_name
from ..styles.axes import (
    AXIS_FIELDS,
    Algorithm,
    AtomicFlavor,
    CppSchedule,
    CpuReduction,
    Determinism,
    Driver,
    Dup,
    GpuReduction,
    Granularity,
    Model,
    OmpSchedule,
    Persistence,
    Update,
)
from ..styles.combos import enumerate_specs
from ..styles.spec import StyleSpec
from .findings import Finding, Report
from .source_model import SourceModel

__all__ = ["spec_from_label", "lint_source", "lint_suite"]

#: The label-correcting algorithms that share the relaxation engine and
#: the relaxation code templates (worklists, stamps, atomic-min updates).
RELAX_ALGORITHMS = frozenset({Algorithm.BFS, Algorithm.SSSP, Algorithm.CC})

#: axis value string -> (StyleSpec field name, enum member).  Axis values
#: are globally unique and hyphen-free, which is what makes label
#: round-tripping well defined.
_VALUE_TO_AXIS: Dict[str, Tuple[str, object]] = {}
for _field, _enum in AXIS_FIELDS.items():
    for _member in _enum:
        if _member.value in _VALUE_TO_AXIS:  # pragma: no cover - invariant
            raise AssertionError(f"axis value {_member.value!r} is not unique")
        _VALUE_TO_AXIS[_member.value] = (_field, _member)


def spec_from_label(label: str) -> StyleSpec:
    """Parse a ``StyleSpec.label()`` string back into a validated spec.

    Raises ``ValueError`` for unknown algorithms/models/axis values,
    duplicated axes, or combinations outside the suite.
    """
    parts = label.split("-")
    if len(parts) < 3:
        raise ValueError(f"label {label!r} is too short to be a style label")
    try:
        algorithm = Algorithm(parts[0])
        model = Model(parts[1])
    except ValueError:
        raise ValueError(
            f"label {label!r} does not start with <algorithm>-<model>"
        ) from None
    kwargs: Dict[str, object] = {}
    for part in parts[2:]:
        entry = _VALUE_TO_AXIS.get(part)
        if entry is None:
            raise ValueError(f"unknown axis value {part!r} in label {label!r}")
        field, member = entry
        if field in kwargs:
            raise ValueError(f"axis {field!r} appears twice in label {label!r}")
        kwargs[field] = member
    spec = StyleSpec(algorithm=algorithm, model=model, **kwargs)
    spec.validate()
    return spec


# ----------------------------------------------------------------------
# Per-source linting
# ----------------------------------------------------------------------
class _RuleSink:
    """Collects at most one finding per rule for one source file."""

    def __init__(self, spec: StyleSpec, locus: str):
        self.spec = spec
        self.locus = locus
        self.findings: List[Finding] = []

    def iff(self, rule: str, expected: bool, present: bool, construct: str) -> None:
        """The construct must be present exactly when the style demands it."""
        if expected == present:
            return
        if expected:
            message = f"missing {construct} (the style demands it)"
        else:
            message = f"unexpected {construct} (the style forbids it)"
        self.findings.append(
            Finding.of(rule, spec=self.spec.label(), locus=self.locus, message=message)
        )

    def constructs(
        self,
        rule: str,
        required: Dict[str, bool],
        forbidden: Dict[str, bool],
    ) -> None:
        """Require/forbid several constructs under one rule id."""
        missing = [name for name, present in required.items() if not present]
        unexpected = [name for name, present in forbidden.items() if present]
        if not missing and not unexpected:
            return
        parts = []
        if missing:
            parts.append("missing " + ", ".join(missing))
        if unexpected:
            parts.append("unexpected " + ", ".join(unexpected))
        self.findings.append(
            Finding.of(
                rule,
                spec=self.spec.label(),
                locus=self.locus,
                message="; ".join(parts),
            )
        )


def lint_source(spec: StyleSpec, text: str, *, locus: str = "") -> List[Finding]:
    """Lint one emitted source against its spec; returns the findings.

    At most one finding is raised per rule, so a single dropped construct
    maps to a single, precisely-identified finding.
    """
    src = SourceModel(text)
    sink = _RuleSink(spec, locus)
    if spec.model is Model.CUDA:
        _lint_cuda(spec, src, sink)
    elif spec.model is Model.OPENMP:
        _lint_openmp(spec, src, sink)
    else:
        _lint_cpp(spec, src, sink)
    return sink.findings


def _lint_cuda(spec: StyleSpec, src: SourceModel, sink: _RuleSink) -> None:
    alg = spec.algorithm
    relax = alg in RELAX_ALGORITHMS

    # Update axis (Listing 5): atomic min iff rmw.  Only the relaxation
    # templates update a shared value array; MIS's status writes and the
    # reduction algorithms are out of this rule's scope.
    if relax:
        sink.iff(
            "CONF-UPDATE",
            spec.update is Update.READ_MODIFY_WRITE,
            src.has_any("atomicMin(&", ".fetch_min("),
            "atomic min update (atomicMin / fetch_min)",
        )

    # Atomic flavor (Listing 9).  The value arrays are cuda::atomic<> only
    # in the relaxation templates; the others just pull in the header.
    if spec.atomic_flavor is not None:
        cuda_atomic = spec.atomic_flavor is AtomicFlavor.CUDA_ATOMIC
        required = {"#include <cuda/atomic>": src.has("#include <cuda/atomic>")}
        if relax:
            required["cuda::atomic<> value type"] = src.has("cuda::atomic<")
        if cuda_atomic:
            sink.constructs("CONF-CUDA-ATOMIC", required, {})
        else:
            sink.constructs("CONF-CUDA-ATOMIC", {}, required)

    # Driver axis (Listings 2/3): worklist machinery iff data-driven.  The
    # host harness always carries #if DATA_DRIVEN blocks (mentioning
    # d_wl_next), so the discriminating constructs are the *kernel-side*
    # worklist read and push.
    if relax:
        data = spec.driver is Driver.DATA
        markers = {
            "DATA_DRIVEN macro set": src.has("#define DATA_DRIVEN 1"),
            "worklist item indexing (wl[item])": src.has("wl[item]"),
            "worklist push (wl_next[slot])": src.has("wl_next[slot]"),
        }
        if data:
            sink.constructs(
                "CONF-WORKLIST",
                markers,
                {"DATA_DRIVEN macro cleared": src.has("#define DATA_DRIVEN 0")},
            )
        else:
            sink.constructs(
                "CONF-WORKLIST",
                {"DATA_DRIVEN macro cleared": src.has("#define DATA_DRIVEN 0")},
                markers,
            )
    elif alg is Algorithm.MIS:
        sink.iff(
            "CONF-WORKLIST",
            spec.driver is Driver.DATA,
            src.has("wl[item]"),
            "worklist item indexing (wl[item])",
        )

    # Dup axis (Listing 3b): the atomicMax stamp iff nodup.
    if relax and spec.driver is Driver.DATA:
        sink.iff(
            "CONF-STAMP",
            spec.dup is Dup.NODUP,
            src.has("atomicMax(&stat["),
            "atomicMax duplicate-suppression stamp",
        )

    # Persistence (Listing 7): grid-stride loop vs single guard.
    if spec.persistence is not None:
        persistent = spec.persistence is Persistence.PERSISTENT
        stride_loop = {"grid-stride item loop": src.has("for (; item <")}
        guard = {"single item guard": src.has("if (item <")}
        if persistent:
            sink.constructs("CONF-PERSISTENCE", stride_loop, guard)
        else:
            sink.constructs("CONF-PERSISTENCE", guard, stride_loop)

    # Granularity (Listings 1/8): how the item id derives from gidx.
    if spec.granularity is not None:
        markers = {
            Granularity.THREAD: ("per-thread item (item = gidx)", "item = gidx;"),
            Granularity.WARP: ("per-warp item (item = gidx / WS)", "item = gidx / WS;"),
            Granularity.BLOCK: ("per-block item (item = blockIdx.x)", "item = blockIdx.x;"),
        }
        required = {}
        forbidden = {}
        for gran, (name, token) in markers.items():
            (required if gran is spec.granularity else forbidden)[name] = src.has(token)
        sink.constructs("CONF-GRANULARITY", required, forbidden)

    # GPU reduction (Listing 10), PR/TC only.
    if spec.gpu_reduction is not None:
        block_add = {"block-local atomicAdd_block": src.has("atomicAdd_block")}
        shuffle = {
            "warp-shuffle reduction tree": src.has("__shfl_down_sync")
            and src.has("warp_reduce"),
        }
        red = spec.gpu_reduction
        if red is GpuReduction.GLOBAL_ADD:
            sink.constructs("CONF-GPU-REDUCTION", {}, {**block_add, **shuffle})
        elif red is GpuReduction.BLOCK_ADD:
            sink.constructs("CONF-GPU-REDUCTION", block_add, shuffle)
        else:
            sink.constructs("CONF-GPU-REDUCTION", shuffle, block_add)

    # Determinism (Listing 6): second device buffer iff deterministic.
    det = spec.determinism is Determinism.DETERMINISTIC
    if relax:
        sink.constructs(
            "CONF-DETERMINISM",
            {
                f"DETERMINISTIC macro = {int(det)}": src.has(
                    f"#define DETERMINISTIC {int(det)}"
                )
            },
            {
                f"DETERMINISTIC macro = {int(not det)}": src.has(
                    f"#define DETERMINISTIC {int(not det)}"
                )
            },
        )
    elif alg is Algorithm.MIS:
        sink.iff("CONF-DETERMINISM", det, src.has("d_status2"),
                 "double-buffered status array (d_status2)")
    elif alg is Algorithm.PR:
        sink.iff("CONF-DETERMINISM", det, src.has("d_rank2"),
                 "double-buffered rank array (d_rank2)")
    # TC is single-pass: the determinism axis implies no buffering construct.


def _lint_openmp(spec: StyleSpec, src: SourceModel, sink: _RuleSink) -> None:
    alg = spec.algorithm
    relax = alg in RELAX_ALGORITHMS
    criticals = src.critical_blocks()

    # Update axis: OpenMP has no atomic min, so rmw is a critical section
    # around the conditional update (Section 5.3.1).
    if relax:
        sink.iff(
            "CONF-UPDATE",
            spec.update is Update.READ_MODIFY_WRITE,
            any("new_val" in block for block in criticals),
            "critical-section min update",
        )

    # Driver axis: worklist machinery iff data-driven.
    if relax:
        data = spec.driver is Driver.DATA
        sink.constructs(
            "CONF-WORKLIST",
            required={
                "initial_worklist builder": src.has("initial_worklist"),
                "worklist push buffer (wl_next)": src.has("wl_next"),
            } if data else {},
            forbidden={} if data else {
                "initial_worklist builder": src.has("initial_worklist"),
                "worklist push buffer (wl_next)": src.has("wl_next"),
            },
        )
    elif alg is Algorithm.MIS:
        sink.iff(
            "CONF-WORKLIST",
            spec.driver is Driver.DATA,
            src.has("wl[item]"),
            "worklist item indexing (wl[item])",
        )

    # Dup axis: the critical stamp (the OpenMP stand-in for atomicMax).
    if relax and spec.driver is Driver.DATA:
        sink.iff(
            "CONF-STAMP",
            spec.dup is Dup.NODUP,
            any("stat[" in block for block in criticals),
            "critical-section duplicate-suppression stamp",
        )

    # OpenMP schedule axis (Listing 12).
    sink.iff(
        "CONF-OMP-SCHEDULE",
        spec.omp_schedule is OmpSchedule.DYNAMIC,
        src.has("schedule(dynamic)"),
        "#pragma omp ... schedule(dynamic)",
    )

    # CPU reduction axis (Listing 11), PR/TC only.
    if spec.cpu_reduction is not None:
        clause = {"reduction(+:) clause": src.has("reduction(+:")}
        atomic_red = {
            "atomic-guarded accumulation": any(
                "+= contribution" in t for t in src.atomic_pragma_targets()
            )
        }
        critical_red = {
            "critical-guarded accumulation": any(
                "+= contribution" in block for block in criticals
            )
        }
        red = spec.cpu_reduction
        if red is CpuReduction.CLAUSE:
            sink.constructs("CONF-CPU-REDUCTION", clause, {**atomic_red, **critical_red})
        elif red is CpuReduction.ATOMIC:
            sink.constructs("CONF-CPU-REDUCTION", atomic_red, {**clause, **critical_red})
        else:
            sink.constructs("CONF-CPU-REDUCTION", critical_red, {**clause, **atomic_red})

    # Determinism: second array + swap iff deterministic.
    _lint_cpu_determinism(spec, src, sink)


def _lint_cpp(spec: StyleSpec, src: SourceModel, sink: _RuleSink) -> None:
    alg = spec.algorithm
    relax = alg in RELAX_ALGORITHMS

    # Update axis: CAS-loop atomic min call iff rmw (the harness always
    # defines atomic_min; only rmw styles call it).
    if relax:
        sink.iff(
            "CONF-UPDATE",
            spec.update is Update.READ_MODIFY_WRITE,
            src.has("if (atomic_min("),
            "compare-exchange atomic min update",
        )

    # Driver axis.
    if relax:
        data = spec.driver is Driver.DATA
        markers = {
            "initial_worklist builder": src.has("initial_worklist"),
            "worklist push buffer (wl_next)": src.has("wl_next"),
        }
        if data:
            sink.constructs("CONF-WORKLIST", markers, {})
        else:
            sink.constructs("CONF-WORKLIST", {}, markers)
    elif alg is Algorithm.MIS:
        sink.iff(
            "CONF-WORKLIST",
            spec.driver is Driver.DATA,
            src.has("wl[item]"),
            "worklist item indexing (wl[item])",
        )

    # Dup axis: the exchange stamp.
    if relax and spec.driver is Driver.DATA:
        sink.iff(
            "CONF-STAMP",
            spec.dup is Dup.NODUP,
            src.has(".exchange(itr)"),
            "exchange duplicate-suppression stamp",
        )

    # C++ schedule axis (Listing 13): blocked contiguous ranges vs the
    # cyclic round-robin loop (which also appears in fixed helper loops,
    # so blocked-range variables are the discriminating construct).
    sink.iff(
        "CONF-CPP-SCHEDULE",
        spec.cpp_schedule is CppSchedule.BLOCKED,
        src.has("beg_it") and src.has("end_it"),
        "blocked per-thread range (beg_it/end_it)",
    )

    # CPU reduction axis, PR/TC only.
    if spec.cpu_reduction is not None:
        clause = {"per-thread partial (local_acc)": src.has("local_acc")}
        critical_red = {"mutex-guarded accumulation": src.has("std::lock_guard")}
        red = spec.cpu_reduction
        if red is CpuReduction.CLAUSE:
            sink.constructs("CONF-CPU-REDUCTION", clause, critical_red)
        elif red is CpuReduction.CRITICAL:
            sink.constructs("CONF-CPU-REDUCTION", critical_red, clause)
        else:
            sink.constructs("CONF-CPU-REDUCTION", {}, {**clause, **critical_red})

    _lint_cpu_determinism(spec, src, sink)


def _lint_cpu_determinism(spec: StyleSpec, src: SourceModel, sink: _RuleSink) -> None:
    """Two-array buffering iff deterministic (shared by OpenMP and C++)."""
    alg = spec.algorithm
    det = spec.determinism is Determinism.DETERMINISTIC
    marker = {
        Algorithm.BFS: ("double-buffered value array (val_out)", "val_out"),
        Algorithm.SSSP: ("double-buffered value array (val_out)", "val_out"),
        Algorithm.CC: ("double-buffered value array (val_out)", "val_out"),
        Algorithm.MIS: ("double-buffered status array (status_out)", "status_out"),
        Algorithm.PR: ("double-buffered rank array (rank_out)", "rank_out"),
    }.get(alg)
    if marker is None:  # TC: single pass, no buffering construct
        return
    name, token = marker
    sink.iff("CONF-DETERMINISM", det, src.has(token), name)


# ----------------------------------------------------------------------
# Suite / manifest linting
# ----------------------------------------------------------------------
def _expected_file_name(spec: StyleSpec, bits: int) -> str:
    name = file_name(spec)
    if bits != 32:
        stem, dot, ext = name.rpartition(".")
        name = f"{stem}-i64{dot}{ext}"
    return name


def _analyze_entry(payload: Tuple[str, str, str, bool]) -> List[Finding]:
    """Worker body: lint (and optionally IR-analyze) one suite source.

    Top-level so it pickles into a worker pool; findings are frozen
    dataclasses and travel back whole.  The file is read and parsed
    exactly once — :func:`repro.analysis.ir.parse_source` memoizes on the
    text, so the conformance pass, the race detector and the inference
    engine share one parse.
    """
    label, path_str, rel, ir = payload
    spec = spec_from_label(label)
    text = Path(path_str).read_text()
    findings = lint_source(spec, text, locus=rel)
    if ir:
        from .infer import analyze_source_ir

        findings = findings + analyze_source_ir(
            spec, text, locus=rel, conf_findings=findings
        )
    return findings


def lint_suite(
    root: Union[str, Path],
    *,
    strict: bool = False,
    ir: bool = False,
    jobs: Optional[int] = None,
) -> Report:
    """Lint a generated suite directory (manifest + every listed source).

    The manifest cross-check treats a per-(model, algorithm, bits) group
    as *sampled* when it holds fewer variants than the enumeration —
    ``generate_suite(--limit)`` output lints clean.  A group at (or past)
    full size, or any group under ``strict=True``, must match the
    enumeration exactly.

    ``ir=True`` additionally runs the IR pipeline per file (structural
    parse, race detection, style inference + three-way differential).
    ``jobs`` fans the per-file work over a process pool (default: the
    machine's core count; 1 = in-process serial).
    """
    root = Path(root)
    report = Report(title=f"conformance {root}")
    manifest = root / "MANIFEST.tsv"
    if not manifest.is_file():
        report.add(
            Finding.of(
                "MAN-PARSE",
                spec="",
                locus=str(manifest),
                message="MANIFEST.tsv not found (not a generated suite?)",
            )
        )
        return report

    lines = manifest.read_text().splitlines()
    if not lines or lines[0] != "model\talgorithm\tbits\tfile\tstyle":
        report.add(
            Finding.of(
                "MAN-PARSE",
                spec="",
                locus="MANIFEST.tsv:1",
                message="missing or malformed header row",
            )
        )
        return report

    entries: List[Tuple[StyleSpec, int, Path, str]] = []
    seen: Dict[Tuple[str, int], str] = {}
    groups: Dict[Tuple[Model, Algorithm, int], Set[str]] = {}
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        locus = f"MANIFEST.tsv:{lineno}"
        cols = line.split("\t")
        if len(cols) != 5:
            report.add(
                Finding.of(
                    "MAN-PARSE", spec="", locus=locus,
                    message=f"expected 5 tab-separated columns, got {len(cols)}",
                )
            )
            continue
        model_s, alg_s, bits_s, rel, label = cols
        try:
            spec = spec_from_label(label)
        except ValueError as exc:
            report.add(Finding.of("MAN-PARSE", spec=label, locus=locus, message=str(exc)))
            continue
        if bits_s not in ("32", "64"):
            report.add(
                Finding.of(
                    "MAN-PARSE", spec=label, locus=locus,
                    message=f"bits column must be 32 or 64, got {bits_s!r}",
                )
            )
            continue
        bits = int(bits_s)
        if spec.model.value != model_s or spec.algorithm.value != alg_s:
            report.add(
                Finding.of(
                    "MAN-INVALID", spec=label, locus=locus,
                    message=(
                        f"model/algorithm columns ({model_s}/{alg_s}) disagree "
                        "with the style label"
                    ),
                )
            )
            continue
        expected_name = _expected_file_name(spec, bits)
        if Path(rel).name != expected_name:
            report.add(
                Finding.of(
                    "MAN-INVALID", spec=label, locus=locus,
                    message=f"file name {Path(rel).name!r} is not the canonical "
                            f"{expected_name!r}",
                )
            )
            continue
        if (label, bits) in seen:
            report.add(
                Finding.of(
                    "MAN-DUP", spec=label, locus=locus,
                    message=f"variant already listed at {seen[(label, bits)]}",
                )
            )
            continue
        seen[(label, bits)] = locus
        path = root / rel
        if not path.is_file():
            report.add(
                Finding.of("MAN-FILE", spec=label, locus=locus,
                           message=f"listed source {rel!r} does not exist")
            )
            continue
        entries.append((spec, bits, path, rel))
        groups.setdefault((spec.model, spec.algorithm, bits), set()).add(label)

    # Cross-check each group against the enumeration.
    for (model, alg, bits), got in sorted(
        groups.items(), key=lambda kv: (kv[0][0].value, kv[0][1].value, kv[0][2])
    ):
        expected = {s.label() for s in enumerate_specs(alg, model)}
        for label in sorted(got - expected):
            report.add(
                Finding.of(
                    "MAN-UNKNOWN", spec=label, locus="MANIFEST.tsv",
                    message=f"{alg.value}/{model.value} enumeration does not "
                            "contain this variant",
                )
            )
        missing = expected - got
        if missing and (strict or len(got) >= len(expected)):
            sample = ", ".join(sorted(missing)[:3])
            more = f" (+{len(missing) - 3} more)" if len(missing) > 3 else ""
            report.add(
                Finding.of(
                    "MAN-MISSING", spec=f"{alg.value}-{model.value}",
                    locus="MANIFEST.tsv",
                    message=f"{len(missing)} enumerated {bits}-bit variant(s) "
                            f"absent from the manifest: {sample}{more}",
                )
            )

    # Lint every listed source file (optionally with the IR pipeline),
    # fanned over a worker pool when the suite is large enough to pay.
    payloads = [
        (spec.label(), str(path), rel, ir) for spec, _bits, path, rel in entries
    ]
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = max(1, min(jobs, len(payloads) or 1))
    if jobs > 1 and len(payloads) >= 32:
        with multiprocessing.get_context("spawn").Pool(jobs) as pool:
            chunk = max(1, len(payloads) // (jobs * 4))
            for findings in pool.imap(_analyze_entry, payloads, chunksize=chunk):
                report.extend(findings)
                report.checked += 1
    else:
        for payload in payloads:
            report.extend(_analyze_entry(payload))
            report.checked += 1
    return report
