"""IR-level static race detector (tentpole analysis a).

For every parallel region, consider each shared array (or shared scalar)
that receives at least one plain — non-atomic, unguarded — write.  If any
pair of accesses to it can land on the same cell from two different work
items (at least one access non-injective), that pair is a data race
candidate.  The paper's Section 2.5 deliberately allows two benign forms:

* **monotone conditional improvement stores** — ``if (new_val < old) cell
  = new_val`` under the ``rw`` update axis: colliding writers store values
  that the fixed-point iteration reconciles on a later pass, and the trace
  sanitizer's SAN-RACE-BENIGN rule checks convergence dynamically;
* **constant-store scatters** — every colliding writer stores the same
  compile-time constant (MIS status stamping, ``changed = 1`` flags), so
  the outcome is order-independent.

Those become :data:`RACE-BENIGN` notes (one per region/array).  Everything
else is an error, graded by shape:

* ``RACE-WL-ALIAS`` — a worklist push buffer written through an index
  that is not an atomically-claimed slot;
* ``RACE-REDUCTION`` — an unguarded ``+=``-style read-modify-write of a
  shared accumulator;
* ``RACE-PLAIN`` — any other colliding plain write.
"""

from __future__ import annotations

import re
from typing import List, Optional

from ..styles.spec import StyleSpec
from .findings import Finding
from .ir import AccessKind, ArrayAccess, Guard, IndexClass, ParallelRegion, SourceIR

__all__ = ["detect_races"]

#: shared flag scalars whose constant stores are order-independent.
_CONST_RE = re.compile(r"^[({\s]*-?\d+(\.\d+)?[f)}\s]*$")


def _is_constant_store(acc: ArrayAccess) -> bool:
    return bool(acc.rhs) and bool(_CONST_RE.match(acc.rhs))


def _is_monotone_guarded(acc: ArrayAccess) -> bool:
    """A conditional improvement store: ``if (new_val < old) cell = new``."""
    cond = acc.condition
    return bool(cond) and "new_val" in cond and ("<" in cond or ">" in cond)


def _is_accumulation(acc: ArrayAccess) -> bool:
    """An unguarded ``x += e`` / ``x++`` read-modify-write on a shared cell."""
    body = acc.rhs
    return bool(
        body
        and acc.guard is Guard.NONE
        and not _CONST_RE.match(body)
        and re.search(rf"\b{re.escape(acc.array)}\b", body)
    )


def _region_has_capture(region: ParallelRegion) -> bool:
    return any(a.kind is AccessKind.CAPTURE for a in region.accesses)


def _classify_array(
    region: ParallelRegion, array: str, spec: Optional[StyleSpec], locus: str
) -> List[Finding]:
    accesses = region.accesses_to(array)
    plain_writes = [
        a
        for a in accesses
        if a.kind is AccessKind.WRITE and a.guard is Guard.NONE
    ]
    if not plain_writes:
        return []

    # Skip shared convergence flags entirely: every writer stores the same
    # constant into the same scalar, by design (documented Section 2.5).
    if all(
        a.index_class is IndexClass.SCALAR and _is_constant_store(a)
        for a in plain_writes
    ) and array in ("changed", "d_changed", "again"):
        return []

    # A race needs a non-injective collision: either a non-injective write,
    # or an injective write paired with a non-injective access elsewhere.
    colliding = [a for a in plain_writes if not a.injective]
    if not colliding:
        others = [a for a in accesses if a.kind is not AccessKind.READ]
        if not any(not a.injective for a in others if a not in plain_writes):
            return []
        colliding = plain_writes

    label = spec.label() if spec is not None else ""
    where = f"{locus}:{colliding[0].line}" if locus else f"line {colliding[0].line}"

    # Worklist aliasing: a push buffer written off-slot.
    wl_like = array.startswith("wl") or array.endswith("_next")
    if wl_like and (_region_has_capture(region) or array.startswith("wl")):
        bad = [
            a
            for a in colliding
            if a.index_class not in (IndexClass.SLOT, IndexClass.SCALAR)
        ]
        if bad:
            return [
                Finding.of(
                    "RACE-WL-ALIAS",
                    spec=label,
                    locus=f"{locus}:{bad[0].line}" if locus else f"line {bad[0].line}",
                    message=(
                        f"region {region.name!r} pushes to {array}["
                        f"{bad[0].index}] whose index is "
                        f"{bad[0].index_class.value}, not an atomically-"
                        "claimed slot: concurrent pushes overwrite each other"
                    ),
                )
            ]
        return []

    # Unguarded accumulation on a shared scalar.
    accum = [a for a in colliding if _is_accumulation(a)]
    if accum:
        return [
            Finding.of(
                "RACE-REDUCTION",
                spec=label,
                locus=f"{locus}:{accum[0].line}" if locus else f"line {accum[0].line}",
                message=(
                    f"region {region.name!r} updates shared accumulator "
                    f"{array!r} with an unguarded read-modify-write "
                    f"({accum[0].rhs!r}): concurrent increments are lost"
                ),
            )
        ]

    # Benign forms Section 2.5 permits.
    if all(
        _is_constant_store(a) or _is_monotone_guarded(a) for a in colliding
    ):
        shape = (
            "constant-store scatter"
            if all(_is_constant_store(a) for a in colliding)
            else "monotone conditional improvement store"
        )
        return [
            Finding.of(
                "RACE-BENIGN",
                spec=label,
                locus=where,
                message=(
                    f"region {region.name!r} has a same-value write-write "
                    f"race on {array!r} ({shape}; index class "
                    f"{colliding[0].index_class.value}) — benign per "
                    "Section 2.5, verified dynamically by SAN-RACE-BENIGN"
                ),
            )
        ]

    return [
        Finding.of(
            "RACE-PLAIN",
            spec=label,
            locus=where,
            message=(
                f"region {region.name!r} plainly writes {array}["
                f"{colliding[0].index}] (index class "
                f"{colliding[0].index_class.value}) while other work items "
                "can access the same cell: undefined outcome"
            ),
        )
    ]


def detect_races(
    ir: SourceIR, spec: Optional[StyleSpec] = None, *, locus: str = ""
) -> List[Finding]:
    """All RACE-* findings for one parsed source."""
    findings: List[Finding] = []
    for region in ir.regions:
        for array in region.arrays():
            findings.extend(_classify_array(region, array, spec, locus))
    return findings
