"""IR-based style inference and the three-way differential (tentpole b).

:func:`infer_axes` re-derives a source's 13-axis style from its
:class:`~repro.analysis.ir.SourceIR` alone — no manifest, no construct
substrings.  Each axis is read off structural evidence: where writes
land (flow), through which index maps (iteration/driver), under which
guards (update), against which buffers (determinism), and how the
parallel loop is shaped (persistence/granularity/schedules).  Axes the
(algorithm, model) enumeration pins to a single option are taken as
pinned; axes it does not carry at all stay ``None``.

:func:`analyze_source_ir` then runs the differential: the inferred axes
against the manifest's declared spec (one ``INFER-<AXIS>`` error per
disagreement), and the IR verdict against the construct-presence
linter's verdict for the same axis (an ``INFER-DIVERGENCE`` note when
exactly one of the two analyses flags — the signature of an analysis
being fooled, e.g. by a stale ``#define DETERMINISTIC`` macro).  RACE-*
findings from :mod:`repro.analysis.races` ride along, making this the
single entry point behind ``repro analyze --ir``.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..styles.axes import (
    AXIS_FIELDS,
    Algorithm,
    AtomicFlavor,
    CppSchedule,
    CpuReduction,
    Determinism,
    Driver,
    Dup,
    Flow,
    GpuReduction,
    Granularity,
    Iteration,
    Model,
    OmpSchedule,
    Persistence,
    Update,
)
from ..styles.combos import enumerate_specs
from ..styles.spec import StyleSpec
from .findings import Finding
from .ir import AccessKind, IndexClass, SourceIR, parse_source
from .races import detect_races

__all__ = ["infer_axes", "analyze_source_ir", "AXIS_RULES"]

#: axis field -> its INFER-* differential rule id.
AXIS_RULES: Dict[str, str] = {
    "iteration": "INFER-ITERATION",
    "driver": "INFER-DRIVER",
    "dup": "INFER-DUP",
    "flow": "INFER-FLOW",
    "update": "INFER-UPDATE",
    "determinism": "INFER-DETERMINISM",
    "persistence": "INFER-PERSISTENCE",
    "granularity": "INFER-GRANULARITY",
    "atomic_flavor": "INFER-ATOMIC-FLAVOR",
    "gpu_reduction": "INFER-GPU-REDUCTION",
    "cpu_reduction": "INFER-CPU-REDUCTION",
    "omp_schedule": "INFER-OMP-SCHEDULE",
    "cpp_schedule": "INFER-CPP-SCHEDULE",
}

#: axis field -> the construct linter's rule for the same axis (for the
#: three-way differential).  iteration and flow have no CONF rule — the
#: IR pass is their first static check.
_CONF_RULES: Dict[str, str] = {
    "driver": "CONF-WORKLIST",
    "dup": "CONF-STAMP",
    "update": "CONF-UPDATE",
    "determinism": "CONF-DETERMINISM",
    "persistence": "CONF-PERSISTENCE",
    "granularity": "CONF-GRANULARITY",
    "atomic_flavor": "CONF-CUDA-ATOMIC",
    "gpu_reduction": "CONF-GPU-REDUCTION",
    "cpu_reduction": "CONF-CPU-REDUCTION",
    "omp_schedule": "CONF-OMP-SCHEDULE",
    "cpp_schedule": "CONF-CPP-SCHEDULE",
}

#: arrays that are bookkeeping, not the algorithm's value plane.
_NON_VALUE = frozenset(
    {
        "wl", "wl_next", "wl_next_size", "stat", "changed", "d_changed",
        "blocked", "again", "nbr_idx", "nbr_list", "e_weight", "src_list",
        "dst_list", "deg",
    }
)


@lru_cache(maxsize=None)
def _axis_options(
    algorithm: Algorithm, model: Model
) -> Dict[str, Tuple[object, ...]]:
    """axis field -> the distinct values the enumeration produces."""
    options: Dict[str, set] = {field: set() for field in AXIS_FIELDS}
    for spec in enumerate_specs(algorithm, model):
        for field in AXIS_FIELDS:
            options[field].add(getattr(spec, field))
    return {field: tuple(values) for field, values in options.items()}


def _resolve_expr(env: Dict[str, str], expr: str, depth: int = 0) -> str:
    e = expr.strip()
    if depth > 6:
        return e
    if e in env and env[e] != e:
        return _resolve_expr(env, env[e], depth + 1)
    return e


# ----------------------------------------------------------------------
# Per-axis evidence readers
# ----------------------------------------------------------------------
def _infer_driver(ir: SourceIR) -> Driver:
    for region in ir.regions:
        for a in region.accesses:
            if a.array == "wl" and a.kind is AccessKind.READ:
                return Driver.DATA
    return Driver.TOPOLOGY


def _infer_iteration(ir: SourceIR) -> Iteration:
    for region in ir.regions:
        for a in region.accesses:
            if a.array in ("src_list", "dst_list"):
                return Iteration.EDGE
    return Iteration.VERTEX


def _value_writes(ir: SourceIR):
    # CAPTUREs on value arrays count: "if (atomic_min(val[u], new_val))"
    # consumes the old value but is still an RMW of the value plane.
    for region in ir.regions:
        for a in region.accesses:
            if a.kind is AccessKind.READ:
                continue
            if a.array in _NON_VALUE:
                continue
            yield region, a


def _infer_flow(ir: SourceIR) -> Flow:
    for region, a in _value_writes(ir):
        if a.index_class is IndexClass.NEIGHBOR:
            return Flow.PUSH
        if a.index_class is IndexClass.ENDPOINT:
            base = _resolve_expr(region.env, a.index)
            if "dst_list" in base:
                return Flow.PUSH
    return Flow.PULL


def _infer_update(ir: SourceIR) -> Update:
    for _region, a in _value_writes(ir):
        if a.index_class is IndexClass.SCALAR:
            continue  # reduction accumulators are not the update axis
        if a.kind in (AccessKind.ATOMIC_RMW, AccessKind.CAPTURE):
            return Update.READ_MODIFY_WRITE
    return Update.READ_WRITE


def _infer_dup(ir: SourceIR) -> Dup:
    for region in ir.regions:
        for a in region.accesses:
            if a.array == "stat" and a.kind is not AccessKind.READ:
                return Dup.NODUP
    return Dup.DUP


def _infer_determinism(ir: SourceIR) -> Determinism:
    for region in ir.regions:
        for a in region.accesses:
            if a.array.endswith("_out"):
                return Determinism.DETERMINISTIC
    return Determinism.NON_DETERMINISTIC


_GRID_STRIDE_RE = re.compile(r"for\s*\(\s*;\s*item\s*<")


def _infer_persistence(ir: SourceIR) -> Persistence:
    for region in ir.regions:
        for lp in region.loops:
            if _GRID_STRIDE_RE.match(lp.header):
                return Persistence.PERSISTENT
    return Persistence.NON_PERSISTENT


def _infer_granularity(ir: SourceIR) -> Granularity:
    defs = [r.env.get("item", "") for r in ir.regions]
    if any("/ WS" in d for d in defs):
        return Granularity.WARP
    if any(d.strip() == "blockIdx.x" for d in defs):
        return Granularity.BLOCK
    return Granularity.THREAD


def _infer_atomic_flavor(ir: SourceIR) -> AtomicFlavor:
    return (
        AtomicFlavor.CUDA_ATOMIC
        if ir.has_include("cuda/atomic")
        else AtomicFlavor.ATOMIC
    )


def _infer_gpu_reduction(ir: SourceIR) -> GpuReduction:
    body = ir.region_bodies()
    if "warp_reduce(" in body:
        return GpuReduction.REDUCTION_ADD
    if "atomicAdd_block" in body:
        return GpuReduction.BLOCK_ADD
    return GpuReduction.GLOBAL_ADD


def _infer_cpu_reduction(ir: SourceIR, model: Model) -> CpuReduction:
    if model is Model.OPENMP:
        if any("reduction(+:" in r.pragma for r in ir.regions):
            return CpuReduction.CLAUSE
        for region in ir.regions:
            for a in region.accesses:
                if (
                    a.guard.value == "critical"
                    and "contribution" in a.rhs
                ):
                    return CpuReduction.CRITICAL
        return CpuReduction.ATOMIC
    body = ir.region_bodies()
    if "local_acc" in body:
        return CpuReduction.CLAUSE
    if "lock_guard" in body:
        return CpuReduction.CRITICAL
    return CpuReduction.ATOMIC


def _infer_omp_schedule(ir: SourceIR) -> OmpSchedule:
    if any("schedule(dynamic)" in r.pragma for r in ir.regions):
        return OmpSchedule.DYNAMIC
    return OmpSchedule.DEFAULT


def _infer_cpp_schedule(ir: SourceIR) -> CppSchedule:
    if "beg_it" in ir.region_bodies():
        return CppSchedule.BLOCKED
    return CppSchedule.CYCLIC


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
def infer_axes(
    algorithm: Algorithm, model: Model, ir: SourceIR
) -> Dict[str, Optional[object]]:
    """Re-derive all 13 axes from the IR (None = axis not carried).

    Only the algorithm and model are taken as given (they name the file's
    template family); every carried axis with more than one legal option
    is decided purely from structural evidence.
    """
    options = _axis_options(algorithm, model)
    readers = {
        "iteration": lambda: _infer_iteration(ir),
        "driver": lambda: _infer_driver(ir),
        "dup": lambda: _infer_dup(ir),
        "flow": lambda: _infer_flow(ir),
        "update": lambda: _infer_update(ir),
        "determinism": lambda: _infer_determinism(ir),
        "persistence": lambda: _infer_persistence(ir),
        "granularity": lambda: _infer_granularity(ir),
        "atomic_flavor": lambda: _infer_atomic_flavor(ir),
        "gpu_reduction": lambda: _infer_gpu_reduction(ir),
        "cpu_reduction": lambda: _infer_cpu_reduction(ir, model),
        "omp_schedule": lambda: _infer_omp_schedule(ir),
        "cpp_schedule": lambda: _infer_cpp_schedule(ir),
    }
    inferred: Dict[str, Optional[object]] = {}
    for field in AXIS_FIELDS:
        opts = [o for o in options.get(field, ()) if o is not None]
        if not opts:
            inferred[field] = None  # the enumeration never carries it
        elif len(opts) == 1:
            inferred[field] = opts[0]  # pinned: a single legal option
        else:
            inferred[field] = readers[field]()
    return inferred


def analyze_source_ir(
    spec: StyleSpec,
    text: str,
    *,
    locus: str = "",
    conf_findings: Optional[List[Finding]] = None,
) -> List[Finding]:
    """All IR-level findings (RACE-* + INFER-*) for one emitted source.

    ``conf_findings`` are the construct linter's findings for the same
    file; when omitted they are computed here (they feed the three-way
    differential, they are *not* re-reported).
    """
    from .conformance import lint_source  # local: avoid an import cycle

    ir = parse_source(text)
    findings = detect_races(ir, spec, locus=locus)

    inferred = infer_axes(spec.algorithm, spec.model, ir)
    label = spec.label()
    mismatched: Dict[str, bool] = {}
    for field in AXIS_FIELDS:
        declared = getattr(spec, field)
        got = inferred.get(field)
        if declared is None or got is None:
            continue
        mismatched[field] = got != declared
        if got != declared:
            findings.append(
                Finding.of(
                    AXIS_RULES[field],
                    spec=label,
                    locus=locus,
                    message=(
                        f"IR infers {field}={got.value!r} but the manifest "
                        f"declares {declared.value!r}"
                    ),
                )
            )

    if conf_findings is None:
        conf_findings = lint_source(spec, text, locus=locus)
    conf_rules = {f.rule for f in conf_findings}
    for field, ir_flag in mismatched.items():
        conf_rule = _CONF_RULES.get(field)
        if conf_rule is None:
            continue
        lint_flag = conf_rule in conf_rules
        if lint_flag != ir_flag:
            who, silent = (
                ("construct linter", "IR inference")
                if lint_flag
                else ("IR inference", "construct linter")
            )
            findings.append(
                Finding.of(
                    "INFER-DIVERGENCE",
                    spec=label,
                    locus=locus,
                    message=(
                        f"axis {field!r}: the {who} flags this file "
                        f"({conf_rule if lint_flag else AXIS_RULES[field]}) "
                        f"but the {silent} does not — one analysis was "
                        "fooled; inspect the construct"
                    ),
                )
            )
    return findings
