"""Robustness tooling: differential fuzzing of the data plane."""

from .fuzz import (
    FuzzCase,
    FuzzReport,
    PlantedBugLauncher,
    build_case,
    load_manifest,
    replay_entry,
    run_fuzz,
    run_self_test,
    write_manifest,
)

__all__ = [
    "FuzzCase",
    "FuzzReport",
    "PlantedBugLauncher",
    "build_case",
    "load_manifest",
    "replay_entry",
    "run_fuzz",
    "run_self_test",
    "write_manifest",
]
