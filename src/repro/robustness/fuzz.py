"""Differential fuzzing of the graph-analytics data plane.

Every fuzz case is a *differential* experiment: a pathological graph shape
(empty, isolated vertices, hub explosion, duplicate edges, degenerate or
near-overflow weights, ...) is crossed with a sampled style spec and a
device, executed through the real :class:`~repro.runtime.launcher.Launcher`
— which verifies the styled kernel against the serial reference — and the
outcome is classified:

* ``ok``     — the variant ran and verified;
* ``skip``   — a *typed*, expected rejection
  (:class:`~repro.kernels.base.DegenerateGraphError`,
  :class:`~repro.runtime.budget.BudgetExceeded`);
* ``escape`` — anything else: a verification mismatch, a divergence, an
  unhandled exception.  Escapes are bugs by definition.

Everything is seed-deterministic.  A case is fully reconstructible from
``(seed, index)`` — the graph, the algorithm, the style spec (stored as an
index into :func:`~repro.styles.combos.enumerate_specs`) and the device
are all drawn from ``np.random.default_rng([seed, index])`` — so a
manifest entry can be replayed byte-for-byte with :func:`replay_entry`.

The harness also proves it can catch what it claims to catch:
:func:`run_self_test` plants a minimal result-corrupting bug into each
algorithm's kernel (via :class:`PlantedBugLauncher`) and asserts the
differential oracle flags it.  A fuzzer whose self-test fails is reporting
noise, not coverage.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..graph.builder import from_edge_arrays
from ..graph.csr import CSRGraph
from ..graph.validate import MAX_SAFE_WEIGHT, sanitize_graph
from ..kernels.base import DegenerateGraphError, KernelResult
from ..machine.devices import CPUS, GPUS
from ..runtime.budget import BudgetExceeded
from ..runtime.errors import FailedRun
from ..runtime.launcher import Launcher
from ..runtime.verify import pr_tolerance
from ..styles.axes import Algorithm, Model
from ..styles.combos import enumerate_specs

__all__ = [
    "MANIFEST_FORMAT",
    "SHAPES",
    "FuzzCase",
    "FuzzReport",
    "PlantedBugLauncher",
    "build_case",
    "load_manifest",
    "replay_entry",
    "run_fuzz",
    "run_self_test",
    "write_manifest",
]

MANIFEST_FORMAT = "repro-fuzz-manifest-v1"

#: Shape name recorded for planted-bug self-test entries (they run on a
#: fixed instance, not a sampled one).
SELF_TEST_SHAPE = "self-test-grid"


# ----------------------------------------------------------------------
# Graph shape mutators.  Each takes the case RNG and returns a canonical
# weighted CSR graph (weights are mandatory so SSSP specs always apply).
# Weight mutations are symmetric per undirected edge — pull-style kernels
# read the reverse edge's weight, so asymmetric weights would produce
# legitimate (non-bug) differences against the reference.
# ----------------------------------------------------------------------


def _empty_weighted(n: int, name: str) -> CSRGraph:
    return CSRGraph(
        np.zeros(n + 1, dtype=np.int64),
        np.empty(0, dtype=np.int32),
        np.empty(0, dtype=np.int32),
        name=name,
    )


def _weighted(src, dst, n: int, name: str) -> CSRGraph:
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.size == 0:
        return _empty_weighted(n, name)
    return from_edge_arrays(src, dst, n, add_weights=True, name=name)


def _reweight(graph: CSRGraph, weights: np.ndarray, name: str) -> CSRGraph:
    """Replace a graph's weights and push it through the sanitizer —
    exactly the path a dirty input file takes through ``load_graph``."""
    dirty = CSRGraph(
        graph.row_ptr, graph.col_idx, weights.astype(np.int32), name=name
    )
    clean, _report = sanitize_graph(dirty)
    return clean


def _sym_edge_hash(graph: CSRGraph, salt: int) -> np.ndarray:
    """A per-edge hash that is identical for both directions of an edge."""
    src = graph.edge_sources().astype(np.uint64)
    dst = graph.col_idx.astype(np.uint64)
    a = np.minimum(src, dst)
    b = np.maximum(src, dst)
    return a * np.uint64(0x9E3779B97F4A7C15) + b + np.uint64(salt)


def _shape_empty(rng: np.random.Generator) -> CSRGraph:
    return _empty_weighted(0, "fuzz-empty")


def _shape_single_vertex(rng: np.random.Generator) -> CSRGraph:
    return _empty_weighted(1, "fuzz-single-vertex")


def _shape_no_edges(rng: np.random.Generator) -> CSRGraph:
    n = int(rng.integers(2, 33))
    return _empty_weighted(n, "fuzz-no-edges")


def _shape_disconnected(rng: np.random.Generator) -> CSRGraph:
    """Two cliques with no path between them (plus the odd isolated tail)."""
    a = int(rng.integers(2, 8))
    b = int(rng.integers(2, 8))
    tail = int(rng.integers(0, 3))
    src, dst = [], []
    for i in range(a):
        for j in range(i + 1, a):
            src.append(i)
            dst.append(j)
    for i in range(b):
        for j in range(i + 1, b):
            src.append(a + i)
            dst.append(a + j)
    return _weighted(src, dst, a + b + tail, "fuzz-disconnected")


def _shape_hub(rng: np.random.Generator) -> CSRGraph:
    """Star: one vertex adjacent to everything (degree-skew explosion)."""
    n = int(rng.integers(8, 65))
    src = np.zeros(n - 1, dtype=np.int64)
    dst = np.arange(1, n, dtype=np.int64)
    return _weighted(src, dst, n, "fuzz-hub")


def _shape_path(rng: np.random.Generator) -> CSRGraph:
    """Long path — maximal diameter per vertex, stresses iteration caps."""
    n = int(rng.integers(8, 65))
    src = np.arange(n - 1, dtype=np.int64)
    dst = np.arange(1, n, dtype=np.int64)
    return _weighted(src, dst, n, "fuzz-path")


def _shape_random(rng: np.random.Generator) -> CSRGraph:
    n = int(rng.integers(4, 49))
    m = int(rng.integers(1, 4 * n))
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    return _weighted(src, dst, n, "fuzz-random")


def _shape_duplicate_edges(rng: np.random.Generator) -> CSRGraph:
    """A handful of edges, each repeated many times (dedup stress)."""
    n = int(rng.integers(3, 9))
    k = int(rng.integers(1, 5))
    base_src = rng.integers(0, n, k)
    base_dst = rng.integers(0, n, k)
    reps = int(rng.integers(2, 9))
    return _weighted(
        np.tile(base_src, reps), np.tile(base_dst, reps), n, "fuzz-dup-edges"
    )


def _shape_zero_weight(rng: np.random.Generator) -> CSRGraph:
    """Weights zeroed on a random (symmetric) edge subset; the sanitizer
    must clamp them back into the valid domain before the kernels run."""
    g = _shape_random(rng)
    if g.n_edges == 0:
        return g
    w = g.weights.copy()
    w[_sym_edge_hash(g, int(rng.integers(0, 1 << 30))) % np.uint64(3) == 0] = 0
    return _reweight(g, w, "fuzz-zero-weight")


def _shape_uniform_weight(rng: np.random.Generator) -> CSRGraph:
    """Every edge carries the same weight (degenerate tie-heavy SSSP)."""
    g = _shape_random(rng)
    if g.n_edges == 0:
        return g
    w = np.full(g.n_edges, int(rng.integers(1, 16)), dtype=np.int64)
    return _reweight(g, w, "fuzz-uniform-weight")


def _shape_near_overflow_weight(rng: np.random.Generator) -> CSRGraph:
    """Weights at the top of the int32 domain on a short path — distance
    accumulation must stay below the ``INF`` sentinel without wrapping."""
    n = int(rng.integers(3, 9))
    src = np.arange(n - 1, dtype=np.int64)
    dst = np.arange(1, n, dtype=np.int64)
    g = _weighted(src, dst, n, "fuzz-near-overflow")
    slack = _sym_edge_hash(g, int(rng.integers(0, 1 << 30))) % np.uint64(7)
    w = np.int64(MAX_SAFE_WEIGHT) - slack.astype(np.int64)
    return _reweight(g, w, "fuzz-near-overflow")


SHAPES: Dict[str, Callable[[np.random.Generator], CSRGraph]] = {
    "empty": _shape_empty,
    "single_vertex": _shape_single_vertex,
    "no_edges": _shape_no_edges,
    "disconnected": _shape_disconnected,
    "hub": _shape_hub,
    "path": _shape_path,
    "random": _shape_random,
    "duplicate_edges": _shape_duplicate_edges,
    "zero_weight": _shape_zero_weight,
    "uniform_weight": _shape_uniform_weight,
    "near_overflow_weight": _shape_near_overflow_weight,
}


# ----------------------------------------------------------------------
# Case construction and execution
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FuzzCase:
    """One sampled experiment, fully determined by ``(seed, index)``."""

    seed: int
    index: int
    shape: str
    algorithm: Algorithm
    model: Model
    spec_index: int
    spec_label: str
    device: str
    n_vertices: int
    n_edges: int

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "index": self.index,
            "shape": self.shape,
            "algorithm": self.algorithm.value,
            "model": self.model.value,
            "spec_index": self.spec_index,
            "spec_label": self.spec_label,
            "device": self.device,
            "n_vertices": self.n_vertices,
            "n_edges": self.n_edges,
        }


def build_case(seed: int, index: int):
    """Reconstruct case ``index`` of run ``seed``.

    Returns ``(case, graph, spec, device)``.  Every random draw comes from
    ``default_rng([seed, index])`` in a fixed order, so the same pair
    always yields the same experiment — this is what makes manifest
    entries replayable.
    """
    rng = np.random.default_rng([int(seed), int(index)])
    shape_names = list(SHAPES)
    shape = shape_names[int(rng.integers(0, len(shape_names)))]
    graph = SHAPES[shape](rng)
    algorithms = list(Algorithm)
    algorithm = algorithms[int(rng.integers(0, len(algorithms)))]
    models = list(Model)
    model = models[int(rng.integers(0, len(models)))]
    specs = enumerate_specs(algorithm, model)
    spec_index = int(rng.integers(0, len(specs)))
    spec = specs[spec_index]
    devices = list(GPUS.values()) if model.is_gpu else list(CPUS.values())
    device = devices[int(rng.integers(0, len(devices)))]
    case = FuzzCase(
        seed=int(seed),
        index=int(index),
        shape=shape,
        algorithm=algorithm,
        model=model,
        spec_index=spec_index,
        spec_label=spec.label(),
        device=device.name,
        n_vertices=graph.n_vertices,
        n_edges=graph.n_edges,
    )
    return case, graph, spec, device


def _execute(
    launcher: Launcher, spec, graph: CSRGraph, device
) -> Tuple[str, Optional[Exception]]:
    """Run one case and classify the outcome."""
    try:
        launcher.run(spec, graph, device)
        return "ok", None
    except (DegenerateGraphError, BudgetExceeded) as exc:
        return "skip", exc
    except Exception as exc:  # noqa: BLE001 — every escape is a finding
        return "escape", exc


def _entry(
    status: str,
    case: FuzzCase,
    exc: Optional[Exception],
    *,
    planted: Optional[str] = None,
) -> dict:
    entry: dict = {"status": status, "case": case.to_dict()}
    if planted is not None:
        entry["planted"] = planted
    if exc is not None:
        failed = FailedRun.from_exception(
            exc,
            algorithm=case.algorithm.value,
            graph=case.shape,
            spec_label=case.spec_label,
            model=case.model.value,
            device=case.device,
        )
        entry["failure"] = {
            "error_class": failed.error_class.value,
            "message": failed.message,
            "digest": failed.digest,
        }
    return entry


# ----------------------------------------------------------------------
# Reports and manifests
# ----------------------------------------------------------------------


@dataclass
class FuzzReport:
    """Outcome of one fuzzing (or self-test) run."""

    seed: int
    cases: int = 0
    ok: int = 0
    #: Every non-ok outcome (skips, escapes, planted-bug detections).
    entries: List[dict] = field(default_factory=list)
    planted_total: int = 0
    planted_detected: int = 0

    @property
    def escapes(self) -> List[dict]:
        """Genuine findings: escapes that were *not* planted on purpose."""
        return [
            e
            for e in self.entries
            if e["status"] == "escape" and "planted" not in e
        ]

    @property
    def skips(self) -> List[dict]:
        return [e for e in self.entries if e["status"] == "skip"]

    @property
    def planted_ok(self) -> bool:
        return self.planted_detected == self.planted_total

    def render_text(self) -> str:
        lines = []
        if self.planted_total:
            verdict = "PASS" if self.planted_ok else "FAIL"
            lines.append(
                f"planted-bug self-test: {self.planted_detected}/"
                f"{self.planted_total} injected bugs detected [{verdict}]"
            )
            for e in self.entries:
                if e.get("planted") and e["status"] != "escape":
                    c = e["case"]
                    lines.append(
                        f"  MISSED: {e['planted']} [{c['spec_label']}] "
                        f"on {c['device']}"
                    )
        if self.cases:
            lines.append(
                f"fuzz: {self.cases} cases, seed {self.seed} — "
                f"{self.ok} ok, {len(self.skips)} typed skips, "
                f"{len(self.escapes)} escapes"
            )
            for e in self.escapes:
                c = e["case"]
                failure = e.get("failure", {})
                lines.append(
                    f"  ESCAPE case {c['index']}: {c['shape']} x "
                    f"{c['algorithm']} [{c['spec_label']}] on {c['device']} "
                    f"— {failure.get('message', '?')}"
                )
        return "\n".join(lines) if lines else "fuzz: nothing ran"


def run_fuzz(
    cases: int = 200,
    seed: int = 0,
    *,
    launcher_factory: Optional[Callable[[], Launcher]] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> FuzzReport:
    """Run ``cases`` seed-deterministic differential experiments.

    ``launcher_factory`` builds the launcher for each case (tests inject
    :class:`PlantedBugLauncher` here); the default is a fresh verifying
    :class:`Launcher` per case, so no state leaks between experiments.
    """
    factory = launcher_factory or (lambda: Launcher(verify=True))
    report = FuzzReport(seed=int(seed))
    for index in range(cases):
        case, graph, spec, device = build_case(seed, index)
        status, exc = _execute(factory(), spec, graph, device)
        report.cases += 1
        if status == "ok":
            report.ok += 1
        else:
            report.entries.append(_entry(status, case, exc))
        if progress is not None:
            progress(index + 1, cases)
    return report


def write_manifest(path, *reports: FuzzReport) -> Path:
    """Write one replayable JSON manifest covering the given reports."""
    path = Path(path)
    payload = {
        "format": MANIFEST_FORMAT,
        "seeds": [r.seed for r in reports],
        "cases": sum(r.cases for r in reports),
        "escapes": sum(len(r.escapes) for r in reports),
        "planted_total": sum(r.planted_total for r in reports),
        "planted_detected": sum(r.planted_detected for r in reports),
        "entries": [e for r in reports for e in r.entries],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
    os.replace(tmp, path)
    return path


def load_manifest(path) -> dict:
    path = Path(path)
    payload = json.loads(path.read_text())
    if (
        not isinstance(payload, dict)
        or payload.get("format") != MANIFEST_FORMAT
    ):
        raise ValueError(f"{path} is not a {MANIFEST_FORMAT} manifest")
    return payload


def replay_entry(entry: dict) -> dict:
    """Re-run one manifest entry and report whether it reproduces.

    Returns ``{"reproduced": bool, "status": str, "message": str}``.
    ``reproduced`` means the replay reached the same outcome class as the
    recorded run (same status, and for failures the same error class).
    """
    recorded_status = entry["status"]
    case_d = entry["case"]
    planted = entry.get("planted")
    if planted is not None:
        algorithm = Algorithm(planted)
        model = Model(case_d["model"])
        spec = enumerate_specs(algorithm, model)[case_d["spec_index"]]
        device = _device_by_name(case_d["device"])
        graph = _self_test_graph()
        launcher = PlantedBugLauncher(algorithm=algorithm)
    else:
        case, graph, spec, device = build_case(
            case_d["seed"], case_d["index"]
        )
        if case.spec_label != case_d["spec_label"]:
            return {
                "reproduced": False,
                "status": "mismatch",
                "message": (
                    f"case reconstruction drifted: expected "
                    f"{case_d['spec_label']}, rebuilt {case.spec_label}"
                ),
            }
        launcher = Launcher(verify=True)
    status, exc = _execute(launcher, spec, graph, device)
    reproduced = status == recorded_status
    recorded_failure = entry.get("failure")
    if reproduced and recorded_failure is not None and exc is not None:
        replay_class = FailedRun.from_exception(
            exc, algorithm=case_d["algorithm"], graph=case_d["shape"]
        ).error_class.value
        reproduced = replay_class == recorded_failure["error_class"]
    message = "ok" if exc is None else f"{type(exc).__name__}: {exc}"
    return {"reproduced": reproduced, "status": status, "message": message}


def _device_by_name(name: str):
    registry: Dict[str, Union[object]] = {**GPUS, **CPUS}
    try:
        return registry[name]
    except KeyError:
        raise ValueError(f"unknown device {name!r}") from None


# ----------------------------------------------------------------------
# Planted-bug self-test
# ----------------------------------------------------------------------


def mutate_values(
    algorithm: Algorithm, values: np.ndarray, graph: CSRGraph
) -> np.ndarray:
    """The smallest result corruption the oracle must still catch."""
    v = values.copy()
    if v.size == 0:
        return v
    if algorithm is Algorithm.TC:
        v[0] += 1
    elif algorithm is Algorithm.PR:
        v[0] = v[0] + 10.0 * pr_tolerance(graph.n_vertices)
    elif algorithm is Algorithm.CC:
        other = np.nonzero(v != v[0])[0]
        if other.size:
            v[0] = v[other[0]]  # merge vertex 0 into another component
        else:
            v[0] = v.max() + 1  # split vertex 0 out of the only component
    elif algorithm is Algorithm.MIS:
        v[0] = 1 - v[0]  # flip membership of vertex 0
    else:  # BFS / SSSP distance vectors
        v[0] += 1
    return v


class _MutatingKernel:
    """Wraps a real kernel; corrupts its result after every run."""

    def __init__(self, inner, algorithm: Algorithm, graph: CSRGraph):
        self._inner = inner
        self._algorithm = algorithm
        self._graph = graph

    def run(self, semantic_key) -> KernelResult:
        result = self._inner.run(semantic_key)
        return KernelResult(
            values=mutate_values(self._algorithm, result.values, self._graph),
            trace=result.trace,
        )

    def __getattr__(self, name):
        return getattr(self._inner, name)


class PlantedBugLauncher(Launcher):
    """A launcher whose kernels carry an injected result-corrupting bug.

    ``algorithm=None`` plants the bug into every kernel; otherwise only
    the named algorithm is corrupted.  Used by the fuzzer's self-test to
    prove the differential oracle actually detects wrong answers.
    """

    def __init__(self, *, algorithm: Optional[Algorithm] = None, **kwargs):
        kwargs.setdefault("verify", True)
        # The trace store must never see (or serve) a planted-bug trace.
        kwargs.setdefault("trace_store", False)
        super().__init__(**kwargs)
        self.planted_algorithm = algorithm

    def _kernel_for(self, algorithm: Algorithm, graph: CSRGraph):
        kernel = super()._kernel_for(algorithm, graph)
        planted = self.planted_algorithm in (None, algorithm)
        if planted and not isinstance(kernel, _MutatingKernel):
            kernel = _MutatingKernel(kernel, algorithm, graph)
            self._kernels[(graph.fingerprint(), algorithm)] = kernel
        return kernel


def _self_test_graph() -> CSRGraph:
    """A fixed connected weighted 4x4 grid — small, non-degenerate, and
    with a unique reference solution for every algorithm."""
    side = 4
    src, dst = [], []
    for r in range(side):
        for c in range(side):
            v = r * side + c
            if c + 1 < side:
                src.append(v)
                dst.append(v + 1)
            if r + 1 < side:
                src.append(v)
                dst.append(v + side)
    return from_edge_arrays(
        np.asarray(src),
        np.asarray(dst),
        side * side,
        add_weights=True,
        name="fuzz-self-test",
    )


def run_self_test(seed: int = 0) -> FuzzReport:
    """Plant a bug into every algorithm's kernel and check it is caught.

    Each algorithm is exercised under one GPU and one CPU model; a planted
    bug that does *not* escape is recorded as ``missed`` and fails the
    self-test (``report.planted_ok``).
    """
    report = FuzzReport(seed=int(seed))
    graph = _self_test_graph()
    gpu = next(iter(GPUS.values()))
    cpu = next(iter(CPUS.values()))
    for algorithm in Algorithm:
        for model in (Model.CUDA, Model.OPENMP):
            spec = enumerate_specs(algorithm, model)[0]
            device = gpu if model.is_gpu else cpu
            launcher = PlantedBugLauncher(algorithm=algorithm)
            status, exc = _execute(launcher, spec, graph, device)
            report.planted_total += 1
            case = FuzzCase(
                seed=int(seed),
                index=-1,
                shape=SELF_TEST_SHAPE,
                algorithm=algorithm,
                model=model,
                spec_index=0,
                spec_label=spec.label(),
                device=device.name,
                n_vertices=graph.n_vertices,
                n_edges=graph.n_edges,
            )
            if status == "escape":
                report.planted_detected += 1
                report.entries.append(
                    _entry("escape", case, exc, planted=algorithm.value)
                )
            else:
                report.entries.append(
                    _entry("missed", case, exc, planted=algorithm.value)
                )
    return report
