"""Structured failure taxonomy for the sweep runtime.

A full study sweep executes tens of thousands of kernel runs; a single
bad variant, crashed worker, or corrupted cache entry must be *recorded*,
not allowed to abort the sweep and discard every finished block.  This
module defines the vocabulary the supervisor, the checkpoint store, and
the failure manifest share:

* :class:`ErrorClass` — what kind of thing went wrong;
* the exception types the supervisor raises internally
  (:class:`BlockTimeoutError`, :class:`WorkerCrashError`,
  :class:`CheckpointCorruptError`);
* :func:`classify_error` — map any exception onto the taxonomy;
* :class:`FailedRun` — one manifest entry: which cell of the study grid
  is missing, why, and after how many attempts.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "ErrorClass",
    "SweepError",
    "BlockTimeoutError",
    "WorkerCrashError",
    "CheckpointCorruptError",
    "classify_error",
    "error_digest",
    "FailedRun",
]


class ErrorClass(enum.Enum):
    """What kind of failure a manifest entry records."""

    #: A styled kernel's result disagreed with the serial reference.
    VERIFICATION = "verification"
    #: Any other exception raised while executing or timing a kernel.
    KERNEL = "kernel"
    #: A block exceeded the per-block timeout and was terminated.
    TIMEOUT = "timeout"
    #: A worker process died without reporting a result.
    CRASH = "crash"
    #: A checkpoint or cache entry failed its integrity check.
    CHECKPOINT = "checkpoint"
    #: The sweep was interrupted (SIGINT / KeyboardInterrupt).
    INTERRUPTED = "interrupted"
    #: A kernel's state was provably diverging (NaN/Inf residual,
    #: out-of-domain values, or a non-shrinking residual window).
    DIVERGENCE = "divergence"
    #: A run was skipped before launch because its estimated footprint
    #: exceeded the configured resource budget.
    BUDGET = "budget"
    #: The graph shape cannot run this kernel (e.g. zero vertices) —
    #: an expected, typed skip rather than a crash.
    DEGENERATE = "degenerate"


class SweepError(RuntimeError):
    """Base class of the sweep supervisor's own failures."""


class BlockTimeoutError(SweepError):
    """A block ran past ``--block-timeout`` and its worker was killed."""


class WorkerCrashError(SweepError):
    """A worker process exited without sending back its block's runs."""


class CheckpointCorruptError(SweepError):
    """A checkpoint entry is truncated or fails its checksum."""


def classify_error(exc: BaseException) -> ErrorClass:
    """Map an exception onto the :class:`ErrorClass` taxonomy."""
    from ..kernels.base import DegenerateGraphError, DivergenceError
    from .budget import BudgetExceeded
    from .verify import VerificationError

    if isinstance(exc, VerificationError):
        return ErrorClass.VERIFICATION
    if isinstance(exc, DivergenceError):
        return ErrorClass.DIVERGENCE
    if isinstance(exc, BudgetExceeded):
        return ErrorClass.BUDGET
    if isinstance(exc, DegenerateGraphError):
        return ErrorClass.DEGENERATE
    if isinstance(exc, BlockTimeoutError):
        return ErrorClass.TIMEOUT
    if isinstance(exc, WorkerCrashError):
        return ErrorClass.CRASH
    if isinstance(exc, CheckpointCorruptError):
        return ErrorClass.CHECKPOINT
    if isinstance(exc, KeyboardInterrupt):
        return ErrorClass.INTERRUPTED
    return ErrorClass.KERNEL


def error_digest(error_class: ErrorClass, message: str) -> str:
    """Short stable digest of one failure mode (class + message).

    Identical failures across variants/devices share a digest, so a
    manifest with 500 entries caused by one bug is visibly one bug.
    """
    payload = f"{error_class.value}\0{message}".encode()
    return hashlib.sha256(payload).hexdigest()[:12]


@dataclass(frozen=True)
class FailedRun:
    """One failure-manifest entry: a missing cell (or block) of the grid.

    ``stage`` is ``"variant"`` when a single program variant failed inside
    an otherwise healthy block (e.g. a verification failure), ``"block"``
    when a whole (algorithm, graph) block was quarantined after retries.
    Block-level entries leave ``spec_label``/``model``/``device`` unset.
    """

    algorithm: str
    graph: str
    error_class: ErrorClass
    message: str
    digest: str
    stage: str = "variant"
    spec_label: Optional[str] = None
    model: Optional[str] = None
    device: Optional[str] = None
    attempts: int = 1

    @classmethod
    def from_exception(
        cls,
        exc: BaseException,
        *,
        algorithm: str,
        graph: str,
        stage: str = "variant",
        spec_label: Optional[str] = None,
        model: Optional[str] = None,
        device: Optional[str] = None,
        attempts: int = 1,
    ) -> "FailedRun":
        error_class = classify_error(exc)
        message = f"{type(exc).__name__}: {exc}"
        return cls(
            algorithm=algorithm,
            graph=graph,
            error_class=error_class,
            message=message,
            digest=error_digest(error_class, message),
            stage=stage,
            spec_label=spec_label,
            model=model,
            device=device,
            attempts=attempts,
        )

    def render(self) -> str:
        where = f"{self.algorithm} x {self.graph}"
        if self.spec_label:
            where += f" [{self.spec_label}]"
        if self.device:
            where += f" on {self.device}"
        tries = f", {self.attempts} attempts" if self.attempts > 1 else ""
        return (
            f"[{self.error_class.value}] {where} "
            f"(digest {self.digest}{tries}): {self.message}"
        )
