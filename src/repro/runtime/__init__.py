"""Runtime: launching styled programs on simulated devices, with
verification against serial references."""

from .errors import (
    BlockTimeoutError,
    CheckpointCorruptError,
    ErrorClass,
    FailedRun,
    SweepError,
    WorkerCrashError,
    classify_error,
    error_digest,
)
from .launcher import Launcher, RunResult
from .verify import VerificationError, reference_solution, verify_result

__all__ = [
    "Launcher",
    "RunResult",
    "VerificationError",
    "reference_solution",
    "verify_result",
    "ErrorClass",
    "FailedRun",
    "SweepError",
    "BlockTimeoutError",
    "WorkerCrashError",
    "CheckpointCorruptError",
    "classify_error",
    "error_digest",
]
