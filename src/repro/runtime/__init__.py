"""Runtime: launching styled programs on simulated devices, with
verification against serial references."""

from .launcher import Launcher, RunResult
from .verify import VerificationError, reference_solution, verify_result

__all__ = [
    "Launcher",
    "RunResult",
    "VerificationError",
    "reference_solution",
    "verify_result",
]
