"""Runtime: launching styled programs on simulated devices, with
verification against serial references."""

from .budget import BudgetExceeded, ResourceBudget, estimate_bytes
from .errors import (
    BlockTimeoutError,
    CheckpointCorruptError,
    ErrorClass,
    FailedRun,
    SweepError,
    WorkerCrashError,
    classify_error,
    error_digest,
)
from .launcher import Launcher, RunResult
from .verify import (
    VerificationError,
    pr_tolerance,
    reference_solution,
    verify_result,
)

__all__ = [
    "Launcher",
    "RunResult",
    "VerificationError",
    "reference_solution",
    "verify_result",
    "pr_tolerance",
    "ResourceBudget",
    "BudgetExceeded",
    "estimate_bytes",
    "ErrorClass",
    "FailedRun",
    "SweepError",
    "BlockTimeoutError",
    "WorkerCrashError",
    "CheckpointCorruptError",
    "classify_error",
    "error_digest",
]
