"""Program launcher: run a styled program on a device and a graph.

The launcher implements the study's central efficiency trick (and its
methodological core): the *semantic* axes determine what is executed, the
*mapping* axes only determine how the execution is timed.  Traces are
therefore executed once per (graph, semantic combination) and re-timed for
every mapping combination and device — exactly the "compare styles with
everything else held fixed" discipline of Section 5.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..bench.tracestore import TraceStore

from ..graph.csr import CSRGraph
from ..kernels.base import KernelResult
from ..kernels.registry import build_kernel
from ..machine.cpu import CPUModel
from ..machine.gpu import GPUModel
from ..machine.specs import CPUSpec, GPUSpec
from ..styles.axes import Algorithm
from ..styles.spec import SemanticKey, StyleSpec
from .budget import BudgetExceeded, ResourceBudget
from .verify import reference_solution, verify_result

__all__ = ["RunResult", "Launcher"]

DeviceSpec = Union[GPUSpec, CPUSpec]


@dataclass(frozen=True)
class RunResult:
    """Outcome of one program on one device and one input."""

    spec: StyleSpec
    device: str
    graph: str
    seconds: float
    throughput_ges: float  #: giga directed edges per second (Section 4.5)
    verified: bool
    iterations: int
    launches: int
    #: ``True`` when ``seconds`` is a model estimate back-filled by a
    #: predict-then-verify sweep (:mod:`repro.bench.predictor`) rather
    #: than a simulator measurement.  Predicted rows are never
    #: ``verified`` and report zero iterations/launches.  The default
    #: doubles as the unpickling fallback for results saved before the
    #: field existed (dataclass field defaults live on the class).
    predicted: bool = False

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise ValueError("simulated time must be positive")


class Launcher:
    """Executes styled programs with semantic-trace and reference caching.

    ``source`` selects the BFS/SSSP source vertex; the default (``None``)
    uses each graph's highest-degree vertex — deterministic and never an
    isolated vertex, mirroring common benchmark practice.

    ``sanitize`` runs the trace sanitizer
    (:func:`repro.analysis.sanitizer.assert_sane`) on every freshly
    executed semantic trace; a violated style invariant raises
    :class:`~repro.analysis.sanitizer.SanitizerError`.  The default
    (``None``) follows the ``$REPRO_SANITIZE`` environment variable
    (any value but empty/``0`` enables it).

    ``budget`` is a pre-launch :class:`~repro.runtime.budget.ResourceBudget`:
    before executing a variant, its estimated footprint is checked against
    the budget (and the target device's memory), and after timing, the
    simulated seconds against the time budget — violations raise
    :class:`~repro.runtime.budget.BudgetExceeded`, a typed skip the sweep
    machinery records in the failure manifest.  The default (``None``)
    builds one from ``$REPRO_MAX_FOOTPRINT_MB`` / ``$REPRO_MAX_SIM_SECONDS``
    (inactive when unset).

    ``trace_store`` is the persistent trace store
    (:class:`repro.bench.tracestore.TraceStore`): semantic executions are
    looked up there before any kernel runs and saved there afterwards, so
    a warm store re-times mapping variants with zero kernel executions.
    The default (``None``) follows ``$REPRO_TRACE_CACHE`` (a directory
    path enables it; unset leaves it off for bare launchers — the sweep
    paths opt in via ``SweepConfig.trace_cache``); pass ``False`` to
    force it off regardless of the environment.

    All internal caches are keyed by the graph's *content fingerprint*
    (never ``id()``, which can alias a different graph once the original
    is garbage collected), so content-identical graphs share traces and
    :attr:`kernel_executions` counts real kernel runs only.
    """

    def __init__(
        self,
        *,
        verify: bool = True,
        source: Optional[int] = None,
        sanitize: Optional[bool] = None,
        budget: Optional[ResourceBudget] = None,
        trace_store: Union["TraceStore", None, bool] = None,
    ):
        self.verify = verify
        self.source = source
        if sanitize is None:
            sanitize = os.environ.get("REPRO_SANITIZE", "0") not in ("", "0")
        self.sanitize = sanitize
        self.budget = ResourceBudget.from_env() if budget is None else budget
        if trace_store is None or trace_store is False:
            # Imported late: repro.bench depends on this module.
            from ..bench.tracestore import resolve_trace_store

            trace_store = resolve_trace_store(
                enabled=None if trace_store is None else False
            )
        self.trace_store: Optional["TraceStore"] = trace_store
        #: Kernels actually executed (trace-store and in-memory hits do
        #: not count) — what the warm-sweep guarantees are asserted on.
        self.kernel_executions = 0
        self._kernels: Dict[Tuple[str, Algorithm], object] = {}
        self._traces: Dict[Tuple[str, SemanticKey], KernelResult] = {}
        self._references: Dict[Tuple[str, Algorithm], np.ndarray] = {}
        self._models: Dict[str, Union[GPUModel, CPUModel]] = {}

    def source_for(self, graph: CSRGraph) -> int:
        """The BFS/SSSP source for a graph (highest-degree by default)."""
        if self.source is not None:
            return self.source
        if graph.n_vertices == 0:
            return 0  # kernels reject the empty graph with a typed error
        return int(np.argmax(graph.degrees))

    # ------------------------------------------------------------------
    def execute_semantic(
        self, spec: StyleSpec, graph: CSRGraph
    ) -> KernelResult:
        """Execute (or fetch) the semantic trace of a spec on a graph.

        Lookup order: in-memory cache, then the persistent trace store
        (a hit reassembles the stored execution bit-identically with no
        kernel run), then a real kernel execution — which is verified,
        sanitized, and written back to the store.
        """
        semantic = spec.semantic_key()
        key = (graph.fingerprint(), semantic)
        cached = self._traces.get(key)
        if cached is not None:
            return cached
        if self.trace_store is not None:
            stored = self.trace_store.load(
                graph, semantic, self.source_for(graph),
                require_verified=self.verify,
            )
            if stored is not None:
                if self.sanitize:
                    from ..analysis.sanitizer import assert_sane

                    assert_sane(semantic, stored.trace)
                self._traces[key] = stored
                return stored
        kernel = self._kernel_for(spec.algorithm, graph)
        self.kernel_executions += 1
        result = kernel.run(semantic)
        if self.verify:
            reference = self._reference_for(spec.algorithm, graph)
            verify_result(spec.algorithm, graph, result.values, reference)
        if self.sanitize:
            # Imported late: repro.analysis depends on repro.machine and
            # repro.styles, and the launcher must stay importable without it.
            from ..analysis.sanitizer import assert_sane

            assert_sane(semantic, result.trace)
        if self.trace_store is not None:
            self.trace_store.save(
                graph, semantic, self.source_for(graph), result,
                verified=self.verify,
            )
        self._traces[key] = result
        return result

    def run(
        self, spec: StyleSpec, graph: CSRGraph, device: DeviceSpec
    ) -> RunResult:
        """Run one fully-specified program variant; returns its result."""
        spec.validate()
        self._check_pairing(spec, device)
        if self.budget.active:
            self.budget.check_footprint(graph, spec, device)
        result = self.execute_semantic(spec, graph)
        model = self.model_for(device)
        seconds = model.time_trace(result.trace, spec)
        if self.budget.active:
            self.budget.check_seconds(
                seconds, label=f"{spec.label()} on {graph.name}"
            )
        return self._result(spec, graph, device, result, seconds)

    def run_batch(
        self,
        specs: Sequence[StyleSpec],
        graph: CSRGraph,
        device: DeviceSpec,
        *,
        on_error: Optional[Callable[[StyleSpec, Exception], None]] = None,
    ) -> List[Optional[RunResult]]:
        """Run many program variants on one device and one input.

        Equivalent to calling :meth:`run` per spec (bit-identical results),
        but each distinct semantic trace is fetched once and all of its
        mapping variants are timed in a single batched pass
        (:meth:`GPUModel.time_trace_batch` / :meth:`CPUModel.time_trace_batch`).

        Without ``on_error`` any failure (a :class:`VerificationError`, a
        kernel exception) propagates, as :meth:`run`'s would.  With it, the
        failing semantic group is reported — ``on_error(spec, exc)`` per
        affected spec — its result slots are left ``None``, and the rest of
        the batch still runs: one bad variant costs its cells, not the sweep.
        """
        specs = list(specs)
        model = self.model_for(device)
        groups: Dict[SemanticKey, List[int]] = {}
        for i, spec in enumerate(specs):
            spec.validate()
            self._check_pairing(spec, device)
            groups.setdefault(spec.semantic_key(), []).append(i)
        out: List[Optional[RunResult]] = [None] * len(specs)
        for indices in groups.values():
            batch = [specs[i] for i in indices]
            try:
                if self.budget.active:
                    self.budget.check_footprint(graph, specs[indices[0]], device)
                result = self.execute_semantic(specs[indices[0]], graph)
                times = model.time_trace_batch(result.trace, batch)
            except Exception as exc:
                if on_error is None:
                    raise
                for i in indices:
                    on_error(specs[i], exc)
                continue
            for i, seconds in zip(indices, times):
                if self.budget.active:
                    try:
                        self.budget.check_seconds(
                            seconds,
                            label=f"{specs[i].label()} on {graph.name}",
                        )
                    except BudgetExceeded as exc:
                        if on_error is None:
                            raise
                        on_error(specs[i], exc)
                        continue
                out[i] = self._result(specs[i], graph, device, result, seconds)
        return out

    def run_matrix(
        self,
        specs: Sequence[StyleSpec],
        graph: CSRGraph,
        devices: Sequence[DeviceSpec],
        *,
        on_error: Optional[
            Callable[[StyleSpec, DeviceSpec, Exception], None]
        ] = None,
    ) -> List[List[Optional[RunResult]]]:
        """Run many program variants across many devices in one pass.

        Returns ``results[d][i]`` — the run of spec ``i`` on device ``d``
        — bit-identical to :meth:`run_batch` per device, but each distinct
        semantic trace is fetched exactly once for the whole device list
        and every device's batched timing reuses the trace's shared
        profile matrix (:meth:`ExecutionTrace.profile_matrix`), so the
        variant×device matrix of a sweep block costs one trace walk plus
        a few broadcast evaluations per device.

        ``on_error(spec, device, exc)`` receives per-cell failures (the
        whole group's cells when the semantic execution itself fails);
        without it the first failure propagates.  Invalid specs and
        model/device mismatches always raise — those are caller bugs, not
        sweep data.
        """
        specs = list(specs)
        devices = list(devices)
        models = [self.model_for(device) for device in devices]
        groups: Dict[SemanticKey, List[int]] = {}
        for i, spec in enumerate(specs):
            spec.validate()
            for device in devices:
                self._check_pairing(spec, device)
            groups.setdefault(spec.semantic_key(), []).append(i)
        out: List[List[Optional[RunResult]]] = [
            [None] * len(specs) for _ in devices
        ]
        for indices in groups.values():
            batch = [specs[i] for i in indices]
            # The footprint gate must keep its pre-execution semantics:
            # only run the kernel if some device admits the variant.
            active: List[int] = []
            for d, device in enumerate(devices):
                try:
                    if self.budget.active:
                        self.budget.check_footprint(
                            graph, specs[indices[0]], device
                        )
                except Exception as exc:
                    if on_error is None:
                        raise
                    for i in indices:
                        on_error(specs[i], device, exc)
                    continue
                active.append(d)
            if not active:
                continue
            try:
                result = self.execute_semantic(specs[indices[0]], graph)
            except Exception as exc:
                if on_error is None:
                    raise
                for d in active:
                    for i in indices:
                        on_error(specs[i], devices[d], exc)
                continue
            for d in active:
                try:
                    times = models[d].time_trace_batch(result.trace, batch)
                except Exception as exc:
                    if on_error is None:
                        raise
                    for i in indices:
                        on_error(specs[i], devices[d], exc)
                    continue
                for i, seconds in zip(indices, times):
                    if self.budget.active:
                        try:
                            self.budget.check_seconds(
                                seconds,
                                label=f"{specs[i].label()} on {graph.name}",
                            )
                        except BudgetExceeded as exc:
                            if on_error is None:
                                raise
                            on_error(specs[i], devices[d], exc)
                            continue
                    out[d][i] = self._result(
                        specs[i], graph, devices[d], result, seconds
                    )
        return out

    def model_for(self, device: DeviceSpec) -> Union[GPUModel, CPUModel]:
        """The (memoized) timing model of one device."""
        model = self._models.get(device.name)
        if model is None:
            model = (
                GPUModel(device)
                if isinstance(device, GPUSpec)
                else CPUModel(device)
            )
            self._models[device.name] = model
        return model

    def _result(
        self,
        spec: StyleSpec,
        graph: CSRGraph,
        device: DeviceSpec,
        result: KernelResult,
        seconds: float,
    ) -> RunResult:
        return RunResult(
            spec=spec,
            device=device.name,
            graph=graph.name,
            seconds=seconds,
            throughput_ges=graph.n_edges / seconds / 1e9,
            verified=self.verify,
            iterations=result.trace.iterations,
            launches=result.trace.n_launches,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _check_pairing(spec: StyleSpec, device: DeviceSpec) -> None:
        is_gpu_device = isinstance(device, GPUSpec)
        if spec.model.is_gpu != is_gpu_device:
            raise ValueError(
                f"{spec.model.value} programs cannot run on {device.name}"
            )

    def _kernel_for(self, algorithm: Algorithm, graph: CSRGraph):
        key = (graph.fingerprint(), algorithm)
        kernel = self._kernels.get(key)
        if kernel is None:
            kernel = build_kernel(algorithm, graph, self.source_for(graph))
            self._kernels[key] = kernel
        return kernel

    def _reference_for(self, algorithm: Algorithm, graph: CSRGraph) -> np.ndarray:
        key = (graph.fingerprint(), algorithm)
        ref = self._references.get(key)
        if ref is None:
            ref = reference_solution(algorithm, graph, self.source_for(graph))
            self._references[key] = ref
        return ref

    # ------------------------------------------------------------------
    def release(self, graph: CSRGraph, algorithm: Algorithm) -> None:
        """Drop cached traces/kernels/references of one (graph, algorithm).

        Sweeps call this after timing every variant of a block: trace
        arrays for large worklist-driven runs are the dominant memory
        consumer, and they are never needed again once all mapping
        variants and devices have been timed.  (The persistent trace
        store keeps its copy — release frees memory, not history.)
        """
        gid = graph.fingerprint()
        self._kernels.pop((gid, algorithm), None)
        self._references.pop((gid, algorithm), None)
        stale = [
            key
            for key in self._traces
            if key[0] == gid and key[1].algorithm is algorithm
        ]
        for key in stale:
            del self._traces[key]

    def clear_caches(self) -> None:
        """Drop all cached kernels, traces and references."""
        self._kernels.clear()
        self._traces.clear()
        self._references.clear()

    @property
    def cached_traces(self) -> int:
        return len(self._traces)
