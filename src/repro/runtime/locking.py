"""Advisory file locking for the on-disk stores.

The sweep cache, the trace store, and the checkpoint store all write with
the same atomic discipline — ``*.tmp-<pid>`` then :func:`os.replace` — so
a *single* writer can never corrupt an entry.  Two writers on one machine
are a different story: concurrent garbage collection can unlink another
process's entry between its write and its rename, two servers can
double-run GC and double-count reclaimed bytes, and quarantine moves can
race the writer they are quarantining.  An advisory ``fcntl.flock`` on a
hidden ``.lock`` file inside each store directory serializes exactly
those multi-step sections, at the cost of one ``open`` + ``flock`` per
write — microseconds next to the serialized numpy archive it guards.

The lock is *advisory* (readers that only ever see complete, renamed
files deliberately skip it) and *best-effort portable*: on platforms
without ``fcntl`` (Windows) the context manager degrades to a no-op, which
restores the pre-locking behavior instead of breaking single-process use.
Lock files are named with a leading dot so the stores' ``glob`` patterns
(``trace-*.npz``, ``block-*.ckpt``, ``sweep-*.pkl``) never pick them up.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Union

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - Windows
    fcntl = None  # type: ignore[assignment]

__all__ = ["advisory_lock", "store_lock", "LOCK_FILE_NAME"]

PathLike = Union[str, Path]

#: Hidden lock-file name used inside every store directory.
LOCK_FILE_NAME = ".lock"


@contextmanager
def advisory_lock(lock_path: PathLike, *, shared: bool = False) -> Iterator[bool]:
    """Hold an advisory ``flock`` on ``lock_path`` for the ``with`` body.

    Creates the lock file (and its parent directory) if missing.  Yields
    ``True`` while the lock is held, ``False`` when the platform has no
    ``fcntl`` and the section runs unserialized.  The lock is released on
    exit even if the body raises; a crashed holder releases it
    automatically when the kernel closes its descriptors, so a dead
    process can never wedge the store.
    """
    if fcntl is None:  # pragma: no cover - Windows
        yield False
        return
    path = Path(lock_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_SH if shared else fcntl.LOCK_EX)
        yield True
    finally:
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)


def store_lock(directory: PathLike, *, shared: bool = False):
    """The advisory lock guarding one store directory's writers.

    One lock per directory (not per entry): the sections it guards — GC
    scans, quarantine moves, tmp/rename cycles — span multiple files, and
    a per-entry lock could not order a GC unlink against a concurrent
    rename of the same entry.
    """
    return advisory_lock(Path(directory) / LOCK_FILE_NAME, shared=shared)
