"""Result verification against the serial references.

Mirrors the paper's methodology (Section 4.1): "Each code verifies its
computed solution by comparing it to the solution of a simple serial
algorithm."
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..kernels import serial
from ..styles.axes import Algorithm

__all__ = [
    "VerificationError",
    "reference_solution",
    "verify_result",
    "pr_tolerance",
]

#: Historical fixed PageRank tolerance, kept for back-compat; comparisons
#: now use :func:`pr_tolerance`, which scales with the graph.
PR_ATOL = 1e-5

#: Scale-aware PageRank tolerance: ranks sum to 1, so the natural per-rank
#: magnitude is ``1/n`` and an absolute tolerance must shrink with it —
#: a fixed 1e-5 would accept *any* labeling once ``n`` passes ~1e5.
#: PR_MASS_RTOL is the accepted deviation as a fraction of ``1/n``.
PR_MASS_RTOL = 1e-2

#: Floor on the tolerance: both iterates stop at an L1 residual of 1e-8
#: (kernel and reference TOLERANCE), so per-rank agreement below ~1e-8
#: cannot be expected no matter how large the graph.
PR_FLOOR = 2e-7


def pr_tolerance(n_vertices: int) -> float:
    """Per-rank absolute tolerance for an ``n``-vertex PageRank result.

    Non-deterministic (Gauss-Seidel) runs converge to the same fixed
    point but stop at a slightly different iterate than the Jacobi
    reference, so exact comparison is never possible (Section 4.1).
    """
    return max(PR_MASS_RTOL / max(n_vertices, 1), PR_FLOOR)


class VerificationError(AssertionError):
    """A styled kernel produced a result that disagrees with the serial
    reference — this is always a bug, never a style effect."""


def reference_solution(
    algorithm: Algorithm, graph: CSRGraph, source: int = 0
) -> np.ndarray:
    """Compute (once) the serial reference for a problem instance."""
    if algorithm is Algorithm.BFS:
        return serial.serial_bfs(graph, source)
    if algorithm is Algorithm.SSSP:
        return serial.serial_sssp(graph, source)
    if algorithm is Algorithm.CC:
        return serial.serial_cc(graph)
    if algorithm is Algorithm.MIS:
        return serial.serial_mis(graph)
    if algorithm is Algorithm.PR:
        return serial.serial_pagerank(graph)
    if algorithm is Algorithm.TC:
        return np.array([serial.serial_triangle_count(graph)], dtype=np.int64)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def verify_result(
    algorithm: Algorithm,
    graph: CSRGraph,
    values: np.ndarray,
    reference: np.ndarray,
) -> None:
    """Raise :class:`VerificationError` if ``values`` is wrong."""
    if algorithm in (Algorithm.BFS, Algorithm.SSSP):
        if not np.array_equal(values, reference):
            bad = int(np.count_nonzero(values != reference))
            raise VerificationError(
                f"{algorithm.value}: {bad} distances differ from the reference"
            )
    elif algorithm is Algorithm.CC:
        if not np.array_equal(
            serial.canonical_components(values), reference
        ):
            raise VerificationError("cc: component labeling differs")
    elif algorithm is Algorithm.MIS:
        if not serial.is_maximal_independent_set(graph, values):
            raise VerificationError("mis: result is not a maximal independent set")
        if not np.array_equal(values.astype(np.int8), reference.astype(np.int8)):
            raise VerificationError(
                "mis: set differs from the greedy priority-order reference"
            )
    elif algorithm is Algorithm.PR:
        atol = pr_tolerance(graph.n_vertices)
        if not np.allclose(values, reference, atol=atol):
            worst = float(np.abs(values - reference).max())
            raise VerificationError(
                f"pr: max rank deviation {worst:.2e} (tolerance {atol:.2e} "
                f"for n={graph.n_vertices})"
            )
    elif algorithm is Algorithm.TC:
        if int(values[0]) != int(reference[0]):
            raise VerificationError(
                f"tc: counted {int(values[0])}, reference {int(reference[0])}"
            )
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
