"""Pre-launch resource budgeting.

A production sweep service must refuse work it cannot afford *before*
allocating it: an OOM kill takes the whole worker (and every cached trace
in it) down, while a typed :class:`BudgetExceeded` raised up front becomes
one clean failure-manifest entry.  This module estimates the working-set
footprint of one (graph, style) execution from the graph's array sizes
and the style's extra state, and checks it against:

* an explicit per-run byte limit (``max_bytes``),
* the target device's memory capacity (``GPUSpec.mem_bytes`` /
  ``CPUSpec.mem_bytes``), and
* an optional cap on a run's *simulated* seconds (``max_seconds``) —
  useful for fuzzing and CI, where a pathological case that simulates to
  hours of device time is a finding, not a result to wait for.

:class:`~repro.runtime.launcher.Launcher` consults a budget before every
semantic execution; :func:`ResourceBudget.from_env` builds one from
``$REPRO_MAX_FOOTPRINT_MB`` / ``$REPRO_MAX_SIM_SECONDS`` so sweeps can be
capped without code changes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Union

from ..graph.csr import CSRGraph
from ..machine.specs import CPUSpec, GPUSpec
from ..styles.axes import Driver
from ..styles.spec import StyleSpec

__all__ = [
    "BudgetExceeded",
    "ResourceBudget",
    "estimate_bytes",
]

#: Per-vertex working state: int64 value array plus the deterministic
#: styles' double buffer, degrees, and per-vertex trace fields.
_VERTEX_STATE_BYTES = 48

#: Per-edge working state: the kernels' flat int64 src/dst/cost views on
#: top of the CSR arrays themselves.
_EDGE_STATE_BYTES = 24

#: Extra per-edge allowance for data-driven styles: worklists are edge
#: slots (int64) and the dup style can push a multiple of the frontier.
_WORKLIST_BYTES = 16


class BudgetExceeded(RuntimeError):
    """A run was refused before launch: estimated cost exceeds the budget.

    Carries the numbers so manifest entries stay machine-readable.
    """

    def __init__(
        self,
        message: str,
        *,
        estimated: float,
        limit: float,
        dimension: str = "bytes",
    ):
        super().__init__(message)
        self.estimated = estimated
        self.limit = limit
        self.dimension = dimension


def estimate_bytes(graph: CSRGraph, spec: Optional[StyleSpec] = None) -> int:
    """Estimated peak working-set bytes of one execution.

    Deliberately a cheap upper-ish bound from array shapes (exact
    accounting would require running the kernel): CSR storage + per-vertex
    and per-edge kernel state, plus a worklist allowance for data-driven
    styles.
    """
    n, m = graph.n_vertices, graph.n_edges
    total = graph.memory_bytes()
    total += n * _VERTEX_STATE_BYTES + m * _EDGE_STATE_BYTES
    if spec is not None and spec.driver is Driver.DATA:
        total += m * _WORKLIST_BYTES
    return int(total)


@dataclass(frozen=True)
class ResourceBudget:
    """Configurable pre-launch limits; ``None`` disables a dimension."""

    max_bytes: Optional[int] = None
    max_seconds: Optional[float] = None

    @classmethod
    def from_env(cls) -> "ResourceBudget":
        """Budget from ``$REPRO_MAX_FOOTPRINT_MB`` / ``$REPRO_MAX_SIM_SECONDS``.

        Unset or empty variables leave the dimension unlimited, so the
        default environment yields an inactive budget.
        """
        mb = os.environ.get("REPRO_MAX_FOOTPRINT_MB", "")
        secs = os.environ.get("REPRO_MAX_SIM_SECONDS", "")
        return cls(
            max_bytes=int(float(mb) * 1e6) if mb else None,
            max_seconds=float(secs) if secs else None,
        )

    @property
    def active(self) -> bool:
        return self.max_bytes is not None or self.max_seconds is not None

    # ------------------------------------------------------------------
    def check_footprint(
        self,
        graph: CSRGraph,
        spec: Optional[StyleSpec] = None,
        device: Optional[Union[GPUSpec, CPUSpec]] = None,
    ) -> int:
        """Raise :class:`BudgetExceeded` if the estimated footprint of
        running ``spec`` on ``graph`` exceeds the byte budget or the
        device's memory; returns the estimate otherwise."""
        estimated = estimate_bytes(graph, spec)
        limit: Optional[float] = self.max_bytes
        source = "budget"
        if device is not None and (limit is None or device.mem_bytes < limit):
            limit = device.mem_bytes
            source = device.name
        if limit is not None and estimated > limit:
            raise BudgetExceeded(
                f"estimated footprint {estimated / 1e6:.1f} MB for "
                f"{graph.name} exceeds the {source} limit "
                f"{limit / 1e6:.1f} MB",
                estimated=float(estimated),
                limit=float(limit),
                dimension="bytes",
            )
        return estimated

    def check_seconds(self, seconds: float, *, label: str = "run") -> None:
        """Raise :class:`BudgetExceeded` if a simulated time exceeds the
        time budget."""
        if self.max_seconds is not None and seconds > self.max_seconds:
            raise BudgetExceeded(
                f"{label}: simulated time {seconds:.3g} s exceeds the "
                f"budget {self.max_seconds:.3g} s",
                estimated=seconds,
                limit=self.max_seconds,
                dimension="seconds",
            )
