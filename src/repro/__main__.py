"""``python -m repro`` entry point."""

import sys

from .cli.main import main

sys.exit(main())
