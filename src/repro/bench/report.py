"""Text rendering of every table and figure of the paper's evaluation.

Each ``render_*`` function returns a printable string with the same rows /
series the paper reports (medians and letter-value summaries stand in for
the boxen plots).  The CLI (``python -m repro``) and the benchmark suite
both go through these functions, so what the benchmarks assert is exactly
what users see.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..graph.datasets import DATASETS
from ..graph.properties import GraphProperties
from ..kernels.registry import PROBLEM_CATEGORIES
from ..styles.applicability import applicability_table
from ..styles.axes import (
    Algorithm,
    AtomicFlavor,
    CppSchedule,
    Determinism,
    Dup,
    Driver,
    Flow,
    Iteration,
    Model,
    OmpSchedule,
    Persistence,
    Update,
)
from ..styles.combos import table3_counts
from .analysis import (
    best_style_percentages,
    property_correlations,
    style_combination_matrix,
)
from .boxen import letter_values
from .comparison import baseline_speedups, table6
from .harness import StudyResults
from .ratios import ratios_by_algorithm, throughputs_by_option

__all__ = [
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "render_table6",
    "render_ratio_figure",
    "render_throughput_figure",
    "render_figure14",
    "render_figure15",
    "render_correlations",
    "render_figure16",
    "FIGURE_AXES",
]


def _fmt_ratio(v: float) -> str:
    if not np.isfinite(v):
        return "   n/a"
    if v >= 100:
        return f"{v:6.0f}"
    return f"{v:6.2f}"


# ----------------------------------------------------------------------
# Tables 1-6
# ----------------------------------------------------------------------
def render_table1() -> str:
    lines = ["Table 1: Graph problems used in the study", ""]
    lines.append(f"{'Category':<15} {'Problem'}")
    for alg, category in PROBLEM_CATEGORIES.items():
        lines.append(f"{category:<15} {alg.name}")
    return "\n".join(lines)


def render_table2() -> str:
    table = applicability_table()
    algs = [a.name for a in Algorithm]
    width = max(len(name) for name in table) + 1
    lines = ["Table 2: Included implementation styles", ""]
    lines.append(" " * width + "  ".join(f"{a:>8}" for a in algs))
    for style_name, row in table.items():
        cells = "  ".join(f"{row[a]:>8}" for a in algs)
        lines.append(f"{style_name:<{width}}{cells}")
    return "\n".join(lines)


def render_table3() -> str:
    lines = [
        "Table 3: Number of code versions (ours vs. paper)",
        "",
        f"{'Model':<8} {'Problem':<8} {'ours':>6} {'paper':>6}",
    ]
    totals: Dict[str, List[int]] = {}
    for model, alg, ours, paper in table3_counts():
        lines.append(f"{model:<8} {alg:<8} {ours:>6} {paper:>6}")
        totals.setdefault(model, [0, 0])
        totals[model][0] += ours
        totals[model][1] += paper
    lines.append("")
    for model, (ours, paper) in totals.items():
        lines.append(f"{model:<8} {'total':<8} {ours:>6} {paper:>6}")
    grand = [sum(t[i] for t in totals.values()) for i in (0, 1)]
    lines.append(f"{'all':<8} {'total':<8} {grand[0]:>6} {grand[1]:>6}")
    return "\n".join(lines)


def render_table4(properties: Dict[str, GraphProperties]) -> str:
    lines = [
        "Table 4: Graph information (scaled stand-ins)",
        "",
        f"{'Name':<18} {'Type':<12} {'Origin':<8} {'Vertices':>10} {'Edges':>12} {'MB':>8}",
    ]
    for name, spec in DATASETS.items():
        p = properties[name]
        lines.append(
            f"{name:<18} {spec.graph_type:<12} {spec.origin:<8} "
            f"{p.n_vertices:>10,} {p.n_edges:>12,} {p.size_mb:>8.1f}"
        )
    return "\n".join(lines)


def render_table5(properties: Dict[str, GraphProperties]) -> str:
    lines = [
        "Table 5: Graph degree information (scaled stand-ins)",
        "",
        f"{'Name':<18} {'d_avg':>6} {'d_max':>7} {'d>=32':>7} {'d>=512':>9} {'Diam':>6}",
    ]
    for name in DATASETS:
        p = properties[name]
        lines.append(
            f"{name:<18} {p.avg_degree:>6.1f} {p.max_degree:>7,} "
            f"{p.pct_deg_ge_32:>7.1%} {p.pct_deg_ge_512:>9.3%} {p.diameter:>6,}"
        )
    return "\n".join(lines)


def render_table6(results: StudyResults) -> str:
    cells = baseline_speedups(results)
    rows = table6(cells)
    algs = [a.value for a in Algorithm]
    lines = [
        "Table 6: Geomean speedup of our best style over baseline codes",
        "",
        f"{'Model':<8} " + " ".join(f"{a:>7}" for a in algs) + f" {'geomean':>8}",
    ]
    for model, row in rows.items():
        cells_s = " ".join(
            f"{row[a]:>7.2f}" if a in row else f"{'N/A':>7}" for a in algs
        )
        lines.append(f"{model.value:<8} {cells_s} {row.get('geomean', float('nan')):>8.2f}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Ratio figures (1-8, 12, 13)
# ----------------------------------------------------------------------
#: figure id -> (title, axis field, option A, option B, model filter,
#: device filter, algorithm filter)
FIGURE_AXES = {
    "fig1-3090": (
        "Figure 1a: Atomic / CudaAtomic (RTX 3090)",
        "atomic_flavor", AtomicFlavor.ATOMIC, AtomicFlavor.CUDA_ATOMIC,
        [Model.CUDA], ["RTX 3090"], None,
    ),
    "fig1-titanv": (
        "Figure 1b: Atomic / CudaAtomic (Titan V)",
        "atomic_flavor", AtomicFlavor.ATOMIC, AtomicFlavor.CUDA_ATOMIC,
        [Model.CUDA], ["Titan V"], None,
    ),
    "fig2-cuda": (
        "Figure 2a: vertex-based / edge-based (CUDA)",
        "iteration", Iteration.VERTEX, Iteration.EDGE,
        [Model.CUDA], None, None,
    ),
    "fig2-cpu": (
        "Figure 2b: vertex-based / edge-based (OpenMP and C++)",
        "iteration", Iteration.VERTEX, Iteration.EDGE,
        [Model.OPENMP, Model.CPP_THREADS], None, None,
    ),
    "fig5-cuda": (
        "Figure 5a: push / pull (CUDA)",
        "flow", Flow.PUSH, Flow.PULL, [Model.CUDA], None, None,
    ),
    "fig5-omp": (
        "Figure 5b: push / pull (OpenMP)",
        "flow", Flow.PUSH, Flow.PULL, [Model.OPENMP], None, None,
    ),
    "fig5-cpp": (
        "Figure 5c: push / pull (C++ threads)",
        "flow", Flow.PUSH, Flow.PULL, [Model.CPP_THREADS], None, None,
    ),
    "fig6-cuda": (
        "Figure 6a: read-write / read-modify-write (CUDA)",
        "update", Update.READ_WRITE, Update.READ_MODIFY_WRITE,
        [Model.CUDA], None, None,
    ),
    "fig6-omp": (
        "Figure 6b: read-write / read-modify-write (OpenMP)",
        "update", Update.READ_WRITE, Update.READ_MODIFY_WRITE,
        [Model.OPENMP], None, None,
    ),
    "fig6-cpp": (
        "Figure 6c: read-write / read-modify-write (C++ threads)",
        "update", Update.READ_WRITE, Update.READ_MODIFY_WRITE,
        [Model.CPP_THREADS], None, None,
    ),
    "fig7-cuda": (
        "Figure 7a: deterministic / non-deterministic (CUDA)",
        "determinism", Determinism.DETERMINISTIC, Determinism.NON_DETERMINISTIC,
        [Model.CUDA], None, None,
    ),
    "fig7-omp": (
        "Figure 7b: deterministic / non-deterministic (OpenMP)",
        "determinism", Determinism.DETERMINISTIC, Determinism.NON_DETERMINISTIC,
        [Model.OPENMP], None, None,
    ),
    "fig7-cpp": (
        "Figure 7c: deterministic / non-deterministic (C++ threads)",
        "determinism", Determinism.DETERMINISTIC, Determinism.NON_DETERMINISTIC,
        [Model.CPP_THREADS], None, None,
    ),
    "fig8": (
        "Figure 8: persistent / non-persistent (CUDA)",
        "persistence", Persistence.PERSISTENT, Persistence.NON_PERSISTENT,
        [Model.CUDA], None, None,
    ),
    "fig12": (
        "Figure 12: default / dynamic scheduling (OpenMP)",
        "omp_schedule", OmpSchedule.DEFAULT, OmpSchedule.DYNAMIC,
        [Model.OPENMP], None, None,
    ),
    "fig13": (
        "Figure 13: blocked / cyclic scheduling (C++ threads)",
        "cpp_schedule", CppSchedule.BLOCKED, CppSchedule.CYCLIC,
        [Model.CPP_THREADS], None, None,
    ),
}


def render_ratio_figure(results: StudyResults, figure: str) -> str:
    """Render one of the pairwise-ratio figures as a letter-value table."""
    if figure not in FIGURE_AXES:
        raise KeyError(f"unknown figure {figure!r}; known: {sorted(FIGURE_AXES)}")
    title, axis, a, b, models, devices, algorithms = FIGURE_AXES[figure]
    grouped = ratios_by_algorithm(
        results, axis, a, b,
        models=models, devices=devices, algorithms=algorithms,
    )
    lines = [title, "", "ratio > 1.0 means the first-named style is faster", ""]
    lines.append(
        f"{'Problem':<8} {'n':>5} {'median':>7} {'q1':>7} {'q3':>7} {'min':>8} {'max':>8}"
    )
    for alg in Algorithm:
        if alg not in grouped:
            continue
        lv = letter_values(grouped[alg])
        lo, hi = lv.fourths
        lines.append(
            f"{alg.value:<8} {lv.n:>5} {_fmt_ratio(lv.median):>7} "
            f"{_fmt_ratio(lo):>7} {_fmt_ratio(hi):>7} "
            f"{_fmt_ratio(lv.minimum):>8} {_fmt_ratio(lv.maximum):>8}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Throughput figures (3, 4, 9, 10, 11)
# ----------------------------------------------------------------------
def render_driver_figure(
    results: StudyResults, dup: Dup, model: Model
) -> str:
    """Figures 3/4: topology-driven over data-driven (with/without dups)."""
    out: Dict[Algorithm, List[float]] = {}
    for run in results.select(models=[model]):
        if run.spec.driver is not Driver.TOPOLOGY or run.spec.flow is Flow.PULL:
            continue
        try:
            partner_spec = run.spec.with_axis(driver=Driver.DATA, dup=dup)
        except TypeError:  # pragma: no cover
            continue
        partner = results.get(partner_spec, run.device, run.graph)
        if partner is None:
            continue
        out.setdefault(run.spec.algorithm, []).append(
            run.throughput_ges / partner.throughput_ges
        )
    which = "with" if dup is Dup.DUP else "without"
    fig = "3" if dup is Dup.DUP else "4"
    lines = [
        f"Figure {fig} ({model.value}): topology-driven / data-driven "
        f"({which} duplicates)",
        "",
        f"{'Problem':<8} {'n':>5} {'median':>7} {'min':>8} {'max':>8}",
    ]
    for alg in Algorithm:
        if alg not in out:
            continue
        lv = letter_values(out[alg])
        lines.append(
            f"{alg.value:<8} {lv.n:>5} {_fmt_ratio(lv.median):>7} "
            f"{_fmt_ratio(lv.minimum):>8} {_fmt_ratio(lv.maximum):>8}"
        )
    return "\n".join(lines)


def render_throughput_figure(
    results: StudyResults,
    axis: str,
    *,
    title: str,
    models: Sequence[Model],
    algorithms: Optional[Sequence[Algorithm]] = None,
    graphs: Optional[Sequence[str]] = None,
    devices: Optional[Sequence[str]] = None,
) -> str:
    """Figures 9-11: per-option throughput summaries."""
    grouped = throughputs_by_option(
        results, axis,
        models=models, algorithms=algorithms, graphs=graphs, devices=devices,
    )
    lines = [title, "", f"{'Style':<16} {'n':>5} {'median':>9} {'p75':>9} {'max':>9}"]
    for option, vals in grouped.items():
        lines.append(
            f"{option.value:<16} {vals.size:>5} "
            f"{np.median(vals):>9.4f} {np.percentile(vals, 75):>9.4f} "
            f"{vals.max():>9.4f}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figures 14-16 and Section 5.13
# ----------------------------------------------------------------------
def render_figure14(results: StudyResults) -> str:
    table = best_style_percentages(results)
    lines = [
        "Figure 14: percentage of each style among best-performing codes",
        "",
    ]
    for model, axes in table.items():
        lines.append(f"[{model.value}]")
        for axis, options in axes.items():
            cells = "  ".join(f"{name}={pct:.0%}" for name, pct in options.items())
            lines.append(f"  {axis:<12} {cells}")
    return "\n".join(lines)


def render_figure15(results: StudyResults) -> str:
    labels, matrix = style_combination_matrix(results)
    lines = [
        "Figure 15: median throughput of style_x with style_y over style_x "
        "without style_y (CUDA)",
        "",
        f"{'':<14}" + "".join(f"{lab[:9]:>10}" for lab in labels),
    ]
    for i, lab in enumerate(labels):
        row = "".join(
            f"{matrix[i, j]:>10.2f}" if np.isfinite(matrix[i, j]) else f"{'-':>10}"
            for j in range(len(labels))
        )
        lines.append(f"{lab[:13]:<14}{row}")
    return "\n".join(lines)


def render_correlations(results: StudyResults) -> str:
    corr = property_correlations(results)
    lines = [
        "Section 5.13: style-throughput vs graph-property correlations",
        "",
        f"{'Style':<28} {'Property':<16} {'r':>6}",
    ]
    ranked = sorted(corr.items(), key=lambda kv: -abs(kv[1]))
    for (style, prop), r in ranked[:20]:
        lines.append(f"{style:<28} {prop:<16} {r:>6.2f}")
    return "\n".join(lines)


def render_figure16(results: StudyResults) -> str:
    cells = baseline_speedups(results)
    lines = [
        "Figure 16: throughput ratio of best-style codes to baseline codes",
        "",
        f"{'Model':<8} {'Problem':<8} {'Graph':<18} {'Device':<20} {'speedup':>8}",
    ]
    for c in cells:
        lines.append(
            f"{c.model.value:<8} {c.algorithm.value:<8} {c.graph:<18} "
            f"{c.device:<20} {c.speedup:>8.2f}"
        )
    return "\n".join(lines)
