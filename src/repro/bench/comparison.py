"""Best-style vs third-party-baseline comparison (Section 5.17).

Figure 16 plots, for each algorithm and input, the speedup of the suite's
best-performing style over the optimized Lonestar (CPU) / Gardenia (GPU)
baselines; Table 6 reports the per-algorithm geometric means.

"Best-performing style" follows the paper: "the style that has the highest
average throughput over all inputs" for each (algorithm, programming
model) — one style is picked per model and then evaluated on every input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..machine.cpu import CPUModel
from ..machine.devices import CPUS, GPUS
from ..machine.gpu import GPUModel
from ..styles.axes import Algorithm, Model
from ..styles.spec import StyleSpec
from .baselines import BASELINES, baseline_trace
from .harness import StudyResults

__all__ = ["SpeedupCell", "best_style_spec", "baseline_speedups", "table6"]


@dataclass(frozen=True)
class SpeedupCell:
    """One dot of Figure 16."""

    model: Model
    algorithm: Algorithm
    graph: str
    device: str
    ours_ges: float
    baseline_ges: float

    @property
    def speedup(self) -> float:
        return self.ours_ges / self.baseline_ges


def best_style_spec(
    results: StudyResults, algorithm: Algorithm, model: Model
) -> StyleSpec:
    """The style with the highest geomean throughput over all inputs."""
    sums: Dict[StyleSpec, List[float]] = {}
    for run in results.select(algorithms=[algorithm], models=[model]):
        sums.setdefault(run.spec, []).append(run.throughput_ges)
    if not sums:
        raise ValueError(f"no runs for {algorithm.value}/{model.value}")
    def geomean(vals: List[float]) -> float:
        return float(np.exp(np.mean(np.log(vals))))
    return max(sums.items(), key=lambda kv: geomean(kv[1]))[0]


def baseline_speedups(
    results: StudyResults,
    *,
    source: Optional[int] = None,
) -> List[SpeedupCell]:
    """Figure 16: all speedup cells of best-style codes over baselines."""
    cells: List[SpeedupCell] = []
    for model in Model:
        devices = (
            list(GPUS.values()) if model.is_gpu else list(CPUS.values())
        )
        for algorithm in BASELINES[model]:
            try:
                best = best_style_spec(results, algorithm, model)
            except ValueError:
                continue
            for graph_name, graph in results.graphs.items():
                src = source if source is not None else int(np.argmax(graph.degrees))
                base = baseline_trace(algorithm, graph, model, src)
                for device in devices:
                    ours = results.get(best, device.name, graph_name)
                    if ours is None:
                        continue
                    model_obj = (
                        GPUModel(device) if model.is_gpu else CPUModel(device)
                    )
                    base_seconds = model_obj.time_trace(base.trace, base.style)
                    base_ges = graph.n_edges / base_seconds / 1e9
                    cells.append(
                        SpeedupCell(
                            model=model,
                            algorithm=algorithm,
                            graph=graph_name,
                            device=device.name,
                            ours_ges=ours.throughput_ges,
                            baseline_ges=base_ges,
                        )
                    )
    return cells


def table6(
    cells: List[SpeedupCell],
) -> Dict[Model, Dict[str, float]]:
    """Table 6: per-model, per-algorithm geometric-mean speedups plus the
    per-model geomean over algorithms ('geomean' key)."""
    out: Dict[Model, Dict[str, float]] = {}
    for model in Model:
        row: Dict[str, float] = {}
        alg_means: List[float] = []
        for algorithm in Algorithm:
            vals = [
                c.speedup
                for c in cells
                if c.model is model and c.algorithm is algorithm
            ]
            if not vals:
                continue
            gm = float(np.exp(np.mean(np.log(vals))))
            row[algorithm.value] = gm
            alg_means.append(gm)
        if alg_means:
            row["geomean"] = float(np.exp(np.mean(np.log(alg_means))))
        out[model] = row
    return out
