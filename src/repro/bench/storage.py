"""Persist sweep results across sessions.

A full-study sweep takes minutes; analyses are instant.  These helpers
save a :class:`StudyResults` to disk and load it back, so figure
regeneration, ad-hoc queries and notebook work don't re-run the sweep.

Graphs are not serialized (they can be megabytes and are deterministic to
rebuild); the save records each input's name and the requested scale, and
the loader rebuilds them through the dataset registry on demand.

On top of the explicit save/load pair sits a *content-addressed sweep
cache*: :func:`cached_sweep` keys a sweep by its full configuration (axes,
devices, inputs, scale) plus a fingerprint of the simulator's source code,
so a cache entry can never outlive the code that produced it.  The CLI's
``table``/``figure`` commands run the sweep at most once per (config,
code) pair.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sys
from pathlib import Path
from typing import Callable, Optional, Union

from ..graph.datasets import DATASETS, EXTRA_DATASETS
from ..runtime.locking import store_lock
from .harness import StudyResults, SweepConfig

__all__ = [
    "save_results",
    "load_results",
    "code_fingerprint",
    "sweep_cache_key",
    "sweep_cache_path",
    "default_cache_dir",
    "cached_sweep",
]

PathLike = Union[str, Path]

_MAGIC = "repro-study-results-v1"

#: Current on-disk format: a text header line with the format name and a
#: SHA-256 checksum of the pickled payload, then the payload itself.  A
#: truncated or bit-flipped file fails the checksum with a clear error
#: instead of a pickle traceback (or, worse, silently wrong data).
_MAGIC_V2 = b"repro-study-results-v2"

#: Environment override for the sweep-cache directory.
CACHE_DIR_ENV = "REPRO_SWEEP_CACHE"


def save_results(
    results: StudyResults, path: PathLike, *, scale: str = "default"
) -> Path:
    """Write the sweep's runs (not the graphs) to ``path``.

    ``scale`` is recorded so :func:`load_results` can rebuild the inputs.
    """
    path = Path(path)
    payload = {
        "magic": _MAGIC,
        "scale": scale,
        "graph_names": list(results.graphs),
        "runs": results.runs,
        "failures": results.failures,
    }
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header = _MAGIC_V2 + b" " + hashlib.sha256(body).hexdigest().encode("ascii")
    # tmp + rename: a crash mid-write leaves the old file (or nothing),
    # never a truncated one under the real name.
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    tmp.write_bytes(header + b"\n" + body)
    os.replace(tmp, path)
    return path


def load_results(
    path: PathLike, *, rebuild_graphs: bool = True
) -> StudyResults:
    """Load a saved sweep; optionally rebuild its input graphs.

    Rebuilding uses the dataset registry (standard and extra inputs); runs
    over custom graphs load fine with ``rebuild_graphs=False`` but the
    analyses that need graph properties (correlations, baselines) will
    need the graphs supplied manually.
    """
    path = Path(path)
    blob = path.read_bytes()
    if blob.startswith(_MAGIC_V2):
        header, sep, body = blob.partition(b"\n")
        checksum = header.split(b" ", 1)[1] if b" " in header else b""
        if not sep or hashlib.sha256(body).hexdigest().encode("ascii") != checksum:
            raise ValueError(
                f"{path} is truncated or corrupt (checksum mismatch)"
            )
        payload = pickle.loads(body)
    else:
        # Legacy v1 entries: a bare pickle, no integrity check.
        try:
            payload = pickle.loads(blob)
        except Exception as exc:
            raise ValueError(
                f"{path} is not a saved repro study result ({exc})"
            ) from None
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise ValueError(f"{path} is not a saved repro study result")
    results = StudyResults()
    for run in payload["runs"]:
        results.add(run)
    for failure in payload.get("failures", ()):
        results.add_failure(failure)
    if rebuild_graphs:
        scale = payload["scale"]
        registry = {**DATASETS, **EXTRA_DATASETS}
        for name in payload["graph_names"]:
            spec = registry.get(name)
            if spec is not None and scale in spec.builders:
                results.graphs[name] = spec.build(scale)
    return results


# ----------------------------------------------------------------------
# Content-addressed sweep cache
# ----------------------------------------------------------------------
_fingerprint_memo: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over every source file of the ``repro`` package.

    Cached results are only valid for the exact simulator that produced
    them; folding the code's content into the cache key makes any source
    edit an automatic cache invalidation.  Hashing the installed tree
    (~60 files) takes single-digit milliseconds and is memoized per
    process.
    """
    global _fingerprint_memo
    if _fingerprint_memo is None:
        root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _fingerprint_memo = digest.hexdigest()
    return _fingerprint_memo


def sweep_cache_key(config: SweepConfig) -> str:
    """Content address of one sweep: config + scale + code fingerprint."""
    payload = {
        "code": code_fingerprint(),
        "scale": config.scale,
        "models": [m.value for m in config.models],
        "algorithms": [a.value for a in config.algorithms],
        "gpus": list(config.gpu_names),
        "cpus": list(config.cpu_names),
        "graphs": None if config.graphs is None else list(config.graphs),
        "verify": config.verify,
        "max_footprint_bytes": config.max_footprint_bytes,
    }
    # Pruned sweeps back-fill cells with predictions — a different result
    # set than an exhaustive sweep, so the settings join the key.  Absent
    # (the default) contributes nothing, keeping pre-existing exhaustive
    # keys unchanged.
    if config.predict is not None:
        p = config.predict
        payload["predict"] = {
            "top_k": p.top_k,
            "audit_frac": p.audit_frac,
            "audit_seed": p.audit_seed,
            "max_groups": p.max_groups,
            "model_path": p.model_path,
        }
    serialized = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(serialized).hexdigest()


def default_cache_dir() -> Path:
    """``$REPRO_SWEEP_CACHE``, else ``~/.cache/repro/sweeps``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "sweeps"


def sweep_cache_path(
    config: SweepConfig, cache_dir: Optional[PathLike] = None
) -> Path:
    """Where the cache entry for this sweep lives (whether or not it exists)."""
    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    return directory / f"sweep-{sweep_cache_key(config)}.pkl"


def cached_sweep(
    config: SweepConfig = SweepConfig(),
    *,
    cache_dir: Optional[PathLike] = None,
    refresh: bool = False,
    runner: Optional[Callable[[SweepConfig], StudyResults]] = None,
    workers: Optional[int] = 1,
) -> StudyResults:
    """The sweep's results, loading the on-disk cache when it is warm.

    A hit requires the same configuration *and* the same simulator source
    (see :func:`sweep_cache_key`) — no kernel is re-executed.  On a miss
    the sweep runs (parallel when ``workers`` says so) and the entry is
    written atomically, so concurrent processes at worst duplicate work,
    never corrupt the cache.  ``refresh=True`` bypasses the lookup but
    still refreshes the entry; ``runner`` overrides how the sweep is
    executed (used by tests).
    """
    path = sweep_cache_path(config, cache_dir)
    if not refresh and path.exists():
        try:
            return load_results(path)
        except (ValueError, OSError, pickle.PickleError, EOFError) as exc:
            # Unreadable or corrupt entry: quarantine it (never silently
            # discard — the file is evidence) and rebuild.
            _quarantine_cache_entry(path, exc)
    if runner is None:
        from .parallel import run_sweep_parallel

        results = run_sweep_parallel(config, workers=workers)
    else:
        results = runner(config)
    # A sweep with quarantined blocks is incomplete for reasons that may
    # be transient (a killed worker, a timeout under load); caching it
    # would pin the gap.  Per-variant failures are deterministic kernel
    # bugs and cache fine.
    if any(f.stage == "block" for f in results.failures):
        return results
    path.parent.mkdir(parents=True, exist_ok=True)
    # Advisory cache-directory lock: concurrent sweeps (or servers) on one
    # machine may duplicate work, but their tmp/rename cycles and
    # quarantine moves must never interleave.
    with store_lock(path.parent):
        save_results(results, path, scale=config.scale)
    return results


def _quarantine_cache_entry(path: Path, reason: Exception) -> None:
    """Move an unreadable cache file into a ``quarantine/`` sibling dir."""
    quarantine = path.parent / "quarantine"
    dest = quarantine / path.name
    try:
        with store_lock(path.parent):
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
    except OSError:
        return  # cannot move it; the rebuild below overwrites it anyway
    print(
        f"warning: unreadable sweep-cache entry moved to {dest}: {reason}",
        file=sys.stderr,
    )
