"""Persist sweep results across sessions.

A full-study sweep takes minutes; analyses are instant.  These helpers
save a :class:`StudyResults` to disk and load it back, so figure
regeneration, ad-hoc queries and notebook work don't re-run the sweep.

Graphs are not serialized (they can be megabytes and are deterministic to
rebuild); the save records each input's name and the requested scale, and
the loader rebuilds them through the dataset registry on demand.

On top of the explicit save/load pair sits a *content-addressed sweep
cache*: :func:`cached_sweep` keys a sweep by its full configuration (axes,
devices, inputs, scale) plus a fingerprint of the simulator's source code,
so a cache entry can never outlive the code that produced it.  The CLI's
``table``/``figure`` commands run the sweep at most once per (config,
code) pair.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Callable, Optional, Union

from ..graph.datasets import DATASETS, EXTRA_DATASETS
from .harness import StudyResults, SweepConfig

__all__ = [
    "save_results",
    "load_results",
    "code_fingerprint",
    "sweep_cache_key",
    "sweep_cache_path",
    "default_cache_dir",
    "cached_sweep",
]

PathLike = Union[str, Path]

_MAGIC = "repro-study-results-v1"

#: Environment override for the sweep-cache directory.
CACHE_DIR_ENV = "REPRO_SWEEP_CACHE"


def save_results(
    results: StudyResults, path: PathLike, *, scale: str = "default"
) -> Path:
    """Write the sweep's runs (not the graphs) to ``path``.

    ``scale`` is recorded so :func:`load_results` can rebuild the inputs.
    """
    path = Path(path)
    payload = {
        "magic": _MAGIC,
        "scale": scale,
        "graph_names": list(results.graphs),
        "runs": results.runs,
    }
    with open(path, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    return path


def load_results(
    path: PathLike, *, rebuild_graphs: bool = True
) -> StudyResults:
    """Load a saved sweep; optionally rebuild its input graphs.

    Rebuilding uses the dataset registry (standard and extra inputs); runs
    over custom graphs load fine with ``rebuild_graphs=False`` but the
    analyses that need graph properties (correlations, baselines) will
    need the graphs supplied manually.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        payload = pickle.load(fh)
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise ValueError(f"{path} is not a saved repro study result")
    results = StudyResults()
    for run in payload["runs"]:
        results.add(run)
    if rebuild_graphs:
        scale = payload["scale"]
        registry = {**DATASETS, **EXTRA_DATASETS}
        for name in payload["graph_names"]:
            spec = registry.get(name)
            if spec is not None and scale in spec.builders:
                results.graphs[name] = spec.build(scale)
    return results


# ----------------------------------------------------------------------
# Content-addressed sweep cache
# ----------------------------------------------------------------------
_fingerprint_memo: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over every source file of the ``repro`` package.

    Cached results are only valid for the exact simulator that produced
    them; folding the code's content into the cache key makes any source
    edit an automatic cache invalidation.  Hashing the installed tree
    (~60 files) takes single-digit milliseconds and is memoized per
    process.
    """
    global _fingerprint_memo
    if _fingerprint_memo is None:
        root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _fingerprint_memo = digest.hexdigest()
    return _fingerprint_memo


def sweep_cache_key(config: SweepConfig) -> str:
    """Content address of one sweep: config + scale + code fingerprint."""
    payload = {
        "code": code_fingerprint(),
        "scale": config.scale,
        "models": [m.value for m in config.models],
        "algorithms": [a.value for a in config.algorithms],
        "gpus": list(config.gpu_names),
        "cpus": list(config.cpu_names),
        "graphs": None if config.graphs is None else list(config.graphs),
        "verify": config.verify,
    }
    serialized = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(serialized).hexdigest()


def default_cache_dir() -> Path:
    """``$REPRO_SWEEP_CACHE``, else ``~/.cache/repro/sweeps``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "sweeps"


def sweep_cache_path(
    config: SweepConfig, cache_dir: Optional[PathLike] = None
) -> Path:
    """Where the cache entry for this sweep lives (whether or not it exists)."""
    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    return directory / f"sweep-{sweep_cache_key(config)}.pkl"


def cached_sweep(
    config: SweepConfig = SweepConfig(),
    *,
    cache_dir: Optional[PathLike] = None,
    refresh: bool = False,
    runner: Optional[Callable[[SweepConfig], StudyResults]] = None,
    workers: Optional[int] = 1,
) -> StudyResults:
    """The sweep's results, loading the on-disk cache when it is warm.

    A hit requires the same configuration *and* the same simulator source
    (see :func:`sweep_cache_key`) — no kernel is re-executed.  On a miss
    the sweep runs (parallel when ``workers`` says so) and the entry is
    written atomically, so concurrent processes at worst duplicate work,
    never corrupt the cache.  ``refresh=True`` bypasses the lookup but
    still refreshes the entry; ``runner`` overrides how the sweep is
    executed (used by tests).
    """
    path = sweep_cache_path(config, cache_dir)
    if not refresh and path.exists():
        try:
            return load_results(path)
        except Exception:
            pass  # unreadable/stale entry: fall through and rebuild it
    if runner is None:
        from .parallel import run_sweep_parallel

        results = run_sweep_parallel(config, workers=workers)
    else:
        results = runner(config)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    save_results(results, tmp, scale=config.scale)
    os.replace(tmp, path)
    return results
