"""Persist sweep results across sessions.

A full-study sweep takes minutes; analyses are instant.  These helpers
save a :class:`StudyResults` to disk and load it back, so figure
regeneration, ad-hoc queries and notebook work don't re-run the sweep.

Graphs are not serialized (they can be megabytes and are deterministic to
rebuild); the save records each input's name and the requested scale, and
the loader rebuilds them through the dataset registry on demand.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path
from typing import Optional, Union

from ..graph.datasets import DATASETS, EXTRA_DATASETS
from .harness import StudyResults

__all__ = ["save_results", "load_results"]

PathLike = Union[str, Path]

_MAGIC = "repro-study-results-v1"


def save_results(
    results: StudyResults, path: PathLike, *, scale: str = "default"
) -> Path:
    """Write the sweep's runs (not the graphs) to ``path``.

    ``scale`` is recorded so :func:`load_results` can rebuild the inputs.
    """
    path = Path(path)
    payload = {
        "magic": _MAGIC,
        "scale": scale,
        "graph_names": list(results.graphs),
        "runs": results.runs,
    }
    with open(path, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    return path


def load_results(
    path: PathLike, *, rebuild_graphs: bool = True
) -> StudyResults:
    """Load a saved sweep; optionally rebuild its input graphs.

    Rebuilding uses the dataset registry (standard and extra inputs); runs
    over custom graphs load fine with ``rebuild_graphs=False`` but the
    analyses that need graph properties (correlations, baselines) will
    need the graphs supplied manually.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        payload = pickle.load(fh)
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise ValueError(f"{path} is not a saved repro study result")
    results = StudyResults()
    for run in payload["runs"]:
        results.add(run)
    if rebuild_graphs:
        scale = payload["scale"]
        registry = {**DATASETS, **EXTRA_DATASETS}
        for name in payload["graph_names"]:
            spec = registry.get(name)
            if spec is not None and scale in spec.builders:
                results.graphs[name] = spec.build(scale)
    return results
