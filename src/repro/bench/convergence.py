"""Convergence analysis: iteration counts per semantic style.

Section 2.6 notes that the deterministic style "will always require the
same number of iterations for a given input" while the internally
non-deterministic style benefits from same-iteration results.  This module
quantifies those effects in the reproduction: per (algorithm, input), how
many outer iterations each semantic style combination needs, and how the
determinism/driver axes move that count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..runtime.launcher import Launcher
from ..styles.axes import Algorithm, Determinism, Driver, Model
from ..styles.combos import semantic_combinations
from ..styles.spec import SemanticKey

__all__ = ["ConvergenceRecord", "collect_convergence", "render_convergence"]


@dataclass(frozen=True)
class ConvergenceRecord:
    """Iterations and total work of one semantic style on one input."""

    algorithm: Algorithm
    graph: str
    semantic: SemanticKey
    iterations: int
    total_inner: int
    launches: int


def collect_convergence(
    graphs: Dict[str, CSRGraph],
    *,
    algorithms: Iterable[Algorithm] = tuple(Algorithm),
    launcher: Optional[Launcher] = None,
) -> List[ConvergenceRecord]:
    """Execute every semantic combination and record its convergence."""
    launcher = launcher or Launcher()
    records: List[ConvergenceRecord] = []
    for algorithm in algorithms:
        semantics = list(semantic_combinations(algorithm, Model.CUDA))
        for name, graph in graphs.items():
            for spec in semantics:
                result = launcher.execute_semantic(spec, graph)
                records.append(
                    ConvergenceRecord(
                        algorithm=algorithm,
                        graph=name,
                        semantic=spec.semantic_key(),
                        iterations=result.trace.iterations,
                        total_inner=result.trace.total_inner,
                        launches=result.trace.n_launches,
                    )
                )
            launcher.release(graph, algorithm)
    return records


def _median_iters(records: List[ConvergenceRecord], **conds) -> float:
    vals = [
        r.iterations
        for r in records
        if all(getattr(r.semantic, k) is v for k, v in conds.items())
    ]
    return float(np.median(vals)) if vals else float("nan")


def render_convergence(records: List[ConvergenceRecord]) -> str:
    """Per-algorithm iteration-count summary across the semantic axes."""
    lines = [
        "Convergence behavior by semantic style (median outer iterations)",
        "",
        f"{'Problem':<8} {'det':>6} {'nondet':>7} {'topo':>6} {'data':>6} "
        f"{'max':>6}",
    ]
    algorithms = sorted({r.algorithm for r in records}, key=lambda a: a.value)
    for alg in algorithms:
        sub = [r for r in records if r.algorithm is alg]
        det = _median_iters(sub, determinism=Determinism.DETERMINISTIC)
        nondet = _median_iters(sub, determinism=Determinism.NON_DETERMINISTIC)
        topo = _median_iters(sub, driver=Driver.TOPOLOGY)
        data = _median_iters(sub, driver=Driver.DATA)
        worst = max(r.iterations for r in sub)
        lines.append(
            f"{alg.value:<8} {det:>6.0f} {nondet:>7.0f} {topo:>6.0f} "
            f"{data:>6.0f} {worst:>6}"
        )
    return "\n".join(lines)
